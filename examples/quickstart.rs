//! Quickstart: compile a reasoning kernel through the full REASON stack.
//!
//! The pipeline mirrors the paper's Fig. 4 flow: a probabilistic-circuit
//! kernel is unified into the DAG representation, pruned, regularized,
//! mapped onto the tree-PE hardware, and executed cycle-accurately — and
//! the hardware's answer is checked against exact software inference.
//!
//! Run with: `cargo run --example quickstart`

use reason::arch::{ArchConfig, VliwExecutor};
use reason::compiler::ReasonCompiler;
use reason::core::{dag_from_circuit, KernelSource, ReasonPipeline};
use reason::pc::{random_mixture_circuit, Evidence, StructureConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A probabilistic circuit over 8 binary variables (the kind of
    //    kernel R²-Guard or NeuroPC would hand to REASON).
    let circuit = random_mixture_circuit(&StructureConfig {
        num_vars: 8,
        depth: 3,
        num_components: 3,
        seed: 42,
    });
    println!("circuit: {} nodes, {} edges", circuit.num_nodes(), circuit.num_edges());

    // 2. Algorithm layer (paper Sec. IV): unify into the DAG IR and apply
    //    two-input regularization. (Pruning needs calibration data — see
    //    the safety_guard example.)
    let kernel = ReasonPipeline::new().compile(KernelSource::Pc(&circuit))?;
    println!(
        "unified DAG: {} nodes (depth {}), max fan-in {} after regularization",
        kernel.dag.num_nodes(),
        kernel.dag.depth(),
        kernel.dag.max_fan_in()
    );

    // 3. Hardware mapping (paper Sec. V): block decomposition, bank
    //    mapping, scheduling, VLIW emission — then cycle-level execution
    //    on the paper's 12-PE, 28 nm configuration.
    let config = ArchConfig::paper();
    let compiled = ReasonCompiler::new(config).compile(&kernel.dag)?;
    println!(
        "compiled: {} instructions, {} blocks, peak {} live registers",
        compiled.report.instructions, compiled.report.blocks, compiled.report.peak_live_registers
    );

    // 4. Query p(x0 = 1, x3 = 0) with everything else marginalized.
    let evidence: Vec<Option<usize>> = vec![Some(1), None, None, Some(0), None, None, None, None];
    let (_, map) = dag_from_circuit(&circuit);
    let inputs = map.inputs_for_evidence(circuit.arities(), &evidence);
    let report = VliwExecutor::new(config).execute(&compiled.program(&inputs));

    let exact = circuit.probability(&Evidence::from_values(&evidence));
    println!("hardware result: {:.9}", report.output);
    println!("exact inference: {:.9}", exact);
    assert!((report.output - exact).abs() < 1e-9, "hardware must match software");

    println!(
        "cycles: {} ({:.2} us at {} MHz), energy: {:.2} nJ, pipeline utilization {:.0}%",
        report.cycles,
        report.seconds() * 1e6,
        config.freq_mhz,
        report.energy.total_j() * 1e9,
        100.0 * report.pipeline_utilization()
    );
    Ok(())
}
