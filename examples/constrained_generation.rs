//! Ctrl-G/GeLaTo-style constrained generation (paper Table I).
//!
//! An HMM proxy of a language model is intersected with a keyword DFA;
//! decoding on the product space guarantees constraint satisfaction. The
//! HMM is then unrolled into the unified DAG, pruned by posterior usage,
//! and its likelihood kernel executed on the accelerator through the
//! co-processor programming interface (paper Listing 1).
//!
//! Run with: `cargo run --example constrained_generation`

use reason::arch::ArchConfig;
use reason::compiler::ReasonCompiler;
use reason::core::{dag_from_hmm, regularize};
use reason::hmm::{prune_transitions, sample::sample_sequence, Dfa, Hmm};
use reason::system::{ReasonDevice, SharedMemory};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An 8-state, 10-symbol "language model".
    let hmm = Hmm::random(8, 10, 2024);
    let length = 12;

    // Constraint: the output must contain the keyword [3, 1, 4].
    let keyword = [3usize, 1, 4];
    let dfa = Dfa::contains_keyword(&keyword, hmm.num_symbols());
    let result = hmm.constrained_decode(&dfa, length);
    println!("keyword {:?} must appear; decoded: {:?}", keyword, result.best_sequence);
    println!(
        "log P[constraint satisfied] = {:.3}, best sequence log-prob = {:.3}",
        result.log_prob_satisfied, result.best_log_prob
    );
    assert!(dfa.accepts(&result.best_sequence), "decode must satisfy the constraint");

    // Adaptive transition pruning against sampled traffic (paper Sec. IV-B).
    let mut rng = rand::rngs::ThreadRng::default();
    let data: Vec<Vec<usize>> =
        (0..40).map(|_| sample_sequence(&hmm, length, &mut rng).observations).collect();
    let report = prune_transitions(&hmm, &data, 0.001);
    println!(
        "pruning: {} transitions removed ({} remain), {:.0}% smaller",
        report.removed,
        report.remaining,
        100.0 * report.memory_reduction()
    );

    // Unroll the pruned model into the unified DAG and run the sequence
    // likelihood on the device through the REASON_execute interface.
    let (dag, map) = dag_from_hmm(&report.hmm, length);
    let dag = regularize(&dag);
    let config = ArchConfig::paper();
    let kernel = ReasonCompiler::new(config).compile(&dag)?;

    let shm = SharedMemory::new();
    let mut device = ReasonDevice::new(config, shm.clone());
    let wrapped: Vec<Option<usize>> = result.best_sequence.iter().map(|&s| Some(s)).collect();
    shm.publish_neural(0, map.inputs_for_observations(&wrapped)); // neural_ready
    let outcome = device.execute_dag(0, &kernel); // REASON_execute
    let likelihood = shm.wait_symbolic(0)[0]; // symbolic_ready

    let exact = report.hmm.log_likelihood(&result.best_sequence).exp();
    println!(
        "device: P[sequence] = {:.3e} in {} cycles; exact = {:.3e}",
        likelihood,
        outcome.cycles(),
        exact
    );
    assert!((likelihood - exact).abs() < 1e-9);
    Ok(())
}
