//! R²-Guard-style safety pipeline (paper Table I).
//!
//! Logical safety rules over LLM-detected content categories are
//! knowledge-compiled into a probabilistic circuit; the unsafety score is
//! an exact weighted model count; adaptive flow pruning (paper Sec. IV-B)
//! shrinks the circuit before it is mapped to the accelerator.
//!
//! Run with: `cargo run --example safety_guard`

use rand::rngs::StdRng;
use rand::SeedableRng;

use reason::arch::{ArchConfig, VliwExecutor};
use reason::compiler::ReasonCompiler;
use reason::core::{dag_from_circuit, regularize};
use reason::pc::{compile_cnf, prune_by_flow, sample, Evidence, WmcWeights};
use reason::sat::Cnf;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Safety rules over 6 content categories (variables 0..6):
    //   r1: violent (0) and instructional (1) content must not co-occur
    //       unless flagged educational (2):      (!x0 | !x1 | x2)
    //   r2: medical claims (3) require citations (4):   (!x3 | x4)
    //   r3: minors context (5) forbids violent content: (!x5 | !x0)
    let rules = Cnf::from_clauses(6, vec![vec![-1, -2, 3], vec![-4, 5], vec![-6, -1]]);

    // "Neural detector" marginals for one input text.
    let weights = WmcWeights::new(vec![0.62, 0.55, 0.08, 0.40, 0.35, 0.20]);

    let circuit = compile_cnf(&rules, &weights).expect("rules are satisfiable");
    let p_safe = circuit.probability(&Evidence::empty(6));
    println!("P[all safety rules hold] = {:.4}", p_safe);
    println!("unsafety score          = {:.4}", 1.0 - p_safe);
    println!("verdict                 = {}", if 1.0 - p_safe > 0.5 { "BLOCK" } else { "allow" });

    // Adaptive pruning against sampled deployment traffic.
    let mut rng = StdRng::seed_from_u64(7);
    let traffic: Vec<Vec<usize>> = (0..64).map(|_| sample(&circuit, &mut rng)).collect();
    let report = prune_by_flow(&circuit, &traffic, 0.25);
    println!(
        "pruning: {} edges removed, {} -> {} bytes ({:.0}% smaller), ΔlogL bound {:.4}",
        report.edges_removed,
        report.bytes_before,
        report.bytes_after,
        100.0 * report.memory_reduction(),
        report.log_likelihood_bound
    );
    let p_safe_pruned = report.circuit.probability(&Evidence::empty(6));
    println!("pruned unsafety score   = {:.4}", 1.0 - p_safe_pruned);

    // Map the pruned circuit to the accelerator and check the verdict
    // computed in hardware.
    let (dag, map) = dag_from_circuit(&report.circuit);
    let dag = regularize(&dag);
    let config = ArchConfig::paper();
    let compiled = ReasonCompiler::new(config).compile(&dag)?;
    let inputs = map.inputs_for_evidence(report.circuit.arities(), &[None; 6]);
    let hw = VliwExecutor::new(config).execute(&compiled.program(&inputs));
    println!(
        "hardware: P[safe] = {:.4} in {} cycles ({:.2} us)",
        hw.output,
        hw.cycles,
        hw.seconds() * 1e6
    );
    assert!((hw.output - p_safe_pruned).abs() < 1e-9);
    Ok(())
}
