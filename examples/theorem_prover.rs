//! AlphaGeometry/LINC-style deduction (paper Table I).
//!
//! First-order axioms are clausified (the paper's "Step-1
//! Normalization"), proved by resolution, cross-checked by grounding to
//! propositional SAT, and finally solved on the simulated REASON symbolic
//! engine — the watched-literal BCP hardware of paper Sec. V-D.
//!
//! Run with: `cargo run --example theorem_prover`

use reason::arch::{ArchConfig, SymbolicEngine};
use reason::fol::{clausify, ground_clauses, parse_formula, prove, ProofResult};
use reason::sat::{CubeAndConquer, CubeConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's running FOL example (Sec. II-C): every student has a
    // mentor — plus a small knowledge base.
    let axioms = vec![
        parse_formula("forall X. (student(X) -> exists Y. (mentor(Y) & has_mentor(X, Y)))")?,
        parse_formula("student(alice)")?,
        parse_formula("forall X. forall Y. (has_mentor(X, Y) -> advised(X))")?,
    ];
    let goal = parse_formula("advised(alice)")?;

    // 1. Resolution proof.
    match prove(&axioms, &goal, 10_000) {
        ProofResult::Proved { steps } => {
            println!("resolution: PROVED in {steps} generated clauses")
        }
        other => println!("resolution: {other:?}"),
    }

    // 2. Function-free fragment → grounding → SAT refutation, solved with
    //    cube-and-conquer (the paper's parallel DPLL/CDCL structure).
    let ground_axioms = vec![
        parse_formula("forall X. (student(X) -> scholar(X))")?,
        parse_formula("forall X. (scholar(X) -> reads(X))")?,
        parse_formula("student(alice)")?,
        parse_formula("~reads(alice)")?, // negated goal: reads(alice)
    ];
    let clauses = clausify(&ground_axioms);
    let grounding = ground_clauses(&clauses, &[])?;
    println!(
        "grounded: {} propositional variables, {} clauses",
        grounding.cnf.num_vars(),
        grounding.cnf.num_clauses()
    );
    let outcome = CubeAndConquer::new(&grounding.cnf, CubeConfig::default()).solve();
    println!(
        "cube-and-conquer: {} ({} cubes, {} solved)",
        if outcome.solution.is_sat() {
            "SAT — goal NOT entailed"
        } else {
            "UNSAT — goal PROVED"
        },
        outcome.cubes.len(),
        outcome.cubes_solved
    );

    // 3. The same refutation on REASON's symbolic hardware: real CDCL
    //    events replayed through the broadcast/reduction tree, watched-
    //    literal SRAM, and BCP FIFO.
    let engine = SymbolicEngine::new(ArchConfig::paper());
    let (solution, report) = engine.solve(&grounding.cnf);
    println!(
        "REASON symbolic engine: {} in {} cycles ({} decisions, {} implications, {} conflicts)",
        if solution.is_sat() { "SAT" } else { "UNSAT" },
        report.cycles,
        report.decisions,
        report.implications,
        report.conflicts
    );
    println!(
        "  watched-literal SRAM reads: {}, energy: {:.2} nJ",
        report.wl_sram_reads,
        report.energy.total_j() * 1e9
    );

    // Consistency across all three deduction paths.
    let resolution_proved = matches!(
        prove(
            &[
                parse_formula("forall X. (student(X) -> scholar(X))")?,
                parse_formula("forall X. (scholar(X) -> reads(X))")?,
                parse_formula("student(alice)")?,
            ],
            &parse_formula("reads(alice)")?,
            10_000
        ),
        ProofResult::Proved { .. }
    );
    assert!(resolution_proved);
    assert!(!outcome.solution.is_sat());
    assert!(!solution.is_sat());
    println!("all three engines agree: reads(alice) is entailed");
    Ok(())
}
