//! # reason — a reproduction of REASON (HPCA 2026)
//!
//! *REASON: Accelerating Probabilistic Logical Reasoning for Scalable
//! Neuro-Symbolic Intelligence* (Wan et al., HPCA 2026) proposes an
//! algorithm/architecture/system co-design that accelerates the symbolic
//! and probabilistic reasoning kernels of neuro-symbolic AI. This
//! workspace re-implements the full system in Rust:
//!
//! * the reasoning substrates — SAT ([`sat`]), first-order logic
//!   ([`fol`]), probabilistic circuits ([`pc`]), hidden Markov models
//!   ([`hmm`]), and a neural proxy ([`neural`]);
//! * the paper's algorithm layer — the unified DAG representation with
//!   adaptive pruning and two-input regularization ([`core`]);
//! * the hardware model — reconfigurable tree PEs, a real Benes operand
//!   network, watched-literal BCP hardware, and an energy/area model
//!   ([`arch`]) with its mapping compiler ([`compiler`]);
//! * baseline device models — GPU/CPU/TPU-like/DPU-like ([`sim`]);
//! * system integration — the co-processor programming model, the
//!   two-level pipeline cost model, and the threaded
//!   [`BatchExecutor`](system::BatchExecutor) that runs mixed SAT/PC
//!   batches with real stage overlap ([`system`]);
//! * the knowledge-base serving engine — a persistent compiled-circuit
//!   store with adaptive exact/approx/predicted query routing
//!   ([`serve`]);
//! * the unified observability layer — metrics registry, clock-injected
//!   spans, Prometheus/Chrome-trace exporters ([`telemetry`]);
//! * the evaluation workloads and datasets ([`workloads`]).
//!
//! See `README.md` for a tour and `docs/ARCHITECTURE.md` for the
//! twelve-crate map, the end-to-end dataflow, and which paper section
//! each crate reproduces. The `reason-eval` binary (in `reason-bench`)
//! regenerates all experiments.
//!
//! # Quickstart
//!
//! ```
//! use reason::core::{KernelSource, ReasonPipeline};
//! use reason::arch::{ArchConfig, VliwExecutor};
//! use reason::compiler::ReasonCompiler;
//! use reason::sat::Cnf;
//!
//! // 1. A logical kernel: (x0 ∨ x1) ∧ (¬x0 ∨ x2).
//! let cnf = Cnf::from_clauses(3, vec![vec![1, 2], vec![-1, 3]]);
//!
//! // 2. REASON algorithm layer: unify → prune → regularize.
//! let kernel = ReasonPipeline::new().compile(KernelSource::Sat(&cnf))?;
//!
//! // 3. Map onto the paper's hardware configuration and execute
//! //    cycle-accurately.
//! let config = ArchConfig::paper();
//! let compiled = ReasonCompiler::new(config).compile(&kernel.dag)?;
//! let report = VliwExecutor::new(config).execute(&compiled.program(&[1.0, 0.0, 1.0]));
//! assert_eq!(report.output, 1.0); // the assignment satisfies the formula
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use reason_approx as approx;
pub use reason_arch as arch;
pub use reason_compiler as compiler;
pub use reason_core as core;
pub use reason_fol as fol;
pub use reason_hmm as hmm;
pub use reason_neural as neural;
pub use reason_pc as pc;
pub use reason_sat as sat;
pub use reason_serve as serve;
pub use reason_sim as sim;
pub use reason_system as system;
pub use reason_telemetry as telemetry;
pub use reason_workloads as workloads;
