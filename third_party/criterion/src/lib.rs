//! Offline stand-in for the `criterion` benchmarking API surface the
//! workspace's six bench targets use: `criterion_group!` /
//! `criterion_main!`, [`Criterion::benchmark_group`],
//! `measurement_time`/`sample_size` builders, `bench_function`,
//! `bench_with_input`, [`BenchmarkId`], and [`black_box`].
//!
//! Instead of criterion's statistical sampling, each benchmark routine
//! runs a small fixed number of iterations and prints the mean
//! wall-clock time — cheap enough that the bench binaries double as
//! smoke tests under `cargo test` (they are wired with `harness = false`
//! and run by CI). The iteration count can be raised with the
//! `CRITERION_SHIM_ITERS` env var for real measurements.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, as `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn shim_iters() -> u64 {
    std::env::var("CRITERION_SHIM_ITERS").ok().and_then(|v| v.parse().ok()).unwrap_or(3)
}

/// Per-routine timing driver (subset of `criterion::Bencher`).
pub struct Bencher {
    iters: u64,
    mean: Option<Duration>,
}

impl Bencher {
    fn new() -> Self {
        Bencher { iters: shim_iters(), mean: None }
    }

    /// Time `routine` over the shim's iteration budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.mean = Some(start.elapsed() / self.iters.max(1) as u32);
    }
}

/// Benchmark identifier (subset of `criterion::BenchmarkId`).
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId(name.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId(name)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Accepted for API compatibility; the shim's budget is fixed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim's budget is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new();
        f(&mut b);
        report(&self.name, &id.0, b.mean);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher::new();
        f(&mut b, input);
        report(&self.name, &id.0, b.mean);
        self
    }

    pub fn finish(self) {}
}

fn report(group: &str, id: &str, mean: Option<Duration>) {
    match mean {
        Some(mean) => println!("bench {group}/{id}: {mean:?}/iter"),
        None => println!("bench {group}/{id}: no measurement"),
    }
}

/// Top-level driver (subset of `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        report("criterion", id, b.mean);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn routine(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.measurement_time(Duration::from_secs(1)).sample_size(10);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::from_parameter(32), &32u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        g.finish();
    }

    criterion_group!(shim_benches, routine);

    #[test]
    fn group_api_runs() {
        shim_benches();
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).0, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").0, "x");
    }
}
