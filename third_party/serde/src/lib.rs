//! Offline stand-in for `serde`'s derive macros.
//!
//! The workspace only ever *derives* `Serialize`/`Deserialize` (to keep
//! config and report types wire-ready); nothing calls serialization at
//! runtime, and the build environment has no registry access. These
//! derives therefore expand to nothing, which keeps every
//! `#[derive(Serialize, Deserialize)]` in the tree compiling unchanged.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
