//! Offline stand-in for the parts of `rand` 0.8 the workspace uses:
//! [`rngs::StdRng`] (xoshiro256++ seeded via splitmix64), the [`Rng`] /
//! [`SeedableRng`] traits with `gen`, `gen_range`, `gen_bool`, and
//! [`seq::SliceRandom::shuffle`] / `choose`.
//!
//! Determinism matters more than statistical gloss here: every consumer
//! seeds via `seed_from_u64`, and tests pin those seeds, so this shim
//! keeps the seeding path bit-stable. It makes no attempt to match the
//! real `rand` stream for a given seed.

use std::ops::{Range, RangeInclusive};

pub mod dist;

/// Low-level source of randomness (subset of `rand_core::RngCore`).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from seeds (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods (subset of `rand::Rng`).
///
/// Blanket-implemented for every [`RngCore`], including unsized `&mut R`
/// receivers, so `fn f<R: Rng + ?Sized>(rng: &mut R)` call sites work.
pub trait Rng: RngCore {
    /// Sample a value of a type with a standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a half-open or inclusive range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from the "standard" distribution (subset of
/// `rand::distributions::Standard`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`] (subset of
/// `rand::distributions::uniform::SampleRange`).
///
/// Implemented as blanket impls over [`SampleUniform`] — mirroring real
/// rand's structure — so type inference can flow from the range's item
/// type to `gen_range`'s return type (unsuffixed float literals included).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types uniformly samplable between two bounds.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    fn sample_between<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_between(lo, hi, true, rng)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                _inclusive: bool,
                rng: &mut R,
            ) -> Self {
                lo + (hi - lo) * (f64::sample(rng) as $t)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Per-use generator seeded from process entropy (subset of
    /// `rand::rngs::ThreadRng`; not actually thread-local here).
    #[derive(Debug, Clone)]
    pub struct ThreadRng(StdRng);

    impl Default for ThreadRng {
        fn default() -> Self {
            use std::hash::{BuildHasher, Hasher};
            // RandomState carries per-process entropy; mix in a counter
            // so successive ThreadRngs differ within one process.
            use std::sync::atomic::{AtomicU64, Ordering};
            static COUNTER: AtomicU64 = AtomicU64::new(0);
            let mut hasher = std::collections::hash_map::RandomState::new().build_hasher();
            hasher.write_u64(COUNTER.fetch_add(1, Ordering::Relaxed));
            ThreadRng(StdRng::seed_from_u64(hasher.finish()))
        }
    }

    impl RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// A fresh [`rngs::ThreadRng`].
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng::default()
}

pub mod seq {
    use super::Rng;

    /// Slice helpers (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod prelude {
    pub use super::dist::{gumbel_argmax, sample_categorical, sample_gumbel};
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            let v: i32 = rng.gen_range(-3..5);
            assert!((-3..5).contains(&v));
            let u: usize = rng.gen_range(1..=3);
            assert!((1..=3).contains(&u));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..16).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<_>>());
    }
}
