//! Categorical and Gumbel sampling helpers.
//!
//! These back the samplers in `reason-approx` (ancestral circuit
//! sampling, proposal sampling) and the categorical draws in
//! `reason-pc`. They live in the shim rather than a consumer crate so
//! every sampler in the workspace draws categoricals the same way.
//!
//! **Stream-mismatch caveat:** like everything in this shim, these
//! helpers are deterministic per seed but do *not* reproduce real
//! `rand`'s (or `rand_distr`'s) value stream. `sample_categorical`
//! consumes exactly one `f64` draw and `sample_gumbel` exactly one —
//! real rand's `WeightedIndex`/`Gumbel` consume differently, so tests
//! must assert on distributional properties (frequencies, argmax
//! agreement), never on concrete sampled sequences.

use crate::{Rng, RngCore};

/// Draws an index proportionally to `weights` (unnormalized, linear
/// space) with a single uniform draw and a linear scan.
///
/// # Panics
///
/// Panics if `weights` is empty, contains a negative or non-finite
/// entry, or sums to zero.
pub fn sample_categorical<R: RngCore + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    assert!(!weights.is_empty(), "cannot sample from empty weights");
    assert!(
        weights.iter().all(|w| w.is_finite() && *w >= 0.0),
        "weights must be finite and non-negative"
    );
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "cannot sample from zero total weight");
    let mut u = rng.gen_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        if u < *w {
            return i;
        }
        u -= w;
    }
    // Floating-point slack: the scan can fall off the end when u ends up
    // within rounding error of `total`; the last positive-weight index is
    // the correct bucket.
    weights.iter().rposition(|w| *w > 0.0).expect("total > 0 implies a positive weight")
}

/// Draws one standard Gumbel(0, 1) variate: `-ln(-ln(u))` for uniform
/// `u`, with `u` nudged into the open interval so the result is finite.
pub fn sample_gumbel<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    let u: f64 = rng.gen::<f64>().clamp(1e-300, 1.0 - 1e-16);
    -(-u.ln()).ln()
}

/// The Gumbel-max trick: `argmax_i (log_weights[i] + G_i)` is a sample
/// from the categorical with the given log-weights. Entries of
/// `f64::NEG_INFINITY` (zero probability) are never selected.
///
/// # Panics
///
/// Panics if `log_weights` is empty or every entry is negative infinity.
pub fn gumbel_argmax<R: RngCore + ?Sized>(rng: &mut R, log_weights: &[f64]) -> usize {
    assert!(!log_weights.is_empty(), "cannot sample from empty log-weights");
    let mut best: Option<(usize, f64)> = None;
    for (i, &lw) in log_weights.iter().enumerate() {
        // One Gumbel draw per entry keeps the stream length a function of
        // the arity alone (important for seed-stable consumers).
        let g = sample_gumbel(rng);
        if lw == f64::NEG_INFINITY {
            continue;
        }
        let key = lw + g;
        if best.is_none_or(|(_, b)| key > b) {
            best = Some((i, key));
        }
    }
    best.expect("at least one finite log-weight").0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn categorical_is_deterministic_per_seed() {
        let w = [0.2, 0.5, 0.3];
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..64).map(|_| sample_categorical(&mut rng, &w)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..64).map(|_| sample_categorical(&mut rng, &w)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn categorical_frequencies_approach_weights() {
        let w = [1.0, 3.0, 6.0];
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0usize; 3];
        let n = 30_000;
        for _ in 0..n {
            counts[sample_categorical(&mut rng, &w)] += 1;
        }
        for (i, c) in counts.iter().enumerate() {
            let freq = *c as f64 / n as f64;
            let expect = w[i] / 10.0;
            assert!((freq - expect).abs() < 0.02, "bucket {i}: {freq} vs {expect}");
        }
    }

    #[test]
    fn categorical_skips_zero_weights() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            assert_eq!(sample_categorical(&mut rng, &[0.0, 1.0, 0.0]), 1);
        }
    }

    #[test]
    #[should_panic(expected = "zero total weight")]
    fn categorical_rejects_zero_total() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = sample_categorical(&mut rng, &[0.0, 0.0]);
    }

    #[test]
    fn gumbel_draws_are_finite_with_plausible_location() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| sample_gumbel(&mut rng)).sum::<f64>() / n as f64;
        // E[Gumbel(0,1)] = Euler–Mascheroni ≈ 0.5772.
        assert!((mean - 0.5772).abs() < 0.05, "sample mean {mean}");
    }

    #[test]
    fn gumbel_argmax_matches_categorical_distribution() {
        let w = [0.1, 0.6, 0.3];
        let lw: Vec<f64> = w.iter().map(|x: &f64| x.ln()).collect();
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 3];
        let n = 30_000;
        for _ in 0..n {
            counts[gumbel_argmax(&mut rng, &lw)] += 1;
        }
        for (i, c) in counts.iter().enumerate() {
            let freq = *c as f64 / n as f64;
            assert!((freq - w[i]).abs() < 0.02, "bucket {i}: {freq} vs {}", w[i]);
        }
    }

    #[test]
    fn gumbel_argmax_never_selects_impossible_entries() {
        let lw = [f64::NEG_INFINITY, 0.0, f64::NEG_INFINITY];
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            assert_eq!(gumbel_argmax(&mut rng, &lw), 1);
        }
    }
}
