//! Offline stand-in for `crossbeam::thread` scoped threads, layered on
//! `std::thread::scope` (stable since Rust 1.63).
//!
//! API differences preserved from crossbeam: the closure passed to
//! [`thread::scope`] receives a `&Scope` (so `scope.spawn(|_| ...)`
//! works), and `scope` returns a `Result`. Unlike crossbeam, a panicking
//! child propagates at the scope exit instead of surfacing as `Err` —
//! every call site immediately `.expect()`s the result, so the observable
//! behavior (test aborts with the panic payload) is the same.

pub mod thread {
    /// Handle for spawning threads tied to the scope's lifetime.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives a `&Scope` for
        /// nested spawns, mirroring crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Run `f` with a scope in which spawned threads are joined before
    /// `scope` returns.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_share_stack_state() {
        let counter = AtomicUsize::new(0);
        super::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            }
        })
        .expect("threads joined");
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn nested_spawn_through_scope_argument() {
        let counter = AtomicUsize::new(0);
        super::thread::scope(|scope| {
            scope.spawn(|inner| {
                inner.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            });
        })
        .expect("threads joined");
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }
}
