//! Offline stand-in for the two `crossbeam` facilities the workspace
//! uses: [`thread`] (scoped threads) and [`channel`] (MPMC channels).
//!
//! * [`thread`] layers crossbeam's scoped-thread API on
//!   `std::thread::scope` (stable since Rust 1.63). API differences
//!   preserved from crossbeam: the closure passed to [`thread::scope`]
//!   receives a `&Scope` (so `scope.spawn(|_| ...)` works), and `scope`
//!   returns a `Result`. Unlike crossbeam, a panicking child propagates
//!   at the scope exit instead of surfacing as `Err` — every call site
//!   immediately `.expect()`s the result, so the observable behavior
//!   (test aborts with the panic payload) is the same.
//! * [`channel`] implements the `unbounded()` multi-producer
//!   multi-consumer queue subset ([`channel::Sender`] /
//!   [`channel::Receiver`], both `Clone`) on a `Mutex<VecDeque>` +
//!   `Condvar` instead of crossbeam's lock-free list. Disconnect
//!   semantics match crossbeam: `recv` drains remaining messages after
//!   the last sender drops, then reports [`channel::RecvError`]; `send`
//!   into a receiver-less channel returns [`channel::SendError`]. This
//!   is the work-queue fabric of `reason_system::BatchExecutor`.

pub mod thread {
    /// Handle for spawning threads tied to the scope's lifetime.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives a `&Scope` for
        /// nested spawns, mirroring crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Run `f` with a scope in which spawned threads are joined before
    /// `scope` returns.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub mod channel {
    //! The `crossbeam::channel` subset: unbounded MPMC channels.

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        cv: Condvar,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone;
    /// carries the unsent message back, as crossbeam's does.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] once the channel is empty
    /// and every sender is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// The producing half; clone to add producers.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The consuming half; clone to add consumers (each message is
    /// delivered to exactly one receiver).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
            cv: Condvar::new(),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    impl<T> Sender<T> {
        /// Enqueues a message, failing only if no receiver remains.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.state.lock().unwrap();
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.queue.push_back(value);
            drop(state);
            self.shared.cv.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().senders += 1;
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                // Wake receivers parked in recv so they observe the
                // disconnect.
                self.shared.cv.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives; drains queued messages after
        /// the last sender disconnects, then reports [`RecvError`].
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.state.lock().unwrap();
            loop {
                if let Some(value) = state.queue.pop_front() {
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.cv.wait(state).unwrap();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().receivers += 1;
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.state.lock().unwrap().receivers -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_share_stack_state() {
        let counter = AtomicUsize::new(0);
        super::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            }
        })
        .expect("threads joined");
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn nested_spawn_through_scope_argument() {
        let counter = AtomicUsize::new(0);
        super::thread::scope(|scope| {
            scope.spawn(|inner| {
                inner.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            });
        })
        .expect("threads joined");
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn channel_fifo_single_consumer() {
        let (tx, rx) = super::channel::unbounded();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = std::iter::from_fn(|| rx.recv().ok()).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        assert_eq!(rx.recv(), Err(super::channel::RecvError));
    }

    #[test]
    fn channel_mpmc_delivers_each_message_once() {
        let (tx, rx) = super::channel::unbounded::<usize>();
        let sum = AtomicUsize::new(0);
        let count = AtomicUsize::new(0);
        super::thread::scope(|scope| {
            for _ in 0..3 {
                let rx = rx.clone();
                let (sum, count) = (&sum, &count);
                scope.spawn(move |_| {
                    while let Ok(v) = rx.recv() {
                        sum.fetch_add(v, Ordering::SeqCst);
                        count.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
            for _ in 0..2 {
                let tx = tx.clone();
                scope.spawn(move |_| {
                    for v in 1..=50 {
                        tx.send(v).unwrap();
                    }
                });
            }
            drop(tx);
        })
        .expect("threads joined");
        assert_eq!(count.load(Ordering::SeqCst), 100);
        assert_eq!(sum.load(Ordering::SeqCst), 2 * (1..=50).sum::<usize>());
    }

    #[test]
    fn channel_send_fails_without_receivers() {
        let (tx, rx) = super::channel::unbounded();
        drop(rx);
        assert_eq!(tx.send(7), Err(super::channel::SendError(7)));
    }
}
