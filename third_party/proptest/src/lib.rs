//! Offline stand-in for the slice of `proptest` the workspace uses:
//! the [`proptest!`] macro, [`Strategy`] with `prop_map`, range and
//! tuple strategies, `any::<T>()`, `prop::collection::vec`,
//! [`ProptestConfig`], and the `prop_assert*` macros.
//!
//! Semantics: each property runs `cases` times with a **deterministic
//! per-case seed** derived from the test body's iteration index. There
//! is no shrinking; on failure the panic message carries the case index
//! and seed so the failure can be replayed exactly (see
//! [`Strategy::generate`] with [`TestRng::from_seed`]) and pinned as a
//! plain `#[test]` regression.
//!
//! Case counts resolve in priority order: the `PROPTEST_CASES`
//! environment variable, then `#![proptest_config(...)]`, then the
//! default of 256.

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Deterministic per-case source of randomness for strategies.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }

    /// The seed for case `case` of a property run.
    pub fn case_seed(case: u32) -> u64 {
        0x5EA5_0DE5_1234_ABCDu64.wrapping_add((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    fn gen_usize(&mut self, lo: usize, hi_inclusive: usize) -> usize {
        self.0.gen_range(lo..=hi_inclusive)
    }
}

/// Error type returned by failed `prop_assert*` macros.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runner configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// Cases to actually run: `PROPTEST_CASES` env var wins over config.
    pub fn resolved_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(self.cases)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of values (subset of `proptest::strategy::Strategy`).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { strategy: self, map: f }
    }

    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { strategy: self, pred, whence }
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    strategy: S,
    map: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.strategy.generate(rng))
    }
}

/// Output of [`Strategy::prop_filter`]. Rejection-samples with a retry
/// cap; panics if the predicate is unsatisfiable in practice.
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    strategy: S,
    pred: F,
    whence: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let candidate = self.strategy.generate(rng);
            if (self.pred)(&candidate) {
                return candidate;
            }
        }
        panic!("prop_filter rejected 1000 candidates: {}", self.whence);
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical strategy (subset of `proptest::arbitrary`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Strategy form of [`Arbitrary`]; see [`any`].
pub struct Any<A>(PhantomData<A>);

impl<A> fmt::Debug for Any<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("any")
    }
}

impl<A> Clone for Any<A> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                self.start + (self.end - self.start) * (unit as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                lo + (hi - lo) * (unit as $t)
            }
        }
    )*};
}
impl_strategy_float_range!(f32, f64);

macro_rules! impl_strategy_tuple {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_strategy_tuple!(A);
impl_strategy_tuple!(A, B);
impl_strategy_tuple!(A, B, C);
impl_strategy_tuple!(A, B, C, D);
impl_strategy_tuple!(A, B, C, D, E);
impl_strategy_tuple!(A, B, C, D, E, F);

/// The `prop::` namespace (`prop::collection::vec` et al.).
pub mod prop {
    pub mod collection {
        use super::super::{SizeRange, Strategy, TestRng};

        /// Strategy for `Vec`s with element strategy `S` and a length
        /// drawn from `size`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = rng.gen_usize(self.size.lo, self.size.hi_inclusive);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Inclusive length bounds for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    pub lo: usize,
    pub hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi_inclusive: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use super::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, Arbitrary, Just,
        ProptestConfig, SizeRange, Strategy, TestCaseError, TestRng,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left != *right, "assertion failed: `{:?}` != `{:?}`", left, right);
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.resolved_cases() {
                let seed = $crate::TestRng::case_seed(case);
                let mut rng = $crate::TestRng::from_seed(seed);
                $(let $arg = $crate::Strategy::generate(&$strategy, &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(err) = outcome {
                    panic!(
                        "property `{}` failed at case {} (replay seed: {:#x}): {}",
                        stringify!($name),
                        case,
                        seed,
                        err
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..9, y in -2i32..=2) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2..=2).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_size(v in prop::collection::vec(any::<bool>(), 2..=5)) {
            prop_assert!((2..=5).contains(&v.len()));
        }

        #[test]
        fn prop_map_applies(z in (0u32..10).prop_map(|x| x * 2)) {
            prop_assert!(z % 2 == 0);
            prop_assert!(z < 20);
        }

        #[test]
        fn tuples_generate_componentwise(pair in (1usize..4, 0.0f64..1.0)) {
            prop_assert!((1..4).contains(&pair.0));
            prop_assert!((0.0..1.0).contains(&pair.1));
        }

        #[test]
        fn early_ok_return_is_supported(flag in any::<bool>()) {
            if flag {
                return Ok(());
            }
            prop_assert!(!flag);
        }
    }

    #[test]
    fn case_seeds_are_deterministic() {
        assert_eq!(TestRng::case_seed(5), TestRng::case_seed(5));
        assert_ne!(TestRng::case_seed(5), TestRng::case_seed(6));
        let mut a = TestRng::from_seed(TestRng::case_seed(3));
        let mut b = TestRng::from_seed(TestRng::case_seed(3));
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    #[should_panic(expected = "replay seed")]
    fn failures_report_case_and_seed() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 1000, "forced failure for {x}");
            }
        }
        always_fails();
    }
}
