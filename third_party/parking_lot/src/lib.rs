//! Offline stand-in for `parking_lot`'s `Mutex` and `Condvar`.
//!
//! Matches the two parking_lot ergonomics the workspace relies on:
//! `lock()` returns the guard directly (no poisoning `Result`), and
//! `Condvar::wait` takes `&mut MutexGuard` instead of consuming it. A
//! poisoned std mutex (panicking holder) just yields the inner guard,
//! mirroring parking_lot's no-poisoning semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can move the std guard out and back.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.0.lock().unwrap_or_else(sync::PoisonError::into_inner);
        MutexGuard { inner: Some(guard) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: Some(guard) }),
            Err(sync::TryLockError::Poisoned(p)) => {
                Some(MutexGuard { inner: Some(p.into_inner()) })
            }
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside Condvar::wait")
    }
}

#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present before wait");
        let std_guard = self.0.wait(std_guard).unwrap_or_else(sync::PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn condvar_handoff_across_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let signaller = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            *signaller.0.lock() = true;
            signaller.1.notify_all();
        });
        let mut guard = pair.0.lock();
        while !*guard {
            pair.1.wait(&mut guard);
        }
        t.join().unwrap();
    }
}
