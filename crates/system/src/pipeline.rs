//! The two-level execution pipeline (paper Sec. VI-C, Fig. 9 top).
//!
//! "The GPU-REASON pipeline overlaps the execution of symbolic kernels on
//! REASON for step N with neural kernels on GPU for step N+1, effectively
//! hiding the latency of one stage." This module computes the two-stage
//! flow-shop schedule for a task sequence and reports the overlap gain
//! against serial execution; it is the model behind the end-to-end
//! runtimes of Fig. 11.

use reason_telemetry::MetricsRegistry;
use serde::{Deserialize, Serialize};

/// Per-task stage costs in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageCost {
    /// GPU neural stage.
    pub neural_s: f64,
    /// REASON (or baseline device) symbolic stage.
    pub symbolic_s: f64,
}

/// Result of scheduling a task sequence — or, when produced by
/// [`reason_system::BatchExecutor`](crate::BatchExecutor), of *measuring*
/// one.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineReport {
    /// Makespan with two-stage overlap, in seconds.
    pub pipelined_s: f64,
    /// Makespan with serial stage execution, in seconds (the sum of every
    /// task's `neural_s + symbolic_s`).
    pub serial_s: f64,
    /// Tasks scheduled.
    pub tasks: usize,
}

impl PipelineReport {
    /// Fraction of the serial makespan hidden by the overlap:
    /// `1 - pipelined_s / serial_s`. Dimensionless, **not** a percentage
    /// and **not** a speedup factor (a gain of `0.5` means the pipelined
    /// schedule takes half the serial time, i.e. a 2x speedup).
    ///
    /// For *modeled* schedules ([`TwoLevelPipeline::schedule`]) the value
    /// is always in `[0, 1)`: the flow shop can never take longer than
    /// serial execution, and the first task's stage-1 latency is never
    /// hidden. For *measured* reports
    /// ([`BatchReport::measured`](crate::BatchReport)) the value can dip
    /// slightly below zero, because the wall clock includes thread
    /// scheduling overhead that the per-stage sums exclude.
    ///
    /// An empty schedule (`serial_s == 0`) reports a gain of `0`.
    pub fn overlap_gain(&self) -> f64 {
        if self.serial_s == 0.0 {
            0.0
        } else {
            1.0 - self.pipelined_s / self.serial_s
        }
    }

    /// Publishes the report into a metrics registry, labeled by
    /// `schedule` (e.g. `"measured"`, `"predicted"`, `"modeled"`).
    /// Units are explicit in the metric names:
    ///
    /// * `pipeline_makespan_seconds{schedule, mode=pipelined|serial}`
    ///   — gauge, seconds;
    /// * `pipeline_overlap_gain{schedule}` — gauge, dimensionless
    ///   fraction of the serial makespan hidden by the overlap
    ///   (see [`overlap_gain`](Self::overlap_gain): `0.5` means a 2x
    ///   speedup, **not** 50 "percent faster");
    /// * `pipeline_tasks{schedule}` — gauge, task count.
    ///
    /// This is the structured replacement for printing the report: any
    /// sink holding the registry can export the same numbers through
    /// [`reason_telemetry::prometheus_text`] or compare schedules by
    /// label.
    pub fn record_into(&self, registry: &MetricsRegistry, schedule: &str) {
        let labels = [("schedule", schedule)];
        registry
            .gauge("pipeline_makespan_seconds", &[("schedule", schedule), ("mode", "pipelined")])
            .set(self.pipelined_s);
        registry
            .gauge("pipeline_makespan_seconds", &[("schedule", schedule), ("mode", "serial")])
            .set(self.serial_s);
        registry.gauge("pipeline_overlap_gain", &labels).set(self.overlap_gain());
        registry.gauge("pipeline_tasks", &labels).set(self.tasks as f64);
    }
}

/// The two-level pipeline scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct TwoLevelPipeline {
    /// Disable the overlap (the serial baseline used in ablations).
    pub disable_overlap: bool,
}

impl TwoLevelPipeline {
    /// A pipeline with overlap enabled.
    pub fn new() -> Self {
        TwoLevelPipeline::default()
    }

    /// Schedules a task sequence.
    pub fn schedule(&self, tasks: &[StageCost]) -> PipelineReport {
        let serial: f64 = tasks.iter().map(|t| t.neural_s + t.symbolic_s).sum();
        if self.disable_overlap {
            return PipelineReport { pipelined_s: serial, serial_s: serial, tasks: tasks.len() };
        }
        // Two-stage flow shop: stage 1 (GPU) streams tasks back to back;
        // stage 2 (REASON) starts a task when both its neural result and
        // the device are free.
        let mut neural_done = 0.0f64;
        let mut symbolic_done = 0.0f64;
        for t in tasks {
            neural_done += t.neural_s;
            symbolic_done = neural_done.max(symbolic_done) + t.symbolic_s;
        }
        PipelineReport { pipelined_s: symbolic_done, serial_s: serial, tasks: tasks.len() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_stages_hide_half_the_work() {
        let pipe = TwoLevelPipeline::new();
        let tasks = vec![StageCost { neural_s: 1.0, symbolic_s: 1.0 }; 100];
        let report = pipe.schedule(&tasks);
        assert_eq!(report.serial_s, 200.0);
        // Steady state: one stage is fully hidden; makespan ≈ 101.
        assert!((report.pipelined_s - 101.0).abs() < 1e-9);
        assert!(report.overlap_gain() > 0.49);
    }

    #[test]
    fn dominant_stage_bounds_the_makespan() {
        let pipe = TwoLevelPipeline::new();
        let tasks = vec![StageCost { neural_s: 0.1, symbolic_s: 1.0 }; 50];
        let report = pipe.schedule(&tasks);
        // Symbolic dominates: makespan ≈ 0.1 + 50 * 1.0.
        assert!((report.pipelined_s - 50.1).abs() < 1e-9);
    }

    #[test]
    fn disabled_overlap_is_serial() {
        let pipe = TwoLevelPipeline { disable_overlap: true };
        let tasks = vec![StageCost { neural_s: 1.0, symbolic_s: 2.0 }; 10];
        let report = pipe.schedule(&tasks);
        assert_eq!(report.pipelined_s, report.serial_s);
        assert_eq!(report.overlap_gain(), 0.0);
    }

    #[test]
    fn empty_sequence() {
        let report = TwoLevelPipeline::new().schedule(&[]);
        assert_eq!(report.pipelined_s, 0.0);
        assert_eq!(report.tasks, 0);
    }

    #[test]
    fn record_into_publishes_gains_and_makespans() {
        use reason_telemetry::MetricValue;
        let report =
            TwoLevelPipeline::new().schedule(&[StageCost { neural_s: 1.0, symbolic_s: 1.0 }; 4]);
        let registry = MetricsRegistry::new();
        report.record_into(&registry, "modeled");
        let get = |name: &str, labels: &[(&str, &str)]| -> f64 {
            let want: Vec<(String, String)> = {
                let mut v: Vec<(String, String)> =
                    labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
                v.sort();
                v
            };
            registry
                .snapshot()
                .iter()
                .find(|m| m.name == name && m.labels == want)
                .map(|m| match &m.value {
                    MetricValue::Gauge(g) => *g,
                    other => panic!("expected gauge, got {other:?}"),
                })
                .unwrap_or_else(|| panic!("missing {name}{labels:?}"))
        };
        let pipelined =
            get("pipeline_makespan_seconds", &[("schedule", "modeled"), ("mode", "pipelined")]);
        let serial =
            get("pipeline_makespan_seconds", &[("schedule", "modeled"), ("mode", "serial")]);
        assert_eq!(pipelined, report.pipelined_s);
        assert_eq!(serial, report.serial_s);
        assert_eq!(get("pipeline_overlap_gain", &[("schedule", "modeled")]), report.overlap_gain());
        assert_eq!(get("pipeline_tasks", &[("schedule", "modeled")]), 4.0);
    }

    #[test]
    fn pipelining_never_hurts() {
        let pipe = TwoLevelPipeline::new();
        let tasks: Vec<StageCost> = (0..20)
            .map(|i| StageCost {
                neural_s: (i % 5) as f64 * 0.2 + 0.1,
                symbolic_s: (i % 3) as f64 * 0.4 + 0.2,
            })
            .collect();
        let report = pipe.schedule(&tasks);
        assert!(report.pipelined_s <= report.serial_s + 1e-12);
    }
}
