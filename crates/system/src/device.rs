//! The REASON programming model (paper Sec. VI-B, Listing 1).
//!
//! ```c
//! void REASON_execute(int batch_id, int batch_size,
//!                     const void* neural_buffer,
//!                     const void* reasoning_mode,
//!                     void* symbolic_buffer);
//! int REASON_check_status(int batch_id, bool blocking);
//! ```
//!
//! [`ReasonDevice`] is the Rust analogue: `execute` consumes the batch's
//! neural results from [`SharedMemory`], dispatches to the matching
//! cycle-level engine (`reason-arch`), publishes symbolic results, and
//! accounts virtual device time; `check_status` reports `Idle`/`Executing`
//! against that virtual clock, with an optional blocking wait.

use reason_arch::{ArchConfig, SymbolicEngine, SymbolicReport, VliwExecutor};
use reason_compiler::CompiledKernel;
use reason_sat::{Cnf, Solution};

use crate::sync::SharedMemory;

/// A batch identifier (the paper's `batch_id`).
pub type BatchId = u64;

/// Device status returned by [`ReasonDevice::check_status`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceStatus {
    /// No work in flight at the queried batch.
    Idle,
    /// The batch is still executing on the device's virtual clock.
    Executing,
}

/// Reasoning mode selector (the paper's `reasoning_mode` argument).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReasoningMode {
    /// SAT-style symbolic deduction on the BCP/watched-literal engine.
    Symbolic,
    /// DAG execution (probabilistic circuits, HMM unrolls, SpMSpM blocks)
    /// on the VLIW tree pipeline.
    Probabilistic,
}

/// What one `execute` call produced.
#[derive(Debug, Clone)]
pub enum ExecuteOutcome {
    /// Symbolic run: the SAT answer plus the hardware report.
    Symbolic {
        /// The solver answer.
        solution: Solution,
        /// Timing/energy of the run.
        report: SymbolicReport,
    },
    /// DAG run: the kernel output value plus the hardware report.
    Dag {
        /// The output value.
        output: f64,
        /// Timing/energy of the run.
        report: reason_arch::ExecutionReport,
    },
}

impl ExecuteOutcome {
    /// Device cycles consumed.
    pub fn cycles(&self) -> u64 {
        match self {
            ExecuteOutcome::Symbolic { report, .. } => report.cycles,
            ExecuteOutcome::Dag { report, .. } => report.cycles,
        }
    }

    /// Energy consumed in joules.
    pub fn energy_j(&self) -> f64 {
        match self {
            ExecuteOutcome::Symbolic { report, .. } => report.energy.total_j(),
            ExecuteOutcome::Dag { report, .. } => report.energy.total_j(),
        }
    }
}

/// The co-processor device model.
#[derive(Debug)]
pub struct ReasonDevice {
    config: ArchConfig,
    shared: SharedMemory,
    /// Virtual device clock (cycles).
    now: u64,
    /// Completion time per batch.
    completes_at: std::collections::HashMap<BatchId, u64>,
}

impl ReasonDevice {
    /// A device with the given architecture, attached to a shared-memory
    /// region.
    pub fn new(config: ArchConfig, shared: SharedMemory) -> Self {
        config.validate();
        ReasonDevice { config, shared, now: 0, completes_at: std::collections::HashMap::new() }
    }

    /// The architecture configuration.
    pub fn config(&self) -> &ArchConfig {
        &self.config
    }

    /// The device's virtual clock, in cycles.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// `REASON_execute` for DAG-mode kernels: reads the batch's neural
    /// buffer (kernel inputs) from shared memory, runs the compiled
    /// kernel, publishes the result, and advances the device clock.
    ///
    /// # Panics
    ///
    /// Panics if the batch's neural buffer was not published.
    pub fn execute_dag(&mut self, batch: BatchId, kernel: &CompiledKernel) -> ExecuteOutcome {
        let inputs =
            self.shared.take_neural(batch).expect("neural_ready must be set before REASON_execute");
        let program = kernel.program(&inputs);
        let report = VliwExecutor::new(self.config).execute(&program);
        self.shared.publish_symbolic(batch, vec![report.output]);
        self.now += report.cycles;
        self.completes_at.insert(batch, self.now);
        ExecuteOutcome::Dag { output: report.output, report }
    }

    /// `REASON_execute` for symbolic (SAT) work: the neural buffer is
    /// consumed as provenance (LLM-proposed facts), the formula solved on
    /// the BCP engine, and a 0/1 answer published.
    pub fn execute_sat(&mut self, batch: BatchId, cnf: &Cnf) -> ExecuteOutcome {
        let _provenance = self.shared.take_neural(batch);
        let (solution, report) = SymbolicEngine::new(self.config).solve(cnf);
        self.shared.publish_symbolic(batch, vec![f64::from(u8::from(solution.is_sat()))]);
        self.now += report.cycles;
        self.completes_at.insert(batch, self.now);
        ExecuteOutcome::Symbolic { solution, report }
    }

    /// `REASON_check_status(batch_id, blocking)`: compares the batch's
    /// completion time against the supplied host clock. With
    /// `blocking == true` the returned status is always `Idle` and the
    /// second component is the host's wait, in cycles.
    pub fn check_status(
        &self,
        batch: BatchId,
        host_cycles: u64,
        blocking: bool,
    ) -> (DeviceStatus, u64) {
        match self.completes_at.get(&batch) {
            None => (DeviceStatus::Idle, 0),
            Some(&done) => {
                if host_cycles >= done {
                    (DeviceStatus::Idle, 0)
                } else if blocking {
                    (DeviceStatus::Idle, done - host_cycles)
                } else {
                    (DeviceStatus::Executing, 0)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reason_compiler::ReasonCompiler;
    use reason_core::{DagBuilder, DagOp, NodeKind};
    use reason_sat::gen::random_ksat;

    fn device() -> (ReasonDevice, SharedMemory) {
        let shm = SharedMemory::new();
        (ReasonDevice::new(ArchConfig::paper(), shm.clone()), shm)
    }

    #[test]
    fn dag_execute_round_trip() {
        let (mut dev, shm) = device();
        let mut b = DagBuilder::new();
        let x = b.input(0);
        let y = b.input(1);
        let m = b.node(DagOp::Mul, vec![x, y], NodeKind::Generic);
        let dag = b.build(m).unwrap();
        let kernel = ReasonCompiler::new(*dev.config()).compile(&dag).unwrap();

        shm.publish_neural(3, vec![6.0, 7.0]);
        let outcome = dev.execute_dag(3, &kernel);
        assert_eq!(shm.wait_symbolic(3), vec![42.0]);
        assert!(outcome.cycles() > 0);
        assert!(outcome.energy_j() > 0.0);
    }

    #[test]
    fn sat_execute_publishes_answer() {
        let (mut dev, shm) = device();
        let cnf = random_ksat(10, 30, 3, 1);
        shm.publish_neural(0, vec![]);
        let outcome = dev.execute_sat(0, &cnf);
        let published = shm.wait_symbolic(0);
        match outcome {
            ExecuteOutcome::Symbolic { solution, .. } => {
                assert_eq!(published[0] == 1.0, solution.is_sat());
            }
            other => panic!("expected symbolic outcome, got {other:?}"),
        }
    }

    #[test]
    fn check_status_models_the_virtual_clock() {
        let (mut dev, shm) = device();
        let cnf = random_ksat(8, 24, 3, 2);
        shm.publish_neural(1, vec![]);
        let outcome = dev.execute_sat(1, &cnf);
        let done = outcome.cycles();
        // A host clock before completion sees Executing (non-blocking).
        assert_eq!(dev.check_status(1, 0, false).0, DeviceStatus::Executing);
        // Blocking returns Idle with the residual wait.
        let (status, wait) = dev.check_status(1, 0, true);
        assert_eq!(status, DeviceStatus::Idle);
        assert_eq!(wait, done);
        // After completion: Idle, no wait.
        assert_eq!(dev.check_status(1, done, false), (DeviceStatus::Idle, 0));
        // Unknown batches are idle.
        assert_eq!(dev.check_status(99, 0, false), (DeviceStatus::Idle, 0));
    }

    #[test]
    #[should_panic(expected = "neural_ready")]
    fn execute_without_neural_ready_panics() {
        let (mut dev, _shm) = device();
        let mut b = DagBuilder::new();
        let x = b.input(0);
        let dag = b.build(x).unwrap();
        let kernel = ReasonCompiler::new(*dev.config()).compile(&dag).unwrap();
        let _ = dev.execute_dag(0, &kernel);
    }
}
