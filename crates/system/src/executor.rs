//! The threaded batch executor (paper Sec. VI-C, made real).
//!
//! [`crate::pipeline::TwoLevelPipeline`] *models* the two-level pipeline
//! as a flow-shop schedule over per-task stage costs. This module
//! *executes* it: [`BatchExecutor`] runs a queue of neuro-symbolic tasks
//! on two thread pools — a neural pool computing the GPU-side stage
//! (`reason-neural` MLP forward passes or LLM-proxy costs) and a symbolic
//! pool dispatching to `reason-sat` cube-and-conquer or `reason-pc`
//! circuit inference — with genuine stage overlap: while the symbolic
//! pool conquers task `N`, the neural pool is already producing task
//! `N+1`'s results ("Multiple parallelable CDCLs", paper Fig. 9).
//!
//! Data moves between the pools through the paper's shared-memory flag
//! protocol ([`crate::sync::SharedMemory`], Sec. VI-B): a neural worker
//! publishes the batch's buffer and raises `neural_ready`; the dispatch
//! queue (a `crossbeam` channel) hands the batch id to a symbolic worker,
//! which consumes the buffer and runs the reasoning kernel.
//!
//! The executor measures wall-clock per stage and reports a
//! [`PipelineReport`]-compatible measurement, so the cost model's
//! predicted makespan can be validated against real execution
//! ([`BatchReport::predicted`] vs [`BatchReport::measured`]).
//!
//! ```
//! use reason_system::{BatchExecutor, ExecutorConfig};
//!
//! let tasks = reason_system::executor::demo_batch(4, 0);
//! // Serial reference: both stages inline on the caller thread.
//! let serial = BatchExecutor::new(ExecutorConfig::sequential()).run(&tasks);
//! // Overlapped execution with two symbolic workers.
//! let threaded = BatchExecutor::new(ExecutorConfig::overlapped(2)).run(&tasks);
//! // Threading changes the schedule, never the answers.
//! assert!(threaded.agrees_with(&serial));
//! assert_eq!(threaded.measured.tasks, 4);
//! ```

use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel;
use crossbeam::thread;
use parking_lot::Mutex;
use reason_approx::{ApproxConfig, ApproxEngine};
use reason_neural::{LlmProxy, Matrix, Mlp, MlpBuilder};
use reason_pc::{
    random_mixture_circuit, BatchBuffer, Circuit, CompiledWmc, Dnnf, DnnfBatch, EvalBuffer,
    Evidence, FormulaFingerprint, StructureConfig, WmcWeights,
};
use reason_sat::gen::random_ksat;
use reason_sat::{Cnf, CubeAndConquer, CubeConfig, Solution};
use reason_telemetry::Telemetry;

use crate::pipeline::{PipelineReport, StageCost, TwoLevelPipeline};
use crate::sync::SharedMemory;

/// The GPU-side (stage 1) work of one task.
#[derive(Debug, Clone)]
pub enum NeuralStage {
    /// A real MLP forward pass; the flattened output matrix becomes the
    /// neural buffer handed to the symbolic stage.
    Mlp {
        /// The network.
        mlp: Mlp,
        /// The input batch (rows = samples).
        input: Matrix,
    },
    /// An LLM cost-model evaluation on the companion GPU hosting the
    /// neural stage; the buffer is the modeled latency in seconds.
    Proxy {
        /// The model proxy.
        proxy: LlmProxy,
        /// Prompt tokens processed.
        prompt_tokens: u64,
        /// Output tokens generated.
        output_tokens: u64,
        /// Peak compute of the hosting GPU, in FLOP/s (e.g. `38.7e12`
        /// for the A6000-class host used across `reason-bench`).
        flops_per_sec: f64,
        /// Memory bandwidth of the hosting GPU, in bytes/s (e.g.
        /// `768e9` for the A6000 class).
        bytes_per_sec: f64,
    },
    /// A synthetic stage of known duration (sleeps), used to calibrate
    /// the executor against the cost model under controlled stage costs.
    Synthetic {
        /// How long the stage takes.
        duration: Duration,
    },
}

/// The REASON-side (stage 2) work of one task.
#[derive(Debug, Clone)]
pub enum SymbolicStage {
    /// SAT deduction via lookahead cube-and-conquer; `config.workers`
    /// adds intra-task parallelism on top of the executor's inter-task
    /// overlap (deterministic either way — see
    /// [`reason_sat::CubeAndConquer::solve`]).
    Sat {
        /// The formula.
        cnf: Cnf,
        /// Cube-and-conquer parameters.
        config: CubeConfig,
    },
    /// Probabilistic-circuit marginal inference: the log-probability of
    /// the evidence.
    Pc {
        /// The circuit.
        circuit: Circuit,
        /// The (partial) evidence to marginalize over.
        evidence: Evidence,
    },
    /// Approximate weighted model counting on the `reason-approx`
    /// engine: anytime-bounded WMC where exact compilation would not
    /// fit the latency budget. Seeded, so verdicts stay bit-identical
    /// across executor configurations.
    Approx {
        /// The formula.
        cnf: Cnf,
        /// Per-variable Bernoulli marginals, `probs[v] = p(X_v = 1)`.
        probs: Vec<f64>,
        /// Estimator configuration (method, budget, seed).
        config: ApproxConfig,
    },
    /// Exact weighted model counting through the top-down
    /// component-caching compiler ([`reason_pc::CompiledWmc`]): the
    /// fast path that makes exact WMC a real executor lane instead of
    /// an offline oracle. The verdict is a degenerate bracket
    /// (`lower == estimate == upper`), directly comparable to
    /// [`SymbolicStage::Approx`] answers on the same formula.
    ExactWmc {
        /// The formula.
        cnf: Cnf,
        /// Per-variable Bernoulli marginals, `probs[v] = p(X_v = 1)`.
        probs: Vec<f64>,
    },
    /// A query served from a *shared* compiled knowledge base: the
    /// oracle lives behind an `Arc`, so one compilation answers queries
    /// on every symbolic worker simultaneously (each worker reuses its
    /// own [`EvalBuffer`] through the oracle's `&self` paths). This is
    /// the lane `reason-serve` routes exact queries through.
    Serve {
        /// The shared compiled-WMC oracle.
        oracle: Arc<CompiledWmc>,
        /// The query to answer.
        query: ServeQuery,
    },
    /// A whole batch of queries against one shared compiled knowledge
    /// base, answered through the batched d-DNNF path: one
    /// [`Dnnf::wmc_batch`] traversal covers every probability-flavored
    /// lane, marginals share a traversal per queried variable, and MPE
    /// lanes share one max-product pass. Per-query answers are
    /// bit-identical to what [`SymbolicStage::Serve`] tasks would
    /// report one by one — batching changes the schedule, never the
    /// verdicts. This is the lane `reason-serve` routes a batch's
    /// exact queries through.
    ServeBatch {
        /// The flat evaluation arena of the compiled knowledge base.
        arena: Arc<Dnnf>,
        /// The partition function `Pr[φ]` (the compiled oracle's cached
        /// `wmc()`), shared by every posterior lane in the batch.
        z: f64,
        /// The queries, answered in order into [`Verdict::Batch`].
        queries: Vec<ServeQuery>,
    },
    /// A synthetic stage of known duration (sleeps).
    Synthetic {
        /// How long the stage takes.
        duration: Duration,
    },
}

/// What a [`SymbolicStage::Serve`] task asks of its shared oracle.
#[derive(Debug, Clone)]
pub enum ServeQuery {
    /// The weighted model count `Pr[φ]` (already cached in the oracle).
    Wmc,
    /// `Pr[φ ∧ e]` for partial evidence `e`.
    Probability(Evidence),
    /// `Pr[e | φ]`; reported as 0 for massless formulas.
    Posterior(Evidence),
    /// The marginal distribution of one variable given the evidence.
    Marginal(Evidence, usize),
    /// Most probable explanation completing the evidence.
    Mpe(Evidence),
}

/// One unit of work for the executor: a named neural/symbolic stage pair.
#[derive(Debug, Clone)]
pub struct BatchTask {
    /// Task label, carried into [`TaskResult`].
    pub name: String,
    /// Stage 1 (GPU pool).
    pub neural: NeuralStage,
    /// Stage 2 (symbolic pool).
    pub symbolic: SymbolicStage,
    /// Answer-by budget. Deadlined tasks are *dispatched*
    /// earliest-deadline-first ahead of deadline-free ones (see
    /// [`edf_order`]); results still come back in submission order and
    /// verdicts are unaffected — the deadline shapes the schedule only.
    pub deadline: Option<Duration>,
}

impl BatchTask {
    /// The same task carrying a dispatch deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// The dispatch order the executor feeds its neural pool: tasks with
/// deadlines first, earliest deadline first (ties by submission index),
/// then deadline-free tasks in submission order. A batch without
/// deadlines dispatches exactly in submission order, so the reorder is
/// free for deadline-oblivious callers. `reason-serve`'s cluster relies
/// on this to drain each shard's admitted queue EDF: the queries
/// closest to their deadline clear the pipeline first, while results —
/// written into per-index slots — stay in submission order and the
/// [`BatchReport::agrees_with`] determinism contract is untouched.
pub fn edf_order(tasks: &[BatchTask]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..tasks.len()).collect();
    order.sort_by_key(|&i| (tasks[i].deadline.unwrap_or(Duration::MAX), i));
    order
}

/// The answer a task's symbolic stage produced. Stage computations are
/// deterministic, so verdicts compare bit-exactly across executor
/// configurations.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// SAT outcome (verdict plus model, if satisfiable).
    Sat(Solution),
    /// Log-probability of the evidence under the circuit.
    LogMarginal(f64),
    /// Approximate weighted model count with its anytime bracket.
    Wmc {
        /// Point estimate of the weighted model count.
        estimate: f64,
        /// Lower confidence bound.
        lower: f64,
        /// Upper confidence bound.
        upper: f64,
    },
    /// A marginal distribution (from a [`ServeQuery::Marginal`]).
    Distribution(Vec<f64>),
    /// A most-probable-explanation assignment (from a
    /// [`ServeQuery::Mpe`]); empty with `-inf` log-probability for
    /// massless formulas.
    Assignment {
        /// The maximizing complete assignment.
        assignment: Vec<usize>,
        /// Its max-product log-probability.
        log_prob: f64,
    },
    /// Per-query verdicts of a [`SymbolicStage::ServeBatch`] task, in
    /// query order; each element is what the corresponding single-query
    /// [`SymbolicStage::Serve`] task would have reported.
    Batch(Vec<Verdict>),
    /// The task's worker panicked. The panic is contained to this slot:
    /// the lane keeps draining and every other task in the batch still
    /// reports its real verdict.
    Failed {
        /// The panic payload, when it carried a message.
        reason: String,
    },
    /// A synthetic stage completed.
    Done,
}

/// Per-task execution record.
#[derive(Debug, Clone)]
pub struct TaskResult {
    /// The task's label.
    pub name: String,
    /// The symbolic answer.
    pub verdict: Verdict,
    /// The neural buffer that crossed shared memory.
    pub neural_output: Vec<f64>,
    /// Measured neural-stage duration in seconds.
    pub neural_s: f64,
    /// Measured symbolic-stage duration in seconds.
    pub symbolic_s: f64,
}

/// Worker-pool shape of a [`BatchExecutor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutorConfig {
    /// Threads in the neural (stage 1) pool.
    pub neural_workers: usize,
    /// Threads in the symbolic (stage 2) pool.
    pub symbolic_workers: usize,
    /// `false` runs both stages inline on the caller thread — the serial
    /// baseline the paper ablates against (no overlap, no pools).
    pub overlap: bool,
}

impl ExecutorConfig {
    /// The serial baseline: no threads, no overlap.
    pub fn sequential() -> Self {
        ExecutorConfig { neural_workers: 1, symbolic_workers: 1, overlap: false }
    }

    /// The paper's two-level pipeline (one device per stage), widened to
    /// `symbolic_workers` parallel symbolic lanes.
    pub fn overlapped(symbolic_workers: usize) -> Self {
        ExecutorConfig {
            neural_workers: 1,
            symbolic_workers: symbolic_workers.max(1),
            overlap: true,
        }
    }
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig::overlapped(1)
    }
}

/// Result of one [`BatchExecutor::run`].
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Per-task records, in submission order (independent of completion
    /// order).
    pub results: Vec<TaskResult>,
    /// The measured schedule: `pipelined_s` is the observed wall-clock
    /// makespan, `serial_s` the sum of measured stage durations. Unlike a
    /// modeled [`PipelineReport`], the measured `overlap_gain` can dip
    /// slightly below zero in serial mode (scheduling overhead is in the
    /// wall clock but not in the stage sums).
    pub measured: PipelineReport,
}

impl BatchReport {
    /// The measured per-task stage costs, in submission order.
    pub fn stage_costs(&self) -> Vec<StageCost> {
        self.results
            .iter()
            .map(|r| StageCost { neural_s: r.neural_s, symbolic_s: r.symbolic_s })
            .collect()
    }

    /// What the flow-shop cost model predicts for the *measured* stage
    /// costs. With one symbolic lane the prediction is a lower bound on
    /// the measured makespan (the model has no scheduling overhead);
    /// extra symbolic workers can beat it, since the model assumes a
    /// single symbolic device.
    pub fn predicted(&self) -> PipelineReport {
        TwoLevelPipeline::new().schedule(&self.stage_costs())
    }

    /// The verdicts, in submission order.
    pub fn verdicts(&self) -> Vec<&Verdict> {
        self.results.iter().map(|r| &r.verdict).collect()
    }

    /// `true` iff both runs produced identical verdicts (and marginals)
    /// task by task — the executor's determinism contract across worker
    /// configurations.
    pub fn agrees_with(&self, other: &BatchReport) -> bool {
        self.results.len() == other.results.len()
            && self
                .results
                .iter()
                .zip(&other.results)
                .all(|(a, b)| a.name == b.name && a.verdict == b.verdict)
    }
}

/// The threaded two-level batch executor.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchExecutor {
    config: ExecutorConfig,
}

impl BatchExecutor {
    /// An executor with the given pool shape.
    pub fn new(config: ExecutorConfig) -> Self {
        BatchExecutor { config }
    }

    /// The pool shape.
    pub fn config(&self) -> ExecutorConfig {
        self.config
    }

    /// Executes every task and reports per-task verdicts plus the
    /// measured schedule. Results are ordered by submission index no
    /// matter which worker finished first.
    ///
    /// Before dispatching to the pools, same-formula work is batched:
    /// [`SymbolicStage::ExactWmc`] tasks sharing a
    /// [`FormulaFingerprint`] compile once, and [`SymbolicStage::Serve`]
    /// tasks sharing one oracle answer through a single batched arena
    /// traversal. Verdicts are computed identically on every pool
    /// shape, so the grouping preserves [`BatchReport::agrees_with`];
    /// each grouped task is attributed an equal share of the group's
    /// measured symbolic time.
    pub fn run(&self, tasks: &[BatchTask]) -> BatchReport {
        self.run_with_telemetry(tasks, None)
    }

    /// [`run`](Self::run) with an optional observability sink. When
    /// attached, the executor records (all counters lock-free on the
    /// hot path, nothing recorded when `telemetry` is `None`):
    ///
    /// * `executor_tasks_total{mode=overlap|serial}` — tasks executed;
    /// * `executor_edf_reorder_depth` — histogram of
    ///   `|dispatch position − submission index|` under [`edf_order`]
    ///   (0 everywhere for deadline-free batches); a pure function of
    ///   the batch's deadlines, so deterministic across runs;
    /// * `executor_lane_tasks_total{lane}` — per-symbolic-lane
    ///   occupancy (which worker drained each task; scheduling-
    ///   dependent, so *not* replay-deterministic);
    /// * `executor_stage_seconds{stage=neural|symbolic}` — measured
    ///   wall-clock stage durations;
    /// * the measured [`PipelineReport`] gauges via
    ///   [`PipelineReport::record_into`] under `schedule="measured"`.
    pub fn run_with_telemetry(
        &self,
        tasks: &[BatchTask],
        telemetry: Option<&Telemetry>,
    ) -> BatchReport {
        let start = Instant::now();
        let premap = precompute_shared_groups(tasks);
        let results = if self.config.overlap && !tasks.is_empty() {
            self.run_overlapped(tasks, &premap, telemetry)
        } else {
            run_serial(tasks, &premap)
        };
        let pipelined_s = start.elapsed().as_secs_f64();
        let serial_s: f64 = results.iter().map(|r| r.neural_s + r.symbolic_s).sum();
        let measured = PipelineReport { pipelined_s, serial_s, tasks: tasks.len() };
        if let Some(tel) = telemetry {
            let mode = if self.config.overlap { "overlap" } else { "serial" };
            tel.registry.counter("executor_tasks_total", &[("mode", mode)]).add(tasks.len() as u64);
            let depth = tel.registry.histogram("executor_edf_reorder_depth", &[]);
            for (pos, &i) in edf_order(tasks).iter().enumerate() {
                depth.record((pos as f64 - i as f64).abs());
            }
            let neural_h = tel.registry.histogram("executor_stage_seconds", &[("stage", "neural")]);
            let symbolic_h =
                tel.registry.histogram("executor_stage_seconds", &[("stage", "symbolic")]);
            for r in &results {
                neural_h.record(r.neural_s);
                symbolic_h.record(r.symbolic_s);
            }
            measured.record_into(&tel.registry, "measured");
        }
        BatchReport { results, measured }
    }

    /// Threaded path: `neural_workers` producers feed `symbolic_workers`
    /// consumers through shared memory plus a ready queue.
    fn run_overlapped(
        &self,
        tasks: &[BatchTask],
        premap: &HashMap<usize, (Verdict, f64)>,
        telemetry: Option<&Telemetry>,
    ) -> Vec<TaskResult> {
        let shm = SharedMemory::new();
        // Stage-1 work queue, pre-loaded with every task index.
        let (task_tx, task_rx) = channel::unbounded::<usize>();
        // Stage-2 ready queue: `neural_ready` notifications in completion
        // order, carrying the measured stage-1 duration.
        let (ready_tx, ready_rx) = channel::unbounded::<(usize, f64, Option<String>)>();
        let slots: Vec<Mutex<Option<TaskResult>>> =
            tasks.iter().map(|_| Mutex::new(None)).collect();

        thread::scope(|scope| {
            for _ in 0..self.config.neural_workers.max(1) {
                let task_rx = task_rx.clone();
                let ready_tx = ready_tx.clone();
                let shm = shm.clone();
                scope.spawn(move |_| {
                    while let Ok(i) = task_rx.recv() {
                        let t0 = Instant::now();
                        let outcome =
                            panic::catch_unwind(AssertUnwindSafe(|| run_neural(&tasks[i].neural)));
                        let neural_s = t0.elapsed().as_secs_f64();
                        // A panicking task publishes an empty buffer and
                        // carries the panic downstream; the lane itself
                        // keeps draining.
                        let (buffer, panicked) = match outcome {
                            Ok(buffer) => (buffer, None),
                            Err(payload) => (Vec::new(), Some(panic_message(&*payload))),
                        };
                        shm.publish_neural(i as u64, buffer);
                        // Receivers only disappear if a symbolic worker
                        // died; the scope join will surface that.
                        let _ = ready_tx.send((i, neural_s, panicked));
                    }
                });
            }
            // Only worker clones may keep the ready queue open: symbolic
            // workers drain until the last neural worker exits.
            drop(ready_tx);

            for lane in 0..self.config.symbolic_workers.max(1) {
                let ready_rx = ready_rx.clone();
                let shm = shm.clone();
                let slots = &slots;
                // The handle is created once per lane (registry lock),
                // then incremented lock-free inside the drain loop.
                let lane_tasks = telemetry.map(|t| {
                    t.registry.counter("executor_lane_tasks_total", &[("lane", &lane.to_string())])
                });
                scope.spawn(move |_| {
                    // One evaluation buffer per worker: every PC/serve
                    // task this worker executes reuses it, so repeated
                    // queries against shared circuits are allocation-free.
                    let mut eval_buf = EvalBuffer::new();
                    while let Ok((i, neural_s, neural_panic)) = ready_rx.recv() {
                        if let Some(c) = &lane_tasks {
                            c.inc();
                        }
                        let buffer = shm
                            .take_neural(i as u64)
                            .expect("neural_ready is raised before dispatch");
                        let (verdict, symbolic_s) = if let Some(reason) = neural_panic {
                            // The neural stage already died: skip the
                            // symbolic stage, fail only this slot.
                            (Verdict::Failed { reason }, 0.0)
                        } else {
                            match premap.get(&i) {
                                Some((v, share_s)) => (v.clone(), *share_s),
                                None => {
                                    let t0 = Instant::now();
                                    let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
                                        run_symbolic(&tasks[i].symbolic, &mut eval_buf)
                                    }));
                                    let symbolic_s = t0.elapsed().as_secs_f64();
                                    match outcome {
                                        Ok(v) => (v, symbolic_s),
                                        Err(payload) => {
                                            // The buffer may have been
                                            // half-updated when the task
                                            // died: start the lane fresh.
                                            eval_buf = EvalBuffer::new();
                                            let reason = panic_message(&*payload);
                                            (Verdict::Failed { reason }, symbolic_s)
                                        }
                                    }
                                }
                            }
                        };
                        *slots[i].lock() = Some(TaskResult {
                            name: tasks[i].name.clone(),
                            verdict,
                            neural_output: buffer,
                            neural_s,
                            symbolic_s,
                        });
                    }
                });
            }

            // Earliest-deadline-first dispatch: the queue is loaded in
            // EDF order, so deadline-pressed tasks reach the pools (and
            // clear them) first. Result slots are per-index, so the
            // report still reads in submission order.
            for i in edf_order(tasks) {
                task_tx.send(i).expect("neural pool outlives submission");
            }
            drop(task_tx);
        })
        .expect("executor workers joined");

        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("every task produced a result"))
            .collect()
    }
}

/// Serial reference path: both stages inline. Executes in the same EDF
/// dispatch order as the threaded path; results are returned in
/// submission order either way.
fn run_serial(tasks: &[BatchTask], premap: &HashMap<usize, (Verdict, f64)>) -> Vec<TaskResult> {
    let mut eval_buf = EvalBuffer::new();
    let mut results: Vec<Option<TaskResult>> = tasks.iter().map(|_| None).collect();
    for i in edf_order(tasks) {
        let task = &tasks[i];
        let t0 = Instant::now();
        let neural = panic::catch_unwind(AssertUnwindSafe(|| run_neural(&task.neural)));
        let neural_s = t0.elapsed().as_secs_f64();
        let (buffer, neural_panic) = match neural {
            Ok(buffer) => (buffer, None),
            Err(payload) => (Vec::new(), Some(panic_message(&*payload))),
        };
        let (verdict, symbolic_s) = if let Some(reason) = neural_panic {
            (Verdict::Failed { reason }, 0.0)
        } else {
            match premap.get(&i) {
                Some((v, share_s)) => (v.clone(), *share_s),
                None => {
                    let t1 = Instant::now();
                    let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
                        run_symbolic(&task.symbolic, &mut eval_buf)
                    }));
                    let symbolic_s = t1.elapsed().as_secs_f64();
                    match outcome {
                        Ok(v) => (v, symbolic_s),
                        Err(payload) => {
                            eval_buf = EvalBuffer::new();
                            (Verdict::Failed { reason: panic_message(&*payload) }, symbolic_s)
                        }
                    }
                }
            }
        };
        results[i] = Some(TaskResult {
            name: task.name.clone(),
            verdict,
            neural_output: buffer,
            neural_s,
            symbolic_s,
        });
    }
    results.into_iter().map(|r| r.expect("every task executed")).collect()
}

/// Extracts the human-readable message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked".to_string()
    }
}

fn run_neural(stage: &NeuralStage) -> Vec<f64> {
    match stage {
        NeuralStage::Mlp { mlp, input } => {
            mlp.forward(input).data().iter().map(|&x| f64::from(x)).collect()
        }
        NeuralStage::Proxy {
            proxy,
            prompt_tokens,
            output_tokens,
            flops_per_sec,
            bytes_per_sec,
        } => {
            let cost = proxy.cost(*prompt_tokens, *output_tokens, *flops_per_sec, *bytes_per_sec);
            vec![cost.seconds]
        }
        NeuralStage::Synthetic { duration } => {
            std::thread::sleep(*duration);
            Vec::new()
        }
    }
}

fn run_symbolic(stage: &SymbolicStage, eval_buf: &mut EvalBuffer) -> Verdict {
    match stage {
        SymbolicStage::Sat { cnf, config } => {
            Verdict::Sat(CubeAndConquer::new(cnf, config.clone()).solve().solution)
        }
        SymbolicStage::Pc { circuit, evidence } => {
            Verdict::LogMarginal(circuit.log_probability_with(evidence, eval_buf))
        }
        SymbolicStage::Approx { cnf, probs, config } => {
            let est = ApproxEngine::new(*config).wmc(cnf, &WmcWeights::new(probs.clone()));
            Verdict::Wmc { estimate: est.estimate, lower: est.lower, upper: est.upper }
        }
        SymbolicStage::ExactWmc { cnf, probs } => {
            let z = CompiledWmc::new(cnf, &WmcWeights::new(probs.clone())).wmc();
            Verdict::Wmc { estimate: z, lower: z, upper: z }
        }
        SymbolicStage::Serve { oracle, query } => run_serve(oracle, query, eval_buf),
        SymbolicStage::ServeBatch { arena, z, queries } => run_serve_batch(arena, *z, queries),
        SymbolicStage::Synthetic { duration } => {
            std::thread::sleep(*duration);
            Verdict::Done
        }
    }
}

/// Answers one [`ServeQuery`] against a shared oracle through the
/// worker's reusable buffer — `&self` all the way, so any number of
/// workers serve the same compiled knowledge base concurrently.
fn run_serve(oracle: &CompiledWmc, query: &ServeQuery, buf: &mut EvalBuffer) -> Verdict {
    let degenerate = |p: f64| Verdict::Wmc { estimate: p, lower: p, upper: p };
    match query {
        ServeQuery::Wmc => degenerate(oracle.wmc()),
        ServeQuery::Probability(ev) => degenerate(oracle.probability_with(ev, buf)),
        ServeQuery::Posterior(ev) => degenerate(oracle.posterior_with(ev, buf).unwrap_or(0.0)),
        ServeQuery::Marginal(ev, var) => match oracle.circuit() {
            Some(c) => Verdict::Distribution(c.marginal_with(ev, *var, buf)),
            // Massless formula: no conditional distribution exists;
            // report the uniform fallback the circuit path uses for
            // zero-probability evidence.
            None => Verdict::Distribution(vec![0.5, 0.5]),
        },
        ServeQuery::Mpe(ev) => match oracle.circuit() {
            Some(c) => {
                let res = c.mpe_with(ev, buf);
                Verdict::Assignment { assignment: res.assignment, log_prob: res.log_prob }
            }
            None => Verdict::Assignment { assignment: Vec::new(), log_prob: f64::NEG_INFINITY },
        },
    }
}

/// Answers a whole query batch against one shared arena with the
/// batched d-DNNF kernels: WMC/probability/posterior lanes share a
/// single [`Dnnf::wmc_batch`] traversal, marginal lanes share one
/// [`Dnnf::marginal_batch`] per queried variable, and MPE lanes share
/// one [`Dnnf::mpe_batch`] pass. Every per-query verdict is
/// bit-identical to the corresponding [`run_serve`] answer: the
/// batched kernels replicate the single-query operation order per
/// lane, and the arena itself evaluates bit-identically to the source
/// circuit.
fn run_serve_batch(arena: &Dnnf, z: f64, queries: &[ServeQuery]) -> Verdict {
    let mut buf = BatchBuffer::new();
    let mut verdicts: Vec<Option<Verdict>> = vec![None; queries.len()];
    let degenerate = |p: f64| Verdict::Wmc { estimate: p, lower: p, upper: p };

    // Partition the batch into lanes per kernel. `Wmc` asks for the
    // partition function itself — already cached, no lane needed.
    let mut prob: Vec<(usize, Evidence, bool)> = Vec::new(); // (query, evidence, is_posterior)
    let mut marginals: Vec<(usize, Vec<(usize, Evidence)>)> = Vec::new(); // per queried var
    let mut mpe: Vec<(usize, Evidence)> = Vec::new();
    for (q, query) in queries.iter().enumerate() {
        match query {
            ServeQuery::Wmc => verdicts[q] = Some(degenerate(z)),
            ServeQuery::Probability(ev) => prob.push((q, ev.clone(), false)),
            ServeQuery::Posterior(ev) => prob.push((q, ev.clone(), true)),
            ServeQuery::Marginal(ev, var) => match marginals.iter_mut().find(|(v, _)| v == var) {
                Some((_, lanes)) => lanes.push((q, ev.clone())),
                None => marginals.push((*var, vec![(q, ev.clone())])),
            },
            ServeQuery::Mpe(ev) => mpe.push((q, ev.clone())),
        }
    }

    if !prob.is_empty() {
        let evs: Vec<Evidence> = prob.iter().map(|(_, ev, _)| ev.clone()).collect();
        let ps = arena.wmc_batch(&DnnfBatch::pack(&evs), &mut buf);
        for ((q, _, posterior), p) in prob.iter().zip(ps) {
            // Posterior of a massless formula: no conditional exists;
            // report 0 like the single-query oracle path does.
            let ans = if *posterior {
                if z == 0.0 {
                    0.0
                } else {
                    p / z
                }
            } else {
                p
            };
            verdicts[*q] = Some(degenerate(ans));
        }
    }
    for (var, lanes) in &marginals {
        let evs: Vec<Evidence> = lanes.iter().map(|(_, ev)| ev.clone()).collect();
        let dists = arena.marginal_batch(&DnnfBatch::pack(&evs), *var, &mut buf);
        for ((q, _), dist) in lanes.iter().zip(dists) {
            verdicts[*q] = Some(Verdict::Distribution(dist));
        }
    }
    if !mpe.is_empty() {
        let evs: Vec<Evidence> = mpe.iter().map(|(_, ev)| ev.clone()).collect();
        let results = arena.mpe_batch(&DnnfBatch::pack(&evs), &mut buf);
        for ((q, _), res) in mpe.iter().zip(results) {
            verdicts[*q] =
                Some(Verdict::Assignment { assignment: res.assignment, log_prob: res.log_prob });
        }
    }
    Verdict::Batch(verdicts.into_iter().map(|v| v.expect("every query answered")).collect())
}

/// The pre-dispatch batching pass: finds groups of tasks that repeat
/// the same symbolic work and answers each group once, so the pools
/// only execute distinct work. Two task shapes group:
///
/// * [`SymbolicStage::ExactWmc`] tasks whose `(formula, weights)` share
///   a [`FormulaFingerprint`] — one compilation answers all of them.
/// * [`SymbolicStage::Serve`] tasks sharing one oracle (`Arc` identity)
///   — flattened once and answered through [`run_serve_batch`], one
///   arena traversal per kernel for the whole group.
///
/// Only groups of two or more pay off (a singleton would just move the
/// same work off the pools), so singletons stay on the per-task path.
/// Returns `index -> (verdict, attributed symbolic seconds)`; verdicts
/// are bit-identical to the per-task path, so grouping never changes
/// answers — only the schedule.
fn precompute_shared_groups(tasks: &[BatchTask]) -> HashMap<usize, (Verdict, f64)> {
    let mut premap = HashMap::new();

    // Exact-WMC tasks, keyed by canonical fingerprint.
    let mut exact: Vec<(FormulaFingerprint, Vec<usize>)> = Vec::new();
    // Serve tasks, keyed by shared-oracle identity.
    let mut serve: Vec<(*const CompiledWmc, Vec<usize>)> = Vec::new();
    for (i, task) in tasks.iter().enumerate() {
        match &task.symbolic {
            SymbolicStage::ExactWmc { cnf, probs } => {
                let fp = FormulaFingerprint::new(cnf, &WmcWeights::new(probs.clone()));
                match exact.iter_mut().find(|(k, _)| *k == fp) {
                    Some((_, members)) => members.push(i),
                    None => exact.push((fp, vec![i])),
                }
            }
            SymbolicStage::Serve { oracle, .. } => {
                let key = Arc::as_ptr(oracle);
                match serve.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, members)) => members.push(i),
                    None => serve.push((key, vec![i])),
                }
            }
            _ => {}
        }
    }

    for (_, members) in exact.iter().filter(|(_, m)| m.len() >= 2) {
        let SymbolicStage::ExactWmc { cnf, probs } = &tasks[members[0]].symbolic else {
            unreachable!("exact groups only hold ExactWmc tasks");
        };
        let t0 = Instant::now();
        let z = CompiledWmc::new(cnf, &WmcWeights::new(probs.clone())).wmc();
        let share_s = t0.elapsed().as_secs_f64() / members.len() as f64;
        for &i in members {
            premap.insert(i, (Verdict::Wmc { estimate: z, lower: z, upper: z }, share_s));
        }
    }

    for (_, members) in serve.iter().filter(|(_, m)| m.len() >= 2) {
        let SymbolicStage::Serve { oracle, .. } = &tasks[members[0]].symbolic else {
            unreachable!("serve groups only hold Serve tasks");
        };
        // Massless oracles carry no circuit to flatten; their queries
        // stay on the per-task path (which answers them directly).
        let Some(Ok(arena)) = oracle.circuit().map(Dnnf::from_circuit) else { continue };
        let queries: Vec<ServeQuery> = members
            .iter()
            .map(|&i| {
                let SymbolicStage::Serve { query, .. } = &tasks[i].symbolic else {
                    unreachable!("serve groups only hold Serve tasks");
                };
                query.clone()
            })
            .collect();
        let t0 = Instant::now();
        let Verdict::Batch(answers) = run_serve_batch(&arena, oracle.wmc(), &queries) else {
            unreachable!("run_serve_batch returns a batch verdict");
        };
        let share_s = t0.elapsed().as_secs_f64() / members.len() as f64;
        for (&i, verdict) in members.iter().zip(answers) {
            premap.insert(i, (verdict, share_s));
        }
    }

    premap
}

/// A seeded mixed batch with MLP neural stages — the workload the
/// `reason-eval pipeline` experiment and the pipeline bench drive.
/// Lanes rotate all five symbolic stages: SAT cube-and-conquer, exact
/// PC marginal inference, anytime approximate WMC (a trimmed-budget
/// [`ApproxConfig`], so demo batches stay interactive), exact WMC
/// through the top-down compiler's fast path, and serve queries against
/// one shared compiled knowledge base (the same `Arc<CompiledWmc>`
/// across every serve task, exercising cross-thread sharing).
pub fn demo_batch(tasks: usize, seed: u64) -> Vec<BatchTask> {
    // The serve lane's knowledge base: compiled once, shared by every
    // serve task in the batch. Walk seeds until the formula carries
    // mass so the batch is usable at any seed. Built only when the
    // batch is long enough to reach the serve lane (i = 5k + 4).
    let serve_oracle = (tasks > 4).then(|| {
        let mut s = seed + 900_000;
        loop {
            let cnf = random_ksat(13, 34, 3, s);
            let probs: Vec<f64> = (0..13).map(|v| 0.4 + 0.02 * v as f64).collect();
            let oracle = CompiledWmc::new(&cnf, &WmcWeights::new(probs));
            if oracle.has_mass() {
                break Arc::new(oracle);
            }
            s += 1;
        }
    });
    (0..tasks)
        .map(|i| {
            let s = seed + 1000 * i as u64;
            let mlp =
                MlpBuilder::new(16).layer(32, true, s).layer(8, false, s + 1).softmax().build();
            let input = Matrix::random(4, 16, 1.0, s + 2);
            let neural = NeuralStage::Mlp { mlp, input };
            let symbolic = match i % 5 {
                0 => SymbolicStage::Sat {
                    cnf: random_ksat(12, 50, 3, s + 3),
                    config: CubeConfig { max_depth: 3, ..CubeConfig::default() },
                },
                1 => {
                    let circuit = random_mixture_circuit(&StructureConfig {
                        num_vars: 8,
                        depth: 3,
                        num_components: 2,
                        seed: s + 4,
                    });
                    // PC tasks land at i = 5k + 1, so alternate the
                    // evidence value per PC task, not per task index.
                    let mut evidence = Evidence::empty(8);
                    evidence.set(0, (i / 5) % 2);
                    SymbolicStage::Pc { circuit, evidence }
                }
                2 => SymbolicStage::Approx {
                    cnf: random_ksat(14, 40, 3, s + 5),
                    probs: (0..14).map(|v| 0.35 + 0.02 * v as f64).collect(),
                    config: demo_approx_config(s + 6),
                },
                3 => SymbolicStage::ExactWmc {
                    cnf: random_ksat(16, 40, 3, s + 7),
                    probs: (0..16).map(|v| 0.4 + 0.015 * v as f64).collect(),
                },
                _ => {
                    // Serve tasks land at i = 5k + 4: alternate the
                    // conditioned value per serve task.
                    let mut evidence = Evidence::empty(13);
                    evidence.set(0, (i / 5) % 2);
                    SymbolicStage::Serve {
                        oracle: Arc::clone(
                            serve_oracle.as_ref().expect("serve lane implies tasks > 4"),
                        ),
                        query: ServeQuery::Posterior(evidence),
                    }
                }
            };
            BatchTask { name: format!("task-{i}"), neural, symbolic, deadline: None }
        })
        .collect()
}

/// The trimmed approximate-inference budget demo batches run with:
/// small enough to keep executor tests and smoke runs interactive,
/// still seeded and anytime-bounded.
pub fn demo_approx_config(seed: u64) -> ApproxConfig {
    ApproxConfig {
        sampling: reason_approx::SampleConfig { samples: 2048, checkpoint: 256, seed },
        adapt: reason_approx::AdaptConfig {
            rounds: 4,
            batch: 256,
            components: 4,
            ..reason_approx::AdaptConfig::default()
        },
        ..ApproxConfig::default()
    }
}

/// A batch of synthetic tasks with controlled stage durations, given as
/// `(neural_ms, symbolic_ms)` pairs — the calibration workload for
/// validating the flow-shop cost model against measured execution.
pub fn synthetic_batch(costs: &[(u64, u64)]) -> Vec<BatchTask> {
    costs
        .iter()
        .enumerate()
        .map(|(i, &(n_ms, s_ms))| BatchTask {
            name: format!("synthetic-{i}"),
            neural: NeuralStage::Synthetic { duration: Duration::from_millis(n_ms) },
            symbolic: SymbolicStage::Synthetic { duration: Duration::from_millis(s_ms) },
            deadline: None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_verdicts_match_sequential() {
        let tasks = demo_batch(6, 7);
        let serial = BatchExecutor::new(ExecutorConfig::sequential()).run(&tasks);
        for workers in [1, 2, 4] {
            let threaded = BatchExecutor::new(ExecutorConfig::overlapped(workers)).run(&tasks);
            assert!(threaded.agrees_with(&serial), "workers = {workers}");
            // The buffers that crossed shared memory are identical too.
            for (a, b) in threaded.results.iter().zip(&serial.results) {
                assert_eq!(a.neural_output, b.neural_output);
            }
        }
    }

    #[test]
    fn panicking_task_fails_its_slot_and_lanes_keep_draining() {
        // Task 1's symbolic stage panics deliberately: the evidence
        // arity (4) does not match the circuit (8 vars), which trips
        // the `evidence arity mismatch` assert inside evaluation.
        let mut tasks = demo_batch(6, 7);
        let circuit = random_mixture_circuit(&StructureConfig {
            num_vars: 8,
            depth: 3,
            num_components: 2,
            seed: 99,
        });
        tasks[1] = BatchTask {
            name: "poison".to_string(),
            neural: tasks[1].neural.clone(),
            symbolic: SymbolicStage::Pc { circuit, evidence: Evidence::empty(4) },
            deadline: None,
        };

        let serial = BatchExecutor::new(ExecutorConfig::sequential()).run(&tasks);
        let reference = BatchExecutor::new(ExecutorConfig::sequential())
            .run(&demo_batch(6, 7).into_iter().filter(|t| t.name != "task-1").collect::<Vec<_>>());
        for workers in [1, 2, 4] {
            let threaded = BatchExecutor::new(ExecutorConfig::overlapped(workers)).run(&tasks);
            assert_eq!(threaded.results.len(), tasks.len(), "no slot lost to the panic");
            match &threaded.results[1].verdict {
                Verdict::Failed { reason } => {
                    assert!(reason.contains("arity"), "unexpected panic message: {reason}");
                }
                other => panic!("poisoned slot must fail, got {other:?}"),
            }
            // Every healthy task still answers, identically to a run
            // that never saw the poisoned task.
            assert!(threaded.agrees_with(&serial), "workers = {workers}");
            let healthy: Vec<&Verdict> = threaded
                .results
                .iter()
                .filter(|r| r.name != "poison")
                .map(|r| &r.verdict)
                .collect();
            assert_eq!(healthy.len(), reference.results.len());
            for (got, want) in healthy.iter().zip(&reference.results) {
                assert_eq!(**got, want.verdict);
            }
        }
    }

    #[test]
    fn neural_stage_panic_is_contained_too() {
        let mut tasks = demo_batch(4, 3);
        // An MLP input whose width (8) does not match the layer (16)
        // panics inside the forward pass — on the neural pool.
        let mlp = MlpBuilder::new(16).layer(8, false, 5).build();
        tasks[2] = BatchTask {
            name: "poison-neural".to_string(),
            neural: NeuralStage::Mlp { mlp, input: Matrix::random(4, 8, 1.0, 5) },
            symbolic: tasks[2].symbolic.clone(),
            deadline: None,
        };
        for config in [ExecutorConfig::sequential(), ExecutorConfig::overlapped(2)] {
            let report = BatchExecutor::new(config).run(&tasks);
            assert!(matches!(report.results[2].verdict, Verdict::Failed { .. }));
            assert!(report.results[2].neural_output.is_empty());
            for (i, r) in report.results.iter().enumerate() {
                if i != 2 {
                    assert!(!matches!(r.verdict, Verdict::Failed { .. }), "slot {i} infected");
                }
            }
        }
    }

    #[test]
    fn results_come_back_in_submission_order() {
        // Front-load a slow task: with two symbolic lanes it finishes
        // last, but must still be reported first.
        let tasks = synthetic_batch(&[(1, 40), (1, 5), (1, 5), (1, 5)]);
        let report = BatchExecutor::new(ExecutorConfig::overlapped(2)).run(&tasks);
        let names: Vec<&str> = report.results.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["synthetic-0", "synthetic-1", "synthetic-2", "synthetic-3"]);
    }

    #[test]
    fn overlap_hides_a_stage_on_balanced_synthetic_tasks() {
        // 6 tasks x (15 ms + 15 ms): serial ~180 ms, flow shop ~105 ms.
        // Bounds are deliberately loose (flow-shop ratio is ~0.58) so a
        // loaded CI runner delaying sleep wakeups by tens of ms cannot
        // flake the test; the measured serial_s stretches together with
        // the makespan under contention, keeping the ratio stable.
        let tasks = synthetic_batch(&[(15, 15); 6]);
        let report = BatchExecutor::new(ExecutorConfig::overlapped(1)).run(&tasks);
        assert!(
            report.measured.pipelined_s < report.measured.serial_s * 0.92,
            "overlap should hide a large part of one stage: {:?}",
            report.measured
        );
        // The cost model's prediction from the measured stage costs is a
        // lower bound on (and close to) the measured makespan.
        let predicted = report.predicted();
        assert!(predicted.pipelined_s <= report.measured.pipelined_s * 1.05);
    }

    #[test]
    fn cost_model_ordering_matches_measured_ordering() {
        // Satellite check for the overlap_gain contract: on synthetic
        // tasks with controlled stage costs, the cost model's predicted
        // makespans must order the two batches the same way the measured
        // wall clocks do, and each predicted gain must land in the
        // modeled [0, 1) range while approximating the measurement.
        let balanced = synthetic_batch(&[(12, 12); 5]); // high overlap gain
        let lopsided = synthetic_batch(&[(2, 22); 5]); // symbolic-bound, low gain
        let exec = BatchExecutor::new(ExecutorConfig::overlapped(1));
        let (rb, rl) = (exec.run(&balanced), exec.run(&lopsided));
        let (pb, pl) = (rb.predicted(), rl.predicted());
        for p in [&pb, &pl] {
            assert!((0.0..1.0).contains(&p.overlap_gain()), "modeled gain in [0,1): {p:?}");
        }
        // The balanced batch overlaps better, predicted and measured.
        assert!(pb.overlap_gain() > pl.overlap_gain());
        assert!(rb.measured.overlap_gain() > rl.measured.overlap_gain());
        // Prediction tracks measurement: a lower bound (no scheduling
        // overhead in the model), with generous slack on the other side
        // so oversleep on a contended CI runner cannot flake the test.
        for (predicted, measured) in [(&pb, &rb.measured), (&pl, &rl.measured)] {
            assert!(predicted.pipelined_s <= measured.pipelined_s * 1.05);
            assert!(predicted.pipelined_s >= measured.pipelined_s * 0.25);
        }
    }

    #[test]
    fn sequential_mode_has_no_overlap() {
        let tasks = synthetic_batch(&[(5, 5); 4]);
        let report = BatchExecutor::new(ExecutorConfig::sequential()).run(&tasks);
        // Wall clock covers the full serial sum (plus scheduling slack).
        assert!(report.measured.pipelined_s >= report.measured.serial_s * 0.99);
    }

    #[test]
    fn empty_batch_reports_zero_tasks() {
        let report = BatchExecutor::new(ExecutorConfig::overlapped(3)).run(&[]);
        assert!(report.results.is_empty());
        assert_eq!(report.measured.tasks, 0);
        assert_eq!(report.measured.serial_s, 0.0);
    }

    #[test]
    fn approx_lane_reports_bracketed_wmc_deterministically() {
        let tasks = vec![BatchTask {
            name: "approx".into(),
            neural: NeuralStage::Synthetic { duration: Duration::from_millis(1) },
            symbolic: SymbolicStage::Approx {
                cnf: random_ksat(12, 36, 3, 9),
                probs: vec![0.5; 12],
                config: demo_approx_config(42),
            },
            deadline: None,
        }];
        let serial = BatchExecutor::new(ExecutorConfig::sequential()).run(&tasks);
        let threaded = BatchExecutor::new(ExecutorConfig::overlapped(2)).run(&tasks);
        // Seeded estimation: identical verdicts bit-for-bit across pool
        // shapes, and the bracket is well-formed.
        assert!(threaded.agrees_with(&serial));
        match &serial.results[0].verdict {
            Verdict::Wmc { estimate, lower, upper } => {
                assert!(lower <= estimate && estimate <= upper);
                assert!((0.0..=1.0).contains(lower) && (0.0..=1.0).contains(upper));
            }
            other => panic!("expected a WMC verdict, got {other:?}"),
        }
    }

    #[test]
    fn demo_batch_rotates_all_five_symbolic_lanes() {
        let tasks = demo_batch(10, 0);
        assert!(matches!(tasks[0].symbolic, SymbolicStage::Sat { .. }));
        assert!(matches!(tasks[1].symbolic, SymbolicStage::Pc { .. }));
        assert!(matches!(tasks[2].symbolic, SymbolicStage::Approx { .. }));
        assert!(matches!(tasks[3].symbolic, SymbolicStage::ExactWmc { .. }));
        assert!(matches!(tasks[4].symbolic, SymbolicStage::Serve { .. }));
        // Every serve task shares the *same* compiled oracle.
        let (SymbolicStage::Serve { oracle: a, .. }, SymbolicStage::Serve { oracle: b, .. }) =
            (&tasks[4].symbolic, &tasks[9].symbolic)
        else {
            panic!("serve lanes at i = 5k + 4");
        };
        assert!(Arc::ptr_eq(a, b), "serve tasks share one compiled KB");
        let report = BatchExecutor::new(ExecutorConfig::overlapped(2)).run(&tasks);
        let wmc = report.verdicts().iter().filter(|v| matches!(v, Verdict::Wmc { .. })).count();
        assert_eq!(wmc, 6, "two approx + two exact WMC + two serve verdicts");
        // Exact-WMC and serve lanes report degenerate brackets, approx
        // lanes real ones.
        let exact = report
            .verdicts()
            .iter()
            .filter(|v| {
                matches!(v, Verdict::Wmc { estimate, lower, upper }
                if lower == estimate && estimate == upper)
            })
            .count();
        assert_eq!(exact, 4);
    }

    #[test]
    fn serve_lane_matches_direct_oracle_queries_across_pool_shapes() {
        let cnf = random_ksat(10, 26, 3, 8);
        let probs: Vec<f64> = (0..10).map(|v| 0.3 + 0.04 * v as f64).collect();
        let oracle = Arc::new(CompiledWmc::new(&cnf, &WmcWeights::new(probs)));
        assert!(oracle.has_mass(), "seed 8 instance must carry mass");
        let mut ev = Evidence::empty(10);
        ev.set(1, 1);
        let queries = vec![
            ServeQuery::Wmc,
            ServeQuery::Probability(ev.clone()),
            ServeQuery::Posterior(ev.clone()),
            ServeQuery::Marginal(ev.clone(), 4),
            ServeQuery::Mpe(ev.clone()),
        ];
        let tasks: Vec<BatchTask> = queries
            .into_iter()
            .enumerate()
            .map(|(i, query)| BatchTask {
                name: format!("serve-{i}"),
                neural: NeuralStage::Synthetic { duration: Duration::from_millis(1) },
                symbolic: SymbolicStage::Serve { oracle: Arc::clone(&oracle), query },
                deadline: None,
            })
            .collect();
        let serial = BatchExecutor::new(ExecutorConfig::sequential()).run(&tasks);
        let threaded = BatchExecutor::new(ExecutorConfig::overlapped(3)).run(&tasks);
        assert!(threaded.agrees_with(&serial));
        let mut buf = EvalBuffer::new();
        match &serial.results[0].verdict {
            Verdict::Wmc { estimate, .. } => assert_eq!(*estimate, oracle.wmc()),
            other => panic!("expected WMC, got {other:?}"),
        }
        match &serial.results[1].verdict {
            Verdict::Wmc { estimate, .. } => {
                assert_eq!(*estimate, oracle.probability_with(&ev, &mut buf));
            }
            other => panic!("expected probability, got {other:?}"),
        }
        match &serial.results[2].verdict {
            Verdict::Wmc { estimate, .. } => {
                assert_eq!(*estimate, oracle.posterior_with(&ev, &mut buf).unwrap());
            }
            other => panic!("expected posterior, got {other:?}"),
        }
        match &serial.results[3].verdict {
            Verdict::Distribution(d) => {
                assert_eq!(*d, oracle.circuit().unwrap().marginal_with(&ev, 4, &mut buf));
            }
            other => panic!("expected distribution, got {other:?}"),
        }
        match &serial.results[4].verdict {
            Verdict::Assignment { assignment, .. } => {
                let model: Vec<bool> = assignment.iter().map(|&v| v == 1).collect();
                assert!(cnf.eval(&model), "served MPE must satisfy the formula");
            }
            other => panic!("expected assignment, got {other:?}"),
        }
    }

    #[test]
    fn serve_batch_stage_matches_per_query_serve_tasks() {
        let cnf = random_ksat(10, 26, 3, 8);
        let weights = WmcWeights::new((0..10).map(|v| 0.3 + 0.04 * v as f64).collect());
        let oracle = Arc::new(CompiledWmc::new(&cnf, &weights));
        assert!(oracle.has_mass(), "seed 8 instance must carry mass");
        let arena =
            Arc::new(Dnnf::from_circuit(oracle.circuit().expect("mass implies circuit")).unwrap());
        let mut ev = Evidence::empty(10);
        ev.set(1, 1);
        let mut other = Evidence::empty(10);
        other.set(3, 0).set(6, 1);
        let queries = vec![
            ServeQuery::Wmc,
            ServeQuery::Probability(ev.clone()),
            ServeQuery::Posterior(ev.clone()),
            ServeQuery::Marginal(ev.clone(), 4),
            ServeQuery::Marginal(other.clone(), 4),
            ServeQuery::Marginal(other.clone(), 7),
            ServeQuery::Mpe(ev.clone()),
            ServeQuery::Posterior(ev.clone()), // duplicate lane
        ];
        // Reference: one Serve task per query, never grouped (each task
        // gets its own Arc so identity grouping cannot kick in).
        let single: Vec<BatchTask> = queries
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, query)| BatchTask {
                name: format!("single-{i}"),
                neural: NeuralStage::Synthetic { duration: Duration::from_millis(1) },
                symbolic: SymbolicStage::Serve {
                    oracle: Arc::new(CompiledWmc::new(&cnf, &weights)),
                    query,
                },
                deadline: None,
            })
            .collect();
        let batched = vec![BatchTask {
            name: "batch".into(),
            neural: NeuralStage::Synthetic { duration: Duration::from_millis(1) },
            symbolic: SymbolicStage::ServeBatch {
                arena,
                z: oracle.wmc(),
                queries: queries.clone(),
            },
            deadline: None,
        }];
        let exec = BatchExecutor::new(ExecutorConfig::sequential());
        let per_query: Vec<Verdict> =
            exec.run(&single).results.into_iter().map(|r| r.verdict).collect();
        let report = exec.run(&batched);
        let Verdict::Batch(answers) = &report.results[0].verdict else {
            panic!("ServeBatch reports a batch verdict");
        };
        assert_eq!(answers, &per_query, "batched lanes ≡ per-query serve verdicts");
        // And the threaded executor agrees with the serial one.
        let threaded = BatchExecutor::new(ExecutorConfig::overlapped(2)).run(&batched);
        assert!(threaded.agrees_with(&report));
    }

    #[test]
    fn shared_oracle_serve_tasks_group_without_changing_verdicts() {
        let cnf = random_ksat(10, 26, 3, 8);
        let probs: Vec<f64> = (0..10).map(|v| 0.3 + 0.04 * v as f64).collect();
        let weights = WmcWeights::new(probs);
        let shared = Arc::new(CompiledWmc::new(&cnf, &weights));
        assert!(shared.has_mass());
        let task = |i: usize, oracle: Arc<CompiledWmc>| {
            let mut ev = Evidence::empty(10);
            ev.set(i % 10, i % 2);
            BatchTask {
                name: format!("serve-{i}"),
                neural: NeuralStage::Synthetic { duration: Duration::from_millis(1) },
                symbolic: SymbolicStage::Serve {
                    oracle,
                    query: match i % 3 {
                        0 => ServeQuery::Posterior(ev),
                        1 => ServeQuery::Marginal(ev, 4),
                        _ => ServeQuery::Mpe(ev),
                    },
                },
                deadline: None,
            }
        };
        // Same six queries; one batch shares the oracle (grouped), the
        // other rebuilds it per task (distinct Arcs — per-task path).
        let grouped: Vec<BatchTask> = (0..6).map(|i| task(i, Arc::clone(&shared))).collect();
        let ungrouped: Vec<BatchTask> =
            (0..6).map(|i| task(i, Arc::new(CompiledWmc::new(&cnf, &weights)))).collect();
        let exec = BatchExecutor::new(ExecutorConfig::overlapped(2));
        let a = exec.run(&grouped);
        let b = exec.run(&ungrouped);
        for (x, y) in a.results.iter().zip(&b.results) {
            assert_eq!(x.verdict, y.verdict, "grouping changes the schedule, not answers");
        }
    }

    #[test]
    fn repeated_exact_wmc_tasks_compile_once_and_agree() {
        let cnf = random_ksat(12, 30, 3, 5);
        let probs: Vec<f64> = (0..12).map(|v| 0.35 + 0.02 * v as f64).collect();
        let other = random_ksat(12, 30, 3, 6);
        let mk = |name: &str, cnf: &Cnf| BatchTask {
            name: name.into(),
            neural: NeuralStage::Synthetic { duration: Duration::from_millis(1) },
            symbolic: SymbolicStage::ExactWmc { cnf: cnf.clone(), probs: probs.clone() },
            deadline: None,
        };
        // Three copies of one formula plus a distinct one: the copies
        // share a fingerprint and must land on the grouped path.
        let tasks = vec![mk("a0", &cnf), mk("b", &other), mk("a1", &cnf), mk("a2", &cnf)];
        let serial = BatchExecutor::new(ExecutorConfig::sequential()).run(&tasks);
        let threaded = BatchExecutor::new(ExecutorConfig::overlapped(3)).run(&tasks);
        assert!(threaded.agrees_with(&serial));
        let expect = CompiledWmc::new(&cnf, &WmcWeights::new(probs.clone())).wmc();
        let expect_other = CompiledWmc::new(&other, &WmcWeights::new(probs)).wmc();
        for (i, want) in [(0, expect), (1, expect_other), (2, expect), (3, expect)] {
            match &serial.results[i].verdict {
                Verdict::Wmc { estimate, lower, upper } => {
                    assert_eq!(*estimate, want, "task {i}");
                    assert_eq!(lower, estimate);
                    assert_eq!(upper, estimate);
                }
                other => panic!("expected a WMC verdict, got {other:?}"),
            }
        }
    }

    #[test]
    fn exact_wmc_lane_matches_the_compiler_oracle() {
        let cnf = random_ksat(10, 26, 3, 4);
        let probs: Vec<f64> = (0..10).map(|v| 0.3 + 0.04 * v as f64).collect();
        let tasks = vec![BatchTask {
            name: "exact".into(),
            neural: NeuralStage::Synthetic { duration: Duration::from_millis(1) },
            symbolic: SymbolicStage::ExactWmc { cnf: cnf.clone(), probs: probs.clone() },
            deadline: None,
        }];
        let serial = BatchExecutor::new(ExecutorConfig::sequential()).run(&tasks);
        let threaded = BatchExecutor::new(ExecutorConfig::overlapped(2)).run(&tasks);
        assert!(threaded.agrees_with(&serial));
        let expect = CompiledWmc::new(&cnf, &WmcWeights::new(probs)).wmc();
        match &serial.results[0].verdict {
            Verdict::Wmc { estimate, lower, upper } => {
                assert_eq!(*estimate, expect);
                assert_eq!(*lower, expect);
                assert_eq!(*upper, expect);
            }
            other => panic!("expected a WMC verdict, got {other:?}"),
        }
    }

    #[test]
    fn proxy_stage_publishes_modeled_latency() {
        let tasks = vec![BatchTask {
            name: "proxy".into(),
            neural: NeuralStage::Proxy {
                proxy: LlmProxy::preset("7B"),
                prompt_tokens: 128,
                output_tokens: 32,
                flops_per_sec: 38.7e12,
                bytes_per_sec: 768e9,
            },
            symbolic: SymbolicStage::Synthetic { duration: Duration::from_millis(1) },
            deadline: None,
        }];
        let report = BatchExecutor::new(ExecutorConfig::default()).run(&tasks);
        assert_eq!(report.results[0].neural_output.len(), 1);
        assert!(report.results[0].neural_output[0] > 0.0);
    }

    #[test]
    fn edf_order_front_runs_deadlined_tasks() {
        let mut tasks = synthetic_batch(&[(1, 1); 5]);
        tasks[1] = tasks[1].clone().with_deadline(Duration::from_millis(20));
        tasks[4] = tasks[4].clone().with_deadline(Duration::from_millis(5));
        tasks[2] = tasks[2].clone().with_deadline(Duration::from_millis(20));
        // Deadlines first (earliest first, ties by index), then the
        // deadline-free tail in submission order.
        assert_eq!(edf_order(&tasks), vec![4, 1, 2, 0, 3]);
        // No deadlines anywhere → pure submission order.
        assert_eq!(edf_order(&synthetic_batch(&[(1, 1); 4])), vec![0, 1, 2, 3]);
    }

    #[test]
    fn telemetry_records_lanes_reorder_depth_and_pipeline_gauges() {
        use reason_telemetry::{MetricValue, Telemetry};
        let tel = Telemetry::wall();
        let mut tasks = synthetic_batch(&[(1, 2); 4]);
        tasks[3] = tasks[3].clone().with_deadline(Duration::from_millis(1));
        let report = BatchExecutor::new(ExecutorConfig::overlapped(2))
            .run_with_telemetry(&tasks, Some(&tel));
        assert_eq!(report.results.len(), 4);

        let snap = tel.registry.snapshot();
        let counter_sum = |name: &str| -> u64 {
            snap.iter()
                .filter(|m| m.name == name)
                .map(|m| match &m.value {
                    MetricValue::Counter(v) => *v,
                    _ => 0,
                })
                .sum()
        };
        assert_eq!(counter_sum("executor_tasks_total"), 4);
        // Every task is drained by exactly one symbolic lane.
        assert_eq!(counter_sum("executor_lane_tasks_total"), 4);
        // EDF pulled task 3 to the front: dispatch order [3, 0, 1, 2]
        // has depths [3, 1, 1, 1].
        let depth = snap
            .iter()
            .find(|m| m.name == "executor_edf_reorder_depth")
            .expect("reorder depth histogram");
        let MetricValue::Histogram(h) = &depth.value else { panic!("histogram") };
        assert_eq!(h.count, 4);
        // Measured pipeline gauges landed with documented units.
        assert!(snap.iter().any(|m| m.name == "pipeline_overlap_gain"
            && m.labels == vec![("schedule".to_string(), "measured".to_string())]));
        assert!(snap.iter().any(|m| m.name == "pipeline_makespan_seconds"));
        // Stage histograms saw every task once per stage.
        let stage_count: u64 = snap
            .iter()
            .filter(|m| m.name == "executor_stage_seconds")
            .map(|m| match &m.value {
                MetricValue::Histogram(h) => h.count,
                _ => 0,
            })
            .sum();
        assert_eq!(stage_count, 8);
    }

    #[test]
    fn edf_dispatch_preserves_submission_order_results_and_verdicts() {
        // Give the demo batch a scrambled deadline profile and check the
        // determinism contract survives the reorder on every pool shape.
        let mut tasks = demo_batch(6, 7);
        let deadlines = [None, Some(3), None, Some(50), Some(1), None];
        for (task, d) in tasks.iter_mut().zip(deadlines) {
            task.deadline = d.map(Duration::from_millis);
        }
        let plain = BatchExecutor::new(ExecutorConfig::sequential()).run(&demo_batch(6, 7));
        let serial = BatchExecutor::new(ExecutorConfig::sequential()).run(&tasks);
        let threaded = BatchExecutor::new(ExecutorConfig::overlapped(2)).run(&tasks);
        assert!(serial.agrees_with(&plain), "deadlines shape the schedule, not the answers");
        assert!(threaded.agrees_with(&serial));
        let names: Vec<&str> = serial.results.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["task-0", "task-1", "task-2", "task-3", "task-4", "task-5"]);
    }
}
