//! `reason-system` — system integration of the REASON co-processor
//! (paper Sec. VI).
//!
//! REASON sits beside GPU SMs as a programmable co-processor. Integration
//! has three pieces, each modeled here:
//!
//! * [`sync`] — the shared-memory flag protocol: the GPU writes neural
//!   results and raises `neural_ready`; REASON polls, consumes, executes,
//!   writes back, and raises `symbolic_ready` (paper Sec. VI-B
//!   "Synchronization").
//! * [`device`] — the programming model: [`ReasonDevice::execute_dag`] /
//!   [`ReasonDevice::execute_sat`] and [`ReasonDevice::check_status`]
//!   mirror the paper's `REASON_execute` / `REASON_check_status` C++
//!   interface (Listing 1), dispatching to the cycle-level engines of
//!   `reason-arch` by reasoning mode.
//! * [`pipeline`] — the two-level execution pipeline (paper Sec. VI-C):
//!   task-level overlap of GPU neural work for batch `N+1` with REASON
//!   symbolic work for batch `N`, on top of the intra-REASON pipelining
//!   already modeled in `reason-arch`. This is the *cost model*: a
//!   two-stage flow-shop schedule over per-task stage costs.
//! * [`executor`] — the cost model made real: [`BatchExecutor`] runs
//!   mixed batches (SAT, PC inference, approximate WMC, exact WMC, and
//!   serve queries against shared compiled knowledge bases) on neural
//!   and symbolic worker pools with
//!   genuine thread-level stage overlap, moves data through the
//!   [`sync`] flag protocol, and reports measured schedules in the same
//!   [`PipelineReport`] vocabulary so model and execution can be
//!   compared directly.
//!
//! See `docs/ARCHITECTURE.md` at the workspace root for where this
//! crate sits in the end-to-end dataflow.

pub mod device;
pub mod executor;
pub mod pipeline;
pub mod sync;

pub use device::{BatchId, DeviceStatus, ExecuteOutcome, ReasonDevice, ReasoningMode};
pub use executor::{
    demo_approx_config, demo_batch, edf_order, synthetic_batch, BatchExecutor, BatchReport,
    BatchTask, ExecutorConfig, NeuralStage, ServeQuery, SymbolicStage, TaskResult, Verdict,
};
pub use pipeline::{PipelineReport, StageCost, TwoLevelPipeline};
pub use sync::SharedMemory;
