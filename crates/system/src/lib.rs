//! `reason-system` — system integration of the REASON co-processor
//! (paper Sec. VI).
//!
//! REASON sits beside GPU SMs as a programmable co-processor. Integration
//! has three pieces, each modeled here:
//!
//! * [`sync`] — the shared-memory flag protocol: the GPU writes neural
//!   results and raises `neural_ready`; REASON polls, consumes, executes,
//!   writes back, and raises `symbolic_ready` (paper Sec. VI-B
//!   "Synchronization").
//! * [`device`] — the programming model: [`ReasonDevice::execute`] and
//!   [`ReasonDevice::check_status`] mirror the paper's `REASON_execute` /
//!   `REASON_check_status` C++ interface (Listing 1), dispatching to the
//!   cycle-level engines of `reason-arch` by reasoning mode.
//! * [`pipeline`] — the two-level execution pipeline (paper Sec. VI-C):
//!   task-level overlap of GPU neural work for batch `N+1` with REASON
//!   symbolic work for batch `N`, on top of the intra-REASON pipelining
//!   already modeled in `reason-arch`.

pub mod device;
pub mod pipeline;
pub mod sync;

pub use device::{BatchId, DeviceStatus, ExecuteOutcome, ReasonDevice, ReasoningMode};
pub use pipeline::{PipelineReport, StageCost, TwoLevelPipeline};
pub use sync::SharedMemory;
