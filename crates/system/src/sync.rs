//! Shared-memory flag synchronization (paper Sec. VI-B).
//!
//! "After executing \[the\] LLM kernel, SMs write the output to shared
//! memory and set \[the\] `neural_ready` flag. REASON polls this flag,
//! fetches the data, and performs symbolic reasoning. It then writes the
//! result back to shared memory and sets \[the\] `symbolic_ready` flag."
//!
//! The model is thread-safe (host and device sides may run on different
//! threads in tests and in the pipeline driver).

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

#[derive(Debug, Default)]
struct Slot {
    neural: Option<Vec<f64>>,
    symbolic: Option<Vec<f64>>,
}

#[derive(Debug, Default)]
struct Inner {
    slots: HashMap<u64, Slot>,
}

/// The shared-memory region coordinating GPU SMs and REASON.
///
/// Cloning shares the region (both sides hold handles).
#[derive(Debug, Clone, Default)]
pub struct SharedMemory {
    inner: Arc<(Mutex<Inner>, Condvar)>,
}

impl SharedMemory {
    /// An empty region.
    pub fn new() -> Self {
        SharedMemory::default()
    }

    /// GPU side: publishes neural results for a batch and raises
    /// `neural_ready`.
    pub fn publish_neural(&self, batch: u64, data: Vec<f64>) {
        let (lock, cv) = &*self.inner;
        lock.lock().slots.entry(batch).or_default().neural = Some(data);
        cv.notify_all();
    }

    /// Device side: consumes neural results if ready (`neural_ready`
    /// poll + fetch).
    pub fn take_neural(&self, batch: u64) -> Option<Vec<f64>> {
        let (lock, _) = &*self.inner;
        lock.lock().slots.get_mut(&batch).and_then(|s| s.neural.take())
    }

    /// Device side: blocks until `neural_ready` for a batch, then
    /// consumes.
    pub fn wait_neural(&self, batch: u64) -> Vec<f64> {
        let (lock, cv) = &*self.inner;
        let mut guard = lock.lock();
        loop {
            if let Some(data) = guard.slots.get_mut(&batch).and_then(|s| s.neural.take()) {
                return data;
            }
            cv.wait(&mut guard);
        }
    }

    /// Device side: publishes symbolic results and raises
    /// `symbolic_ready`.
    pub fn publish_symbolic(&self, batch: u64, data: Vec<f64>) {
        let (lock, cv) = &*self.inner;
        lock.lock().slots.entry(batch).or_default().symbolic = Some(data);
        cv.notify_all();
    }

    /// Host side: checks `symbolic_ready` without blocking.
    pub fn symbolic_ready(&self, batch: u64) -> bool {
        let (lock, _) = &*self.inner;
        lock.lock().slots.get(&batch).is_some_and(|s| s.symbolic.is_some())
    }

    /// Host side: blocks until symbolic results arrive, then consumes.
    pub fn wait_symbolic(&self, batch: u64) -> Vec<f64> {
        let (lock, cv) = &*self.inner;
        let mut guard = lock.lock();
        loop {
            if let Some(data) = guard.slots.get_mut(&batch).and_then(|s| s.symbolic.take()) {
                return data;
            }
            cv.wait(&mut guard);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_round_trip_single_thread() {
        let shm = SharedMemory::new();
        assert!(!shm.symbolic_ready(0));
        shm.publish_neural(0, vec![1.0, 2.0]);
        assert_eq!(shm.take_neural(0), Some(vec![1.0, 2.0]));
        assert_eq!(shm.take_neural(0), None, "flag consumed");
        shm.publish_symbolic(0, vec![3.0]);
        assert!(shm.symbolic_ready(0));
        assert_eq!(shm.wait_symbolic(0), vec![3.0]);
    }

    #[test]
    fn cross_thread_handoff() {
        let shm = SharedMemory::new();
        let device = shm.clone();
        crossbeam::thread::scope(|scope| {
            // Device thread: waits for neural data, doubles it, publishes.
            scope.spawn(move |_| {
                let data = device.wait_neural(7);
                let out: Vec<f64> = data.iter().map(|x| 2.0 * x).collect();
                device.publish_symbolic(7, out);
            });
            // Host thread.
            shm.publish_neural(7, vec![1.5, 2.5]);
            let result = shm.wait_symbolic(7);
            assert_eq!(result, vec![3.0, 5.0]);
        })
        .expect("threads joined");
    }

    #[test]
    fn batches_are_independent() {
        let shm = SharedMemory::new();
        shm.publish_neural(1, vec![1.0]);
        shm.publish_neural(2, vec![2.0]);
        assert_eq!(shm.take_neural(2), Some(vec![2.0]));
        assert_eq!(shm.take_neural(1), Some(vec![1.0]));
    }
}
