//! Step 4: pipeline-aware reordering (paper Fig. 7 "Step 5: Reordering").
//!
//! "Dependent operations are spaced by at least one full pipeline
//! interval, while independent ones are interleaved." The list scheduler
//! below greedily picks, among ready blocks, the one whose most recent
//! producer was scheduled longest ago — maximizing the slack available to
//! hide the tree pipeline latency.

use reason_core::Dag;

use crate::blocks::BlockDecomposition;

/// Orders the blocks of `decomposition` for issue.
///
/// With `pipeline_aware == false` the natural topological order is
/// returned (the paper's scheduling ablation); otherwise a slack-greedy
/// list schedule.
pub fn schedule_blocks(
    dag: &Dag,
    decomposition: &BlockDecomposition,
    pipeline_aware: bool,
) -> Vec<usize> {
    let n = decomposition.blocks.len();
    if !pipeline_aware || n <= 1 {
        return (0..n).collect();
    }

    // Block-level dependency edges: block b depends on producer blocks of
    // its operands.
    let mut deps: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (bi, block) in decomposition.blocks.iter().enumerate() {
        for op in &block.operands {
            if let Some(producer) = decomposition.block_of[op.index()] {
                if producer != bi && !deps[bi].contains(&producer) {
                    deps[bi].push(producer);
                    consumers[producer].push(bi);
                }
            }
        }
    }
    let _ = dag;

    let mut pending: Vec<usize> = deps.iter().map(Vec::len).collect();
    let mut scheduled_at: Vec<Option<usize>> = vec![None; n];
    let mut ready: Vec<usize> = (0..n).filter(|&b| pending[b] == 0).collect();
    let mut order: Vec<usize> = Vec::with_capacity(n);

    while let Some(pick_pos) = pick_most_slack(&ready, &deps, &scheduled_at, order.len()) {
        let b = ready.swap_remove(pick_pos);
        scheduled_at[b] = Some(order.len());
        order.push(b);
        for &c in &consumers[b] {
            pending[c] -= 1;
            if pending[c] == 0 {
                ready.push(c);
            }
        }
    }
    debug_assert_eq!(order.len(), n, "dependency graph must be acyclic");
    order
}

/// Among ready blocks, pick the one whose latest producer is oldest
/// (maximum pipeline slack); ties break toward the lowest block index to
/// keep the schedule deterministic.
fn pick_most_slack(
    ready: &[usize],
    deps: &[Vec<usize>],
    scheduled_at: &[Option<usize>],
    now: usize,
) -> Option<usize> {
    if ready.is_empty() {
        return None;
    }
    let mut best_pos = 0;
    let mut best_key = (usize::MIN, usize::MAX);
    for (pos, &b) in ready.iter().enumerate() {
        let latest_producer = deps[b]
            .iter()
            .map(|&p| scheduled_at[p].expect("producers scheduled before consumers"))
            .max();
        // Slack: distance from the latest producer (blocks with no
        // producers have infinite slack).
        let slack = match latest_producer {
            None => usize::MAX,
            Some(t) => now - t,
        };
        let key = (slack, usize::MAX - b);
        if key > best_key {
            best_key = key;
            best_pos = pos;
        }
    }
    Some(best_pos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::decompose_blocks;
    use reason_core::{DagBuilder, DagOp, NodeKind};

    /// Two independent chains: a good schedule interleaves them.
    fn two_chains() -> Dag {
        let mut b = DagBuilder::without_cse();
        let x = b.input(0);
        let y = b.input(1);
        let mut a = b.node(DagOp::Not, vec![x], NodeKind::Generic);
        let mut c = b.node(DagOp::Not, vec![y], NodeKind::Generic);
        for _ in 0..3 {
            a = b.node(DagOp::Not, vec![a], NodeKind::Generic);
            c = b.node(DagOp::Not, vec![c], NodeKind::Generic);
        }
        let root = b.node(DagOp::Mul, vec![a, c], NodeKind::Generic);
        b.build(root).unwrap()
    }

    #[test]
    fn respects_dependencies() {
        let dag = two_chains();
        let d = decompose_blocks(&dag, 1);
        let order = schedule_blocks(&dag, &d, true);
        let mut position = vec![0usize; order.len()];
        for (pos, &b) in order.iter().enumerate() {
            position[b] = pos;
        }
        for (bi, block) in d.blocks.iter().enumerate() {
            for op in &block.operands {
                if let Some(p) = d.block_of[op.index()] {
                    assert!(position[p] < position[bi], "producer must precede consumer");
                }
            }
        }
    }

    #[test]
    fn interleaves_independent_chains() {
        let dag = two_chains();
        let d = decompose_blocks(&dag, 1);
        let order = schedule_blocks(&dag, &d, true);
        // Count adjacent pairs that are dependent (producer immediately
        // before consumer): interleaving should avoid most of them.
        let mut adjacent_dependent = 0;
        for w in order.windows(2) {
            let consumer = &d.blocks[w[1]];
            let producer_root = d.blocks[w[0]].root;
            if consumer.operands.contains(&producer_root) {
                adjacent_dependent += 1;
            }
        }
        // The naive order would have nearly all pairs dependent; the
        // scheduler interleaves the two chains.
        assert!(
            adjacent_dependent * 2 <= order.len(),
            "schedule leaves {adjacent_dependent} adjacent dependences in {} issues",
            order.len()
        );
    }

    #[test]
    fn disabled_scheduling_is_identity() {
        let dag = two_chains();
        let d = decompose_blocks(&dag, 1);
        let order = schedule_blocks(&dag, &d, false);
        assert_eq!(order, (0..d.blocks.len()).collect::<Vec<_>>());
    }
}
