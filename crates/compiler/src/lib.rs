//! `reason-compiler` — DAG-to-hardware mapping (paper Sec. V-C, Fig. 7).
//!
//! The compiler lowers a two-input-regular [`reason_core::Dag`] onto the
//! tree-PE architecture in the paper's four steps:
//!
//! 1. **Block decomposition** ([`blocks`]) — a greedy bottom-up pass
//!    carves the DAG into depth-bounded fused subtrees ("schedulable
//!    subgraphs whose maximum depth does not exceed the hardware tree
//!    depth"), maximizing PE utilization while keeping multi-consumer
//!    values in registers.
//! 2. **PE and register mapping** ([`mapping`]) — every live value
//!    (constant, kernel input, block result) is assigned a register bank
//!    by a conflict-aware heuristic that minimizes same-cycle dual-port
//!    collisions among co-read operands; a round-robin fallback models the
//!    paper's bank-mapping ablation.
//! 3. **Tree mapping** — fusion happens during decomposition; block node
//!    lists are emitted in intra-block topological order so they drop
//!    directly onto the PE tree levels.
//! 4. **Reordering** ([`schedule`]) — pipeline-aware list scheduling
//!    interleaves independent blocks between dependent ones to hide the
//!    tree pipeline latency; disabled under the scheduling ablation.
//!
//! Emission ([`emit`]) runs a compile-time mirror of the hardware's
//! automatic write-address allocator, so every instruction carries the
//! *predicted* write location that `reason-arch` verifies at runtime —
//! the paper's "the compiler precisely predicts these write addresses at
//! compile time".
//!
//! # Example
//!
//! ```
//! use reason_arch::{ArchConfig, VliwExecutor};
//! use reason_compiler::ReasonCompiler;
//! use reason_core::{DagBuilder, DagOp, NodeKind};
//!
//! // (x0 + x1) * (x2 + x3)
//! let mut b = DagBuilder::new();
//! let xs: Vec<_> = (0..4).map(|i| b.input(i)).collect();
//! let l = b.node(DagOp::Add, vec![xs[0], xs[1]], NodeKind::Generic);
//! let r = b.node(DagOp::Add, vec![xs[2], xs[3]], NodeKind::Generic);
//! let root = b.node(DagOp::Mul, vec![l, r], NodeKind::Generic);
//! let dag = b.build(root).unwrap();
//!
//! let config = ArchConfig::paper();
//! let kernel = ReasonCompiler::new(config).compile(&dag).unwrap();
//! let program = kernel.program(&[1.0, 2.0, 3.0, 4.0]);
//! let report = VliwExecutor::new(config).execute(&program);
//! assert_eq!(report.output, 21.0);
//! ```

pub mod blocks;
pub mod emit;
pub mod mapping;
pub mod schedule;

use std::fmt;

use reason_arch::ArchConfig;
use reason_core::Dag;

pub use blocks::{decompose_blocks, Block, BlockDecomposition};
pub use emit::{CompileReport, CompiledKernel};
pub use mapping::{assign_banks, BankAssignment};
pub use schedule::schedule_blocks;

/// Errors raised during compilation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The DAG has a node with fan-in above 2; run
    /// [`reason_core::regularize()`] first.
    NotTwoInputRegular {
        /// Offending fan-in found.
        fan_in: usize,
    },
    /// The kernel's live values exceed the register file even after
    /// live-range recycling.
    RegisterOverflow {
        /// Registers available.
        capacity: usize,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::NotTwoInputRegular { fan_in } => {
                write!(f, "DAG has fan-in {fan_in}; two-input regularization required")
            }
            CompileError::RegisterOverflow { capacity } => {
                write!(f, "register demand exceeds the {capacity}-entry register file")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// The mapping compiler.
#[derive(Debug, Clone, Copy)]
pub struct ReasonCompiler {
    config: ArchConfig,
}

impl ReasonCompiler {
    /// A compiler targeting `config`.
    pub fn new(config: ArchConfig) -> Self {
        config.validate();
        ReasonCompiler { config }
    }

    /// The target architecture.
    pub fn config(&self) -> &ArchConfig {
        &self.config
    }

    /// Compiles a DAG into a reusable kernel (constants baked in, inputs
    /// bound per invocation via [`CompiledKernel::program`]).
    ///
    /// # Errors
    ///
    /// Returns [`CompileError`] if the DAG is not two-input regular or
    /// exceeds the register file.
    pub fn compile(&self, dag: &Dag) -> Result<CompiledKernel, CompileError> {
        let fan_in = dag.max_fan_in();
        if fan_in > 2 {
            return Err(CompileError::NotTwoInputRegular { fan_in });
        }
        let decomposition = decompose_blocks(dag, self.config.tree_depth);
        let order = schedule_blocks(dag, &decomposition, self.config.ablation.scheduling);
        let banks = assign_banks(
            dag,
            &decomposition,
            &order,
            self.config.num_banks,
            self.config.ablation.bank_mapping,
        );
        emit::emit_program(dag, &decomposition, &order, &banks, &self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reason_arch::VliwExecutor;
    use reason_core::{dag_from_circuit, dag_from_cnf, dag_from_hmm, regularize};
    use reason_core::{DagBuilder, DagOp, NodeKind};
    use reason_pc::{random_mixture_circuit, Evidence, StructureConfig};
    use reason_sat::gen::random_ksat;

    #[test]
    fn rejects_wide_dags() {
        let mut b = DagBuilder::new();
        let xs: Vec<_> = (0..5).map(|i| b.input(i)).collect();
        let sum = b.node(DagOp::Add, xs, NodeKind::Generic);
        let dag = b.build(sum).unwrap();
        let err = ReasonCompiler::new(ArchConfig::paper()).compile(&dag).unwrap_err();
        assert!(matches!(err, CompileError::NotTwoInputRegular { fan_in: 5 }));
    }

    #[test]
    fn sat_kernel_end_to_end_matches_dag() {
        let config = ArchConfig::paper();
        let cnf = random_ksat(8, 28, 3, 11);
        let (dag, _) = dag_from_cnf(&cnf);
        let dag = regularize(&dag);
        let kernel = ReasonCompiler::new(config).compile(&dag).unwrap();
        let exec = VliwExecutor::new(config);
        for bits in (0..256u32).step_by(11) {
            let inputs: Vec<f64> = (0..8).map(|v| f64::from(bits >> v & 1)).collect();
            let expect = dag.evaluate_output(&inputs);
            let report = exec.execute(&kernel.program(&inputs));
            assert_eq!(report.output, expect, "bits {bits:08b}");
        }
    }

    #[test]
    fn pc_kernel_end_to_end_matches_dag() {
        let config = ArchConfig::paper();
        let cfg = StructureConfig { num_vars: 6, depth: 3, num_components: 2, seed: 21 };
        let circuit = random_mixture_circuit(&cfg);
        let (dag, map) = dag_from_circuit(&circuit);
        let dag = regularize(&dag);
        let kernel = ReasonCompiler::new(config).compile(&dag).unwrap();
        let exec = VliwExecutor::new(config);
        let evidences: Vec<Vec<Option<usize>>> = vec![
            vec![Some(1), Some(0), Some(1), Some(1), Some(0), Some(1)],
            vec![None, Some(1), None, None, Some(0), None],
            vec![None; 6],
        ];
        for ev in evidences {
            let inputs = map.inputs_for_evidence(circuit.arities(), &ev);
            let expect = circuit.probability(&Evidence::from_values(&ev));
            let report = exec.execute(&kernel.program(&inputs));
            assert!(
                (report.output - expect).abs() < 1e-9,
                "evidence {ev:?}: hw {} vs circuit {expect}",
                report.output
            );
        }
    }

    #[test]
    fn hmm_kernel_end_to_end_matches_dag() {
        let config = ArchConfig::paper();
        let hmm = reason_hmm::Hmm::random(3, 3, 5);
        let (dag, map) = dag_from_hmm(&hmm, 6);
        let dag = regularize(&dag);
        let kernel = ReasonCompiler::new(config).compile(&dag).unwrap();
        let exec = VliwExecutor::new(config);
        let obs = [0usize, 2, 1, 1, 0, 2];
        let wrapped: Vec<Option<usize>> = obs.iter().map(|&o| Some(o)).collect();
        let inputs = map.inputs_for_observations(&wrapped);
        let report = exec.execute(&kernel.program(&inputs));
        let expect = hmm.log_likelihood(&obs).exp();
        assert!((report.output - expect).abs() < 1e-9);
    }

    #[test]
    fn scheduling_reduces_stalls() {
        let config = ArchConfig::paper();
        let mut no_sched = config;
        no_sched.ablation.scheduling = false;
        let cnf = random_ksat(12, 48, 3, 3);
        let (dag, _) = dag_from_cnf(&cnf);
        let dag = regularize(&dag);
        let sched = ReasonCompiler::new(config).compile(&dag).unwrap();
        let unsched = ReasonCompiler::new(no_sched).compile(&dag).unwrap();
        let inputs = vec![1.0; 12];
        let fast = VliwExecutor::new(config).execute(&sched.program(&inputs));
        let slow = VliwExecutor::new(no_sched).execute(&unsched.program(&inputs));
        assert_eq!(fast.output, slow.output);
        assert!(
            fast.cycles < slow.cycles,
            "scheduling must reduce cycles: {} vs {}",
            fast.cycles,
            slow.cycles
        );
    }

    #[test]
    fn bank_mapping_reduces_conflicts() {
        let config = ArchConfig::paper();
        let mut no_map = config;
        no_map.ablation.bank_mapping = false;
        let cfg = StructureConfig { num_vars: 8, depth: 3, num_components: 3, seed: 4 };
        let circuit = random_mixture_circuit(&cfg);
        let (dag, map) = dag_from_circuit(&circuit);
        let dag = regularize(&dag);
        let mapped = ReasonCompiler::new(config).compile(&dag).unwrap();
        let unmapped = ReasonCompiler::new(no_map).compile(&dag).unwrap();
        let inputs = map.inputs_for_evidence(circuit.arities(), &[None; 8]);
        let good = VliwExecutor::new(config).execute(&mapped.program(&inputs));
        let bad = VliwExecutor::new(no_map).execute(&unmapped.program(&inputs));
        assert!((good.output - bad.output).abs() < 1e-12);
        assert!(
            good.conflict_stall_cycles <= bad.conflict_stall_cycles,
            "conflict-aware mapping must not increase conflicts"
        );
    }

    #[test]
    fn degenerate_single_input_dag() {
        let mut b = DagBuilder::new();
        let x = b.input(0);
        let dag = b.build(x).unwrap();
        let config = ArchConfig::paper();
        let kernel = ReasonCompiler::new(config).compile(&dag).unwrap();
        let report = VliwExecutor::new(config).execute(&kernel.program(&[42.0]));
        assert_eq!(report.output, 42.0);
    }

    #[test]
    fn constant_only_dag() {
        let mut b = DagBuilder::new();
        let c = b.constant(7.5);
        let dag = b.build(c).unwrap();
        let config = ArchConfig::paper();
        let kernel = ReasonCompiler::new(config).compile(&dag).unwrap();
        let report = VliwExecutor::new(config).execute(&kernel.program(&[]));
        assert_eq!(report.output, 7.5);
    }
}
