//! Step 1: greedy depth-bounded block decomposition (paper Fig. 7,
//! Step 2 "Block Decomposition").
//!
//! Compute nodes fuse into their unique consumer while the fused subtree
//! stays within the hardware tree depth; any node with multiple consumers
//! (or whose fusion would overflow the depth) becomes a *block root*
//! whose value round-trips through the register file. The result
//! "maximizes PE utilization while minimizing inter-block dependencies
//! that may cause read-after-write stalls".

use reason_core::{Dag, DagOp, NodeId};

/// One block: a fused subtree executed as a single VLIW issue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// The root DAG node (its value is written back to a register).
    pub root: NodeId,
    /// All member DAG nodes in intra-block topological order (children
    /// before parents, root last). Only compute nodes appear.
    pub members: Vec<NodeId>,
    /// External operands: DAG nodes whose values are read from registers
    /// (inputs, constants, or other blocks' roots), deduplicated.
    pub operands: Vec<NodeId>,
    /// Fused depth of the block.
    pub depth: usize,
}

/// The decomposition of a whole DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockDecomposition {
    /// Blocks in DAG topological order of their roots.
    pub blocks: Vec<Block>,
    /// For each DAG node: the index of the block it belongs to (compute
    /// nodes only; `None` for inputs/constants).
    pub block_of: Vec<Option<usize>>,
}

impl BlockDecomposition {
    /// The block whose root is the DAG output.
    ///
    /// Degenerate DAGs whose output is an input/constant have no blocks;
    /// emission synthesizes a pass-through block for them.
    pub fn output_block(&self, dag: &Dag) -> Option<usize> {
        self.block_of[dag.output().index()]
    }
}

/// Decomposes `dag` into depth-bounded blocks.
///
/// # Panics
///
/// Panics if `max_depth == 0`.
pub fn decompose_blocks(dag: &Dag, max_depth: usize) -> BlockDecomposition {
    assert!(max_depth >= 1, "tree depth must be positive");
    let n = dag.num_nodes();

    // Fan-out per node (consumer count).
    let mut fan_out = vec![0usize; n];
    for node in dag.nodes() {
        for c in &node.children {
            fan_out[c.index()] += 1;
        }
    }
    // The output is consumed externally.
    fan_out[dag.output().index()] += 1;

    let is_compute = |id: usize| !matches!(dag.nodes()[id].op, DagOp::Input(_) | DagOp::Const(_));

    // Greedy fusion: child c fuses into its consumer iff it is a compute
    // node with exactly one consumer and the fused depth fits.
    let mut fused_depth = vec![0usize; n]; // depth of fused subtree rooted here
    let mut fuses_up = vec![false; n];
    for (i, node) in dag.nodes().iter().enumerate() {
        if !is_compute(i) {
            continue;
        }
        let mut depth = 1;
        for c in &node.children {
            let ci = c.index();
            if is_compute(ci) && fan_out[ci] == 1 && fused_depth[ci] < max_depth {
                // Tentatively fuse.
                depth = depth.max(fused_depth[ci] + 1);
            }
        }
        fused_depth[i] = depth;
        // Mark children that actually fused (same condition, now final).
        for c in &node.children {
            let ci = c.index();
            if is_compute(ci) && fan_out[ci] == 1 && fused_depth[ci] < max_depth {
                fuses_up[ci] = true;
            }
        }
    }

    // Roots: compute nodes that do not fuse upward.
    let mut block_of: Vec<Option<usize>> = vec![None; n];
    let mut blocks: Vec<Block> = Vec::new();
    for i in 0..n {
        if !is_compute(i) || fuses_up[i] {
            continue;
        }
        // Collect the fused subtree under root i.
        let mut members: Vec<NodeId> = Vec::new();
        let mut operands: Vec<NodeId> = Vec::new();
        collect(dag, i, &fuses_up, &mut members, &mut operands);
        members.reverse(); // children-first

        // Deduplicate operands preserving order.
        let mut seen = std::collections::HashSet::new();
        operands.retain(|o| seen.insert(*o));
        let block_idx = blocks.len();
        for m in &members {
            block_of[m.index()] = Some(block_idx);
        }
        blocks.push(Block {
            root: NodeId::from_index(i),
            members,
            operands,
            depth: fused_depth[i],
        });
    }

    BlockDecomposition { blocks, block_of }
}

/// Post-order collection of the fused subtree (root first into `members`,
/// reversed by the caller).
fn collect(
    dag: &Dag,
    root: usize,
    fuses_up: &[bool],
    members: &mut Vec<NodeId>,
    operands: &mut Vec<NodeId>,
) {
    members.push(NodeId::from_index(root));
    for c in &dag.nodes()[root].children {
        let ci = c.index();
        let fused_member =
            fuses_up[ci] && !matches!(dag.nodes()[ci].op, DagOp::Input(_) | DagOp::Const(_));
        if fused_member {
            collect(dag, ci, fuses_up, members, operands);
        } else {
            operands.push(*c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reason_core::{dag_from_cnf, regularize, DagBuilder, NodeKind};
    use reason_sat::gen::random_ksat;

    #[test]
    fn fuses_small_trees_into_one_block() {
        let mut b = DagBuilder::new();
        let xs: Vec<_> = (0..4).map(|i| b.input(i)).collect();
        let l = b.node(DagOp::Add, vec![xs[0], xs[1]], NodeKind::Generic);
        let r = b.node(DagOp::Add, vec![xs[2], xs[3]], NodeKind::Generic);
        let root = b.node(DagOp::Mul, vec![l, r], NodeKind::Generic);
        let dag = b.build(root).unwrap();
        let d = decompose_blocks(&dag, 3);
        assert_eq!(d.blocks.len(), 1);
        assert_eq!(d.blocks[0].members.len(), 3);
        assert_eq!(d.blocks[0].operands.len(), 4);
        assert_eq!(d.blocks[0].depth, 2);
    }

    #[test]
    fn depth_bound_splits_chains() {
        // A chain of 6 Not nodes with depth bound 2 → 3 blocks.
        let mut b = DagBuilder::without_cse();
        let mut cur = b.input(0);
        for _ in 0..6 {
            cur = b.node(DagOp::Not, vec![cur], NodeKind::Generic);
        }
        let dag = b.build(cur).unwrap();
        let d = decompose_blocks(&dag, 2);
        assert_eq!(d.blocks.len(), 3);
        assert!(d.blocks.iter().all(|blk| blk.depth <= 2));
    }

    #[test]
    fn multi_consumer_values_become_roots() {
        // shared = x0+x1 consumed twice → must be its own block root.
        let mut b = DagBuilder::new();
        let x0 = b.input(0);
        let x1 = b.input(1);
        let shared = b.node(DagOp::Add, vec![x0, x1], NodeKind::Generic);
        let a = b.node(DagOp::Not, vec![shared], NodeKind::Generic);
        let root = b.node(DagOp::Mul, vec![a, shared], NodeKind::Generic);
        let dag = b.build(root).unwrap();
        let d = decompose_blocks(&dag, 4);
        // `shared` is a separate block; `a` fuses into root's block.
        assert_eq!(d.blocks.len(), 2);
        let shared_block = d.block_of[shared.index()].unwrap();
        assert_eq!(d.blocks[shared_block].root, shared);
    }

    #[test]
    fn every_compute_node_is_covered_exactly_once() {
        let cnf = random_ksat(10, 40, 3, 5);
        let (dag, _) = dag_from_cnf(&cnf);
        let dag = regularize(&dag);
        let d = decompose_blocks(&dag, 3);
        let mut covered = vec![0usize; dag.num_nodes()];
        for blk in &d.blocks {
            for m in &blk.members {
                covered[m.index()] += 1;
            }
            assert!(blk.depth <= 3);
        }
        for (i, node) in dag.nodes().iter().enumerate() {
            let expect = usize::from(!matches!(node.op, DagOp::Input(_) | DagOp::Const(_)));
            assert_eq!(covered[i], expect, "node {i} coverage");
        }
    }

    #[test]
    fn operands_are_block_external() {
        let cnf = random_ksat(8, 30, 3, 6);
        let (dag, _) = dag_from_cnf(&cnf);
        let dag = regularize(&dag);
        let d = decompose_blocks(&dag, 3);
        for (bi, blk) in d.blocks.iter().enumerate() {
            for op in &blk.operands {
                assert_ne!(d.block_of[op.index()], Some(bi), "operand inside its own block");
            }
        }
    }
}
