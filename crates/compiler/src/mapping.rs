//! Step 2: conflict-aware register-bank assignment (paper Fig. 7
//! "Step 3: PE and Register Mapping").
//!
//! "Operands are allocated to banks to avoid simultaneous conflicts [...]
//! This conflict-aware strategy minimizes bank contention and balances
//! data traffic across banks." Every *value* (kernel input, constant, or
//! block result) gets a home bank; the cost of placing value `v` in bank
//! `k` counts, over all blocks that read `v`, the co-operands already
//! assigned to `k` — dual-ported banks serve two reads per cycle, so each
//! additional co-resident operand risks a stall cycle.

use std::collections::HashMap;

use reason_core::{Dag, DagOp, NodeId};

use crate::blocks::BlockDecomposition;

/// The value→bank map produced by [`assign_banks`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BankAssignment {
    bank_of: HashMap<NodeId, usize>,
    num_banks: usize,
}

impl BankAssignment {
    /// The bank assigned to a value node.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not a value node (input/const/block root).
    pub fn bank_of(&self, value: NodeId) -> usize {
        *self.bank_of.get(&value).unwrap_or_else(|| panic!("{value} has no bank assignment"))
    }

    /// Number of banks targeted.
    pub fn num_banks(&self) -> usize {
        self.num_banks
    }

    /// Histogram of values per bank (load-balance diagnostics).
    pub fn load_histogram(&self) -> Vec<usize> {
        let mut h = vec![0usize; self.num_banks];
        for &b in self.bank_of.values() {
            h[b] += 1;
        }
        h
    }
}

/// Assigns every value node a register bank.
///
/// `conflict_aware == false` falls back to round-robin placement (the
/// paper's bank-mapping ablation).
pub fn assign_banks(
    dag: &Dag,
    decomposition: &BlockDecomposition,
    order: &[usize],
    num_banks: usize,
    conflict_aware: bool,
) -> BankAssignment {
    // Values: inputs and constants (in node order), then block roots (in
    // schedule order).
    let mut values: Vec<NodeId> = Vec::new();
    for (i, node) in dag.nodes().iter().enumerate() {
        if matches!(node.op, DagOp::Input(_) | DagOp::Const(_)) {
            values.push(NodeId::from_index(i));
        }
    }
    for &bi in order {
        values.push(decomposition.blocks[bi].root);
    }

    // Reader groups: for each block, its operand list (co-read set).
    let readers_of: HashMap<NodeId, Vec<usize>> = {
        let mut m: HashMap<NodeId, Vec<usize>> = HashMap::new();
        for (bi, block) in decomposition.blocks.iter().enumerate() {
            for op in &block.operands {
                m.entry(*op).or_default().push(bi);
            }
        }
        m
    };

    let mut bank_of: HashMap<NodeId, usize> = HashMap::new();
    let mut load = vec![0usize; num_banks];
    for (vi, &v) in values.iter().enumerate() {
        let bank = if conflict_aware {
            let mut best = 0usize;
            let mut best_cost = usize::MAX;
            for k in 0..num_banks {
                // Conflict cost: co-operands already placed in bank k
                // across every block that reads v.
                let mut cost = 0usize;
                if let Some(blocks) = readers_of.get(&v) {
                    for &bi in blocks {
                        for op in &decomposition.blocks[bi].operands {
                            if *op != v && bank_of.get(op) == Some(&k) {
                                cost += 1;
                            }
                        }
                    }
                }
                // Weight conflicts heavily; break ties by load balance.
                let key = cost * 4096 + load[k];
                if key < best_cost {
                    best_cost = key;
                    best = k;
                }
            }
            best
        } else {
            vi % num_banks
        };
        bank_of.insert(v, bank);
        load[bank] += 1;
    }

    BankAssignment { bank_of, num_banks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::decompose_blocks;
    use crate::schedule::schedule_blocks;
    use reason_core::{dag_from_cnf, regularize, DagBuilder, NodeKind};
    use reason_sat::gen::random_ksat;

    #[test]
    fn co_read_operands_spread_across_banks() {
        // One block reading four values: conflict-aware placement puts
        // them in four distinct banks.
        let mut b = DagBuilder::new();
        let xs: Vec<_> = (0..4).map(|i| b.input(i)).collect();
        let l = b.node(reason_core::DagOp::Add, vec![xs[0], xs[1]], NodeKind::Generic);
        let r = b.node(reason_core::DagOp::Add, vec![xs[2], xs[3]], NodeKind::Generic);
        let root = b.node(reason_core::DagOp::Mul, vec![l, r], NodeKind::Generic);
        let dag = b.build(root).unwrap();
        let d = decompose_blocks(&dag, 3);
        let order = schedule_blocks(&dag, &d, true);
        let assignment = assign_banks(&dag, &d, &order, 8, true);
        let banks: std::collections::HashSet<usize> =
            xs.iter().map(|&x| assignment.bank_of(x)).collect();
        assert_eq!(banks.len(), 4, "four co-read operands in four banks");
    }

    #[test]
    fn round_robin_is_deterministic() {
        let cnf = random_ksat(8, 24, 3, 1);
        let (dag, _) = dag_from_cnf(&cnf);
        let dag = regularize(&dag);
        let d = decompose_blocks(&dag, 3);
        let order = schedule_blocks(&dag, &d, true);
        let a = assign_banks(&dag, &d, &order, 16, false);
        let b = assign_banks(&dag, &d, &order, 16, false);
        assert_eq!(a, b);
    }

    #[test]
    fn all_values_are_assigned() {
        let cnf = random_ksat(10, 35, 3, 2);
        let (dag, _) = dag_from_cnf(&cnf);
        let dag = regularize(&dag);
        let d = decompose_blocks(&dag, 3);
        let order = schedule_blocks(&dag, &d, true);
        let assignment = assign_banks(&dag, &d, &order, 16, true);
        for block in &d.blocks {
            let _ = assignment.bank_of(block.root);
            for op in &block.operands {
                let _ = assignment.bank_of(*op);
            }
        }
        let total: usize = assignment.load_histogram().iter().sum();
        assert!(total > 0);
    }

    #[test]
    fn conflict_aware_beats_round_robin_on_conflict_count() {
        let cnf = random_ksat(12, 45, 3, 7);
        let (dag, _) = dag_from_cnf(&cnf);
        let dag = regularize(&dag);
        let d = decompose_blocks(&dag, 3);
        let order = schedule_blocks(&dag, &d, true);
        let aware = assign_banks(&dag, &d, &order, 8, true);
        let naive = assign_banks(&dag, &d, &order, 8, false);
        let conflicts = |a: &BankAssignment| -> usize {
            d.blocks
                .iter()
                .map(|blk| {
                    let mut per_bank = [0usize; 8];
                    for op in &blk.operands {
                        per_bank[a.bank_of(*op)] += 1;
                    }
                    per_bank.iter().map(|&n| n.saturating_sub(2)).sum::<usize>()
                })
                .sum()
        };
        assert!(
            conflicts(&aware) <= conflicts(&naive),
            "aware {} vs naive {}",
            conflicts(&aware),
            conflicts(&naive)
        );
    }
}
