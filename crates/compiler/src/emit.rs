//! Program emission: registers, live ranges, and VLIW encoding.
//!
//! Emission runs a compile-time mirror of the hardware register allocator
//! (same lowest-free policy, same alloc/free order), so every
//! instruction's write location is *predicted* exactly and checked by the
//! executor at runtime. Live-range analysis attaches register frees to
//! the last reader so long kernels recycle the register file.

use std::collections::HashMap;

use reason_arch::{
    ArchConfig, BankAddr, BlockNode, BlockOperand, RegisterBanks, TreeOp, VliwInstr, VliwProgram,
};
use reason_core::{Dag, DagOp, NodeId};

use crate::blocks::BlockDecomposition;
use crate::mapping::BankAssignment;
use crate::CompileError;

/// Compilation statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompileReport {
    /// Blocks produced by decomposition.
    pub blocks: usize,
    /// Instructions emitted (= blocks, plus a pass-through for degenerate
    /// outputs).
    pub instructions: usize,
    /// Total register reads across instructions.
    pub reads: usize,
    /// Deepest block.
    pub max_block_depth: usize,
    /// Peak live registers during the compile-time allocator mirror.
    pub peak_live_registers: usize,
}

/// A compiled kernel: a program template with constants baked in and
/// input locations bound per invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledKernel {
    template: VliwProgram,
    /// (input slot, register location) pairs.
    input_slots: Vec<(u32, BankAddr)>,
    /// Compilation statistics.
    pub report: CompileReport,
}

impl CompiledKernel {
    /// The program template (constants preloaded, inputs unbound).
    pub fn template(&self) -> &VliwProgram {
        &self.template
    }

    /// Number of input slots the kernel expects.
    pub fn num_inputs(&self) -> usize {
        self.input_slots.iter().map(|&(s, _)| s as usize + 1).max().unwrap_or(0)
    }

    /// Analytic no-stall cycle bound for this kernel on `config`.
    ///
    /// Models the executor's ideal schedule: instructions issue
    /// round-robin across the tree PEs one cycle apart, the pipeline
    /// drains once at the end, and a non-reconfigurable datapath pays
    /// its mode-configuration penalty up front. The cycle-accurate
    /// [`reason_arch::VliwExecutor`] can only *add* RAW-hazard and
    /// bank-conflict stalls on top of that schedule (its VLIW timing is
    /// data-independent otherwise), so for every input binding
    /// `predicted_cycles(config) <= ExecutionReport::cycles`, with
    /// equality exactly when nothing stalls.
    pub fn predicted_cycles(&self, config: &ArchConfig) -> u64 {
        let pipeline_depth = config.pipeline_depth() as u64;
        let reconfig = if config.ablation.reconfigurable {
            0
        } else {
            2 * pipeline_depth + config.total_nodes() as u64
        };
        let n = self.template.instructions.len() as u64;
        let pes = config.num_pes.max(1) as u64;
        reconfig + n.div_ceil(pes) + pipeline_depth
    }

    /// Binds input values (indexed by slot) into an executable program.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is shorter than the highest input slot.
    pub fn program(&self, inputs: &[f64]) -> VliwProgram {
        let mut program = self.template.clone();
        for &(slot, at) in &self.input_slots {
            assert!(
                (slot as usize) < inputs.len(),
                "kernel expects input slot {slot} but only {} values given",
                inputs.len()
            );
            program.preload.push((at, inputs[slot as usize]));
        }
        program
    }
}

fn tree_op(op: DagOp) -> TreeOp {
    match op {
        DagOp::Add => TreeOp::Add,
        DagOp::Mul => TreeOp::Mul,
        DagOp::Max => TreeOp::Max,
        DagOp::Not => TreeOp::Not,
        DagOp::Input(_) | DagOp::Const(_) => TreeOp::Pass,
    }
}

/// Emits the final program.
pub fn emit_program(
    dag: &Dag,
    decomposition: &BlockDecomposition,
    order: &[usize],
    banks: &BankAssignment,
    config: &ArchConfig,
) -> Result<CompiledKernel, CompileError> {
    let mut mirror = RegisterBanks::new(config.num_banks, config.regs_per_bank);
    let mut location: HashMap<NodeId, BankAddr> = HashMap::new();
    let mut preload: Vec<(BankAddr, f64)> = Vec::new();
    let mut input_slots: Vec<(u32, BankAddr)> = Vec::new();

    // Allocate inputs and constants first (the runtime preload phase).
    for (i, node) in dag.nodes().iter().enumerate() {
        let id = NodeId::from_index(i);
        match node.op {
            DagOp::Const(c) => {
                let at = alloc(&mut mirror, banks.bank_of(id), config)?;
                preload.push((at, c));
                location.insert(id, at);
            }
            DagOp::Input(slot) => {
                let at = alloc(&mut mirror, banks.bank_of(id), config)?;
                input_slots.push((slot, at));
                location.insert(id, at);
            }
            _ => {}
        }
    }

    // Last-use analysis over the scheduled instruction order.
    // Instruction k reads the operands of block order[k].
    let mut last_use: HashMap<NodeId, usize> = HashMap::new();
    for (k, &bi) in order.iter().enumerate() {
        for op in &decomposition.blocks[bi].operands {
            last_use.insert(*op, k);
        }
    }

    let mut instructions: Vec<VliwInstr> = Vec::with_capacity(order.len());
    let mut output_instr: Option<usize> = None;
    let mut total_reads = 0usize;
    let mut max_depth = 0usize;
    let mut peak_live = 0usize;

    for (k, &bi) in order.iter().enumerate() {
        let block = &decomposition.blocks[bi];
        max_depth = max_depth.max(block.depth);

        // Reads: one per distinct operand.
        let reads: Vec<BankAddr> = block
            .operands
            .iter()
            .map(|op| {
                *location.get(op).unwrap_or_else(|| panic!("operand {op} not yet materialized"))
            })
            .collect();
        total_reads += reads.len();
        let operand_index: HashMap<NodeId, usize> =
            block.operands.iter().enumerate().map(|(i, o)| (*o, i)).collect();
        let member_index: HashMap<NodeId, usize> =
            block.members.iter().enumerate().map(|(i, m)| (*m, i)).collect();

        // Encode block nodes in intra-block topological order.
        let nodes: Vec<BlockNode> = block
            .members
            .iter()
            .map(|m| {
                let dnode = &dag.nodes()[m.index()];
                let fetch = |c: &NodeId| -> BlockOperand {
                    if let Some(&j) = member_index.get(c) {
                        BlockOperand::Node(j)
                    } else {
                        BlockOperand::Read(operand_index[c])
                    }
                };
                let inputs = match dnode.children.len() {
                    1 => {
                        let x = fetch(&dnode.children[0]);
                        [x, x]
                    }
                    2 => [fetch(&dnode.children[0]), fetch(&dnode.children[1])],
                    n => unreachable!("two-input regular DAG has fan-in {n}"),
                };
                // Single-child associative ops are identity passes.
                let op = if dnode.children.len() == 1 && dnode.op.is_associative() {
                    TreeOp::Pass
                } else {
                    tree_op(dnode.op)
                };
                BlockNode { op, inputs }
            })
            .collect();

        // Writeback: the mirror allocator predicts the hardware address.
        let write_bank = pick_bank_with_space(&mirror, banks.bank_of(block.root), config)?;
        let predicted = mirror.alloc_write(write_bank, 0.0);
        location.insert(block.root, predicted);

        // Frees: values whose last use is this instruction (never the
        // kernel output).
        let mut frees: Vec<BankAddr> = Vec::new();
        for op in &block.operands {
            if last_use.get(op) == Some(&k) && *op != dag.output() {
                let at = location[op];
                mirror.free(at);
                frees.push(at);
            }
        }

        peak_live = peak_live.max(mirror.occupancy().iter().sum());
        if block.root == dag.output() {
            output_instr = Some(instructions.len());
        }
        instructions.push(VliwInstr {
            reads,
            nodes,
            write_bank,
            predicted_write: Some(predicted),
            frees,
        });
    }

    // Degenerate DAG: output is an input or constant — emit a pass block.
    let output_instr = match output_instr {
        Some(k) => k,
        None => {
            let at = location[&dag.output()];
            let write_bank = pick_bank_with_space(&mirror, at.bank as usize, config)?;
            let predicted = mirror.alloc_write(write_bank, 0.0);
            instructions.push(VliwInstr {
                reads: vec![at],
                nodes: vec![BlockNode {
                    op: TreeOp::Pass,
                    inputs: [BlockOperand::Read(0), BlockOperand::Read(0)],
                }],
                write_bank,
                predicted_write: Some(predicted),
                frees: vec![],
            });
            total_reads += 1;
            instructions.len() - 1
        }
    };

    let max_block_depth = max_depth.max(1);
    let template = VliwProgram {
        preload,
        instructions,
        output_instr,
        num_banks: config.num_banks,
        max_block_depth,
    };
    let report = CompileReport {
        blocks: decomposition.blocks.len(),
        instructions: template.instructions.len(),
        reads: total_reads,
        max_block_depth,
        peak_live_registers: peak_live,
    };
    Ok(CompiledKernel { template, input_slots, report })
}

/// Allocates in the preferred bank, falling back to the emptiest bank
/// with space.
fn alloc(
    mirror: &mut RegisterBanks,
    preferred: usize,
    config: &ArchConfig,
) -> Result<BankAddr, CompileError> {
    let bank = pick_bank_with_space(mirror, preferred, config)?;
    Ok(mirror.alloc_write(bank, 0.0))
}

fn pick_bank_with_space(
    mirror: &RegisterBanks,
    preferred: usize,
    config: &ArchConfig,
) -> Result<usize, CompileError> {
    let occupancy = mirror.occupancy();
    if occupancy[preferred] < config.regs_per_bank {
        return Ok(preferred);
    }
    occupancy
        .iter()
        .enumerate()
        .filter(|&(_, &o)| o < config.regs_per_bank)
        .min_by_key(|&(_, &o)| o)
        .map(|(k, _)| k)
        .ok_or(CompileError::RegisterOverflow { capacity: config.regfile_words() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ReasonCompiler;
    use reason_arch::VliwExecutor;
    use reason_core::{dag_from_cnf, regularize};
    use reason_sat::gen::random_ksat;

    #[test]
    fn report_counts_are_consistent() {
        let cnf = random_ksat(10, 40, 3, 8);
        let (dag, _) = dag_from_cnf(&cnf);
        let dag = regularize(&dag);
        let config = ArchConfig::paper();
        let kernel = ReasonCompiler::new(config).compile(&dag).unwrap();
        assert_eq!(kernel.report.instructions, kernel.template().instructions.len());
        assert!(kernel.report.max_block_depth <= config.tree_depth);
        assert!(kernel.report.peak_live_registers <= config.regfile_words());
        assert_eq!(kernel.num_inputs(), 10);
    }

    #[test]
    fn register_recycling_keeps_small_footprint() {
        // A long chain should keep a tiny live set thanks to frees.
        let mut b = reason_core::DagBuilder::without_cse();
        let mut cur = b.input(0);
        for _ in 0..200 {
            cur = b.node(DagOp::Not, vec![cur], reason_core::NodeKind::Generic);
        }
        let dag = b.build(cur).unwrap();
        let config = ArchConfig::paper();
        let kernel = ReasonCompiler::new(config).compile(&dag).unwrap();
        assert!(
            kernel.report.peak_live_registers < 20,
            "chain should recycle registers, peak {}",
            kernel.report.peak_live_registers
        );
        // And still compute correctly: 200 NOTs = identity.
        let report = VliwExecutor::new(config).execute(&kernel.program(&[1.0]));
        assert_eq!(report.output, 1.0);
    }

    #[test]
    fn predicted_cycles_lower_bound_the_executor() {
        let config = ArchConfig::paper();
        let cnf = random_ksat(10, 40, 3, 8);
        let (dag, _) = dag_from_cnf(&cnf);
        let dag = regularize(&dag);
        let kernel = ReasonCompiler::new(config).compile(&dag).unwrap();
        let predicted = kernel.predicted_cycles(&config);
        assert!(predicted > 0);
        let exec = VliwExecutor::new(config);
        for bits in [0u32, 0b1010101010, 0b1111111111] {
            let inputs: Vec<f64> = (0..10).map(|v| f64::from(bits >> v & 1)).collect();
            let report = exec.execute(&kernel.program(&inputs));
            assert!(
                predicted <= report.cycles,
                "no-stall bound {predicted} exceeds measured {} cycles",
                report.cycles
            );
        }

        // A non-reconfigurable datapath pays its setup penalty in the
        // bound too, and stays a lower bound.
        let mut fixed = config;
        fixed.ablation.reconfigurable = false;
        let fixed_kernel = ReasonCompiler::new(fixed).compile(&dag).unwrap();
        let fixed_predicted = fixed_kernel.predicted_cycles(&fixed);
        assert!(fixed_predicted > predicted);
        let report = VliwExecutor::new(fixed).execute(&fixed_kernel.program(&[1.0; 10]));
        assert!(fixed_predicted <= report.cycles);
    }

    #[test]
    fn predicted_cycles_exact_on_stall_free_kernels() {
        // A single-instruction kernel cannot stall: the bound is tight.
        let mut b = reason_core::DagBuilder::new();
        let x = b.input(0);
        let y = b.input(1);
        let sum = b.node(DagOp::Add, vec![x, y], reason_core::NodeKind::Generic);
        let dag = b.build(sum).unwrap();
        let config = ArchConfig::paper();
        let kernel = ReasonCompiler::new(config).compile(&dag).unwrap();
        let report = VliwExecutor::new(config).execute(&kernel.program(&[2.0, 3.0]));
        assert_eq!(report.output, 5.0);
        assert_eq!(kernel.predicted_cycles(&config), report.cycles);
    }

    #[test]
    fn small_register_file_overflows_cleanly() {
        // Many simultaneously live values on a tiny register file.
        let mut b = reason_core::DagBuilder::without_cse();
        let inputs: Vec<_> = (0..64).map(|i| b.input(i)).collect();
        // Pairwise products, all live until the end.
        let mut layer: Vec<_> = inputs
            .chunks(2)
            .map(|p| b.node(DagOp::Mul, vec![p[0], p[1]], reason_core::NodeKind::Generic))
            .collect();
        while layer.len() > 1 {
            layer = layer
                .chunks(2)
                .map(|p| {
                    if p.len() == 2 {
                        b.node(DagOp::Add, vec![p[0], p[1]], reason_core::NodeKind::Generic)
                    } else {
                        p[0]
                    }
                })
                .collect();
        }
        let dag = b.build(layer[0]).unwrap();
        let mut tiny = ArchConfig::paper();
        tiny.num_banks = 2;
        tiny.regs_per_bank = 4;
        let result = ReasonCompiler::new(tiny).compile(&dag);
        assert!(matches!(result, Err(CompileError::RegisterOverflow { .. })));
    }
}
