//! LLM cost proxy.
//!
//! The paper's neuro-symbolic workloads wrap LLaMA-class language models.
//! Running such models is neither possible nor necessary here: REASON
//! accelerates the *symbolic* side and only needs the neural side's
//! compute/memory/time profile to reproduce the runtime splits of Fig. 3
//! and the pipeline overlap of Sec. VI-C. [`LlmProxy`] models a
//! decoder-only transformer's FLOPs, parameter traffic, and token-loop
//! latency from its parameter count, following the standard
//! `2 * params` FLOPs-per-token approximation.

/// Aggregate cost of one neural invocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NeuralCost {
    /// Total floating-point operations.
    pub flops: f64,
    /// Bytes of parameter/KV traffic.
    pub bytes: f64,
    /// Latency in seconds on the device described by the throughput
    /// parameters passed to [`LlmProxy::cost`].
    pub seconds: f64,
}

/// A latency/energy proxy for decoder-only LLM inference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LlmProxy {
    /// Parameter count (e.g. `7e9` for a 7B model).
    pub params: f64,
    /// Bytes per parameter (2 for fp16, 1 for int8).
    pub bytes_per_param: f64,
}

impl LlmProxy {
    /// A proxy for a model with `params` parameters stored in fp16.
    pub fn new(params: f64) -> Self {
        LlmProxy { params, bytes_per_param: 2.0 }
    }

    /// Named presets matching the paper's model-size axis (Fig. 2):
    /// "7B", "8B", "13B", "70B", and "GPT" (proxy for a frontier model).
    ///
    /// # Panics
    ///
    /// Panics on an unknown preset name.
    pub fn preset(name: &str) -> Self {
        let params = match name {
            "7B" => 7e9,
            "8B" => 8e9,
            "13B" => 13e9,
            "70B" => 70e9,
            "GPT" => 1750e9,
            other => panic!("unknown LLM preset {other:?}"),
        };
        LlmProxy::new(params)
    }

    /// FLOPs to process `prompt_tokens` and generate `output_tokens`
    /// (≈ `2 * params` per token).
    pub fn flops(&self, prompt_tokens: u64, output_tokens: u64) -> f64 {
        2.0 * self.params * (prompt_tokens + output_tokens) as f64
    }

    /// Bytes moved: every generated token re-reads the parameters
    /// (memory-bound decoding); the prompt is processed in one pass.
    pub fn bytes(&self, output_tokens: u64) -> f64 {
        self.params * self.bytes_per_param * (output_tokens.max(1)) as f64
    }

    /// Full cost on a device with `flops_per_sec` peak compute and
    /// `bytes_per_sec` memory bandwidth: prefill is compute-bound, decode
    /// is bandwidth-bound; the device takes the max of both constraints.
    pub fn cost(
        &self,
        prompt_tokens: u64,
        output_tokens: u64,
        flops_per_sec: f64,
        bytes_per_sec: f64,
    ) -> NeuralCost {
        let flops = self.flops(prompt_tokens, output_tokens);
        let bytes = self.bytes(output_tokens);
        let compute_time = flops / flops_per_sec;
        let memory_time = bytes / bytes_per_sec;
        NeuralCost { flops, bytes, seconds: compute_time.max(memory_time) }
    }

    /// A synthetic task-accuracy proxy: accuracy grows with log-params and
    /// saturates. `compositional` models (LLM + symbolic tools) start
    /// higher and saturate faster — the qualitative shape of paper
    /// Fig. 2(a-c).
    ///
    /// Returns a value in `[0, 1]`.
    pub fn accuracy_proxy(&self, task_difficulty: f64, compositional: bool) -> f64 {
        let capability = (self.params.log10() - 8.0).max(0.0); // 0 at 0.1B
        let boost = if compositional { 1.9 } else { 0.0 };
        let raw = (capability + boost) / (task_difficulty + capability + boost + 1.0);
        raw.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_scale() {
        let small = LlmProxy::preset("7B");
        let big = LlmProxy::preset("70B");
        assert!(big.flops(10, 10) > small.flops(10, 10));
        assert_eq!(small.flops(5, 5), 2.0 * 7e9 * 10.0);
    }

    #[test]
    #[should_panic(expected = "unknown LLM preset")]
    fn bad_preset_panics() {
        let _ = LlmProxy::preset("9000B");
    }

    #[test]
    fn decode_is_memory_bound_on_gpu_like_device() {
        let m = LlmProxy::preset("7B");
        // A6000-like: 38 TFLOPs fp16-ish, 768 GB/s.
        let c = m.cost(128, 128, 38e12, 768e9);
        let memory_time = m.bytes(128) / 768e9;
        assert!(
            (c.seconds - memory_time).abs() / memory_time < 1e-9,
            "decode should be bandwidth-bound"
        );
    }

    #[test]
    fn accuracy_proxy_matches_fig2_shape() {
        let sizes = ["7B", "8B", "13B", "70B"];
        let mut last_mono = 0.0;
        let mut last_comp = 0.0;
        for s in sizes {
            let p = LlmProxy::preset(s);
            let mono = p.accuracy_proxy(2.0, false);
            let comp = p.accuracy_proxy(2.0, true);
            // Compositional beats monolithic at the same size (Fig. 2).
            assert!(comp > mono, "{s}");
            // Both improve with scale.
            assert!(mono >= last_mono);
            assert!(comp >= last_comp);
            last_mono = mono;
            last_comp = comp;
        }
        // A small compositional model beats a much larger monolithic one.
        let comp_7b = LlmProxy::preset("7B").accuracy_proxy(2.0, true);
        let mono_70b = LlmProxy::preset("70B").accuracy_proxy(2.0, false);
        assert!(comp_7b > mono_70b);
    }

    #[test]
    fn costs_are_positive_and_monotone_in_tokens() {
        let m = LlmProxy::preset("13B");
        let a = m.cost(64, 16, 1e12, 1e11);
        let b = m.cost(64, 64, 1e12, 1e11);
        assert!(a.seconds > 0.0);
        assert!(b.seconds > a.seconds);
        assert!(b.flops > a.flops);
    }
}
