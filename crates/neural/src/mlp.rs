//! Multi-layer perceptron inference.
//!
//! NeuroPC-style workloads (paper Table I) pair a small DNN feature
//! extractor with a probabilistic circuit head; this MLP is that DNN
//! substrate, with parameter/FLOP accounting for the characterization
//! experiments.

use crate::tensor::Matrix;

/// One dense layer.
#[derive(Debug, Clone, PartialEq)]
struct Layer {
    weight: Matrix,
    bias: Vec<f32>,
    relu: bool,
}

/// A feed-forward network of dense layers with optional ReLU activations
/// and a softmax or sigmoid output head.
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    layers: Vec<Layer>,
    softmax_output: bool,
    sigmoid_output: bool,
}

/// Builder for [`Mlp`].
///
/// ```
/// use reason_neural::{MlpBuilder, Matrix};
/// let mlp = MlpBuilder::new(4)
///     .layer(8, true, 1)
///     .layer(3, false, 2)
///     .softmax()
///     .build();
/// let x = Matrix::random(1, 4, 1.0, 3);
/// let y = mlp.forward(&x);
/// assert_eq!(y.cols(), 3);
/// let total: f32 = y.data().iter().sum();
/// assert!((total - 1.0).abs() < 1e-5);
/// ```
#[derive(Debug, Clone)]
pub struct MlpBuilder {
    input_dim: usize,
    layers: Vec<Layer>,
    softmax_output: bool,
    sigmoid_output: bool,
}

impl MlpBuilder {
    /// Starts a builder for inputs of width `input_dim`.
    pub fn new(input_dim: usize) -> Self {
        MlpBuilder { input_dim, layers: Vec::new(), softmax_output: false, sigmoid_output: false }
    }

    /// Appends a dense layer with `width` outputs and seeded random
    /// parameters; `relu` enables the activation.
    pub fn layer(mut self, width: usize, relu: bool, seed: u64) -> Self {
        let in_dim = self.layers.last().map_or(self.input_dim, |l| l.weight.cols());
        let scale = (2.0 / in_dim as f32).sqrt();
        let weight = Matrix::random(in_dim, width, scale, seed);
        let bias = vec![0.0; width];
        self.layers.push(Layer { weight, bias, relu });
        self
    }

    /// Appends a dense layer with explicit parameters — how trained
    /// networks ([`crate::train::TrainableMlp`]) are frozen into
    /// inference [`Mlp`]s.
    ///
    /// # Panics
    ///
    /// Panics if `weight.rows()` does not match the previous layer's
    /// output width (or `input_dim` for the first layer), or if
    /// `bias.len() != weight.cols()`.
    pub fn layer_with_params(mut self, weight: Matrix, bias: Vec<f32>, relu: bool) -> Self {
        let in_dim = self.layers.last().map_or(self.input_dim, |l| l.weight.cols());
        assert_eq!(weight.rows(), in_dim, "layer input width mismatch");
        assert_eq!(bias.len(), weight.cols(), "bias length mismatch");
        self.layers.push(Layer { weight, bias, relu });
        self
    }

    /// Enables a softmax output head.
    pub fn softmax(mut self) -> Self {
        self.softmax_output = true;
        self
    }

    /// Enables an elementwise sigmoid output head (probability outputs,
    /// as in the approximate-inference prediction networks).
    pub fn sigmoid(mut self) -> Self {
        self.sigmoid_output = true;
        self
    }

    /// Finalizes the network.
    pub fn build(self) -> Mlp {
        Mlp {
            layers: self.layers,
            softmax_output: self.softmax_output,
            sigmoid_output: self.sigmoid_output,
        }
    }
}

impl Mlp {
    /// Runs the network on a batch (`rows` = batch size).
    ///
    /// # Panics
    ///
    /// Panics if `input.cols()` differs from the first layer's input width.
    pub fn forward(&self, input: &Matrix) -> Matrix {
        let mut x = input.clone();
        for layer in &self.layers {
            let mut y = x.matmul(&layer.weight);
            y.add_bias(&layer.bias);
            if layer.relu {
                y.relu();
            }
            x = y;
        }
        if self.softmax_output {
            x.softmax_rows();
        }
        if self.sigmoid_output {
            x.sigmoid();
        }
        x
    }

    /// Argmax class per batch row.
    pub fn classify(&self, input: &Matrix) -> Vec<usize> {
        let out = self.forward(input);
        (0..out.rows())
            .map(|r| {
                (0..out.cols())
                    .map(|c| (c, out.at(r, c)))
                    .fold((0, f32::NEG_INFINITY), |acc, x| if x.1 > acc.1 { x } else { acc })
                    .0
            })
            .collect()
    }

    /// Total parameter count.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(|l| l.weight.rows() * l.weight.cols() + l.bias.len()).sum()
    }

    /// FLOPs for a forward pass with the given batch size.
    pub fn flops(&self, batch: usize) -> u64 {
        self.layers
            .iter()
            .map(|l| {
                2 * batch as u64 * l.weight.rows() as u64 * l.weight.cols() as u64
                    + batch as u64 * l.weight.cols() as u64
            })
            .sum()
    }

    /// Bytes of parameters read per forward pass (f32 weights + biases).
    pub fn param_bytes(&self) -> u64 {
        4 * self.num_params() as u64
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shapes() {
        let mlp = MlpBuilder::new(10).layer(16, true, 1).layer(4, false, 2).build();
        let x = Matrix::random(5, 10, 1.0, 3);
        let y = mlp.forward(&x);
        assert_eq!(y.rows(), 5);
        assert_eq!(y.cols(), 4);
    }

    #[test]
    fn softmax_head_normalizes() {
        let mlp = MlpBuilder::new(6).layer(8, true, 1).layer(3, false, 2).softmax().build();
        let x = Matrix::random(4, 6, 1.0, 9);
        let y = mlp.forward(&x);
        for r in 0..4 {
            let s: f32 = (0..3).map(|c| y.at(r, c)).sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn classify_returns_argmax() {
        let mlp = MlpBuilder::new(4).layer(5, false, 7).softmax().build();
        let x = Matrix::random(3, 4, 1.0, 11);
        let classes = mlp.classify(&x);
        let probs = mlp.forward(&x);
        for (r, &cls) in classes.iter().enumerate() {
            for c in 0..5 {
                assert!(probs.at(r, cls) >= probs.at(r, c));
            }
        }
    }

    #[test]
    fn accounting() {
        let mlp = MlpBuilder::new(10).layer(20, true, 1).layer(5, false, 2).build();
        assert_eq!(mlp.num_params(), 10 * 20 + 20 + 20 * 5 + 5);
        assert_eq!(mlp.param_bytes(), 4 * mlp.num_params() as u64);
        assert_eq!(mlp.flops(2), 2 * 2 * 10 * 20 + 2 * 20 + 2 * 2 * 20 * 5 + 2 * 5);
        assert_eq!(mlp.num_layers(), 2);
    }

    #[test]
    fn deterministic_construction() {
        let a = MlpBuilder::new(4).layer(4, true, 42).build();
        let b = MlpBuilder::new(4).layer(4, true, 42).build();
        let x = Matrix::random(1, 4, 1.0, 0);
        assert_eq!(a.forward(&x), b.forward(&x));
    }
}
