//! Dense row-major matrices and elementwise kernels.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A dense row-major `f32` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// An all-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        Matrix { rows, cols, data }
    }

    /// A seeded random matrix with entries in `[-scale, scale]`.
    pub fn random(rows: usize, cols: usize, scale: f32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = (0..rows * cols).map(|_| rng.gen_range(-scale..=scale)).collect();
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The underlying row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Element access.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn at(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        assert!(r < self.rows && c < self.cols, "index out of range");
        &mut self.data[r * self.cols + c]
    }

    /// Matrix multiplication `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "inner dimensions disagree");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in orow.iter_mut().zip(row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// FLOPs of a matmul with these dimensions (`2 * m * n * k`).
    pub fn matmul_flops(&self, rhs: &Matrix) -> u64 {
        2 * self.rows as u64 * self.cols as u64 * rhs.cols as u64
    }

    /// Adds a bias row vector to every row.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != self.cols`.
    pub fn add_bias(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "bias length mismatch");
        for r in 0..self.rows {
            for (c, b) in bias.iter().enumerate() {
                self.data[r * self.cols + c] += b;
            }
        }
    }

    /// Applies ReLU in place.
    pub fn relu(&mut self) {
        for x in &mut self.data {
            *x = x.max(0.0);
        }
    }

    /// Applies a numerically stable row-wise softmax in place.
    pub fn softmax_rows(&mut self) {
        for r in 0..self.rows {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            let m = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0f32;
            for x in row.iter_mut() {
                *x = (*x - m).exp();
                sum += *x;
            }
            for x in row.iter_mut() {
                *x /= sum;
            }
        }
    }

    /// Mutable access to the underlying row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// The transposed matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Applies a numerically stable logistic sigmoid in place.
    pub fn sigmoid(&mut self) {
        for x in &mut self.data {
            *x = if *x >= 0.0 {
                1.0 / (1.0 + (-*x).exp())
            } else {
                let e = x.exp();
                e / (1.0 + e)
            };
        }
    }

    /// Fraction of zero entries.
    pub fn sparsity(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().filter(|&&x| x == 0.0).count() as f64 / self.data.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_correctness() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
        assert_eq!(a.matmul_flops(&b), 2 * 2 * 3 * 2);
    }

    #[test]
    fn identity_is_neutral() {
        let mut eye = Matrix::zeros(3, 3);
        for i in 0..3 {
            *eye.at_mut(i, i) = 1.0;
        }
        let a = Matrix::random(3, 3, 1.0, 4);
        assert_eq!(a.matmul(&eye), a);
    }

    #[test]
    fn relu_and_bias() {
        let mut m = Matrix::from_vec(1, 3, vec![-1.0, 0.5, 2.0]);
        m.add_bias(&[0.5, 0.5, 0.5]);
        m.relu();
        assert_eq!(m.data(), &[0.0, 1.0, 2.5]);
    }

    #[test]
    fn softmax_rows_normalize() {
        let mut m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 1000.0, 1000.0, 1000.0]);
        m.softmax_rows();
        for r in 0..2 {
            let s: f32 = (0..3).map(|c| m.at(r, c)).sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
        // Large magnitudes stay finite.
        assert!(m.data().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn transpose_roundtrips() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let t = a.transpose();
        assert_eq!((t.rows(), t.cols()), (3, 2));
        assert_eq!(t.data(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn sigmoid_is_stable_and_bounded() {
        let mut m = Matrix::from_vec(1, 4, vec![-100.0, 0.0, 2.0, 100.0]);
        m.sigmoid();
        assert!(m.data().iter().all(|x| x.is_finite() && (0.0..=1.0).contains(x)));
        assert!((m.at(0, 1) - 0.5).abs() < 1e-6);
        assert!(m.at(0, 0) < 1e-6);
        assert!(m.at(0, 3) > 1.0 - 1e-6);
    }

    #[test]
    fn sparsity_measured() {
        let m = Matrix::from_vec(1, 4, vec![0.0, 1.0, 0.0, 2.0]);
        assert!((m.sparsity() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_checks_dims() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 2);
        let _ = a.matmul(&b);
    }
}
