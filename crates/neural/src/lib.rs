//! Neural substrate for the REASON reproduction.
//!
//! The paper's neural modules are LLMs/DNNs running on GPU SMs; REASON
//! never accelerates them directly but (a) overlaps their execution with
//! symbolic work in the two-level pipeline (Sec. VI-C), (b) supports small
//! neural kernels through the tree-PE **SpMSpM mode** (Sec. V-B), and (c)
//! needs their FLOP/byte profile to reproduce the workload
//! characterization (Fig. 3, Table II).
//!
//! This crate provides the corresponding substrate:
//!
//! * [`tensor`] — dense row-major matrices with matmul, bias, ReLU, and
//!   softmax kernels.
//! * [`sparse`] — CSR sparse matrices with SpMV and Gustavson SpMSpM (the
//!   kernel the tree-PE executes in SpMSpM mode).
//! * [`mlp`] — multi-layer perceptron inference with parameter and FLOP
//!   accounting.
//! * [`proxy`] — an LLM cost proxy: FLOPs, bytes moved, and token-loop
//!   latency modeling calibrated by parameter count, standing in for the
//!   LLaMA-class models of the paper's workloads.

pub mod mlp;
pub mod proxy;
pub mod sparse;
pub mod tensor;

pub use mlp::{Mlp, MlpBuilder};
pub use proxy::{LlmProxy, NeuralCost};
pub use sparse::CsrMatrix;
pub use tensor::Matrix;
