//! Neural substrate for the REASON reproduction.
//!
//! The paper's neural modules are LLMs/DNNs running on GPU SMs; REASON
//! never accelerates them directly but (a) overlaps their execution with
//! symbolic work in the two-level pipeline (Sec. VI-C), (b) supports small
//! neural kernels through the tree-PE **SpMSpM mode** (Sec. V-B), and (c)
//! needs their FLOP/byte profile to reproduce the workload
//! characterization (Fig. 3, Table II).
//!
//! This crate provides the corresponding substrate:
//!
//! * [`tensor`] — dense row-major matrices with matmul, bias, ReLU, and
//!   softmax kernels.
//! * [`sparse`] — CSR sparse matrices with SpMV and Gustavson SpMSpM (the
//!   kernel the tree-PE executes in SpMSpM mode).
//! * [`mlp`] — multi-layer perceptron inference with parameter and FLOP
//!   accounting.
//! * [`train`] — SGD backpropagation for small MLPs: the substrate of
//!   the A-NeSI-style prediction networks in `reason-approx`, frozen
//!   back into inference [`Mlp`]s via [`TrainableMlp::to_mlp`].
//! * [`proxy`] — an LLM cost proxy: FLOPs, bytes moved, and token-loop
//!   latency modeling calibrated by parameter count, standing in for the
//!   LLaMA-class models of the paper's workloads.
//!
//! Both [`Mlp`] forward passes and [`LlmProxy`] evaluations also serve as
//! the *neural stage* of `reason_system::BatchExecutor` tasks: the
//! executor's GPU-side worker pool runs them concurrently with symbolic
//! work, realizing the stage overlap of Sec. VI-C.
//!
//! # Example
//!
//! ```
//! use reason_neural::{Matrix, MlpBuilder};
//!
//! let mlp = MlpBuilder::new(4).layer(8, true, 1).layer(3, false, 2).softmax().build();
//! let out = mlp.forward(&Matrix::random(2, 4, 1.0, 3));
//! assert_eq!((out.rows(), out.cols()), (2, 3));
//! // Softmax rows are normalized.
//! let row_sum: f32 = (0..3).map(|c| out.at(0, c)).sum();
//! assert!((row_sum - 1.0).abs() < 1e-5);
//! ```

pub mod mlp;
pub mod proxy;
pub mod sparse;
pub mod tensor;
pub mod train;

pub use mlp::{Mlp, MlpBuilder};
pub use proxy::{LlmProxy, NeuralCost};
pub use sparse::CsrMatrix;
pub use tensor::Matrix;
pub use train::TrainableMlp;
