//! CSR sparse matrices, SpMV, and Gustavson SpMSpM.
//!
//! Sparse matrix-sparse matrix multiplication is the third operating mode
//! of REASON's tree PEs (paper Sec. V-B): leaves multiply partial products
//! while internal nodes reduce. This module provides the functional kernel
//! that mode must reproduce, plus the access-pattern statistics the GPU
//! baseline model consumes.

use crate::tensor::Matrix;

/// A compressed-sparse-row matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from a dense one, keeping entries with
    /// `|x| > 0`.
    pub fn from_dense(dense: &Matrix) -> Self {
        let mut row_ptr = Vec::with_capacity(dense.rows() + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for r in 0..dense.rows() {
            for c in 0..dense.cols() {
                let v = dense.at(r, c);
                if v != 0.0 {
                    col_idx.push(c);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix { rows: dense.rows(), cols: dense.cols(), row_ptr, col_idx, values }
    }

    /// Builds a CSR matrix from raw parts.
    ///
    /// # Panics
    ///
    /// Panics if the parts are inconsistent.
    pub fn from_parts(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f32>,
    ) -> Self {
        assert_eq!(row_ptr.len(), rows + 1, "row_ptr length mismatch");
        assert_eq!(col_idx.len(), values.len(), "col/value length mismatch");
        assert_eq!(
            *row_ptr.last().expect("non-empty row_ptr"),
            values.len(),
            "row_ptr end mismatch"
        );
        assert!(col_idx.iter().all(|&c| c < cols), "column index out of range");
        CsrMatrix { rows, cols, row_ptr, col_idx, values }
    }

    /// A seeded random sparse matrix with the given fill density.
    pub fn random(rows: usize, cols: usize, density: f64, seed: u64) -> Self {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut dense = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                if rng.gen_bool(density) {
                    *dense.at_mut(r, c) = rng.gen_range(-1.0..1.0);
                }
            }
        }
        CsrMatrix::from_dense(&dense)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fill density in `[0, 1]`.
    pub fn density(&self) -> f64 {
        if self.rows * self.cols == 0 {
            0.0
        } else {
            self.nnz() as f64 / (self.rows * self.cols) as f64
        }
    }

    /// The non-zeros of row `r` as `(col, value)` pairs.
    pub fn row(&self, r: usize) -> impl Iterator<Item = (usize, f32)> + '_ {
        let span = self.row_ptr[r]..self.row_ptr[r + 1];
        self.col_idx[span.clone()].iter().copied().zip(self.values[span].iter().copied())
    }

    /// Converts back to dense form.
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                *out.at_mut(r, c) = v;
            }
        }
        out
    }

    /// Sparse matrix-vector product.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols`.
    pub fn spmv(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.cols, "vector length mismatch");
        (0..self.rows).map(|r| self.row(r).map(|(c, v)| v * x[c]).sum()).collect()
    }

    /// Gustavson row-wise sparse-sparse matrix multiplication.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.rows`.
    pub fn spmspm(&self, rhs: &CsrMatrix) -> CsrMatrix {
        assert_eq!(self.cols, rhs.rows, "inner dimensions disagree");
        let mut row_ptr = vec![0usize];
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        // Dense accumulator per output row (classic Gustavson).
        let mut acc = vec![0.0f32; rhs.cols];
        let mut touched: Vec<usize> = Vec::new();
        for r in 0..self.rows {
            for (k, a) in self.row(r) {
                for (c, b) in rhs.row(k) {
                    if acc[c] == 0.0 {
                        touched.push(c);
                    }
                    acc[c] += a * b;
                }
            }
            touched.sort_unstable();
            for &c in &touched {
                if acc[c] != 0.0 {
                    col_idx.push(c);
                    values.push(acc[c]);
                }
                acc[c] = 0.0;
            }
            touched.clear();
            row_ptr.push(col_idx.len());
        }
        CsrMatrix { rows: self.rows, cols: rhs.cols, row_ptr, col_idx, values }
    }

    /// Multiply-accumulate operations performed by [`spmspm`](Self::spmspm)
    /// with this operand pair — the work the tree-PE SpMSpM mode schedules.
    pub fn spmspm_macs(&self, rhs: &CsrMatrix) -> u64 {
        let mut macs = 0u64;
        for r in 0..self.rows {
            for (k, _) in self.row(r) {
                macs += (rhs.row_ptr[k + 1] - rhs.row_ptr[k]) as u64;
            }
        }
        macs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_round_trip() {
        let dense = Matrix::from_vec(2, 3, vec![1.0, 0.0, 2.0, 0.0, 3.0, 0.0]);
        let csr = CsrMatrix::from_dense(&dense);
        assert_eq!(csr.nnz(), 3);
        assert_eq!(csr.to_dense(), dense);
    }

    #[test]
    fn spmv_matches_dense() {
        let dense = Matrix::random(5, 7, 1.0, 3);
        let csr = CsrMatrix::from_dense(&dense);
        let x: Vec<f32> = (0..7).map(|i| i as f32 * 0.5 - 1.0).collect();
        let sparse_y = csr.spmv(&x);
        for r in 0..5 {
            let dense_y: f32 = (0..7).map(|c| dense.at(r, c) * x[c]).sum();
            assert!((sparse_y[r] - dense_y).abs() < 1e-4);
        }
    }

    #[test]
    fn spmspm_matches_dense_matmul() {
        let a = CsrMatrix::random(6, 8, 0.4, 1);
        let b = CsrMatrix::random(8, 5, 0.4, 2);
        let sparse = a.spmspm(&b).to_dense();
        let dense = a.to_dense().matmul(&b.to_dense());
        for r in 0..6 {
            for c in 0..5 {
                assert!((sparse.at(r, c) - dense.at(r, c)).abs() < 1e-4, "mismatch at ({r},{c})");
            }
        }
    }

    #[test]
    fn macs_bound_output_work() {
        let a = CsrMatrix::random(10, 10, 0.3, 5);
        let b = CsrMatrix::random(10, 10, 0.3, 6);
        let macs = a.spmspm_macs(&b);
        assert!(macs > 0);
        // MACs can never exceed the dense count.
        assert!(macs <= 10 * 10 * 10);
    }

    #[test]
    fn density_reflects_request() {
        let m = CsrMatrix::random(50, 50, 0.2, 7);
        assert!((m.density() - 0.2).abs() < 0.05, "density {}", m.density());
    }

    #[test]
    fn empty_rows_handled() {
        let dense = Matrix::zeros(3, 3);
        let csr = CsrMatrix::from_dense(&dense);
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.spmv(&[1.0, 1.0, 1.0]), vec![0.0, 0.0, 0.0]);
        let out = csr.spmspm(&csr);
        assert_eq!(out.nnz(), 0);
    }
}
