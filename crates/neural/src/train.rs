//! Gradient training for small MLPs.
//!
//! The A-NeSI line of work (van Krieken et al., PAPERS.md) amortizes
//! exact probabilistic inference with a small *prediction network*
//! trained on samples drawn from the exact engine. The inference-only
//! [`crate::Mlp`] cannot learn; [`TrainableMlp`] is its training-capable
//! twin: dense ReLU layers, a sigmoid output head for probability
//! targets, full backpropagation, and plain SGD — deliberately minimal,
//! since prediction networks in this workspace are tiny (thousands of
//! parameters) and train in milliseconds.
//!
//! Trained networks freeze into ordinary [`crate::Mlp`]s via
//! [`TrainableMlp::to_mlp`], so they can run anywhere an `Mlp` runs —
//! including as the neural stage of `reason_system::BatchExecutor`
//! tasks.
//!
//! ```
//! use reason_neural::{Matrix, TrainableMlp};
//!
//! // Learn AND on {0,1}²: a linearly separable toy target.
//! let x = Matrix::from_vec(4, 2, vec![0., 0., 0., 1., 1., 0., 1., 1.]);
//! let y = Matrix::from_vec(4, 1, vec![0., 0., 0., 1.]);
//! let mut net = TrainableMlp::new(&[2, 4, 1], 7);
//! for _ in 0..400 {
//!     net.train_batch(&x, &y, 1.0);
//! }
//! let p = net.forward(&x);
//! assert!(p.at(3, 0) > 0.8 && p.at(0, 0) < 0.2);
//! ```

use crate::mlp::{Mlp, MlpBuilder};
use crate::tensor::Matrix;

/// One trainable dense layer.
#[derive(Debug, Clone)]
struct TrainLayer {
    /// `in_dim × out_dim` weight matrix.
    weight: Matrix,
    bias: Vec<f32>,
    relu: bool,
}

/// A small feed-forward network with ReLU hidden layers, a sigmoid
/// output head, and SGD backpropagation against binary-cross-entropy
/// loss. See the module docs for the role it plays.
#[derive(Debug, Clone)]
pub struct TrainableMlp {
    layers: Vec<TrainLayer>,
}

impl TrainableMlp {
    /// A network with layer widths `dims` (`dims[0]` = input width,
    /// `dims.last()` = output width), ReLU on every hidden layer, and
    /// seeded He-scaled random initialization.
    ///
    /// # Panics
    ///
    /// Panics if `dims` has fewer than two entries.
    pub fn new(dims: &[usize], seed: u64) -> Self {
        assert!(dims.len() >= 2, "need at least input and output widths");
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| {
                let (in_dim, out_dim) = (w[0], w[1]);
                let scale = (2.0 / in_dim as f32).sqrt();
                TrainLayer {
                    weight: Matrix::random(in_dim, out_dim, scale, seed.wrapping_add(i as u64)),
                    bias: vec![0.0; out_dim],
                    relu: i + 2 < dims.len(), // hidden layers only
                }
            })
            .collect();
        TrainableMlp { layers }
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.layers[0].weight.rows()
    }

    /// Output width.
    pub fn output_dim(&self) -> usize {
        self.layers.last().expect("at least one layer").weight.cols()
    }

    /// Total parameter count.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(|l| l.weight.rows() * l.weight.cols() + l.bias.len()).sum()
    }

    /// Forward pass with the sigmoid head applied (rows = batch).
    pub fn forward(&self, input: &Matrix) -> Matrix {
        let mut x = input.clone();
        for layer in &self.layers {
            let mut y = x.matmul(&layer.weight);
            y.add_bias(&layer.bias);
            if layer.relu {
                y.relu();
            }
            x = y;
        }
        x.sigmoid();
        x
    }

    /// One full-batch SGD step against binary cross-entropy; `targets`
    /// entries must lie in `[0, 1]`. Returns the pre-step mean BCE loss.
    ///
    /// # Panics
    ///
    /// Panics if `inputs`/`targets` shapes disagree with the network.
    pub fn train_batch(&mut self, inputs: &Matrix, targets: &Matrix, lr: f32) -> f32 {
        assert_eq!(inputs.cols(), self.input_dim(), "input width mismatch");
        assert_eq!(targets.cols(), self.output_dim(), "target width mismatch");
        assert_eq!(inputs.rows(), targets.rows(), "batch size mismatch");
        let batch = inputs.rows();

        // Forward, keeping every layer's post-activation output.
        let mut activations: Vec<Matrix> = Vec::with_capacity(self.layers.len() + 1);
        activations.push(inputs.clone());
        for layer in &self.layers {
            let mut y = activations.last().unwrap().matmul(&layer.weight);
            y.add_bias(&layer.bias);
            if layer.relu {
                y.relu();
            }
            activations.push(y);
        }
        let mut probs = activations.last().unwrap().clone();
        probs.sigmoid();

        // BCE loss and its logit gradient: d(BCE)/d(z) = (p - y) / batch.
        let mut loss = 0.0f32;
        let mut delta = Matrix::zeros(batch, self.output_dim());
        for i in 0..batch * self.output_dim() {
            let (p, y) = (probs.data()[i], targets.data()[i]);
            let pc = p.clamp(1e-7, 1.0 - 1e-7);
            loss -= y * pc.ln() + (1.0 - y) * (1.0 - pc).ln();
            delta.data_mut()[i] = (p - y) / batch as f32;
        }
        loss /= (batch * self.output_dim()) as f32;

        // Backward: walk layers last-to-first.
        for l in (0..self.layers.len()).rev() {
            let a_prev = &activations[l];
            let grad_w = a_prev.transpose().matmul(&delta);
            let mut grad_b = vec![0.0f32; self.layers[l].bias.len()];
            for r in 0..delta.rows() {
                for (c, g) in grad_b.iter_mut().enumerate() {
                    *g += delta.at(r, c);
                }
            }
            if l > 0 {
                let mut next = delta.matmul(&self.layers[l].weight.transpose());
                if self.layers[l - 1].relu {
                    // relu'(z) = 1 where the stored activation is positive.
                    for (d, &a) in next.data_mut().iter_mut().zip(activations[l].data()) {
                        if a <= 0.0 {
                            *d = 0.0;
                        }
                    }
                }
                delta = next;
            }
            let layer = &mut self.layers[l];
            for (w, g) in layer.weight.data_mut().iter_mut().zip(grad_w.data()) {
                *w -= lr * g;
            }
            for (b, g) in layer.bias.iter_mut().zip(&grad_b) {
                *b -= lr * g;
            }
        }
        loss
    }

    /// Freezes the trained parameters into an inference [`Mlp`] with a
    /// sigmoid output head; its `forward` matches this network's.
    pub fn to_mlp(&self) -> Mlp {
        let mut b = MlpBuilder::new(self.input_dim());
        for layer in &self.layers {
            b = b.layer_with_params(layer.weight.clone(), layer.bias.clone(), layer.relu);
        }
        b.sigmoid().build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> (Matrix, Matrix) {
        (
            Matrix::from_vec(4, 2, vec![0., 0., 0., 1., 1., 0., 1., 1.]),
            Matrix::from_vec(4, 1, vec![0., 1., 1., 0.]),
        )
    }

    #[test]
    fn loss_decreases_on_xor() {
        let (x, y) = xor_data();
        let mut net = TrainableMlp::new(&[2, 8, 1], 1);
        let first = net.train_batch(&x, &y, 0.8);
        let mut last = first;
        for _ in 0..1500 {
            last = net.train_batch(&x, &y, 0.8);
        }
        assert!(last < first * 0.25, "loss did not decrease: {first} -> {last}");
    }

    #[test]
    fn learns_xor_decision_boundary() {
        let (x, y) = xor_data();
        let mut net = TrainableMlp::new(&[2, 8, 1], 3);
        for _ in 0..3000 {
            net.train_batch(&x, &y, 0.8);
        }
        let p = net.forward(&x);
        for r in 0..4 {
            let target = y.at(r, 0);
            assert!(
                (p.at(r, 0) - target).abs() < 0.25,
                "row {r}: predicted {} for target {target}",
                p.at(r, 0)
            );
        }
    }

    #[test]
    fn frozen_mlp_matches_trainable_forward() {
        let (x, y) = xor_data();
        let mut net = TrainableMlp::new(&[2, 6, 1], 9);
        for _ in 0..200 {
            net.train_batch(&x, &y, 0.5);
        }
        let frozen = net.to_mlp();
        let (a, b) = (net.forward(&x), frozen.forward(&x));
        for i in 0..4 {
            assert!((a.at(i, 0) - b.at(i, 0)).abs() < 1e-6);
        }
    }

    #[test]
    fn construction_is_deterministic() {
        let a = TrainableMlp::new(&[3, 5, 2], 42);
        let b = TrainableMlp::new(&[3, 5, 2], 42);
        let x = Matrix::random(2, 3, 1.0, 0);
        assert_eq!(a.forward(&x).data(), b.forward(&x).data());
        assert_eq!(a.num_params(), 3 * 5 + 5 + 5 * 2 + 2);
    }

    #[test]
    #[should_panic(expected = "batch size mismatch")]
    fn shape_checks() {
        let mut net = TrainableMlp::new(&[2, 1], 0);
        let _ = net.train_batch(&Matrix::zeros(3, 2), &Matrix::zeros(2, 1), 0.1);
    }
}
