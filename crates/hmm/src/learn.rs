//! Baum–Welch (EM) parameter learning.

use crate::{log_sum_exp, Hmm};

/// Outcome of Baum–Welch training.
#[derive(Debug, Clone, PartialEq)]
pub struct BaumWelchReport {
    /// The trained model.
    pub hmm: Hmm,
    /// Total train log-likelihood after each iteration.
    pub log_likelihoods: Vec<f64>,
    /// Iterations executed.
    pub iterations: usize,
}

/// Runs Baum–Welch on a set of observation sequences.
///
/// Stops after `max_iters` iterations or when the total log-likelihood
/// improves by less than `tol`. `smoothing` is added to every expected
/// count (Laplace smoothing keeps rows strictly positive).
///
/// # Panics
///
/// Panics if `sequences` is empty or any sequence is empty.
pub fn baum_welch(
    initial: &Hmm,
    sequences: &[Vec<usize>],
    max_iters: usize,
    tol: f64,
    smoothing: f64,
) -> BaumWelchReport {
    assert!(!sequences.is_empty(), "need at least one training sequence");
    assert!(sequences.iter().all(|s| !s.is_empty()), "sequences must be non-empty");
    let s = initial.num_states();
    let v = initial.num_symbols();
    let mut hmm = initial.clone();
    let mut history = Vec::new();

    for iter in 0..max_iters {
        let mut init_counts = vec![smoothing; s];
        let mut trans_counts = vec![vec![smoothing; s]; s];
        let mut emit_counts = vec![vec![smoothing; v]; s];
        let mut total_ll = 0.0;

        for obs in sequences {
            let post = hmm.posteriors(obs);
            total_ll += hmm.log_likelihood(obs);
            for (i, c) in init_counts.iter_mut().enumerate() {
                *c += post.gamma[0][i];
            }
            for xi_t in &post.xi {
                for i in 0..s {
                    for j in 0..s {
                        trans_counts[i][j] += xi_t[i][j];
                    }
                }
            }
            for (t, &sym) in obs.iter().enumerate() {
                for i in 0..s {
                    emit_counts[i][sym] += post.gamma[t][i];
                }
            }
        }
        history.push(total_ll);

        // M step: normalize counts into log-space tables.
        let normalize = |counts: &[f64]| -> Vec<f64> {
            let total: f64 = counts.iter().sum();
            counts.iter().map(|c| (c / total).ln()).collect()
        };
        let log_init = normalize(&init_counts);
        let log_trans: Vec<Vec<f64>> = trans_counts.iter().map(|r| normalize(r)).collect();
        let log_emit: Vec<Vec<f64>> = emit_counts.iter().map(|r| normalize(r)).collect();
        hmm = Hmm::from_log_parts(log_init, log_trans, log_emit);

        if iter > 0 {
            let prev = history[iter - 1];
            if (history[iter] - prev).abs() < tol {
                return BaumWelchReport { hmm, log_likelihoods: history, iterations: iter + 1 };
            }
        }
    }
    let iterations = history.len();
    BaumWelchReport { hmm, log_likelihoods: history, iterations }
}

/// Total log-likelihood of a sequence set under a model.
pub fn total_log_likelihood(hmm: &Hmm, sequences: &[Vec<usize>]) -> f64 {
    sequences.iter().map(|s| hmm.log_likelihood(s)).sum()
}

/// Checks a model's rows still normalize (used by tests and pruning).
pub fn is_normalized(hmm: &Hmm) -> bool {
    let row_ok = |row: &[f64]| (log_sum_exp(row)).abs() < 1e-6;
    row_ok(hmm.log_init())
        && hmm.log_trans().iter().all(|r| row_ok(r))
        && hmm.log_emit().iter().all(|r| row_ok(r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::sample_sequence;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn log_likelihood_is_monotone_nondecreasing() {
        let truth = Hmm::random(3, 4, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let data: Vec<Vec<usize>> =
            (0..20).map(|_| sample_sequence(&truth, 15, &mut rng).observations).collect();
        let start = Hmm::random(3, 4, 99);
        let report = baum_welch(&start, &data, 15, 1e-9, 1e-3);
        for w in report.log_likelihoods.windows(2) {
            assert!(w[1] >= w[0] - 1e-6, "LL decreased: {} -> {}", w[0], w[1]);
        }
    }

    #[test]
    fn training_improves_over_random_init() {
        let truth = Hmm::random(2, 3, 7);
        let mut rng = StdRng::seed_from_u64(8);
        let data: Vec<Vec<usize>> =
            (0..30).map(|_| sample_sequence(&truth, 20, &mut rng).observations).collect();
        let start = Hmm::random(2, 3, 1234);
        let before = total_log_likelihood(&start, &data);
        let report = baum_welch(&start, &data, 25, 1e-9, 1e-3);
        let after = total_log_likelihood(&report.hmm, &data);
        assert!(after > before, "training did not improve: {before} -> {after}");
    }

    #[test]
    fn trained_model_stays_normalized() {
        let truth = Hmm::random(3, 3, 0);
        let mut rng = StdRng::seed_from_u64(3);
        let data: Vec<Vec<usize>> =
            (0..10).map(|_| sample_sequence(&truth, 10, &mut rng).observations).collect();
        let report = baum_welch(&Hmm::random(3, 3, 55), &data, 10, 1e-9, 1e-3);
        assert!(is_normalized(&report.hmm));
    }

    #[test]
    fn early_stopping_on_convergence() {
        let truth = Hmm::random(2, 2, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let data: Vec<Vec<usize>> =
            (0..5).map(|_| sample_sequence(&truth, 8, &mut rng).observations).collect();
        let report = baum_welch(&truth, &data, 100, 1e-3, 1e-6);
        assert!(report.iterations < 100, "should converge quickly from the truth");
    }
}
