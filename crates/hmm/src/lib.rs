//! Hidden Markov model substrate for the REASON reproduction.
//!
//! HMMs are the paper's sequential-reasoning primitive (Sec. II-C, Eq. 2):
//! hidden states evolve under a first-order Markov transition model and
//! emit observations. Neuro-symbolic systems such as Ctrl-G and GeLaTo
//! (paper Table I) use HMM inference — filtering, smoothing, decoding, and
//! DFA-constrained generation — as their probabilistic reasoning engine.
//!
//! Modules:
//!
//! * [`infer`] — log-space forward/backward, filtering, smoothing,
//!   posterior state and transition probabilities.
//! * [`viterbi`] — maximum a-posteriori state decoding.
//! * [`learn`] — Baum–Welch (EM) parameter estimation.
//! * [`sample`] — ancestral sampling of state/observation sequences.
//! * [`constrain`] — deterministic finite automata and HMM×DFA product
//!   inference: the Ctrl-G-style constrained generation kernel.
//! * [`prune`] — posterior-usage transition pruning (the HMM half of the
//!   paper's probabilistic DAG pruning, Sec. IV-B).
//!
//! # Example
//!
//! ```
//! use reason_hmm::Hmm;
//!
//! // A two-state weather model emitting {0: walk, 1: shop, 2: clean}.
//! let hmm = Hmm::new(
//!     vec![0.6, 0.4],
//!     vec![vec![0.7, 0.3], vec![0.4, 0.6]],
//!     vec![vec![0.6, 0.3, 0.1], vec![0.1, 0.4, 0.5]],
//! ).unwrap();
//! let obs = [0, 1, 2];
//! let ll = hmm.log_likelihood(&obs);
//! assert!(ll < 0.0);
//! let path = hmm.viterbi(&obs).path;
//! assert_eq!(path.len(), 3);
//! ```

pub mod constrain;
pub mod infer;
pub mod learn;
pub mod prune;
pub mod sample;
pub mod viterbi;

pub use constrain::{ConstrainedResult, Dfa};
pub use infer::{ForwardBackward, Posteriors};
pub use learn::{baum_welch, BaumWelchReport};
pub use prune::{prune_transitions, TransitionPruneReport};
pub use viterbi::ViterbiResult;

use std::fmt;

/// Numerically stable `log(sum(exp(xs)))` over a slice.
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let m = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if m == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    m + xs.iter().map(|x| (x - m).exp()).sum::<f64>().ln()
}

/// Errors raised by [`Hmm::new`].
#[derive(Debug, Clone, PartialEq)]
pub enum HmmError {
    /// A probability vector does not sum to 1 (within tolerance).
    NotNormalized {
        /// Which table: "init", "transition", or "emission".
        table: &'static str,
        /// The offending row (0 for init).
        row: usize,
        /// The observed total.
        total: f64,
    },
    /// Table dimensions disagree.
    ShapeMismatch,
}

impl fmt::Display for HmmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HmmError::NotNormalized { table, row, total } => {
                write!(f, "{table} row {row} sums to {total}, expected 1")
            }
            HmmError::ShapeMismatch => write!(f, "table dimensions disagree"),
        }
    }
}

impl std::error::Error for HmmError {}

/// A discrete hidden Markov model in log-space.
#[derive(Debug, Clone, PartialEq)]
pub struct Hmm {
    log_init: Vec<f64>,
    /// `log_trans[i][j]` = log p(z_t = j | z_{t-1} = i).
    log_trans: Vec<Vec<f64>>,
    /// `log_emit[i][v]` = log p(x_t = v | z_t = i).
    log_emit: Vec<Vec<f64>>,
}

impl Hmm {
    /// Builds an HMM from linear-space tables.
    ///
    /// # Errors
    ///
    /// Returns [`HmmError`] if shapes disagree or any row is not a
    /// probability distribution.
    pub fn new(
        init: Vec<f64>,
        trans: Vec<Vec<f64>>,
        emit: Vec<Vec<f64>>,
    ) -> Result<Self, HmmError> {
        let s = init.len();
        if trans.len() != s || emit.len() != s {
            return Err(HmmError::ShapeMismatch);
        }
        let v = emit.first().map_or(0, Vec::len);
        if trans.iter().any(|r| r.len() != s) || emit.iter().any(|r| r.len() != v) {
            return Err(HmmError::ShapeMismatch);
        }
        check_row("init", 0, &init)?;
        for (i, row) in trans.iter().enumerate() {
            check_row("transition", i, row)?;
        }
        for (i, row) in emit.iter().enumerate() {
            check_row("emission", i, row)?;
        }
        Ok(Hmm {
            log_init: init.iter().map(|p| p.ln()).collect(),
            log_trans: trans.iter().map(|r| r.iter().map(|p| p.ln()).collect()).collect(),
            log_emit: emit.iter().map(|r| r.iter().map(|p| p.ln()).collect()).collect(),
        })
    }

    /// Builds an HMM directly from log-space tables without validation;
    /// used by learning and pruning transforms that preserve normalization.
    pub(crate) fn from_log_parts(
        log_init: Vec<f64>,
        log_trans: Vec<Vec<f64>>,
        log_emit: Vec<Vec<f64>>,
    ) -> Self {
        Hmm { log_init, log_trans, log_emit }
    }

    /// A random HMM with `num_states` hidden states and `num_symbols`
    /// observable symbols, seeded deterministically.
    pub fn random(num_states: usize, num_symbols: usize, seed: u64) -> Self {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut row = |n: usize| -> Vec<f64> {
            let raw: Vec<f64> = (0..n).map(|_| rng.gen_range(0.1..1.0)).collect();
            let t: f64 = raw.iter().sum();
            raw.into_iter().map(|x| x / t).collect()
        };
        let init = row(num_states);
        let trans: Vec<Vec<f64>> = (0..num_states).map(|_| row(num_states)).collect();
        let emit: Vec<Vec<f64>> = (0..num_states).map(|_| row(num_symbols)).collect();
        Hmm::new(init, trans, emit).expect("random rows are normalized")
    }

    /// Number of hidden states.
    pub fn num_states(&self) -> usize {
        self.log_init.len()
    }

    /// Number of observable symbols.
    pub fn num_symbols(&self) -> usize {
        self.log_emit.first().map_or(0, Vec::len)
    }

    /// Log initial distribution.
    pub fn log_init(&self) -> &[f64] {
        &self.log_init
    }

    /// Log transition matrix (`[from][to]`).
    pub fn log_trans(&self) -> &[Vec<f64>] {
        &self.log_trans
    }

    /// Log emission matrix (`[state][symbol]`).
    pub fn log_emit(&self) -> &[Vec<f64>] {
        &self.log_emit
    }

    /// Number of transitions with non-zero probability.
    pub fn num_active_transitions(&self) -> usize {
        self.log_trans.iter().flatten().filter(|&&lp| lp > f64::NEG_INFINITY).count()
    }

    /// An estimate of the parameter footprint in bytes (8 bytes per active
    /// transition/emission/init entry) — the Table IV memory metric for
    /// sequential workloads.
    pub fn footprint_bytes(&self) -> usize {
        let active =
            |rows: &[Vec<f64>]| rows.iter().flatten().filter(|&&lp| lp > f64::NEG_INFINITY).count();
        8 * (self.log_init.len() + active(&self.log_trans) + active(&self.log_emit))
    }
}

fn check_row(table: &'static str, row: usize, values: &[f64]) -> Result<(), HmmError> {
    let total: f64 = values.iter().sum();
    if (total - 1.0).abs() > 1e-6 {
        return Err(HmmError::NotNormalized { table, row, total });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_validates() {
        assert!(Hmm::new(vec![0.5, 0.5], vec![vec![1.0, 0.0]], vec![vec![1.0]]).is_err());
        let bad = Hmm::new(
            vec![0.9, 0.9],
            vec![vec![0.5, 0.5], vec![0.5, 0.5]],
            vec![vec![1.0], vec![1.0]],
        );
        assert!(matches!(bad, Err(HmmError::NotNormalized { table: "init", .. })));
    }

    #[test]
    fn random_hmm_is_deterministic_and_valid() {
        let a = Hmm::random(4, 6, 9);
        let b = Hmm::random(4, 6, 9);
        assert_eq!(a, b);
        assert_eq!(a.num_states(), 4);
        assert_eq!(a.num_symbols(), 6);
        for row in a.log_trans() {
            let total: f64 = row.iter().map(|lp| lp.exp()).sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn footprint_counts_active_entries() {
        let hmm = Hmm::random(3, 4, 0);
        assert_eq!(hmm.footprint_bytes(), 8 * (3 + 9 + 12));
        assert_eq!(hmm.num_active_transitions(), 9);
    }
}
