//! Forward-backward inference: filtering, smoothing, posteriors.
//!
//! These are the "sequential message passing" kernels the paper maps onto
//! the unified DAG (Sec. IV-A): each time step aggregates predecessor state
//! mass through transition factors (sum nodes) and applies emission factors
//! (product nodes).

use crate::{log_sum_exp, Hmm};

/// Forward and backward log-message tables for one observation sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct ForwardBackward {
    /// `alpha[t][s]` = log p(x_0..x_t, z_t = s).
    pub alpha: Vec<Vec<f64>>,
    /// `beta[t][s]` = log p(x_{t+1}..x_{T-1} | z_t = s).
    pub beta: Vec<Vec<f64>>,
    /// Log-likelihood of the whole sequence.
    pub log_likelihood: f64,
}

/// Posterior quantities derived from [`ForwardBackward`].
#[derive(Debug, Clone, PartialEq)]
pub struct Posteriors {
    /// `gamma[t][s]` = p(z_t = s | x) (linear space).
    pub gamma: Vec<Vec<f64>>,
    /// `xi[t][i][j]` = p(z_t = i, z_{t+1} = j | x), for t in 0..T-1.
    pub xi: Vec<Vec<Vec<f64>>>,
}

impl Hmm {
    /// Runs the forward pass, returning `alpha` and the log-likelihood.
    ///
    /// # Panics
    ///
    /// Panics if `obs` is empty or contains an out-of-range symbol.
    pub fn forward(&self, obs: &[usize]) -> (Vec<Vec<f64>>, f64) {
        assert!(!obs.is_empty(), "observation sequence must be non-empty");
        let s = self.num_states();
        let t_len = obs.len();
        let mut alpha = vec![vec![f64::NEG_INFINITY; s]; t_len];
        for i in 0..s {
            alpha[0][i] = self.log_init()[i] + self.log_emit()[i][obs[0]];
        }
        let mut buf = vec![0.0f64; s];
        for t in 1..t_len {
            for j in 0..s {
                for (i, b) in buf.iter_mut().enumerate() {
                    *b = alpha[t - 1][i] + self.log_trans()[i][j];
                }
                alpha[t][j] = log_sum_exp(&buf) + self.log_emit()[j][obs[t]];
            }
        }
        let ll = log_sum_exp(&alpha[t_len - 1]);
        (alpha, ll)
    }

    /// Runs the backward pass, returning `beta`.
    ///
    /// # Panics
    ///
    /// Panics if `obs` is empty or contains an out-of-range symbol.
    pub fn backward(&self, obs: &[usize]) -> Vec<Vec<f64>> {
        assert!(!obs.is_empty(), "observation sequence must be non-empty");
        let s = self.num_states();
        let t_len = obs.len();
        let mut beta = vec![vec![0.0f64; s]; t_len];
        let mut buf = vec![0.0f64; s];
        for t in (0..t_len - 1).rev() {
            for i in 0..s {
                for (j, b) in buf.iter_mut().enumerate() {
                    *b = self.log_trans()[i][j] + self.log_emit()[j][obs[t + 1]] + beta[t + 1][j];
                }
                beta[t][i] = log_sum_exp(&buf);
            }
        }
        beta
    }

    /// Runs both passes.
    pub fn forward_backward(&self, obs: &[usize]) -> ForwardBackward {
        let (alpha, log_likelihood) = self.forward(obs);
        let beta = self.backward(obs);
        ForwardBackward { alpha, beta, log_likelihood }
    }

    /// Log-likelihood of an observation sequence.
    pub fn log_likelihood(&self, obs: &[usize]) -> f64 {
        self.forward(obs).1
    }

    /// Filtering distribution `p(z_t = s | x_0..x_t)` for every `t`.
    pub fn filter(&self, obs: &[usize]) -> Vec<Vec<f64>> {
        let (alpha, _) = self.forward(obs);
        alpha
            .iter()
            .map(|row| {
                let z = log_sum_exp(row);
                row.iter().map(|a| (a - z).exp()).collect()
            })
            .collect()
    }

    /// Smoothing posteriors: state posteriors `gamma` and transition
    /// posteriors `xi` (paper Sec. IV-B uses these as pruning signals).
    pub fn posteriors(&self, obs: &[usize]) -> Posteriors {
        let fb = self.forward_backward(obs);
        let s = self.num_states();
        let t_len = obs.len();
        let ll = fb.log_likelihood;
        let gamma: Vec<Vec<f64>> = (0..t_len)
            .map(|t| (0..s).map(|i| (fb.alpha[t][i] + fb.beta[t][i] - ll).exp()).collect())
            .collect();
        let xi: Vec<Vec<Vec<f64>>> = (0..t_len.saturating_sub(1))
            .map(|t| {
                (0..s)
                    .map(|i| {
                        (0..s)
                            .map(|j| {
                                (fb.alpha[t][i]
                                    + self.log_trans()[i][j]
                                    + self.log_emit()[j][obs[t + 1]]
                                    + fb.beta[t + 1][j]
                                    - ll)
                                    .exp()
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect();
        Posteriors { gamma, xi }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Hmm {
        Hmm::new(
            vec![0.6, 0.4],
            vec![vec![0.7, 0.3], vec![0.4, 0.6]],
            vec![vec![0.5, 0.4, 0.1], vec![0.1, 0.3, 0.6]],
        )
        .unwrap()
    }

    /// Brute-force likelihood: sum over all hidden paths.
    fn brute_likelihood(hmm: &Hmm, obs: &[usize]) -> f64 {
        let s = hmm.num_states();
        let t = obs.len();
        let mut total = 0.0f64;
        let paths = (s as u64).pow(t as u32);
        for code in 0..paths {
            let mut c = code;
            let mut path = Vec::with_capacity(t);
            for _ in 0..t {
                path.push((c % s as u64) as usize);
                c /= s as u64;
            }
            let mut lp = hmm.log_init()[path[0]] + hmm.log_emit()[path[0]][obs[0]];
            for k in 1..t {
                lp += hmm.log_trans()[path[k - 1]][path[k]] + hmm.log_emit()[path[k]][obs[k]];
            }
            total += lp.exp();
        }
        total
    }

    #[test]
    fn forward_matches_brute_force() {
        let hmm = toy();
        for obs in [vec![0], vec![0, 1], vec![2, 1, 0], vec![0, 1, 2, 1, 0]] {
            let ll = hmm.log_likelihood(&obs);
            let brute = brute_likelihood(&hmm, &obs);
            assert!((ll.exp() - brute).abs() < 1e-12, "obs {obs:?}");
        }
    }

    #[test]
    fn likelihoods_sum_to_one_over_all_sequences() {
        let hmm = toy();
        let t = 3;
        let v = hmm.num_symbols();
        let mut total = 0.0;
        for code in 0..(v as u64).pow(t as u32) {
            let mut c = code;
            let mut obs = Vec::with_capacity(t);
            for _ in 0..t {
                obs.push((c % v as u64) as usize);
                c /= v as u64;
            }
            total += hmm.log_likelihood(&obs).exp();
        }
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn filtering_distributions_normalize() {
        let hmm = toy();
        let f = hmm.filter(&[0, 2, 1, 1]);
        for row in f {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn posteriors_normalize_and_are_consistent() {
        let hmm = toy();
        let obs = vec![0, 1, 2, 0];
        let p = hmm.posteriors(&obs);
        for row in &p.gamma {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
        // Marginalizing xi over the destination recovers gamma at t.
        for t in 0..obs.len() - 1 {
            for i in 0..hmm.num_states() {
                let m: f64 = p.xi[t][i].iter().sum();
                assert!((m - p.gamma[t][i]).abs() < 1e-9);
            }
        }
        // Marginalizing xi over the source recovers gamma at t+1.
        for t in 0..obs.len() - 1 {
            for j in 0..hmm.num_states() {
                let m: f64 = (0..hmm.num_states()).map(|i| p.xi[t][i][j]).sum();
                assert!((m - p.gamma[t + 1][j]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn single_observation_sequence() {
        let hmm = toy();
        let p = hmm.posteriors(&[1]);
        assert_eq!(p.gamma.len(), 1);
        assert!(p.xi.is_empty());
        assert!((p.gamma[0].iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_sequence_panics() {
        let hmm = toy();
        let _ = hmm.forward(&[]);
    }
}
