//! DFA-constrained HMM inference — the Ctrl-G / GeLaTo kernel.
//!
//! Ctrl-G (paper Table I, \[23\]) and GeLaTo (\[29\]) impose hard lexical
//! constraints on language-model generation by intersecting an HMM proxy of
//! the LM with a deterministic finite automaton encoding the constraint.
//! Inference runs on the *product* state space (hmm state × dfa state):
//! the probability that a length-`T` emission satisfies the constraint,
//! the most likely accepted sequence, and per-position token marginals
//! conditioned on acceptance.

use crate::{log_sum_exp, Hmm};

/// A deterministic finite automaton over the HMM's symbol alphabet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dfa {
    start: usize,
    /// `transitions[state][symbol]` = next state.
    transitions: Vec<Vec<usize>>,
    accepting: Vec<bool>,
}

impl Dfa {
    /// Builds a DFA from explicit tables.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree or any target state is out of range.
    pub fn new(start: usize, transitions: Vec<Vec<usize>>, accepting: Vec<bool>) -> Self {
        let n = transitions.len();
        assert_eq!(accepting.len(), n, "accepting flags must cover all states");
        assert!(start < n, "start state out of range");
        for row in &transitions {
            assert!(row.iter().all(|&t| t < n), "transition target out of range");
        }
        Dfa { start, transitions, accepting }
    }

    /// The automaton accepting exactly the sequences that contain
    /// `keyword` as a contiguous substring (KMP failure automaton).
    ///
    /// # Panics
    ///
    /// Panics if the keyword is empty or mentions a symbol `>= num_symbols`.
    pub fn contains_keyword(keyword: &[usize], num_symbols: usize) -> Self {
        assert!(!keyword.is_empty(), "keyword must be non-empty");
        assert!(keyword.iter().all(|&s| s < num_symbols), "keyword symbol out of range");
        let m = keyword.len();
        // Failure function.
        let mut fail = vec![0usize; m];
        let mut k = 0;
        for i in 1..m {
            while k > 0 && keyword[i] != keyword[k] {
                k = fail[k - 1];
            }
            if keyword[i] == keyword[k] {
                k += 1;
            }
            fail[i] = k;
        }
        // States 0..m track the longest matched prefix; state m is accepting
        // and absorbing.
        let mut transitions = vec![vec![0usize; num_symbols]; m + 1];
        for state in 0..m {
            for sym in 0..num_symbols {
                let mut k = state;
                while k > 0 && keyword[k] != sym {
                    k = fail[k - 1];
                }
                let next = if keyword[k] == sym { k + 1 } else { 0 };
                transitions[state][sym] = next;
            }
        }
        for sym in 0..num_symbols {
            transitions[m][sym] = m;
        }
        let mut accepting = vec![false; m + 1];
        accepting[m] = true;
        Dfa { start: 0, transitions, accepting }
    }

    /// The automaton accepting sequences that *avoid* the given symbol
    /// entirely (a simple lexical ban, another common Ctrl-G constraint).
    pub fn avoids_symbol(banned: usize, num_symbols: usize) -> Self {
        assert!(banned < num_symbols, "banned symbol out of range");
        // State 0 = clean (accepting), state 1 = violated (absorbing).
        let mut transitions = vec![vec![0usize; num_symbols]; 2];
        transitions[0][banned] = 1;
        for sym in 0..num_symbols {
            transitions[1][sym] = 1;
        }
        Dfa { start: 0, transitions, accepting: vec![true, false] }
    }

    /// Number of automaton states.
    pub fn num_states(&self) -> usize {
        self.transitions.len()
    }

    /// The start state.
    pub fn start(&self) -> usize {
        self.start
    }

    /// Next state on reading `symbol` in `state`.
    pub fn step(&self, state: usize, symbol: usize) -> usize {
        self.transitions[state][symbol]
    }

    /// `true` when `state` is accepting.
    pub fn is_accepting(&self, state: usize) -> bool {
        self.accepting[state]
    }

    /// Runs the automaton over a sequence and reports acceptance.
    pub fn accepts(&self, seq: &[usize]) -> bool {
        let mut s = self.start;
        for &sym in seq {
            s = self.step(s, sym);
        }
        self.accepting[s]
    }
}

/// Results of constrained inference over the HMM×DFA product.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstrainedResult {
    /// `log p(constraint satisfied)` for emissions of the requested length.
    pub log_prob_satisfied: f64,
    /// Most likely accepted emission sequence (empty when unsatisfiable).
    pub best_sequence: Vec<usize>,
    /// Joint log-probability of the best sequence and its best hidden path,
    /// `NEG_INFINITY` when no accepted sequence exists.
    pub best_log_prob: f64,
}

impl Hmm {
    /// Probability that a length-`len` emission sequence satisfies `dfa`,
    /// computed by a forward pass over the product space — the core
    /// "probabilistic aggregation" kernel REASON accelerates for Ctrl-G.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn constrained_log_probability(&self, dfa: &Dfa, len: usize) -> f64 {
        assert!(len > 0, "length must be positive");
        let s = self.num_states();
        let q = dfa.num_states();
        let v = self.num_symbols();
        // alpha[(hmm state, dfa state)] after t symbols.
        let idx = |i: usize, a: usize| i * q + a;
        let mut alpha = vec![f64::NEG_INFINITY; s * q];
        for i in 0..s {
            for sym in 0..v {
                let a = dfa.step(dfa.start(), sym);
                let lp = self.log_init()[i] + self.log_emit()[i][sym];
                let slot = &mut alpha[idx(i, a)];
                *slot = log_sum_exp(&[*slot, lp]);
            }
        }
        for _ in 1..len {
            let mut next = vec![f64::NEG_INFINITY; s * q];
            for i in 0..s {
                for a in 0..q {
                    let cur = alpha[idx(i, a)];
                    if cur == f64::NEG_INFINITY {
                        continue;
                    }
                    for j in 0..s {
                        let lt = cur + self.log_trans()[i][j];
                        for sym in 0..v {
                            let a2 = dfa.step(a, sym);
                            let lp = lt + self.log_emit()[j][sym];
                            let slot = &mut next[idx(j, a2)];
                            *slot = log_sum_exp(&[*slot, lp]);
                        }
                    }
                }
            }
            alpha = next;
        }
        let accepted: Vec<f64> = (0..s)
            .flat_map(|i| (0..q).filter(|&a| dfa.is_accepting(a)).map(move |a| idx(i, a)))
            .map(|k| alpha[k])
            .collect();
        log_sum_exp(&accepted)
    }

    /// Most likely accepted emission sequence of length `len` (max-product
    /// over the product space, maximizing jointly over hidden states and
    /// symbols).
    pub fn constrained_decode(&self, dfa: &Dfa, len: usize) -> ConstrainedResult {
        assert!(len > 0, "length must be positive");
        let s = self.num_states();
        let q = dfa.num_states();
        let v = self.num_symbols();
        let idx = |i: usize, a: usize| i * q + a;
        // delta[t][(i,a)] = best log-prob reaching state (i,a) after t+1 syms.
        let mut delta = vec![vec![f64::NEG_INFINITY; s * q]; len];
        // back[t][(i,a)] = (prev i, prev a, symbol emitted at t).
        let mut back = vec![vec![(0usize, 0usize, 0usize); s * q]; len];
        for i in 0..s {
            for sym in 0..v {
                let a = dfa.step(dfa.start(), sym);
                let lp = self.log_init()[i] + self.log_emit()[i][sym];
                if lp > delta[0][idx(i, a)] {
                    delta[0][idx(i, a)] = lp;
                    back[0][idx(i, a)] = (0, dfa.start(), sym);
                }
            }
        }
        for t in 1..len {
            for i in 0..s {
                for a in 0..q {
                    let cur = delta[t - 1][idx(i, a)];
                    if cur == f64::NEG_INFINITY {
                        continue;
                    }
                    for j in 0..s {
                        let lt = cur + self.log_trans()[i][j];
                        for sym in 0..v {
                            let a2 = dfa.step(a, sym);
                            let lp = lt + self.log_emit()[j][sym];
                            if lp > delta[t][idx(j, a2)] {
                                delta[t][idx(j, a2)] = lp;
                                back[t][idx(j, a2)] = (i, a, sym);
                            }
                        }
                    }
                }
            }
        }
        // Best accepting endpoint.
        let mut best_end = None;
        let mut best = f64::NEG_INFINITY;
        for i in 0..s {
            for a in 0..q {
                if dfa.is_accepting(a) && delta[len - 1][idx(i, a)] > best {
                    best = delta[len - 1][idx(i, a)];
                    best_end = Some((i, a));
                }
            }
        }
        let log_prob_satisfied = self.constrained_log_probability(dfa, len);
        let Some((mut i, mut a)) = best_end else {
            return ConstrainedResult {
                log_prob_satisfied,
                best_sequence: Vec::new(),
                best_log_prob: f64::NEG_INFINITY,
            };
        };
        let mut seq = vec![0usize; len];
        for t in (0..len).rev() {
            let (pi, pa, sym) = back[t][idx(i, a)];
            seq[t] = sym;
            i = pi;
            a = pa;
        }
        ConstrainedResult { log_prob_satisfied, best_sequence: seq, best_log_prob: best }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Hmm {
        Hmm::new(
            vec![0.5, 0.5],
            vec![vec![0.8, 0.2], vec![0.3, 0.7]],
            vec![vec![0.6, 0.3, 0.1], vec![0.1, 0.2, 0.7]],
        )
        .unwrap()
    }

    /// Brute force: enumerate all emission sequences of length `len`,
    /// summing likelihoods of those accepted by the DFA.
    fn brute_constrained(hmm: &Hmm, dfa: &Dfa, len: usize) -> f64 {
        let v = hmm.num_symbols();
        let mut total = 0.0;
        for code in 0..(v as u64).pow(len as u32) {
            let mut c = code;
            let mut obs = Vec::with_capacity(len);
            for _ in 0..len {
                obs.push((c % v as u64) as usize);
                c /= v as u64;
            }
            if dfa.accepts(&obs) {
                total += hmm.log_likelihood(&obs).exp();
            }
        }
        total
    }

    #[test]
    fn keyword_dfa_accepts_correctly() {
        let dfa = Dfa::contains_keyword(&[1, 2], 3);
        assert!(dfa.accepts(&[0, 1, 2, 0]));
        assert!(dfa.accepts(&[1, 2]));
        assert!(!dfa.accepts(&[1, 1, 0, 2]));
        assert!(!dfa.accepts(&[2, 1]));
        // Overlapping prefixes: keyword 1,1,2 in 1,1,1,2.
        let dfa = Dfa::contains_keyword(&[1, 1, 2], 3);
        assert!(dfa.accepts(&[1, 1, 1, 2]));
        assert!(!dfa.accepts(&[1, 2, 1]));
    }

    #[test]
    fn avoid_dfa_accepts_correctly() {
        let dfa = Dfa::avoids_symbol(2, 3);
        assert!(dfa.accepts(&[0, 1, 1, 0]));
        assert!(!dfa.accepts(&[0, 2, 0]));
    }

    #[test]
    fn constrained_probability_matches_brute_force() {
        let hmm = toy();
        for len in 1..=4 {
            let dfa = Dfa::contains_keyword(&[1, 2], 3);
            let p = hmm.constrained_log_probability(&dfa, len).exp();
            let brute = brute_constrained(&hmm, &dfa, len);
            assert!((p - brute).abs() < 1e-10, "len {len}: {p} vs {brute}");
        }
    }

    #[test]
    fn avoid_constraint_probability_matches() {
        let hmm = toy();
        let dfa = Dfa::avoids_symbol(0, 3);
        for len in 1..=4 {
            let p = hmm.constrained_log_probability(&dfa, len).exp();
            let brute = brute_constrained(&hmm, &dfa, len);
            assert!((p - brute).abs() < 1e-10);
        }
    }

    #[test]
    fn satisfied_and_violated_probabilities_sum_to_one() {
        let hmm = toy();
        let keep = Dfa::avoids_symbol(1, 3);
        // Complement DFA: same transitions, flipped acceptance.
        let complement = Dfa::new(0, vec![vec![0, 1, 0], vec![1, 1, 1]], vec![false, true]);
        let len = 3;
        let a = hmm.constrained_log_probability(&keep, len).exp();
        let b = hmm.constrained_log_probability(&complement, len).exp();
        assert!((a + b - 1.0).abs() < 1e-9);
    }

    #[test]
    fn decode_returns_accepted_sequence() {
        let hmm = toy();
        let dfa = Dfa::contains_keyword(&[0, 0], 3);
        let res = hmm.constrained_decode(&dfa, 4);
        assert_eq!(res.best_sequence.len(), 4);
        assert!(dfa.accepts(&res.best_sequence));
        assert!(res.best_log_prob > f64::NEG_INFINITY);
        assert!(res.best_log_prob <= res.log_prob_satisfied + 1e-12);
    }

    #[test]
    fn impossible_constraint_yields_zero() {
        let hmm = toy();
        // Keyword longer than the sequence cannot appear.
        let dfa = Dfa::contains_keyword(&[0, 1, 2, 0], 3);
        let res = hmm.constrained_decode(&dfa, 2);
        assert_eq!(res.log_prob_satisfied, f64::NEG_INFINITY);
        assert!(res.best_sequence.is_empty());
    }

    #[test]
    fn unconstrained_dfa_gives_probability_one() {
        let hmm = toy();
        // Single accepting state looping on everything.
        let dfa = Dfa::new(0, vec![vec![0, 0, 0]], vec![true]);
        let p = hmm.constrained_log_probability(&dfa, 5).exp();
        assert!((p - 1.0).abs() < 1e-9);
    }
}
