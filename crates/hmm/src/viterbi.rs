//! Viterbi decoding: the most likely hidden path.

use crate::Hmm;

/// Result of Viterbi decoding.
#[derive(Debug, Clone, PartialEq)]
pub struct ViterbiResult {
    /// The maximum a-posteriori hidden state path.
    pub path: Vec<usize>,
    /// Joint log-probability `log p(path, obs)`.
    pub log_prob: f64,
}

impl Hmm {
    /// Computes the most likely hidden state sequence for `obs`.
    ///
    /// # Panics
    ///
    /// Panics if `obs` is empty or contains an out-of-range symbol.
    pub fn viterbi(&self, obs: &[usize]) -> ViterbiResult {
        assert!(!obs.is_empty(), "observation sequence must be non-empty");
        let s = self.num_states();
        let t_len = obs.len();
        let mut delta = vec![vec![f64::NEG_INFINITY; s]; t_len];
        let mut psi = vec![vec![0usize; s]; t_len];
        for i in 0..s {
            delta[0][i] = self.log_init()[i] + self.log_emit()[i][obs[0]];
        }
        for t in 1..t_len {
            for j in 0..s {
                let (best_i, best) = (0..s)
                    .map(|i| (i, delta[t - 1][i] + self.log_trans()[i][j]))
                    .fold((0, f64::NEG_INFINITY), |acc, x| if x.1 > acc.1 { x } else { acc });
                delta[t][j] = best + self.log_emit()[j][obs[t]];
                psi[t][j] = best_i;
            }
        }
        let (mut state, log_prob) = delta[t_len - 1]
            .iter()
            .enumerate()
            .fold((0, f64::NEG_INFINITY), |acc, (i, &v)| if v > acc.1 { (i, v) } else { acc });
        let mut path = vec![0usize; t_len];
        path[t_len - 1] = state;
        for t in (0..t_len - 1).rev() {
            state = psi[t + 1][state];
            path[t] = state;
        }
        ViterbiResult { path, log_prob }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Hmm {
        Hmm::new(
            vec![0.6, 0.4],
            vec![vec![0.7, 0.3], vec![0.4, 0.6]],
            vec![vec![0.5, 0.4, 0.1], vec![0.1, 0.3, 0.6]],
        )
        .unwrap()
    }

    fn brute_viterbi(hmm: &Hmm, obs: &[usize]) -> (Vec<usize>, f64) {
        let s = hmm.num_states();
        let t = obs.len();
        let mut best_path = Vec::new();
        let mut best = f64::NEG_INFINITY;
        for code in 0..(s as u64).pow(t as u32) {
            let mut c = code;
            let mut path = Vec::with_capacity(t);
            for _ in 0..t {
                path.push((c % s as u64) as usize);
                c /= s as u64;
            }
            let mut lp = hmm.log_init()[path[0]] + hmm.log_emit()[path[0]][obs[0]];
            for k in 1..t {
                lp += hmm.log_trans()[path[k - 1]][path[k]] + hmm.log_emit()[path[k]][obs[k]];
            }
            if lp > best {
                best = lp;
                best_path = path;
            }
        }
        (best_path, best)
    }

    #[test]
    fn matches_brute_force() {
        let hmm = toy();
        for obs in [vec![0], vec![2, 2], vec![0, 1, 2], vec![2, 0, 0, 1]] {
            let v = hmm.viterbi(&obs);
            let (bp, blp) = brute_viterbi(&hmm, &obs);
            assert!((v.log_prob - blp).abs() < 1e-12, "obs {obs:?}");
            assert_eq!(v.path, bp, "obs {obs:?}");
        }
    }

    #[test]
    fn viterbi_prob_bounded_by_total_likelihood() {
        let hmm = toy();
        let obs = vec![0, 2, 1, 1, 0];
        let v = hmm.viterbi(&obs);
        let ll = hmm.log_likelihood(&obs);
        assert!(v.log_prob <= ll + 1e-12);
    }

    #[test]
    fn deterministic_model_decodes_exactly() {
        // State 0 always emits 0, state 1 always emits 1.
        let hmm = Hmm::new(
            vec![0.5, 0.5],
            vec![vec![0.5, 0.5], vec![0.5, 0.5]],
            vec![vec![1.0, 0.0], vec![0.0, 1.0]],
        )
        .unwrap();
        let obs = vec![0, 1, 1, 0];
        let v = hmm.viterbi(&obs);
        assert_eq!(v.path, obs);
    }
}
