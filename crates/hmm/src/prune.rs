//! Posterior-usage transition pruning (paper Sec. IV-B for HMMs).
//!
//! The forward-backward algorithm yields expected transition usage
//! `Σ_t ξ_t(i,j)` over a dataset. Transitions whose expected usage falls
//! below a threshold contribute negligibly to the joint likelihood
//! `p(z_{1:T}, x_{1:T})` and are removed (set to zero probability), with
//! surviving rows renormalized. This sparsifies the unrolled DAG that
//! REASON maps to hardware.

use crate::{learn::is_normalized, log_sum_exp, Hmm};

/// Report of a transition-pruning pass.
#[derive(Debug, Clone, PartialEq)]
pub struct TransitionPruneReport {
    /// The pruned model.
    pub hmm: Hmm,
    /// Transitions removed.
    pub removed: usize,
    /// Active transitions remaining.
    pub remaining: usize,
    /// Expected-usage mass removed, as a fraction of total usage — the
    /// analogue of the circuit-flow bound.
    pub usage_removed: f64,
    /// Parameter footprint before pruning, in bytes.
    pub bytes_before: usize,
    /// Parameter footprint after pruning, in bytes.
    pub bytes_after: usize,
}

impl TransitionPruneReport {
    /// Fraction of the parameter footprint removed, in `[0, 1]`.
    pub fn memory_reduction(&self) -> f64 {
        if self.bytes_before == 0 {
            0.0
        } else {
            1.0 - self.bytes_after as f64 / self.bytes_before as f64
        }
    }
}

/// Prunes transitions whose expected usage share (over `sequences`) is
/// below `threshold` (a fraction of total transition usage).
///
/// Each row keeps its most-used transition so the chain can always
/// progress; surviving entries are renormalized.
///
/// # Panics
///
/// Panics if `sequences` is empty or `threshold` is negative.
pub fn prune_transitions(
    hmm: &Hmm,
    sequences: &[Vec<usize>],
    threshold: f64,
) -> TransitionPruneReport {
    assert!(!sequences.is_empty(), "pruning requires data");
    assert!(threshold >= 0.0, "threshold must be non-negative");
    let s = hmm.num_states();
    let bytes_before = hmm.footprint_bytes();

    // Expected transition usage.
    let mut usage = vec![vec![0.0f64; s]; s];
    let mut total_usage = 0.0f64;
    for obs in sequences {
        if obs.len() < 2 {
            continue;
        }
        let post = hmm.posteriors(obs);
        for xi_t in &post.xi {
            for i in 0..s {
                for j in 0..s {
                    usage[i][j] += xi_t[i][j];
                    total_usage += xi_t[i][j];
                }
            }
        }
    }

    let mut log_trans: Vec<Vec<f64>> = hmm.log_trans().to_vec();
    let mut removed = 0usize;
    let mut usage_removed = 0.0f64;
    for i in 0..s {
        // Keep the most-used transition of each row unconditionally.
        let keep = (0..s)
            .max_by(|&a, &b| usage[i][a].partial_cmp(&usage[i][b]).expect("usage is finite"))
            .expect("at least one state");
        for j in 0..s {
            if j == keep {
                continue;
            }
            let share = if total_usage > 0.0 { usage[i][j] / total_usage } else { 0.0 };
            if share < threshold && log_trans[i][j] > f64::NEG_INFINITY {
                log_trans[i][j] = f64::NEG_INFINITY;
                removed += 1;
                usage_removed += share;
            }
        }
        // Renormalize the row.
        let z = log_sum_exp(&log_trans[i]);
        for lp in &mut log_trans[i] {
            if *lp > f64::NEG_INFINITY {
                *lp -= z;
            }
        }
    }

    let pruned = Hmm::from_log_parts(hmm.log_init().to_vec(), log_trans, hmm.log_emit().to_vec());
    debug_assert!(is_normalized(&pruned));
    let remaining = pruned.num_active_transitions();
    let bytes_after = pruned.footprint_bytes();
    TransitionPruneReport {
        hmm: pruned,
        removed,
        remaining,
        usage_removed,
        bytes_before,
        bytes_after,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::learn::total_log_likelihood;
    use crate::sample::sample_sequence;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A model whose transitions are strongly diagonal: off-diagonal usage
    /// will be tiny and prunable. Stickiness 0.99 keeps state switches —
    /// and therefore the likelihood cost of pruning every off-diagonal
    /// edge — rare across sampling seeds.
    fn sticky_hmm() -> Hmm {
        Hmm::new(
            vec![0.5, 0.3, 0.2],
            vec![vec![0.99, 0.005, 0.005], vec![0.005, 0.99, 0.005], vec![0.005, 0.005, 0.99]],
            vec![vec![0.8, 0.1, 0.1], vec![0.1, 0.8, 0.1], vec![0.1, 0.1, 0.8]],
        )
        .unwrap()
    }

    fn training_data(hmm: &Hmm, n: usize, len: usize, seed: u64) -> Vec<Vec<usize>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| sample_sequence(hmm, len, &mut rng).observations).collect()
    }

    #[test]
    fn prunes_low_usage_transitions() {
        let hmm = sticky_hmm();
        let data = training_data(&hmm, 20, 30, 1);
        let report = prune_transitions(&hmm, &data, 0.02);
        assert!(report.removed > 0, "sticky chains should lose off-diagonal edges");
        assert!(report.remaining >= 3, "every row keeps a transition");
        assert!(report.memory_reduction() > 0.0);
    }

    #[test]
    fn pruned_model_stays_normalized() {
        let hmm = sticky_hmm();
        let data = training_data(&hmm, 10, 20, 2);
        let report = prune_transitions(&hmm, &data, 0.05);
        assert!(is_normalized(&report.hmm));
    }

    #[test]
    fn likelihood_loss_is_small_for_low_usage_pruning() {
        let hmm = sticky_hmm();
        let data = training_data(&hmm, 20, 25, 3);
        let before = total_log_likelihood(&hmm, &data) / data.len() as f64;
        let report = prune_transitions(&hmm, &data, 0.01);
        let after = total_log_likelihood(&report.hmm, &data) / data.len() as f64;
        // Pruning sub-1%-usage edges must not collapse the likelihood:
        // the per-step degradation stays well under 0.1 nats.
        let per_step = (before - after) / 25.0;
        assert!(
            per_step < 0.1,
            "pruning destroyed likelihood: {before} -> {after} per-step {per_step} (removed {})",
            report.removed
        );
    }

    #[test]
    fn zero_threshold_removes_nothing() {
        let hmm = sticky_hmm();
        let data = training_data(&hmm, 5, 10, 4);
        let report = prune_transitions(&hmm, &data, 0.0);
        assert_eq!(report.removed, 0);
        assert_eq!(report.remaining, 9);
    }

    #[test]
    fn inference_still_works_after_pruning() {
        let hmm = sticky_hmm();
        let data = training_data(&hmm, 10, 15, 5);
        let report = prune_transitions(&hmm, &data, 0.02);
        let obs = &data[0];
        let ll = report.hmm.log_likelihood(obs);
        assert!(ll.is_finite(), "pruned model must still explain training data");
        let v = report.hmm.viterbi(obs);
        assert_eq!(v.path.len(), obs.len());
    }
}
