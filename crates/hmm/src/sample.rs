//! Ancestral sampling of state and observation sequences.

use rand::Rng;

use crate::Hmm;

/// A sampled trajectory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trajectory {
    /// Hidden state sequence.
    pub states: Vec<usize>,
    /// Observation sequence.
    pub observations: Vec<usize>,
}

/// Samples a length-`len` trajectory from the model.
///
/// # Panics
///
/// Panics if `len == 0`.
pub fn sample_sequence<R: Rng + ?Sized>(hmm: &Hmm, len: usize, rng: &mut R) -> Trajectory {
    assert!(len > 0, "length must be positive");
    let mut states = Vec::with_capacity(len);
    let mut observations = Vec::with_capacity(len);
    let init: Vec<f64> = hmm.log_init().iter().map(|lp| lp.exp()).collect();
    let mut state = pick(&init, rng);
    for t in 0..len {
        if t > 0 {
            let row: Vec<f64> = hmm.log_trans()[state].iter().map(|lp| lp.exp()).collect();
            state = pick(&row, rng);
        }
        states.push(state);
        let emit: Vec<f64> = hmm.log_emit()[state].iter().map(|lp| lp.exp()).collect();
        observations.push(pick(&emit, rng));
    }
    Trajectory { states, observations }
}

fn pick<R: Rng + ?Sized>(weights: &[f64], rng: &mut R) -> usize {
    let total: f64 = weights.iter().sum();
    let mut u = rng.gen_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        if u < *w {
            return i;
        }
        u -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sampled_lengths_and_ranges() {
        let hmm = Hmm::random(3, 5, 0);
        let mut rng = StdRng::seed_from_u64(1);
        let t = sample_sequence(&hmm, 12, &mut rng);
        assert_eq!(t.states.len(), 12);
        assert_eq!(t.observations.len(), 12);
        assert!(t.states.iter().all(|&s| s < 3));
        assert!(t.observations.iter().all(|&o| o < 5));
    }

    #[test]
    fn empirical_initial_distribution_matches() {
        let hmm = Hmm::new(
            vec![0.8, 0.2],
            vec![vec![0.5, 0.5], vec![0.5, 0.5]],
            vec![vec![1.0], vec![1.0]],
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let n = 10_000;
        let hits = (0..n).filter(|_| sample_sequence(&hmm, 1, &mut rng).states[0] == 0).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.8).abs() < 0.02, "freq {freq}");
    }
}
