//! Adaptive-pruning benchmarks behind paper Table IV: binary-implication-
//! graph preprocessing for logic and circuit-flow pruning for PCs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reason_hmm::{prune_transitions, sample::sample_sequence, Hmm};
use reason_pc::{prune_by_flow, random_mixture_circuit, StructureConfig};
use reason_sat::gen::random_ksat;
use reason_sat::Preprocessor;

fn bench_symbolic_pruning(c: &mut Criterion) {
    let mut g = c.benchmark_group("prune_symbolic");
    g.measurement_time(Duration::from_secs(2)).sample_size(20);
    for &vars in &[20usize, 40, 80] {
        let cnf = random_ksat(vars, vars * 4, 3, 7);
        g.bench_with_input(BenchmarkId::from_parameter(vars), &cnf, |b, cnf| {
            b.iter(|| Preprocessor::new().run(cnf))
        });
    }
    g.finish();
}

fn bench_flow_pruning(c: &mut Criterion) {
    let mut g = c.benchmark_group("prune_circuit_flow");
    g.measurement_time(Duration::from_secs(2)).sample_size(10);
    let circuit = random_mixture_circuit(&StructureConfig {
        num_vars: 10,
        depth: 3,
        num_components: 3,
        seed: 5,
    });
    let mut rng = StdRng::seed_from_u64(0);
    let data: Vec<Vec<usize>> =
        (0..50).map(|_| (0..10).map(|_| usize::from(rng.gen_bool(0.8))).collect()).collect();
    g.bench_function("pc_flow_prune_30pct", |b| b.iter(|| prune_by_flow(&circuit, &data, 0.3)));
    g.finish();
}

fn bench_hmm_pruning(c: &mut Criterion) {
    let mut g = c.benchmark_group("prune_hmm_posterior");
    g.measurement_time(Duration::from_secs(2)).sample_size(10);
    let hmm = Hmm::random(8, 10, 1);
    let mut rng = StdRng::seed_from_u64(2);
    let data: Vec<Vec<usize>> =
        (0..20).map(|_| sample_sequence(&hmm, 20, &mut rng).observations).collect();
    g.bench_function("transitions_1pct", |b| b.iter(|| prune_transitions(&hmm, &data, 0.01)));
    g.finish();
}

criterion_group!(benches, bench_symbolic_pruning, bench_flow_pruning, bench_hmm_pruning);
criterion_main!(benches);
