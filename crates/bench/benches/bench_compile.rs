//! Knowledge-compilation benchmarks: the top-down component-caching
//! compiler against the legacy Shannon baseline, plus the
//! compiled-reuse and buffered-evaluation fast paths.
//!
//! `cargo bench --bench bench_compile` (shimmed timing; raise
//! `CRITERION_SHIM_ITERS` for real measurements).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use reason_pc::{
    compile_cnf, compile_cnf_shannon, weighted_model_count, CompiledWmc, EvalBuffer, Evidence,
    WmcWeights,
};
use reason_sat::gen::random_ksat;

fn bench_compilers(c: &mut Criterion) {
    // Head-to-head on the sweep's cheap rungs, where the Shannon
    // baseline is still affordable inside a bench loop.
    let mut group = c.benchmark_group("cnf_to_circuit");
    for (n, m) in [(12usize, 36usize), (16, 40)] {
        let cnf = random_ksat(n, m, 3, 21);
        let weights = WmcWeights::uniform(n);
        group.bench_with_input(BenchmarkId::new("topdown", n), &cnf, |b, cnf| {
            b.iter(|| black_box(compile_cnf(cnf, &weights)))
        });
        group.bench_with_input(BenchmarkId::new("shannon", n), &cnf, |b, cnf| {
            b.iter(|| black_box(compile_cnf_shannon(cnf, &weights)))
        });
    }
    group.finish();
}

fn bench_topdown_scaling(c: &mut Criterion) {
    // The rungs past the baseline's wall: top-down compiler only.
    let mut group = c.benchmark_group("topdown_scaling");
    for (n, m) in [(24usize, 48usize), (28, 52), (40, 64)] {
        let cnf = random_ksat(n, m, 3, 21);
        let weights = WmcWeights::uniform(n);
        group.bench_with_input(BenchmarkId::new("compile", n), &cnf, |b, cnf| {
            b.iter(|| black_box(compile_cnf(cnf, &weights)))
        });
    }
    group.finish();
}

fn bench_wmc_reuse(c: &mut Criterion) {
    // The compiled-reuse API vs recompiling per query: 8 conditional
    // mass queries against one formula.
    let mut group = c.benchmark_group("wmc_queries");
    let n = 14;
    let cnf = random_ksat(n, 36, 3, 11);
    let weights = WmcWeights::uniform(n);
    group.bench_function("recompile_per_query", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for _ in 0..8 {
                total += weighted_model_count(&cnf, &weights);
            }
            black_box(total)
        })
    });
    group.bench_function("compiled_reuse", |b| {
        b.iter(|| {
            let mut oracle = CompiledWmc::new(&cnf, &weights);
            let mut total = 0.0;
            let mut ev = Evidence::empty(n);
            for v in 0..8usize {
                ev.clear(v.saturating_sub(1));
                ev.set(v, 1);
                total += oracle.probability(&ev);
            }
            black_box(total)
        })
    });
    group.finish();
}

fn bench_eval_buffer(c: &mut Criterion) {
    // Allocating vs buffer-reusing evaluation on one compiled circuit.
    let mut group = c.benchmark_group("circuit_eval");
    let n = 20;
    let cnf = random_ksat(n, 44, 3, 21);
    let weights = WmcWeights::uniform(n);
    let circuit = compile_cnf(&cnf, &weights).expect("benchmark instance is satisfiable");
    let empty = Evidence::empty(n);
    group.bench_function("log_values_alloc", |b| b.iter(|| black_box(circuit.log_values(&empty))));
    group.bench_function("log_values_into_buffered", |b| {
        let mut buf = EvalBuffer::new();
        b.iter(|| black_box(circuit.log_values_into(&empty, &mut buf)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_compilers,
    bench_topdown_scaling,
    bench_wmc_reuse,
    bench_eval_buffer
);
criterion_main!(benches);
