//! Batched arena-evaluation benchmarks: `B` per-query d-DNNF walks
//! against one structure-of-arrays batch traversal, plus the compiled
//! kernel's lowering onto the cycle-accurate VLIW model.
//!
//! `cargo bench --bench bench_batch` (shimmed timing; raise
//! `CRITERION_SHIM_ITERS` for real measurements).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use reason_pc::{BatchBuffer, CompiledWmc, Dnnf, DnnfBatch, DnnfBuffer, Evidence, WmcWeights};
use reason_sat::gen::random_ksat;
use reason_sat::Cnf;

fn sat_instance(n: usize, m: usize, seed: u64) -> Cnf {
    let mut s = seed;
    loop {
        let cnf = random_ksat(n, m, 3, s);
        if reason_pc::weighted_model_count(&cnf, &WmcWeights::uniform(n)) > 0.0 {
            return cnf;
        }
        s += 1;
    }
}

fn arena_for(n: usize, m: usize) -> Dnnf {
    let oracle = CompiledWmc::new(&sat_instance(n, m, 5), &WmcWeights::uniform(n));
    Dnnf::from_circuit(oracle.circuit().expect("probed mass")).expect("binary circuits")
}

/// Mixed evidence lanes: empty, one observed variable, two observed.
fn lanes_for(n: usize, lanes: usize) -> Vec<Evidence> {
    (0..lanes)
        .map(|i| {
            let mut ev = Evidence::empty(n);
            if i % 3 >= 1 {
                ev.set(i % n, i & 1);
            }
            if i % 3 == 2 {
                ev.set((i + 1) % n, 1);
            }
            ev
        })
        .collect()
}

/// `B` independent single-query walks vs one batched traversal.
fn bench_arena_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("arena_batch");
    for (n, m) in [(12usize, 36usize), (20, 44)] {
        let arena = arena_for(n, m);
        let evs = lanes_for(n, 32);
        let batch = DnnfBatch::pack(&evs);
        let mut sbuf = DnnfBuffer::new();
        let mut bbuf = BatchBuffer::new();
        group.bench_function(BenchmarkId::new("per_query_32", n), |b| {
            b.iter(|| {
                for ev in &evs {
                    black_box(arena.log_probability(ev, &mut sbuf));
                }
            })
        });
        group.bench_function(BenchmarkId::new("batched_32", n), |b| {
            b.iter(|| black_box(arena.log_probability_batch(&batch, &mut bbuf)))
        });
    }
    group.finish();
}

/// Lowering a rung's circuit through the mapping compiler onto the
/// simulated accelerator, end to end.
fn bench_accelerator_lowering(c: &mut Criterion) {
    use reason_arch::{ArchConfig, VliwExecutor};
    use reason_compiler::ReasonCompiler;
    use reason_core::{dag_from_circuit, regularize};

    let mut group = c.benchmark_group("arena_lowering");
    let n = 12;
    let oracle = CompiledWmc::new(&sat_instance(n, 36, 5), &WmcWeights::uniform(n));
    let circuit = oracle.circuit().expect("probed mass");
    let config = ArchConfig::paper();
    group.bench_function(BenchmarkId::new("compile_execute", n), |b| {
        b.iter(|| {
            let (dag, map) = dag_from_circuit(circuit);
            let dag = regularize(&dag);
            let kernel = ReasonCompiler::new(config).compile(&dag).expect("fits");
            let inputs = map.inputs_for_evidence(circuit.arities(), &vec![None; n]);
            black_box(VliwExecutor::new(config).execute(&kernel.program(&inputs)).cycles)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_arena_batch, bench_accelerator_lowering);
criterion_main!(benches);
