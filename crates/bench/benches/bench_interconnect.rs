//! Interconnect benchmarks behind paper Fig. 8: Benes route computation
//! and broadcast-latency scaling across topologies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use rand::seq::SliceRandom;
use rand::SeedableRng;
use reason_arch::{broadcast_latency_cycles, BenesNetwork, NocTopology};

fn bench_benes_routing(c: &mut Criterion) {
    let mut g = c.benchmark_group("benes_route");
    g.measurement_time(Duration::from_secs(2)).sample_size(30);
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    for &n in &[8usize, 16, 32, 64] {
        let net = BenesNetwork::new(n);
        let mut perm: Vec<usize> = (0..n).collect();
        perm.shuffle(&mut rng);
        g.bench_with_input(BenchmarkId::from_parameter(n), &perm, |b, p| {
            b.iter(|| net.route(p).unwrap())
        });
    }
    g.finish();
}

fn bench_topology_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_broadcast_latency");
    g.measurement_time(Duration::from_secs(1)).sample_size(30);
    for topo in NocTopology::all() {
        g.bench_function(topo.name(), |b| {
            b.iter(|| {
                let mut total = 0u64;
                for mult in 1..=8 {
                    total += broadcast_latency_cycles(topo, 8 * mult);
                }
                total
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_benes_routing, bench_topology_scaling);
criterion_main!(benches);
