//! Profiling and SLO-monitoring overhead benchmarks: the cost of
//! folding a span forest into a flame-graph profile, rendering the
//! collapsed-stack export, differencing two profiles, scanning for
//! tail exemplars, and the per-sample cost of SLO burn-rate
//! evaluation — the continuous-observability paths that run after (or
//! during) every sweep.
//!
//! `cargo bench --bench bench_profile` (shimmed timing; raise
//! `CRITERION_SHIM_ITERS` for real measurements).

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use reason_telemetry::profile::{exemplars, Profile};
use reason_telemetry::slo::{Objective, SloMonitor, SloSpec};
use reason_telemetry::trace::SpanRecord;
use reason_telemetry::{Telemetry, Tracer, VirtualClock};

/// A deterministic span forest shaped like a serving sweep: `queries`
/// root chains of admit → (compile →) eval children across 4 shards.
fn sweep_spans(queries: u64) -> Vec<SpanRecord> {
    let tracer = Tracer::new(VirtualClock::shared());
    for i in 0..queries {
        let t = i as f64 * 1e-4;
        let shard = (i % 4).to_string();
        let root = tracer.record_span(i + 1, "cluster.query", &[("shard", &shard)], t, t + 9e-5);
        tracer.record_span_under(i + 1, "cluster.admit", &[], t, t + 1e-6, root);
        if i % 7 == 0 {
            tracer.record_span_under(i + 1, "serve.compile", &[], t + 1e-6, t + 4e-5, root);
            tracer.record_span_under(i + 1, "serve.eval", &[], t + 4e-5, t + 9e-5, root);
        } else {
            tracer.record_span_under(i + 1, "serve.eval", &[], t + 1e-6, t + 9e-5, root);
        }
    }
    tracer.finished()
}

/// Folding a sweep's span forest into collapsed stacks, and rendering
/// the speedscope/inferno text export.
fn bench_fold(c: &mut Criterion) {
    let mut group = c.benchmark_group("profile_fold");
    let spans = sweep_spans(300);
    group.bench_function("from_spans_300_queries", |b| {
        b.iter(|| black_box(Profile::from_spans(&spans).total_ns()))
    });
    let profile = Profile::from_spans(&spans);
    group.bench_function("collapsed_render", |b| b.iter(|| black_box(profile.collapsed().len())));
    group.bench_function("hotspots_top10", |b| b.iter(|| black_box(profile.hotspots(10).len())));
    group.finish();
}

/// Differential profiles and tail-exemplar scans over the same forest.
fn bench_diff_and_exemplars(c: &mut Criterion) {
    let mut group = c.benchmark_group("profile_diff");
    let baseline = Profile::from_spans(&sweep_spans(300));
    let candidate = Profile::from_spans(&sweep_spans(450));
    group.bench_function("diff_300_vs_450", |b| {
        b.iter(|| black_box(candidate.diff(&baseline).len()))
    });
    let spans = sweep_spans(300);
    group.bench_function("exemplars_top3_of_300", |b| {
        b.iter(|| black_box(exemplars(&spans, "cluster.query", 3).len()))
    });
    group.finish();
}

/// The SLO monitor's per-sample cost: registry snapshot + burn-rate
/// windows per spec. This is the observe-per-arrival hot path the
/// serving cluster pays while a sweep runs.
fn bench_slo_observe(c: &mut Criterion) {
    let mut group = c.benchmark_group("slo_observe");
    let telemetry = Arc::new(Telemetry::with_clock(VirtualClock::shared()));
    let admissions = telemetry.registry.counter("admissions_total", &[]);
    let rejects = telemetry.registry.counter("rejects_total", &[]);
    let mut monitor = SloMonitor::new(telemetry.clone(), u64::MAX);
    monitor.add(SloSpec {
        name: "availability".into(),
        objective: Objective::CounterRatio {
            bad: vec!["rejects_total".into()],
            total: vec!["rejects_total".into(), "admissions_total".into()],
        },
        budget: 0.01,
        fast_window_s: 0.5,
        slow_window_s: 2.0,
        burn_threshold: 10.0,
    });
    let mut t = 0.0f64;
    group.bench_function("observe_x100", |b| {
        b.iter(|| {
            for i in 0..100u64 {
                admissions.add(9);
                rejects.add(u64::from(i % 19 == 0));
                t += 1e-3;
                monitor.observe(t);
            }
            black_box(monitor.alerts().len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fold, bench_diff_and_exemplars, bench_slo_observe);
criterion_main!(benches);
