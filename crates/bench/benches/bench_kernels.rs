//! Table II kernels on the baseline device models (GPU/CPU): the
//! characterization measurements behind paper Fig. 3 and Table II.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use reason_sim::{CpuModel, GpuModel, KernelProfile};

fn bench_gpu_model(c: &mut Criterion) {
    let mut g = c.benchmark_group("gpu_model_table2");
    g.measurement_time(Duration::from_secs(2)).sample_size(20);
    let gpu = GpuModel::a6000();
    for kernel in KernelProfile::table2_suite() {
        g.bench_with_input(BenchmarkId::from_parameter(&kernel.name), &kernel, |b, k| {
            b.iter(|| gpu.run(k))
        });
    }
    g.finish();
}

fn bench_cpu_model(c: &mut Criterion) {
    let mut g = c.benchmark_group("cpu_model_table2");
    g.measurement_time(Duration::from_secs(2)).sample_size(20);
    let cpu = CpuModel::xeon();
    for kernel in KernelProfile::table2_suite() {
        g.bench_with_input(BenchmarkId::from_parameter(&kernel.name), &kernel, |b, k| {
            b.iter(|| cpu.run(k))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_gpu_model, bench_cpu_model);
criterion_main!(benches);
