//! Approximate-inference benchmarks: the estimators of `reason-approx`
//! against the exact engine they trade off against.
//!
//! `cargo bench --bench bench_approx` (shimmed timing; raise
//! `CRITERION_SHIM_ITERS` for real measurements).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::prelude::*;
use reason_approx::{
    adapt_mixture, is_wmc_mixture, mc_wmc, AdaptConfig, ApproxConfig, ApproxEngine, SampleConfig,
};
use reason_pc::{compile_cnf, Evidence, WmcWeights};
use reason_sat::gen::random_ksat;

fn bench_estimators(c: &mut Criterion) {
    let mut group = c.benchmark_group("approx_estimators");
    let cnf = random_ksat(14, 36, 3, 11);
    let weights = WmcWeights::uniform(14);
    let sampling = SampleConfig { samples: 2048, checkpoint: 512, seed: 1 };

    group
        .bench_function("mc_wmc_2048", |b| b.iter(|| black_box(mc_wmc(&cnf, &weights, &sampling))));
    group.bench_function("is_wmc_adapted_2048", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(2);
            let acfg =
                AdaptConfig { rounds: 4, batch: 256, components: 4, ..AdaptConfig::default() };
            let mix = adapt_mixture(&cnf, &weights, &acfg, &mut rng);
            black_box(is_wmc_mixture(&cnf, &weights, &mix, &sampling))
        })
    });
    group.finish();
}

fn bench_exact_vs_approx(c: &mut Criterion) {
    // The sweep's cheap end: exact compilation still tractable, so both
    // sides can be timed head-to-head in one bench group.
    let mut group = c.benchmark_group("exact_vs_approx");
    for (n, m) in [(12usize, 30usize), (16, 40)] {
        let cnf = random_ksat(n, m, 3, 21);
        let weights = WmcWeights::uniform(n);
        group.bench_with_input(BenchmarkId::new("exact_compile_wmc", n), &cnf, |b, cnf| {
            b.iter(|| {
                let circuit = compile_cnf(cnf, &weights);
                black_box(circuit.map(|c| c.probability(&Evidence::empty(n))))
            })
        });
        group.bench_with_input(BenchmarkId::new("approx_engine_wmc", n), &cnf, |b, cnf| {
            let engine = ApproxEngine::new(ApproxConfig::seeded(3));
            b.iter(|| black_box(engine.wmc(cnf, &weights)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_estimators, bench_exact_vs_approx);
criterion_main!(benches);
