//! The REASON accelerator itself: compile time, DAG-mode execution,
//! symbolic-mode execution, and the hardware-technique ablations
//! (Sec. VII-C, Table V's hardware column).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use reason_arch::{ArchConfig, SymbolicEngine, VliwExecutor};
use reason_compiler::ReasonCompiler;
use reason_core::{dag_from_circuit, regularize, KernelSource, ReasonPipeline};
use reason_pc::{random_mixture_circuit, StructureConfig};
use reason_sat::gen::random_ksat;

fn bench_compiler(c: &mut Criterion) {
    let mut g = c.benchmark_group("compiler");
    g.measurement_time(Duration::from_secs(2)).sample_size(20);
    let circuit = random_mixture_circuit(&StructureConfig {
        num_vars: 10,
        depth: 3,
        num_components: 3,
        seed: 2,
    });
    let (dag, _) = dag_from_circuit(&circuit);
    let dag = regularize(&dag);
    let config = ArchConfig::paper();
    g.bench_function("map_pc_dag", |b| {
        b.iter(|| ReasonCompiler::new(config).compile(&dag).unwrap())
    });
    let cnf = random_ksat(20, 85, 3, 5);
    g.bench_function("pipeline_sat_kernel", |b| {
        b.iter(|| ReasonPipeline::new().compile(KernelSource::Sat(&cnf)).unwrap())
    });
    g.finish();
}

fn bench_dag_mode(c: &mut Criterion) {
    let mut g = c.benchmark_group("accelerator_dag_mode");
    g.measurement_time(Duration::from_secs(2)).sample_size(20);
    let circuit = random_mixture_circuit(&StructureConfig {
        num_vars: 10,
        depth: 3,
        num_components: 3,
        seed: 2,
    });
    let (dag, map) = dag_from_circuit(&circuit);
    let dag = regularize(&dag);
    let inputs = map.inputs_for_evidence(circuit.arities(), &[None; 10]);

    let full = ArchConfig::paper();
    let mut no_sched = full;
    no_sched.ablation.scheduling = false;
    let mut no_banks = full;
    no_banks.ablation.bank_mapping = false;

    for (name, cfg) in [("full", full), ("no_scheduling", no_sched), ("no_bank_mapping", no_banks)]
    {
        let kernel = ReasonCompiler::new(cfg).compile(&dag).unwrap();
        let program = kernel.program(&inputs);
        let exec = VliwExecutor::new(cfg);
        g.bench_function(name, |b| b.iter(|| exec.execute(&program)));
    }
    g.finish();
}

fn bench_symbolic_mode(c: &mut Criterion) {
    let mut g = c.benchmark_group("accelerator_symbolic_mode");
    g.measurement_time(Duration::from_secs(2)).sample_size(10);
    let cnf = random_ksat(30, 126, 3, 9);
    let full = SymbolicEngine::new(ArchConfig::paper());
    let mut cfg = ArchConfig::paper();
    cfg.ablation.wl_memory_layout = false;
    let scan = SymbolicEngine::new(cfg);
    g.bench_function("with_wl_layout", |b| b.iter(|| full.solve(&cnf)));
    g.bench_function("without_wl_layout", |b| b.iter(|| scan.solve(&cnf)));
    g.finish();
}

criterion_group!(benches, bench_compiler, bench_dag_mode, bench_symbolic_mode);
criterion_main!(benches);
