//! Fault-layer overhead benchmarks: the happy-path cost of the
//! breaker and hedged-retry machinery when no fault ever fires (the
//! contract is <2% on the serve path), plus microbenches for the
//! breaker check and the deterministic backoff computation, and a
//! faulted sweep showing what a crash-failover path costs end to end.
//!
//! `cargo bench --bench bench_fault` (shimmed timing; raise
//! `CRITERION_SHIM_ITERS` for real measurements).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use reason_pc::WmcWeights;
use reason_sat::gen::random_ksat;
use reason_sat::Cnf;
use reason_serve::{
    BreakerConfig, ClusterConfig, FaultConfig, FaultPlan, Query, QueryKind, RetryConfig,
    ServeCluster, ShardHealth,
};

fn sat_instance(n: usize, m: usize, seed: u64) -> Cnf {
    let mut s = seed;
    loop {
        let cnf = random_ksat(n, m, 3, s);
        if reason_pc::weighted_model_count(&cnf, &WmcWeights::uniform(n)) > 0.0 {
            return cnf;
        }
        s += 1;
    }
}

/// The headline pin: a serving sweep bare vs with an (empty-plan) fault
/// domain installed. The guarded run pays one breaker check and the
/// fault-plan point queries per arrival; the contract is <2% overhead.
fn bench_happy_path_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_happy_path_overhead");
    let cnf = sat_instance(12, 36, 5);
    for guarded in [false, true] {
        let label = if guarded { "with_fault_domain" } else { "bare" };
        group.bench_with_input(
            BenchmarkId::new("serve_16_queries", label),
            &guarded,
            |b, &guarded| {
                b.iter(|| {
                    let mut cluster = ServeCluster::new(ClusterConfig::with_shards(2));
                    if guarded {
                        cluster.install_fault_domain(FaultPlan::new(), FaultConfig::default());
                    }
                    let kb = cluster.register("bench", &cnf, WmcWeights::uniform(12));
                    let batch: Vec<_> =
                        (0..16).map(|_| (kb, Query::exact(QueryKind::Wmc))).collect();
                    black_box(cluster.serve(&batch).unwrap().outcomes.len())
                })
            },
        );
    }
    group.finish();
}

/// A crash-failover sweep: the same batch served while the home shards
/// are dead, so every query pays retries, breaker bookkeeping, ring
/// reroutes, and a failover-shard recompile.
fn bench_crash_failover(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_crash_failover");
    let cnf = sat_instance(12, 36, 5);
    group.bench_function("serve_16_queries_all_crashed_home", |b| {
        b.iter(|| {
            let mut cluster = ServeCluster::new(ClusterConfig::with_shards(2));
            let kb = cluster.register("bench", &cnf, WmcWeights::uniform(12));
            let home = cluster.shard_of(kb);
            cluster.install_fault_domain(
                FaultPlan::new().crash(home, 0.0, 1e6),
                FaultConfig::default(),
            );
            let batch: Vec<_> = (0..16).map(|_| (kb, Query::exact(QueryKind::Wmc))).collect();
            black_box(cluster.serve(&batch).unwrap().outcomes.len())
        })
    });
    group.finish();
}

/// Per-arrival fault-layer primitives: one breaker admit check and one
/// deterministic backoff computation.
fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_primitives");
    group.bench_function("breaker_admit_x1000", |b| {
        b.iter(|| {
            let mut health = ShardHealth::new(BreakerConfig::default());
            let mut admitted = 0u32;
            for i in 0..1000 {
                admitted += u32::from(health.admits(i as f64 * 1e-6));
            }
            black_box(admitted)
        })
    });
    let retry = RetryConfig::default();
    group.bench_function("backoff_s_x1000", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for i in 0..1000u64 {
                acc += retry.backoff_s(1 + (i % 3) as u32, i);
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_happy_path_overhead, bench_crash_failover, bench_primitives);
criterion_main!(benches);
