//! Telemetry overhead benchmarks: the hot-path cost of cached metric
//! handles (atomic counters, gauge stores, histogram recordings) and
//! the end-to-end overhead of attaching a full telemetry sink to a
//! serving sweep — the registry's contract is <2% on the serve path.
//!
//! `cargo bench --bench bench_telemetry` (shimmed timing; raise
//! `CRITERION_SHIM_ITERS` for real measurements).

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use reason_pc::WmcWeights;
use reason_sat::gen::random_ksat;
use reason_sat::Cnf;
use reason_serve::{ClusterConfig, Query, QueryKind, ServeCluster};
use reason_telemetry::{MetricsRegistry, Telemetry, Tracer, VirtualClock};

fn sat_instance(n: usize, m: usize, seed: u64) -> Cnf {
    let mut s = seed;
    loop {
        let cnf = random_ksat(n, m, 3, s);
        if reason_pc::weighted_model_count(&cnf, &WmcWeights::uniform(n)) > 0.0 {
            return cnf;
        }
        s += 1;
    }
}

/// Cached-handle updates: the per-event cost instrumented hot loops pay.
/// Counters and gauges are single relaxed atomics; histograms take a
/// short mutex.
fn bench_handles(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_handles");
    let registry = MetricsRegistry::new();
    let counter = registry.counter("bench_events_total", &[("shard", "0")]);
    let gauge = registry.gauge("bench_entries", &[]);
    let histogram = registry.histogram("bench_latency_seconds", &[("shard", "0")]);
    group.bench_function("counter_inc_x1000", |b| {
        b.iter(|| {
            for _ in 0..1000 {
                counter.inc();
            }
            black_box(counter.get())
        })
    });
    group.bench_function("gauge_set_x1000", |b| {
        b.iter(|| {
            for i in 0..1000 {
                gauge.set(i as f64);
            }
            black_box(gauge.get())
        })
    });
    group.bench_function("histogram_record_x1000", |b| {
        b.iter(|| {
            for i in 0..1000 {
                histogram.record(1e-6 * (1 + i % 97) as f64);
            }
            black_box(histogram.snapshot().count)
        })
    });
    group.finish();
}

/// Handle lookup (registry lock + BTreeMap) vs the cached fast path —
/// the reason call sites hold handles instead of re-resolving names.
fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_lookup");
    let registry = MetricsRegistry::new();
    for shard in 0..4 {
        registry.counter("bench_lookup_total", &[("shard", &shard.to_string())]).inc();
    }
    group.bench_function("counter_resolve_x100", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..100u32 {
                let shard = (i % 4).to_string();
                acc += registry.counter("bench_lookup_total", &[("shard", &shard)]).get();
            }
            black_box(acc)
        })
    });
    group.finish();
}

/// Span recording on a virtual clock: the modeled-sweep tracing path.
fn bench_spans(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_spans");
    group.bench_function("record_span_chain_x100", |b| {
        b.iter(|| {
            let tracer = Tracer::new(VirtualClock::shared());
            for i in 0..100 {
                let t = i as f64 * 1e-3;
                let root = tracer.record_span(
                    i,
                    "cluster.query",
                    &[("shard", "0"), ("tenant", "kb")],
                    t,
                    t + 1e-3,
                );
                tracer.record_span_under(i, "serve.eval", &[], t, t + 1e-3, root);
            }
            black_box(tracer.finished().len())
        })
    });
    group.finish();
}

/// The headline pin: a serving sweep with and without an attached sink.
/// The instrumented run pays cached-atomic updates plus span records;
/// the contract is <2% end-to-end overhead.
fn bench_serve_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_serve_overhead");
    let cnf = sat_instance(12, 36, 5);
    for instrumented in [false, true] {
        let label = if instrumented { "with_telemetry" } else { "bare" };
        group.bench_with_input(
            BenchmarkId::new("serve_16_queries", label),
            &instrumented,
            |b, &instrumented| {
                b.iter(|| {
                    let mut cluster = ServeCluster::new(ClusterConfig::with_shards(2));
                    if instrumented {
                        let tel = Arc::new(Telemetry::with_clock(VirtualClock::shared()));
                        cluster.attach_telemetry(tel);
                    }
                    let kb = cluster.register("bench", &cnf, WmcWeights::uniform(12));
                    let batch: Vec<_> =
                        (0..16).map(|_| (kb, Query::exact(QueryKind::Wmc))).collect();
                    black_box(cluster.serve(&batch).unwrap().outcomes.len())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_handles, bench_lookup, bench_spans, bench_serve_overhead);
criterion_main!(benches);
