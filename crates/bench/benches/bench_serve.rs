//! Serving-engine benchmarks: cold registration+compile against warm
//! store-served queries, the d-DNNF arena fast path, and incremental
//! recompilation through the persistent component cache.
//!
//! `cargo bench --bench bench_serve` (shimmed timing; raise
//! `CRITERION_SHIM_ITERS` for real measurements).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use reason_pc::{Evidence, WmcWeights};
use reason_sat::gen::random_ksat;
use reason_sat::Cnf;
use reason_serve::{Query, QueryKind, ServeConfig, ServeEngine};

fn sat_instance(n: usize, m: usize, seed: u64) -> Cnf {
    let mut s = seed;
    loop {
        let cnf = random_ksat(n, m, 3, s);
        if reason_pc::weighted_model_count(&cnf, &WmcWeights::uniform(n)) > 0.0 {
            return cnf;
        }
        s += 1;
    }
}

/// The cold path: register + first compiled query, from nothing.
fn bench_cold_serve(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_cold");
    for (n, m) in [(12usize, 36usize), (20, 44)] {
        let cnf = sat_instance(n, m, 5);
        group.bench_with_input(BenchmarkId::new("register_compile_query", n), &cnf, |b, cnf| {
            b.iter(|| {
                let mut engine = ServeEngine::new(ServeConfig::default());
                let id = engine.register("bench", cnf, WmcWeights::uniform(cnf.num_vars()));
                black_box(engine.query(id, &QueryKind::Wmc).unwrap())
            })
        });
    }
    group.finish();
}

/// The warm paths the store buys: arena fast-path queries and routed
/// executor batches against the hot artifact.
fn bench_warm_serve(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_warm");
    for (n, m) in [(12usize, 36usize), (20, 44)] {
        let cnf = sat_instance(n, m, 5);
        let mut engine = ServeEngine::new(ServeConfig::default());
        let id = engine.register("bench", &cnf, WmcWeights::uniform(n));
        engine.warm(id).unwrap();
        let mut ev = Evidence::empty(n);
        ev.set(0, 1).set(n - 1, 0);
        let posterior = QueryKind::Posterior(ev);
        group.bench_function(BenchmarkId::new("arena_posterior", n), |b| {
            b.iter(|| black_box(engine.query(id, &posterior).unwrap()))
        });
        let batch: Vec<Query> = (0..8).map(|_| Query::exact(posterior.clone())).collect();
        group.bench_function(BenchmarkId::new("routed_batch_8", n), |b| {
            b.iter(|| black_box(engine.serve(id, &batch).unwrap().outcomes.len()))
        });
    }
    group.finish();
}

/// Incremental maintenance: add a clause, recompile through the
/// persistent component cache (vs. the from-scratch alternative the
/// cold bench measures).
fn bench_incremental(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_incremental");
    let n = 20;
    let cnf = sat_instance(n, 44, 5);
    group.bench_function(BenchmarkId::new("add_clause_recompile", n), |b| {
        b.iter(|| {
            let mut engine = ServeEngine::new(ServeConfig::default());
            let id = engine.register("bench", &cnf, WmcWeights::uniform(n));
            engine.warm(id).unwrap();
            engine.add_clause(id, &[1, -2, 3]);
            black_box(engine.query(id, &QueryKind::Wmc).unwrap())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_cold_serve, bench_warm_serve, bench_incremental);
criterion_main!(benches);
