//! Sharded-cluster benchmarks: consistent-hash ring lookups, admission
//! throughput on a loaded shard, and one traffic-grid cell end to end.
//!
//! `cargo bench --bench bench_traffic` (shimmed timing; raise
//! `CRITERION_SHIM_ITERS` for real measurements).

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use reason_pc::{FormulaFingerprint, WmcWeights};
use reason_sat::gen::random_ksat;
use reason_sat::Cnf;
use reason_serve::{
    ClusterConfig, HashRing, Query, QueryKind, QueryRouter, RouterConfig, ServeCluster,
};

fn sat_instance(n: usize, m: usize, seed: u64) -> Cnf {
    let mut s = seed;
    loop {
        let cnf = random_ksat(n, m, 3, s);
        if reason_pc::weighted_model_count(&cnf, &WmcWeights::uniform(n)) > 0.0 {
            return cnf;
        }
        s += 1;
    }
}

/// Ring lookups: the per-query placement cost of the front-end.
fn bench_ring_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_ring");
    let keys: Vec<FormulaFingerprint> = (0..64)
        .map(|i| {
            let cnf = sat_instance(12, 36, i);
            FormulaFingerprint::from_parts(12, cnf.clauses(), &WmcWeights::uniform(12))
        })
        .collect();
    for shards in [4usize, 16] {
        let ring = HashRing::new(shards, 32, 0xC1A5);
        group.bench_with_input(BenchmarkId::new("shard_for_64_keys", shards), &ring, |b, ring| {
            b.iter(|| {
                let mut acc = 0usize;
                for fp in &keys {
                    acc += ring.shard_for(black_box(fp));
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

/// Admission decisions: the pre-dispatch judge on hot telemetry.
fn bench_admission(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_admission");
    let router = QueryRouter::new(RouterConfig::default());
    let telemetry = reason_serve::KbTelemetry::prior(12, 36);
    let queries: Vec<Query> = (0..64)
        .map(|i| match i % 3 {
            0 => Query::exact(QueryKind::Wmc),
            1 => Query::with_deadline(QueryKind::Wmc, Duration::from_millis(1)),
            _ => Query::with_deadline(QueryKind::Wmc, Duration::from_micros(50)),
        })
        .collect();
    group.bench_function("admit_64_mixed_deadlines", |b| {
        b.iter(|| {
            let mut admitted = 0usize;
            for (i, q) in queries.iter().enumerate() {
                let backlog = 1e-6 * (i % 7) as f64;
                if router.admit(q, &telemetry, backlog).route().is_some() {
                    admitted += 1;
                }
            }
            black_box(admitted)
        })
    });
    group.finish();
}

/// One cluster batch end to end: register, admit, dispatch, answer.
fn bench_cluster_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_serve");
    let cnf = sat_instance(12, 36, 5);
    for shards in [1usize, 4] {
        group.bench_with_input(BenchmarkId::new("serve_16_queries", shards), &shards, |b, &s| {
            b.iter(|| {
                let mut cluster = ServeCluster::new(ClusterConfig::with_shards(s));
                let kb = cluster.register("bench", &cnf, WmcWeights::uniform(12));
                let batch: Vec<_> = (0..16).map(|_| (kb, Query::exact(QueryKind::Wmc))).collect();
                black_box(cluster.serve(&batch).unwrap().outcomes.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ring_lookup, bench_admission, bench_cluster_batch);
criterion_main!(benches);
