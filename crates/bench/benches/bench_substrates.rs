//! Micro-benchmarks of the reasoning substrates: the kernels REASON
//! accelerates, measured in software (the reference implementations).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use reason_fol::{parse_formula, prove};
use reason_hmm::{Dfa, Hmm};
use reason_pc::{random_mixture_circuit, Evidence, StructureConfig};
use reason_sat::gen::random_ksat;
use reason_sat::CdclSolver;

fn bench_sat(c: &mut Criterion) {
    let mut g = c.benchmark_group("sat_cdcl");
    g.measurement_time(Duration::from_secs(2)).sample_size(20);
    for &(vars, clauses) in &[(30usize, 126usize), (60, 255), (90, 384)] {
        let cnf = random_ksat(vars, clauses, 3, 42);
        g.bench_with_input(BenchmarkId::from_parameter(vars), &cnf, |b, cnf| {
            b.iter(|| CdclSolver::new(cnf).solve())
        });
    }
    g.finish();
}

fn bench_pc(c: &mut Criterion) {
    let mut g = c.benchmark_group("pc_marginal");
    g.measurement_time(Duration::from_secs(2)).sample_size(20);
    for &vars in &[8usize, 12, 16] {
        let circuit = random_mixture_circuit(&StructureConfig {
            num_vars: vars,
            depth: 3,
            num_components: 3,
            seed: 1,
        });
        let ev = Evidence::empty(vars);
        g.bench_with_input(BenchmarkId::from_parameter(vars), &(circuit, ev), |b, (c, e)| {
            b.iter(|| c.probability(e))
        });
    }
    g.finish();
}

fn bench_hmm(c: &mut Criterion) {
    let mut g = c.benchmark_group("hmm");
    g.measurement_time(Duration::from_secs(2)).sample_size(20);
    let hmm = Hmm::random(16, 24, 3);
    let obs: Vec<usize> = (0..64).map(|t| t % 24).collect();
    g.bench_function("forward_64", |b| b.iter(|| hmm.log_likelihood(&obs)));
    g.bench_function("viterbi_64", |b| b.iter(|| hmm.viterbi(&obs)));
    let small = Hmm::random(6, 8, 4);
    let dfa = Dfa::contains_keyword(&[1, 2], 8);
    g.bench_function("constrained_decode_12", |b| b.iter(|| small.constrained_decode(&dfa, 12)));
    g.finish();
}

fn bench_fol(c: &mut Criterion) {
    let mut g = c.benchmark_group("fol_resolution");
    g.measurement_time(Duration::from_secs(2)).sample_size(10);
    let axioms = vec![
        parse_formula("forall X. forall Y. forall Z. ((le(X, Y) & le(Y, Z)) -> le(X, Z))").unwrap(),
        parse_formula("le(a, b)").unwrap(),
        parse_formula("le(b, c)").unwrap(),
        parse_formula("le(c, d)").unwrap(),
    ];
    let goal = parse_formula("le(a, d)").unwrap();
    g.bench_function("transitive_chain", |b| b.iter(|| prove(&axioms, &goal, 20_000)));
    g.finish();
}

criterion_group!(benches, bench_sat, bench_pc, bench_hmm, bench_fol);
criterion_main!(benches);
