//! The threaded batch executor on mixed SAT/PC batches (paper Sec. VI-C
//! executed, not simulated): serial baseline vs stage overlap vs parallel
//! symbolic conquering, plus the cube-and-conquer worker-count axis.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use reason_sat::gen::random_ksat;
use reason_sat::{CubeAndConquer, CubeConfig};
use reason_system::{demo_batch, BatchExecutor, ExecutorConfig};

fn bench_executor_configs(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline_executor");
    g.measurement_time(Duration::from_secs(3)).sample_size(10);
    let batch = demo_batch(6, 11);
    g.bench_function("serial", |b| {
        b.iter(|| BatchExecutor::new(ExecutorConfig::sequential()).run(&batch))
    });
    for workers in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::new("overlapped", workers), &workers, |b, &w| {
            b.iter(|| BatchExecutor::new(ExecutorConfig::overlapped(w)).run(&batch))
        });
    }
    g.finish();
}

fn bench_cube_conquer_workers(c: &mut Criterion) {
    let mut g = c.benchmark_group("cube_conquer_workers");
    g.measurement_time(Duration::from_secs(3)).sample_size(10);
    let cnf = random_ksat(24, 100, 3, 9);
    for workers in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| {
                CubeAndConquer::new(&cnf, CubeConfig { workers: w, ..CubeConfig::default() })
                    .solve()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_executor_configs, bench_cube_conquer_workers);
criterion_main!(benches);
