//! End-to-end platform comparisons behind paper Figs. 11-13: per-task
//! cost evaluation across REASON and the baselines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use reason_bench::{baseline_symbolic_cost, end_to_end_cost, Platform};
use reason_workloads::{Dataset, Scale, TaskSpec};

fn bench_symbolic_stage(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_symbolic_stage_eval");
    g.measurement_time(Duration::from_secs(3)).sample_size(10);
    let spec = TaskSpec::new(Dataset::TwinSafety, Scale::Small, 0);
    for platform in Platform::all() {
        g.bench_with_input(BenchmarkId::from_parameter(platform.name()), &spec, |b, s| {
            b.iter(|| baseline_symbolic_cost(platform, s))
        });
    }
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_end_to_end_eval");
    g.measurement_time(Duration::from_secs(3)).sample_size(10);
    for dataset in [Dataset::Imo, Dataset::CommonGen] {
        g.bench_with_input(BenchmarkId::from_parameter(dataset.name()), &dataset, |b, &d| {
            b.iter(|| end_to_end_cost(Platform::Reason, d, 2))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_symbolic_stage, bench_end_to_end);
criterion_main!(benches);
