//! Minimal JSON emission and parsing for scriptable `reason-eval`
//! output.
//!
//! The workspace's `serde` shim is derive-only (see
//! `third_party/serde`), so machine-readable experiment output is
//! emitted through this hand-rolled value type instead. The parser
//! exists so the test suite can assert that everything `--json` prints
//! round-trips through a real grammar, not just "looks like JSON".

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (rendered with enough digits to round-trip).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Renders the value as compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if !x.is_finite() {
                    out.push_str("null"); // JSON has no Inf/NaN
                } else if x.fract() == 0.0 && x.abs() < 9.0e15 {
                    let _ = write!(out, "{}", *x as i64);
                } else {
                    // `{:?}` prints f64 with round-trip precision.
                    let _ = write!(out, "{x:?}");
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses JSON text into a [`Json`] value. Strict enough for the smoke
/// tests: rejects trailing garbage, unterminated literals, and bad
/// escapes.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes: Vec<char> = text.chars().collect();
    let mut p = Parser { chars: &bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err(format!("trailing characters at {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    chars: &'a [char],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        match self.bump() {
            Some(got) if got == c => Ok(()),
            other => Err(format!("expected {c:?} at {}, got {other:?}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        for c in word.chars() {
            self.expect(c)?;
        }
        Ok(value)
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some('n') => self.literal("null", Json::Null),
            Some('t') => self.literal("true", Json::Bool(true)),
            Some('f') => self.literal("false", Json::Bool(false)),
            Some('"') => self.string().map(Json::Str),
            Some('[') => self.array(),
            Some('{') => self.object(),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".into()),
                Some('"') => return Ok(s),
                Some('\\') => match self.bump() {
                    Some('"') => s.push('"'),
                    Some('\\') => s.push('\\'),
                    Some('/') => s.push('/'),
                    Some('n') => s.push('\n'),
                    Some('r') => s.push('\r'),
                    Some('t') => s.push('\t'),
                    Some('b') => s.push('\u{8}'),
                    Some('f') => s.push('\u{c}'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d =
                                self.bump().and_then(|c| c.to_digit(16)).ok_or("bad \\u escape")?;
                            code = code * 16 + d;
                        }
                        s.push(char::from_u32(code).ok_or("bad \\u code point")?);
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(c) => s.push(c),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some('.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some('e' | 'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some('+' | '-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse::<f64>().map(Json::Num).map_err(|e| format!("bad number {text:?}: {e}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some(']') => return Ok(Json::Arr(items)),
                other => return Err(format!("expected ',' or ']', got {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect('{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some('}') => return Ok(Json::Obj(fields)),
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_values() {
        let v = Json::Obj(vec![
            ("name".into(), Json::Str("approx \"sweep\"\n".into())),
            ("rows".into(), Json::Arr(vec![Json::Num(1.5), Json::Num(-2e-3), Json::Null])),
            ("ok".into(), Json::Bool(true)),
        ]);
        let text = v.render();
        let back = parse(&text).expect("rendered JSON must parse");
        assert_eq!(back, v);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = parse(" { \"a\" : [ 1 , \"x\\u0041\" ] , \"b\" : null } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_str(), Some("xA"));
        assert_eq!(v.get("b"), Some(&Json::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("true false").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn numbers_roundtrip_at_full_precision() {
        let x = 0.012_090_483_023_930_89_f64;
        let text = Json::Num(x).render();
        assert_eq!(parse(&text).unwrap().as_f64(), Some(x));
    }

    #[test]
    fn non_finite_numbers_render_as_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }
}
