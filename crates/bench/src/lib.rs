//! `reason-bench` — the experiment harness regenerating every table and
//! figure of the REASON paper's evaluation (Sec. VII).
//!
//! The shared machinery here turns workload tasks into device costs:
//!
//! * REASON costs come from the *cycle-level simulation* of `reason-arch`
//!   (compiled VLIW kernels for probabilistic work, the BCP engine for
//!   symbolic work), trace-scaled from the representative simulated
//!   kernel to the task-scale kernel profile;
//! * baseline costs come from the device models of `reason-sim`;
//! * neural-stage costs come from the LLM proxy of `reason-neural`.
//!
//! Experiments live in [`experiments`]; the `reason-eval` binary prints
//! them in the paper's row/series layout, each ending with the paper's
//! reported values for comparison. The `pipeline` experiment goes one
//! step further: instead of *costing* the two-level pipeline it *runs*
//! it, on the threaded `reason_system::BatchExecutor`, and prints the
//! flow-shop cost model's prediction next to the measured wall clock.
//!
//! Criterion-style benches live in `benches/` (shimmed timing, smoke-run
//! by CI; raise `CRITERION_SHIM_ITERS` for real measurements). See
//! `docs/ARCHITECTURE.md` for where this harness sits in the workspace.

pub mod experiments;
pub mod json;

use reason_arch::{ArchConfig, SymbolicEngine, VliwExecutor};
use reason_compiler::ReasonCompiler;
use reason_core::{KernelSource, PipelineConfig, ReasonPipeline};
use reason_hmm::Hmm;
use reason_neural::LlmProxy;
use reason_sim::{CpuModel, GpuModel};
use reason_workloads::{model_for, Dataset, Scale, TaskSpec, Workload};

/// Cost of one stage on one device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskCost {
    /// Latency in seconds.
    pub seconds: f64,
    /// Energy in joules.
    pub energy_j: f64,
}

impl TaskCost {
    /// Zero cost.
    pub fn zero() -> Self {
        TaskCost { seconds: 0.0, energy_j: 0.0 }
    }

    /// Component-wise sum.
    pub fn plus(self, other: TaskCost) -> TaskCost {
        TaskCost { seconds: self.seconds + other.seconds, energy_j: self.energy_j + other.energy_j }
    }
}

/// Which platform executes the symbolic/probabilistic stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Platform {
    /// Intel Xeon CPU.
    Xeon,
    /// NVIDIA Jetson Orin NX.
    OrinNx,
    /// NVIDIA RTX A6000.
    RtxA6000,
    /// The REASON accelerator.
    Reason,
}

impl Platform {
    /// Display name (paper Fig. 11 legend).
    pub fn name(self) -> &'static str {
        match self {
            Platform::Xeon => "Xeon CPU",
            Platform::OrinNx => "Orin NX",
            Platform::RtxA6000 => "RTX GPU",
            Platform::Reason => "REASON",
        }
    }

    /// All four platforms in the paper's order.
    pub fn all() -> [Platform; 4] {
        [Platform::Xeon, Platform::OrinNx, Platform::RtxA6000, Platform::Reason]
    }
}

/// Total abstract operation count of a task's symbolic kernels.
fn task_ops(spec: &TaskSpec) -> f64 {
    model_for(spec.dataset.workload()).kernel_profiles(spec).iter().map(|k| k.flops).sum()
}

/// REASON-side cost of one task's symbolic stage: the representative
/// kernel is *actually executed* on the cycle-level model, then scaled to
/// the task-level operation count.
pub fn reason_symbolic_cost(spec: &TaskSpec, config: &ArchConfig) -> TaskCost {
    let workload = spec.dataset.workload();
    let (sim_seconds, sim_energy, sim_ops) = match workload {
        Workload::AlphaGeometry | Workload::Linc => {
            // Representative deduction: the task's refutation formula on
            // the BCP engine.
            let task = reason_workloads::AlphaGeometry.generate(spec);
            let engine = SymbolicEngine::new(*config);
            let (_, report) = engine.solve(&task.refutation_cnf);
            // Hardware ops: leaf comparisons + SRAM walk, from the event trace.
            let ops = (report.events.alu_ops + report.events.sram_reads).max(1) as f64;
            (report.energy.seconds, report.energy.total_j(), ops)
        }
        Workload::R2Guard | Workload::NeuroPc => {
            // A deployment-scale circuit keeps the 12-PE array utilized;
            // tiny rule circuits would under-report throughput.
            let circuit = reason_pc::random_mixture_circuit(&reason_pc::StructureConfig {
                num_vars: 12,
                depth: 4,
                num_components: 3,
                seed: spec.seed,
            });
            let kernel = compile_pc_kernel(&circuit, config);
            let exec = VliwExecutor::new(*config);
            let inputs = vec![1.0; kernel.num_inputs()];
            let report = exec.execute(&kernel.program(&inputs));
            let ops = report.events.alu_ops.max(1) as f64;
            (report.energy.seconds, report.energy.total_j(), ops)
        }
        Workload::GeLaTo | Workload::CtrlG => {
            let hmm = Hmm::random(6 + spec.scale.factor(), 8, spec.seed);
            let pipeline = ReasonPipeline::new();
            let kernel = pipeline
                .compile(KernelSource::Hmm { hmm: &hmm, len: 16 })
                .expect("hmm kernel compiles");
            let compiled = ReasonCompiler::new(*config)
                .compile(&kernel.dag)
                .expect("hmm DAG maps onto the paper configuration");
            let exec = VliwExecutor::new(*config);
            let inputs = vec![1.0; compiled.num_inputs()];
            let report = exec.execute(&compiled.program(&inputs));
            let ops = report.events.alu_ops.max(1) as f64;
            (report.energy.seconds, report.energy.total_j(), ops)
        }
    };
    let steps = workload.reasoning_steps() as f64;
    let scale = task_ops(spec) / sim_ops * steps;
    TaskCost { seconds: sim_seconds * scale, energy_j: sim_energy * scale }
}

fn compile_pc_kernel(
    circuit: &reason_pc::Circuit,
    config: &ArchConfig,
) -> reason_compiler::CompiledKernel {
    let pipeline = ReasonPipeline::with_config(PipelineConfig { prune: false, regularize: true });
    let kernel = pipeline.compile(KernelSource::Pc(circuit)).expect("pc kernel compiles");
    ReasonCompiler::new(*config).compile(&kernel.dag).expect("pc DAG maps onto the configuration")
}

/// Baseline-device cost of one task's symbolic stage.
pub fn baseline_symbolic_cost(platform: Platform, spec: &TaskSpec) -> TaskCost {
    let workload = spec.dataset.workload();
    let profiles = model_for(workload).kernel_profiles(spec);
    let steps = workload.reasoning_steps() as f64;
    let scaled = |pair: (f64, f64)| TaskCost { seconds: pair.0 * steps, energy_j: pair.1 * steps };
    match platform {
        Platform::Xeon => scaled(CpuModel::xeon().run_all(&profiles)),
        Platform::OrinNx => scaled(GpuModel::orin_nx().run_all(&profiles)),
        Platform::RtxA6000 => scaled(GpuModel::a6000().run_all(&profiles)),
        Platform::Reason => reason_symbolic_cost(spec, &ArchConfig::paper()),
    }
}

/// Neural-stage cost of one task on the platform hosting the LLM.
///
/// REASON keeps the neural stage on its companion GPU (edge deployment:
/// Orin-class), so the neural time is shared across platforms; what
/// differs is the symbolic stage and the overlap.
pub fn neural_cost(platform: Platform, spec: &TaskSpec) -> TaskCost {
    let (prompt, output) = model_for(spec.dataset.workload()).neural_tokens(spec);
    let llm = LlmProxy::preset("7B");
    // REASON is a GPU plug-in (paper Fig. 6(a)): its neural stage runs on
    // the A6000-class host GPU it shares a die with.
    let (flops, bw, power) = match platform {
        Platform::Xeon => (7.3e12, 307e9, 270.0),
        Platform::OrinNx => (3.8e12, 104e9, 15.0),
        Platform::RtxA6000 | Platform::Reason => (38.7e12, 768e9, 300.0),
    };
    let c = llm.cost(prompt, output, flops, bw);
    TaskCost { seconds: c.seconds, energy_j: power * 0.6 * c.seconds }
}

/// Mean end-to-end task cost over a seed batch, with the two-level
/// pipeline overlap applied on REASON (paper Sec. VI-C) and serial
/// execution on the baselines.
pub fn end_to_end_cost(platform: Platform, dataset: Dataset, tasks: usize) -> TaskCost {
    let specs = TaskSpec::batch(dataset, Scale::Small, tasks);
    let stage_costs: Vec<(TaskCost, TaskCost)> = specs
        .iter()
        .map(|s| (neural_cost(platform, s), baseline_symbolic_cost(platform, s)))
        .collect();
    let energy: f64 = stage_costs.iter().map(|(n, s)| n.energy_j + s.energy_j).sum();
    let seconds = if platform == Platform::Reason {
        let items: Vec<reason_system::StageCost> = stage_costs
            .iter()
            .map(|(n, s)| reason_system::StageCost { neural_s: n.seconds, symbolic_s: s.seconds })
            .collect();
        reason_system::TwoLevelPipeline::new().schedule(&items).pipelined_s
    } else {
        stage_costs.iter().map(|(n, s)| n.seconds + s.seconds).sum()
    };
    TaskCost { seconds: seconds / tasks as f64, energy_j: energy / tasks as f64 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reason_beats_every_baseline_on_symbolic_work() {
        let spec = TaskSpec::new(Dataset::TwinSafety, Scale::Small, 0);
        let reason = baseline_symbolic_cost(Platform::Reason, &spec);
        for platform in [Platform::Xeon, Platform::OrinNx, Platform::RtxA6000] {
            let base = baseline_symbolic_cost(platform, &spec);
            assert!(
                base.seconds > reason.seconds,
                "{} ({}s) should trail REASON ({}s)",
                platform.name(),
                base.seconds,
                reason.seconds
            );
        }
    }

    #[test]
    fn end_to_end_ordering_matches_fig11() {
        let costs: Vec<(Platform, TaskCost)> =
            Platform::all().into_iter().map(|p| (p, end_to_end_cost(p, Dataset::Imo, 3))).collect();
        let reason = costs.iter().find(|(p, _)| *p == Platform::Reason).unwrap().1;
        let rtx = costs.iter().find(|(p, _)| *p == Platform::RtxA6000).unwrap().1;
        let orin = costs.iter().find(|(p, _)| *p == Platform::OrinNx).unwrap().1;
        assert!(reason.seconds < rtx.seconds);
        assert!(rtx.seconds < orin.seconds, "desktop GPU beats the edge GPU");
        assert!(reason.energy_j < rtx.energy_j);
    }

    #[test]
    fn costs_are_finite_and_positive() {
        for dataset in Dataset::all() {
            let spec = TaskSpec::new(dataset, Scale::Small, 1);
            let c = baseline_symbolic_cost(Platform::Reason, &spec);
            assert!(c.seconds.is_finite() && c.seconds > 0.0, "{dataset}");
            assert!(c.energy_j.is_finite() && c.energy_j > 0.0, "{dataset}");
        }
    }
}
