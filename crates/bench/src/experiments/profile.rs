//! Continuous-profiling experiment (`reason-eval profile`): the
//! serving stack's span forest folded into deterministic flame-graph
//! profiles.
//!
//! One seeded traffic workload is replayed twice against a
//! telemetry-instrumented [`ServeCluster`] on a virtual clock:
//!
//! * **baseline** — no faults; its profile is the steady-state shape of
//!   where modeled time goes (queue wait, compiles, batched arena
//!   evals), exported as collapsed-stack text
//!   (`frame;frame;leaf <ns>` per line — loadable by speedscope and
//!   `inferno-flamegraph`) via `reason-eval profile --profile-out FILE`.
//! * **candidate** — the same workload under the chaos crash plan
//!   (shard 0 dead for the middle 40% of the horizon); the
//!   **differential profile** against the baseline surfaces exactly the
//!   stacks the outage moved (failover recompiles, inflated queue
//!   waits) without eyeballing two flame graphs side by side.
//!
//! The report also carries the top-k **hotspot table** (self vs total
//! ns per frame) and the **tail-latency exemplars**: the worst
//! modeled-latency queries of the faulted run, each keeping its full
//! admit → route → (compile →) eval span chain. Everything is derived
//! from virtual-time spans, so text, JSON, and the collapsed artifact
//! are byte-identical per seed.

use std::fmt::Write as _;
use std::sync::Arc;

use reason_serve::{
    ClusterConfig, ClusterKbId, FaultConfig, FaultPlan, Query, RetryConfig, ServeCluster,
};
use reason_telemetry::profile::{exemplars, Exemplar, Hotspot, Profile, StackDelta};
use reason_telemetry::{is_well_formed_forest, Telemetry, VirtualClock};

use super::traffic::{traffic_engine_config, traffic_kbs, traffic_workload, TrafficKb};
use crate::json::Json;

/// Offered load (queries per second of virtual time): the trace
/// sweep's comfortable-underload point, so the baseline profile shows
/// service costs rather than queueing collapse.
pub const PROFILE_QPS: f64 = 5.0e4;

/// Cluster width of both cells.
pub const PROFILE_SHARDS: usize = 2;

/// Queries replayed per cell.
pub const PROFILE_QUERIES: usize = 200;

/// Hotspots and differential entries kept in the committed report.
pub const TOP_K: usize = 10;

/// Tail exemplars kept (worst modeled-latency span chains).
pub const EXEMPLAR_K: usize = 3;

/// Both profiles plus the derived tables.
#[derive(Debug, Clone)]
pub struct ProfileSummary {
    /// Queries per cell.
    pub queries_per_cell: usize,
    /// Total self-time of the baseline profile (ns).
    pub baseline_total_ns: u64,
    /// Total self-time of the faulted candidate profile (ns).
    pub candidate_total_ns: u64,
    /// Collapsed-stack text of the baseline profile (the
    /// `--profile-out` artifact; speedscope/inferno-compatible).
    pub collapsed: String,
    /// Top-[`TOP_K`] baseline hotspots by self time.
    pub hotspots: Vec<Hotspot>,
    /// Top-[`TOP_K`] differential entries (candidate − baseline) by
    /// absolute delta.
    pub deltas: Vec<StackDelta>,
    /// The [`EXEMPLAR_K`] worst-latency queries of the faulted run,
    /// with their full span chains.
    pub exemplars: Vec<Exemplar>,
}

/// Replays the workload once (optionally faulted) and folds the span
/// forest into a profile; also returns the exemplars of the run.
fn run_profile_cell(
    kbs: &[TrafficKb],
    workload: &[super::traffic::Arrival],
    faulted: bool,
    seed: u64,
) -> (Profile, Vec<Exemplar>) {
    let horizon_s = workload.last().map_or(0.0, |a| a.3).max(f64::MIN_POSITIVE);
    let telemetry = Arc::new(Telemetry::with_clock(VirtualClock::shared()));
    let mut cluster = ServeCluster::new(ClusterConfig {
        shards: PROFILE_SHARDS,
        engine: traffic_engine_config(seed),
        ..ClusterConfig::default()
    });
    cluster.attach_telemetry(telemetry.clone());
    let ids: Vec<ClusterKbId> =
        kbs.iter().map(|kb| cluster.register(&kb.name, &kb.cnf, kb.weights.clone())).collect();
    if faulted {
        cluster.install_fault_domain(
            FaultPlan::new().crash(0, 0.2 * horizon_s, 0.6 * horizon_s),
            FaultConfig {
                retry: RetryConfig { seed, ..RetryConfig::default() },
                ..Default::default()
            },
        );
    }
    let arrivals: Vec<(ClusterKbId, Query, f64)> = workload
        .iter()
        .map(|&(kb, shape, deadline, t)| {
            (ids[kb], Query { kind: kbs[kb].shapes[shape].clone(), deadline }, t)
        })
        .collect();
    cluster.serve_at(&arrivals).expect("mass-probed tenants");
    let spans = telemetry.tracer.finished();
    assert!(is_well_formed_forest(&spans), "profile cell: malformed span forest");
    // Track 0 carries the engines' wall-clock spans — everything else
    // is virtual time. Fold only the deterministic tracks.
    let modeled: Vec<_> = spans.iter().filter(|s| s.track != 0).cloned().collect();
    let profile = Profile::from_spans(&modeled);
    let tails = exemplars(&modeled, "cluster.query", EXEMPLAR_K);
    (profile, tails)
}

/// Runs both cells over explicit parameters.
pub fn profile_cells_for(queries_per_cell: usize, qps: f64, seed: u64) -> ProfileSummary {
    let kbs = traffic_kbs(seed);
    let workload = traffic_workload(&kbs, queries_per_cell, qps, seed ^ (1 << 32));
    let (baseline, _) = run_profile_cell(&kbs, &workload, false, seed);
    let (candidate, tails) = run_profile_cell(&kbs, &workload, true, seed);
    let mut deltas = candidate.diff(&baseline);
    deltas.truncate(TOP_K);
    ProfileSummary {
        queries_per_cell,
        baseline_total_ns: baseline.total_ns(),
        candidate_total_ns: candidate.total_ns(),
        collapsed: baseline.collapsed(),
        hotspots: baseline.hotspots(TOP_K),
        deltas,
        exemplars: tails,
    }
}

/// Runs the committed configuration and enforces the profiling
/// contracts: a non-empty well-formed collapsed export (every line
/// `stack <integer-ns>`), a populated hotspot table, a non-empty
/// differential against the crash plan, and exemplars that carry the
/// full query chain.
pub fn profile_summary(seed: u64) -> ProfileSummary {
    let summary = profile_cells_for(PROFILE_QUERIES, PROFILE_QPS, seed);
    assert!(!summary.collapsed.is_empty(), "empty collapsed-stack export");
    for line in summary.collapsed.lines() {
        let (stack, weight) = line.rsplit_once(' ').expect("collapsed line has a weight");
        assert!(!stack.is_empty(), "collapsed line with empty stack: {line:?}");
        assert!(weight.parse::<u64>().is_ok(), "non-integer collapsed weight: {line:?}");
    }
    assert!(!summary.hotspots.is_empty(), "no hotspots in the baseline profile");
    assert!(!summary.deltas.is_empty(), "the crash plan left no differential against the baseline");
    assert!(!summary.exemplars.is_empty(), "no tail exemplars captured");
    for ex in &summary.exemplars {
        assert!(
            ex.chain.iter().any(|s| s.name == "serve.eval" || s.name == "cluster.admit"),
            "exemplar chain is not a query life: {:?}",
            ex.chain.iter().map(|s| s.name.as_str()).collect::<Vec<_>>()
        );
    }
    summary
}

fn hotspot_to_json(h: &Hotspot) -> Json {
    Json::Obj(vec![
        ("name".into(), Json::Str(h.name.clone())),
        ("self_ns".into(), Json::Num(h.self_ns as f64)),
        ("total_ns".into(), Json::Num(h.total_ns as f64)),
        ("count".into(), Json::Num(h.count as f64)),
    ])
}

fn delta_to_json(d: &StackDelta) -> Json {
    Json::Obj(vec![
        ("stack".into(), Json::Str(d.stack.join(";"))),
        ("baseline_ns".into(), Json::Num(d.baseline_ns as f64)),
        ("candidate_ns".into(), Json::Num(d.candidate_ns as f64)),
        ("delta_ns".into(), Json::Num(d.delta_ns() as f64)),
    ])
}

fn exemplar_to_json(e: &Exemplar) -> Json {
    let tenant = e
        .root
        .labels
        .iter()
        .find(|(k, _)| k == "tenant")
        .map_or(Json::Null, |(_, v)| Json::Str(v.clone()));
    Json::Obj(vec![
        ("duration_s".into(), Json::Num(e.duration_s())),
        ("tenant".into(), tenant),
        ("chain".into(), Json::Arr(e.chain.iter().map(|s| Json::Str(s.name.clone())).collect())),
    ])
}

fn summary_to_json(summary: &ProfileSummary, seed: u64) -> Json {
    Json::Obj(vec![
        ("experiment".into(), Json::Str("profile".into())),
        ("seed".into(), Json::Num(seed as f64)),
        ("queries_per_cell".into(), Json::Num(summary.queries_per_cell as f64)),
        ("baseline_total_ns".into(), Json::Num(summary.baseline_total_ns as f64)),
        ("candidate_total_ns".into(), Json::Num(summary.candidate_total_ns as f64)),
        ("collapsed_lines".into(), Json::Num(summary.collapsed.lines().count() as f64)),
        ("hotspots".into(), Json::Arr(summary.hotspots.iter().map(hotspot_to_json).collect())),
        ("diff_vs_crash".into(), Json::Arr(summary.deltas.iter().map(delta_to_json).collect())),
        ("exemplars".into(), Json::Arr(summary.exemplars.iter().map(exemplar_to_json).collect())),
    ])
}

fn summary_to_text(summary: &ProfileSummary) -> String {
    let mut out = String::from("=== profile: flame-graph folding of the serving span forest ===\n");
    let _ = writeln!(
        out,
        "{} queries/cell; baseline {:.3} ms self-time over {} stacks; crash candidate {:.3} ms\n",
        summary.queries_per_cell,
        summary.baseline_total_ns as f64 / 1e6,
        summary.collapsed.lines().count(),
        summary.candidate_total_ns as f64 / 1e6,
    );
    let _ = writeln!(out, "-- top hotspots (baseline, by self time) --");
    let _ = writeln!(out, "{:>18} {:>12} {:>12} {:>7}", "frame", "self us", "total us", "count");
    for h in &summary.hotspots {
        let _ = writeln!(
            out,
            "{:>18} {:>12.2} {:>12.2} {:>7}",
            h.name,
            h.self_ns as f64 / 1e3,
            h.total_ns as f64 / 1e3,
            h.count
        );
    }
    let _ = writeln!(out, "\n-- differential: crash plan vs baseline (top |delta|) --");
    for d in &summary.deltas {
        let _ = writeln!(out, "{:>+12.2} us  {}", d.delta_ns() as f64 / 1e3, d.stack.join(";"));
    }
    let _ = writeln!(out, "\n-- tail exemplars (worst modeled latency under the crash plan) --");
    for e in &summary.exemplars {
        let _ = writeln!(
            out,
            "{:>10.2} us  {}",
            e.duration_s() * 1e6,
            e.chain.iter().map(|s| s.name.as_str()).collect::<Vec<_>>().join(" -> ")
        );
    }
    out.push_str(
        "\n(collapsed-stack export via `reason-eval profile --profile-out FILE`; \
         load in speedscope or inferno-flamegraph)\n",
    );
    out
}

/// Text report of the profiling experiment.
pub fn profile(seed: u64) -> String {
    summary_to_text(&profile_summary(seed))
}

/// JSON report. Byte-identical across runs with the same seed.
pub fn profile_json(seed: u64) -> Json {
    summary_to_json(&profile_summary(seed), seed)
}

/// The collapsed-stack artifact of the baseline profile, for
/// `reason-eval profile --profile-out FILE`.
pub fn profile_artifact(seed: u64) -> String {
    profile_summary(seed).collapsed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn tiny_summary() -> ProfileSummary {
        profile_cells_for(80, PROFILE_QPS, 11)
    }

    #[test]
    fn collapsed_export_is_deterministic_and_parseable() {
        let a = tiny_summary();
        let b = tiny_summary();
        assert_eq!(a.collapsed, b.collapsed, "collapsed export must be byte-identical");
        assert!(!a.collapsed.is_empty());
        for line in a.collapsed.lines() {
            let (stack, weight) = line.rsplit_once(' ').expect("weighted line");
            assert!(weight.parse::<u64>().is_ok(), "line {line:?}");
            assert!(stack.split(';').all(|f| !f.is_empty()), "line {line:?}");
        }
        // Sorted stacks are what makes the export canonical.
        let stacks: Vec<&str> = a.collapsed.lines().collect();
        let mut sorted = stacks.clone();
        sorted.sort_unstable();
        assert_eq!(stacks, sorted, "collapsed lines must be lexicographically sorted");
    }

    #[test]
    fn crash_plan_produces_a_differential_and_exemplars() {
        let summary = tiny_summary();
        assert!(!summary.deltas.is_empty(), "crash must move some stack");
        assert!(!summary.exemplars.is_empty());
        // Exemplars are the worst tails, sorted worst-first.
        let durations: Vec<f64> = summary.exemplars.iter().map(|e| e.duration_s()).collect();
        let mut sorted = durations.clone();
        sorted.sort_by(|x, y| y.total_cmp(x));
        assert_eq!(durations, sorted);
    }

    #[test]
    fn profile_json_is_byte_identical_across_runs() {
        let a = summary_to_json(&tiny_summary(), 11).render();
        let b = summary_to_json(&tiny_summary(), 11).render();
        assert_eq!(a, b);
        let parsed = json::parse(&a).expect("profile JSON must parse");
        assert_eq!(parsed.get("experiment").unwrap().as_str(), Some("profile"));
        assert!(parsed.get("hotspots").unwrap().as_arr().unwrap().len() > 3);
    }
}
