//! Knowledge-compilation scaling sweep (`reason-eval compile`).
//!
//! The experiment behind the top-down compiler rewrite: across a
//! ladder of random 3-SAT instances it times the component-caching
//! compiler ([`reason_pc::compile_cnf`]) head-to-head against the
//! legacy static-order Shannon baseline
//! ([`reason_pc::compile_cnf_shannon`]), asserting their weighted model
//! counts agree where both run, then extends *new-compiler-only* rungs
//! past the baseline's wall — random instances at n ≥ 40 and
//! structured instances (implication chains, graph-coloring encodings)
//! at n ≥ 60 — sizes the old compiler cannot touch.
//!
//! `reason-eval compile --json > BENCH_pc.json` regenerates the
//! committed bench baseline.

use std::fmt::Write as _;
use std::time::Instant;

use reason_pc::{compile_cnf_with_stats, CompileConfig, CompileStats, Evidence};
use reason_sat::gen::{graph_coloring, random_ksat};
use reason_sat::{weighted_count, Cnf};

use super::approx::sweep_weights;
use crate::json::Json;

/// One instance of the compilation sweep.
#[derive(Debug, Clone)]
pub struct CompileRow {
    /// Instance family: `random3sat`, `chain`, or `coloring`.
    pub family: &'static str,
    /// Variable count.
    pub num_vars: usize,
    /// Clause count.
    pub num_clauses: usize,
    /// Seed the instance was generated from.
    pub seed: u64,
    /// Top-down compile seconds (compile + root evaluation).
    pub new_s: f64,
    /// Weighted model count from the top-down circuit.
    pub z: f64,
    /// Top-down compiler counters (nodes, decisions, cache traffic).
    pub stats: CompileStats,
    /// Legacy Shannon compile seconds, when the baseline ran.
    pub old_s: Option<f64>,
    /// Legacy circuit node count, when the baseline ran.
    pub old_nodes: Option<usize>,
    /// Brute-enumeration agreement check (`None` above the
    /// enumeration limit).
    pub brute_ok: Option<bool>,
}

impl CompileRow {
    /// Legacy-over-top-down compile-time ratio, when the baseline ran.
    pub fn speedup(&self) -> Option<f64> {
        self.old_s.map(|old| old / self.new_s.max(1e-12))
    }
}

/// The random-3-SAT comparison ladder `(num_vars, num_clauses)` —
/// the `reason-eval approx` rungs, where the legacy compiler still
/// terminates (seconds at the top).
pub const COMPARE_SIZES: [(usize, usize); 5] = [(12, 36), (16, 40), (20, 44), (24, 48), (28, 52)];

/// Random-3-SAT rungs compiled by the top-down compiler only: the
/// legacy baseline is past its wall here (extrapolating its measured
/// growth, hours at n = 40).
pub const EXTENDED_SIZES: [(usize, usize); 2] = [(40, 64), (60, 84)];

/// An implication-chain rule set `x1 → x2 → … → xn` — the structured
/// shape safety-rule workloads produce, with massive subproblem
/// sharing.
fn chain_cnf(num_vars: usize) -> Cnf {
    let clauses: Vec<Vec<i32>> = (1..num_vars as i32).map(|i| vec![-i, i + 1]).collect();
    Cnf::from_clauses(num_vars, clauses)
}

/// Times the top-down compiler on `cnf`, returning a row (without
/// baseline columns). Returns `None` for instances with no satisfying
/// mass — sweep loops walk seeds until one sticks, and the single
/// timed compilation doubles as the satisfiability probe.
fn try_topdown(family: &'static str, cnf: &Cnf, seed: u64) -> Option<CompileRow> {
    let n = cnf.num_vars();
    let weights = sweep_weights(n);
    let t0 = Instant::now();
    let (circuit, stats) = compile_cnf_with_stats(cnf, &weights, &CompileConfig::default());
    let z = circuit?.probability(&Evidence::empty(n));
    let new_s = t0.elapsed().as_secs_f64();
    if z <= 0.0 {
        return None;
    }
    // Cross-check against exhaustive enumeration where it is feasible.
    let brute_ok = (n <= 16).then(|| {
        let probs: Vec<f64> = (0..n).map(|v| weights.prob(v)).collect();
        (z - weighted_count(cnf, &probs)).abs() < 1e-9
    });
    Some(CompileRow {
        family,
        num_vars: n,
        num_clauses: cnf.num_clauses(),
        seed,
        new_s,
        z,
        stats,
        old_s: None,
        old_nodes: None,
        brute_ok,
    })
}

/// Adds the legacy-baseline columns to a row and asserts old/new WMC
/// agreement.
fn add_baseline(row: &mut CompileRow, cnf: &Cnf) {
    let weights = sweep_weights(cnf.num_vars());
    let t0 = Instant::now();
    let old =
        reason_pc::compile_cnf_shannon(cnf, &weights).expect("baseline agrees on satisfiability");
    let z_old = old.probability(&Evidence::empty(cnf.num_vars()));
    row.old_s = Some(t0.elapsed().as_secs_f64());
    row.old_nodes = Some(old.num_nodes());
    assert!(
        (z_old - row.z).abs() < 1e-9 * z_old.max(1.0),
        "compiler disagreement at n={}: topdown {} vs shannon {}",
        row.num_vars,
        row.z,
        z_old
    );
}

/// Runs the sweep: the comparison ladder (baseline attached up to
/// `baseline_max_vars` variables), the extended random rungs, and the
/// structured n ≥ 60 rungs. Random instances walk seeds until
/// satisfiable with positive mass, like the approx sweep.
pub fn compile_rows(seed: u64, baseline_max_vars: usize) -> Vec<CompileRow> {
    let mut rows = Vec::new();
    for &(n, m) in COMPARE_SIZES.iter().chain(&EXTENDED_SIZES) {
        let mut instance_seed = seed;
        let row = loop {
            let cnf = random_ksat(n, m, 3, instance_seed);
            if let Some(mut row) = try_topdown("random3sat", &cnf, instance_seed) {
                if n <= baseline_max_vars {
                    add_baseline(&mut row, &cnf);
                }
                break row;
            }
            instance_seed += 1;
        };
        rows.push(row);
    }
    // Structured rungs: implication chain and graph coloring, both past
    // n = 60. The chain is cheap for both compilers (shared suffixes),
    // so it keeps a baseline column as the structured node-count
    // comparison; the coloring instance is top-down-only.
    let chain = chain_cnf(64);
    let mut chain_row = try_topdown("chain", &chain, 0).expect("chains are satisfiable");
    add_baseline(&mut chain_row, &chain);
    rows.push(chain_row);
    let mut coloring_seed = seed;
    let coloring_row = loop {
        let cnf = graph_coloring(24, 36, 3, coloring_seed); // 72 variables
        if let Some(row) = try_topdown("coloring", &cnf, coloring_seed) {
            break row;
        }
        coloring_seed += 1;
    };
    rows.push(coloring_row);
    rows
}

fn rows_to_text(rows: &[CompileRow]) -> String {
    let mut out = String::from(
        "=== reason-pc: top-down component-caching compiler vs legacy Shannon baseline ===\n",
    );
    let _ = writeln!(
        out,
        "{:>10} {:>5} {:>7} {:>10} {:>8} {:>9} {:>7} {:>10} {:>9} {:>12}",
        "family",
        "vars",
        "clauses",
        "new ms",
        "nodes",
        "decisions",
        "hit %",
        "old ms",
        "old nds",
        "speedup"
    );
    for r in rows {
        let old_ms = r.old_s.map_or("-".to_string(), |s| format!("{:.2}", 1e3 * s));
        let old_nodes = r.old_nodes.map_or("-".to_string(), |n| n.to_string());
        let speedup = r.speedup().map_or("-".to_string(), |s| format!("{s:.1}x"));
        let _ = writeln!(
            out,
            "{:>10} {:>5} {:>7} {:>10.2} {:>8} {:>9} {:>7.1} {:>10} {:>9} {:>12}",
            r.family,
            r.num_vars,
            r.num_clauses,
            1e3 * r.new_s,
            r.stats.nodes,
            r.stats.decisions,
            100.0 * r.stats.hit_rate(),
            old_ms,
            old_nodes,
            speedup,
        );
    }
    let best = rows.iter().filter_map(CompileRow::speedup).fold(f64::NEG_INFINITY, f64::max);
    let largest = rows.iter().map(|r| r.num_vars).max().unwrap_or(0);
    let _ = writeln!(
        out,
        "(propagate → decompose → decide → cache; best measured speedup {best:.0}x over the \
         static-order Shannon baseline, exact rungs up to n={largest}; node counts never exceed \
         the baseline's on shared instances)"
    );
    out
}

fn rows_to_json(rows: &[CompileRow], seed: u64) -> Json {
    Json::Obj(vec![
        ("experiment".into(), Json::Str("compile".into())),
        ("seed".into(), Json::Num(seed as f64)),
        (
            "rows".into(),
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        let mut fields = vec![
                            ("family".into(), Json::Str(r.family.into())),
                            ("num_vars".into(), Json::Num(r.num_vars as f64)),
                            ("num_clauses".into(), Json::Num(r.num_clauses as f64)),
                            ("instance_seed".into(), Json::Num(r.seed as f64)),
                            ("new_s".into(), Json::Num(r.new_s)),
                            ("z".into(), Json::Num(r.z)),
                            ("nodes".into(), Json::Num(r.stats.nodes as f64)),
                            ("edges".into(), Json::Num(r.stats.edges as f64)),
                            ("decisions".into(), Json::Num(r.stats.decisions as f64)),
                            ("propagations".into(), Json::Num(r.stats.propagations as f64)),
                            ("components".into(), Json::Num(r.stats.components as f64)),
                            ("cache_hits".into(), Json::Num(r.stats.cache_hits as f64)),
                            ("cache_misses".into(), Json::Num(r.stats.cache_misses as f64)),
                            ("cache_hit_rate".into(), Json::Num(r.stats.hit_rate())),
                            // 16 B/node + 8 B/edge, the Circuit
                            // footprint metric (paper Table IV).
                            (
                                "circuit_bytes".into(),
                                Json::Num((16 * r.stats.nodes + 8 * r.stats.edges) as f64),
                            ),
                        ];
                        if let (Some(old_s), Some(old_nodes)) = (r.old_s, r.old_nodes) {
                            fields.push(("old_s".into(), Json::Num(old_s)));
                            fields.push(("old_nodes".into(), Json::Num(old_nodes as f64)));
                            fields.push(("speedup".into(), Json::Num(r.speedup().unwrap_or(0.0))));
                        }
                        if let Some(ok) = r.brute_ok {
                            fields.push(("brute_ok".into(), Json::Bool(ok)));
                        }
                        Json::Obj(fields)
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Text report of the compilation sweep. `baseline_max_vars` caps how
/// far up the ladder the (slow) legacy baseline is timed.
pub fn compile_report(seed: u64, baseline_max_vars: usize) -> String {
    rows_to_text(&compile_rows(seed, baseline_max_vars))
}

/// JSON report of the compilation sweep (for
/// `reason-eval compile --json`, the `BENCH_pc.json` generator).
pub fn compile_json(seed: u64, baseline_max_vars: usize) -> Json {
    rows_to_json(&compile_rows(seed, baseline_max_vars), seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    /// A trimmed sweep for debug-profile tests: the cheap comparison
    /// rungs only, baseline capped at n = 12.
    fn small_rows() -> Vec<CompileRow> {
        let mut rows = Vec::new();
        for &(n, m) in &COMPARE_SIZES[..2] {
            let cnf = random_ksat(n, m, 3, 7);
            let mut row = try_topdown("random3sat", &cnf, 7).expect("seed 7 rungs are SAT");
            if n <= 12 {
                add_baseline(&mut row, &cnf);
            }
            rows.push(row);
        }
        rows
    }

    #[test]
    fn rows_agree_with_brute_and_baseline() {
        let rows = small_rows();
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.z > 0.0);
            assert_eq!(r.brute_ok, Some(true), "n={} disagrees with enumeration", r.num_vars);
        }
        let with_baseline = &rows[0];
        assert!(with_baseline.old_s.is_some());
        assert!(with_baseline.speedup().unwrap() > 0.0);
        assert!(
            with_baseline.stats.nodes <= with_baseline.old_nodes.unwrap(),
            "top-down must not exceed the baseline's circuit size"
        );
    }

    #[test]
    fn structured_families_compile() {
        let chain = chain_cnf(64);
        let row = try_topdown("chain", &chain, 0).expect("chains are satisfiable");
        assert_eq!(row.num_vars, 64);
        assert!(row.z > 0.0);
        assert!(row.stats.nodes > 0);
    }

    #[test]
    fn text_report_renders_every_row() {
        let rows = small_rows();
        let text = rows_to_text(&rows);
        assert!(text.contains("top-down component-caching"));
        assert!(text.contains("speedup"));
        for r in &rows {
            assert!(text.contains(&format!("{:>5} {:>7}", r.num_vars, r.num_clauses)));
        }
    }

    #[test]
    fn json_output_parses_and_carries_the_sweep() {
        let text = rows_to_json(&small_rows(), 7).render();
        let parsed = json::parse(&text).expect("sweep JSON must parse");
        assert_eq!(parsed.get("experiment").unwrap().as_str(), Some("compile"));
        let rows = parsed.get("rows").unwrap().as_arr().unwrap();
        assert_eq!(rows.len(), 2);
        for row in rows {
            assert!(row.get("new_s").unwrap().as_f64().is_some());
            assert!(row.get("nodes").unwrap().as_f64().is_some());
            assert_eq!(row.get("brute_ok").unwrap().as_bool(), Some(true));
            // Cache traffic and sizes are emitted raw, not just as a
            // rate: hits + misses and the circuit's byte footprint.
            assert!(row.get("cache_hits").unwrap().as_f64().is_some());
            assert!(row.get("cache_misses").unwrap().as_f64().unwrap() > 0.0);
            assert!(row.get("circuit_bytes").unwrap().as_f64().unwrap() > 0.0);
        }
        assert!(rows[0].get("speedup").is_some(), "baseline rung carries a speedup");
    }
}
