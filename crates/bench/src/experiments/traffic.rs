//! Synthetic traffic harness for the sharded serving front-end
//! (`reason-eval traffic`).
//!
//! The experiment behind `reason_serve::cluster`: a seeded open-loop
//! workload — Poisson arrivals at a swept offered QPS, Zipf-skewed
//! tenant (knowledge-base) popularity, and Zipf-skewed query-shape
//! popularity within each tenant — is replayed against a
//! [`ServeCluster`] at several shard counts. Every cell of the
//! `offered QPS × shard count` grid reports the latency distribution
//! (p50/p99 under the cluster's deterministic virtual-time queue
//! model), the deadline-miss rate, the pre-dispatch degrade rate, and
//! the reject rate.
//!
//! Two guards run inside every cell:
//!
//! * **bit-identity** — each exact-admitted answer is compared
//!   bit-for-bit against a single-engine [`ServeEngine`] serving the
//!   identical workload deadline-free; sharding must be invisible to
//!   exact results.
//! * **bracket containment** — each degraded (anytime-bounds) answer's
//!   bracket is checked against the single-engine exact value; the
//!   per-cell contained/checked counts are reported.
//!
//! Determinism: admission, routing, and the virtual-time latency model
//! read only seeded inputs and the deterministic prior cost model —
//! never wall clocks — so `reason-eval traffic --seed S --json` is
//! byte-identical across runs. `reason-eval traffic --json >
//! BENCH_traffic.json` regenerates the committed baseline.

use std::fmt::Write as _;
use std::time::Duration;

use rand::prelude::*;
use reason_pc::{Evidence, WmcWeights};
use reason_sat::gen::random_ksat;
use reason_sat::Cnf;
use reason_serve::{
    Admission, Answer, ClusterConfig, ClusterKbId, Query, QueryKind, Route, RouterConfig,
    ServeCluster, ServeConfig, ServeEngine,
};

use crate::json::Json;

/// Offered load sweep (queries per second of virtual time). The warm
/// exact rung costs ~2.4 µs under the prior model, so one shard
/// saturates near 4×10⁵ QPS: the ladder spans comfortable underload to
/// ~3× overload of the largest swept cluster.
pub const TRAFFIC_QPS: [f64; 4] = [5.0e4, 1.5e5, 4.5e5, 1.35e6];

/// Shard-count sweep.
pub const TRAFFIC_SHARDS: [usize; 3] = [1, 2, 4];

/// Queries per grid cell in the committed baseline.
pub const TRAFFIC_QUERIES: usize = 400;

/// Distinct query shapes per knowledge base (the Zipf popularity
/// domain).
const SHAPES_PER_KB: usize = 32;

/// One cell of the `offered QPS × shard count` grid.
#[derive(Debug, Clone)]
pub struct TrafficCell {
    /// Offered queries per second of virtual time.
    pub offered_qps: f64,
    /// Shards in the cluster.
    pub shards: usize,
    /// Queries replayed.
    pub queries: usize,
    /// Admitted on the exact rung.
    pub exact: u64,
    /// Degraded to anytime bounds before dispatch.
    pub approx: u64,
    /// Degraded to the prediction network before dispatch.
    pub predicted: u64,
    /// Rejected before dispatch.
    pub rejected: u64,
    /// Queries whose modeled latency missed their deadline (rejects
    /// included).
    pub deadline_misses: u64,
    /// Median modeled arrival-to-completion seconds (admitted queries).
    pub p50_s: f64,
    /// 99th-percentile modeled latency (admitted queries).
    pub p99_s: f64,
    /// `deadline_misses / queries`.
    pub miss_rate: f64,
    /// `(approx + predicted) / queries`.
    pub degrade_rate: f64,
    /// `rejected / queries`.
    pub reject_rate: f64,
    /// Every exact-admitted answer matched the single-engine reference
    /// bit-for-bit.
    pub exact_bit_identical: bool,
    /// Degraded brackets compared against the reference exact value.
    pub bounds_checked: usize,
    /// How many of those brackets contained it.
    pub bounds_contained: usize,
}

/// The whole grid.
#[derive(Debug, Clone)]
pub struct TrafficSummary {
    /// One row per `(offered QPS, shard count)` pair.
    pub cells: Vec<TrafficCell>,
    /// Queries per cell.
    pub queries_per_cell: usize,
    /// Registered knowledge bases (tenants).
    pub kbs: usize,
}

/// One registered tenant: a mass-probed random 3-SAT knowledge base
/// plus its fixed menu of query shapes.
pub(crate) struct TrafficKb {
    pub(crate) name: String,
    pub(crate) cnf: Cnf,
    pub(crate) weights: WmcWeights,
    pub(crate) shapes: Vec<QueryKind>,
}

/// A precomputed Zipf(s) sampler over `0..n` via inverse-CDF lookup.
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, s: f64) -> Self {
        let weights: Vec<f64> = (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(s)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cdf = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        Zipf { cdf }
    }

    fn sample(&self, u: f64) -> usize {
        self.cdf.partition_point(|&c| c <= u).min(self.cdf.len() - 1)
    }
}

/// The tenant set: six knowledge bases spanning n = 10..14, each
/// seed-walked until it carries non-trivial mass (rare-event tenants
/// would starve the bracket-containment guard of signal).
pub(crate) fn traffic_kbs(seed: u64) -> Vec<TrafficKb> {
    let sizes = [(10usize, 30usize), (11, 33), (12, 36), (13, 39), (14, 42), (12, 38)];
    sizes
        .iter()
        .enumerate()
        .map(|(i, &(n, m))| {
            let weights = WmcWeights::new((0..n).map(|v| 0.45 + 0.1 * (v % 2) as f64).collect());
            let mut instance_seed = seed.wrapping_add(1000 * i as u64);
            let cnf = loop {
                let cnf = random_ksat(n, m, 3, instance_seed);
                if reason_pc::weighted_model_count(&cnf, &weights) > 1e-3 {
                    break cnf;
                }
                instance_seed += 1;
            };
            let mut rng = StdRng::seed_from_u64(seed ^ 0x7AFF1C ^ (i as u64) << 8);
            let shapes = (0..SHAPES_PER_KB)
                .map(|j| match j % 8 {
                    0 => QueryKind::Wmc,
                    7 => QueryKind::Marginal(Evidence::empty(n), rng.gen_range(0..n)),
                    6 => {
                        let mut ev = Evidence::empty(n);
                        ev.set(rng.gen_range(0..n), usize::from(rng.gen_bool(0.5)));
                        QueryKind::Posterior(ev)
                    }
                    _ => {
                        let mut ev = Evidence::empty(n);
                        for _ in 0..1 + j % 2 {
                            ev.set(rng.gen_range(0..n), usize::from(rng.gen_bool(0.5)));
                        }
                        QueryKind::Probability(ev)
                    }
                })
                .collect();
            TrafficKb { name: format!("tenant-{i}"), cnf, weights, shapes }
        })
        .collect()
}

/// One generated arrival: `(kb index, shape index, deadline, arrival
/// seconds)`.
pub(crate) type Arrival = (usize, usize, Option<Duration>, f64);

/// An open-loop Poisson workload at `qps`: exponential inter-arrivals,
/// Zipf(1.2) tenant skew, Zipf(1.1) shape popularity, and a deadline
/// mix of 30% deadline-free / 30% at 1 ms / 20% at 50 µs / 20% at 5 µs
/// (the last tier sits right at the warm exact rung's modeled cost, so
/// it exercises the degrade ladder even on an idle shard).
pub(crate) fn traffic_workload(
    kbs: &[TrafficKb],
    count: usize,
    qps: f64,
    seed: u64,
) -> Vec<Arrival> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0FFE12ED);
    let tenant_zipf = Zipf::new(kbs.len(), 1.2);
    let shape_zipf = Zipf::new(SHAPES_PER_KB, 1.1);
    let mut t = 0.0f64;
    (0..count)
        .map(|_| {
            t += -(1.0 - rng.gen::<f64>()).ln() / qps;
            let kb = tenant_zipf.sample(rng.gen::<f64>());
            let shape = shape_zipf.sample(rng.gen::<f64>());
            let u = rng.gen::<f64>();
            let deadline = if u < 0.3 {
                None
            } else if u < 0.6 {
                Some(Duration::from_millis(1))
            } else if u < 0.8 {
                Some(Duration::from_micros(50))
            } else {
                Some(Duration::from_micros(5))
            };
            (kb, shape, deadline, t)
        })
        .collect()
}

/// A trimmed prediction-network schedule (the serve sweep's shape):
/// enough to exercise the predicted rung, cheap enough for CI smoke.
fn traffic_predictor() -> reason_approx::PredictConfig {
    reason_approx::PredictConfig {
        queries: 128,
        epochs: 150,
        hidden: 16,
        ..reason_approx::PredictConfig::default()
    }
}

/// The per-shard engine configuration: the approximate rung's sample
/// cap is trimmed to bound real execution time, and the predictor is
/// on so the degrade ladder's last rung is reachable.
pub(crate) fn traffic_engine_config(seed: u64) -> ServeConfig {
    ServeConfig {
        router: RouterConfig { max_approx_samples: 2048, ..RouterConfig::default() },
        predictor: Some(traffic_predictor()),
        approx_seed: seed,
        ..ServeConfig::default()
    }
}

/// `sorted` must be ascending; nearest-rank percentile.
pub(crate) fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    sorted[((sorted.len() - 1) as f64 * q).round() as usize]
}

/// Single-engine reference answers for the workload, deadline-free: the
/// bit-identity baseline every cell compares against. Shared with the
/// chaos sweep, which scores fault-tolerant replays of the same
/// workloads against the same oracle.
pub(crate) fn reference_answers(kbs: &[TrafficKb], workload: &[Arrival], seed: u64) -> Vec<Answer> {
    let mut engine = ServeEngine::new(traffic_engine_config(seed));
    let ids: Vec<_> =
        kbs.iter().map(|kb| engine.register(&kb.name, &kb.cnf, kb.weights.clone())).collect();
    let mut answers: Vec<Option<Answer>> = vec![None; workload.len()];
    for (kb_idx, &id) in ids.iter().enumerate() {
        let indices: Vec<usize> =
            (0..workload.len()).filter(|&i| workload[i].0 == kb_idx).collect();
        if indices.is_empty() {
            continue;
        }
        let queries: Vec<Query> = indices
            .iter()
            .map(|&i| Query::exact(kbs[kb_idx].shapes[workload[i].1].clone()))
            .collect();
        let report = engine.serve(id, &queries).expect("mass-probed tenants");
        for (&i, outcome) in indices.iter().zip(report.outcomes) {
            answers[i] = Some(outcome.answer);
        }
    }
    answers.into_iter().map(|a| a.expect("every arrival answered")).collect()
}

/// Runs one grid cell: replays the workload through a fresh cluster and
/// scores it against the precomputed single-engine reference.
fn run_cell(
    kbs: &[TrafficKb],
    workload: &[Arrival],
    reference: &[Answer],
    qps: f64,
    shards: usize,
    seed: u64,
) -> TrafficCell {
    let mut cluster = ServeCluster::new(ClusterConfig {
        shards,
        engine: traffic_engine_config(seed),
        ..ClusterConfig::default()
    });
    let ids: Vec<ClusterKbId> =
        kbs.iter().map(|kb| cluster.register(&kb.name, &kb.cnf, kb.weights.clone())).collect();
    let arrivals: Vec<(ClusterKbId, Query, f64)> = workload
        .iter()
        .map(|&(kb, shape, deadline, t)| {
            let kind = kbs[kb].shapes[shape].clone();
            (ids[kb], Query { kind, deadline }, t)
        })
        .collect();
    let report = cluster.serve_at(&arrivals).expect("mass-probed tenants");
    assert_eq!(report.outcomes.len(), workload.len(), "every query keeps an outcome");

    let mut exact_bit_identical = true;
    let mut bounds_checked = 0usize;
    let mut bounds_contained = 0usize;
    let mut latencies: Vec<f64> = Vec::with_capacity(workload.len());
    for (outcome, want) in report.outcomes.iter().zip(reference) {
        match outcome.decision {
            Admission::Admit(Route::Exact) => {
                exact_bit_identical &= outcome.answer.as_ref() == Some(want);
                latencies.push(outcome.modeled_latency_s);
            }
            Admission::Admit(Route::Approx { .. }) => {
                if let (Some(Answer::Bounds { lower, upper, .. }), Answer::Exact(x)) =
                    (&outcome.answer, want)
                {
                    bounds_checked += 1;
                    if *lower <= *x && *x <= *upper {
                        bounds_contained += 1;
                    }
                }
                latencies.push(outcome.modeled_latency_s);
            }
            Admission::Admit(Route::Predicted) => latencies.push(outcome.modeled_latency_s),
            Admission::Reject { .. } => assert!(outcome.answer.is_none()),
        }
    }
    latencies.sort_by(f64::total_cmp);

    let stats = report.stats;
    let total = workload.len() as f64;
    TrafficCell {
        offered_qps: qps,
        shards,
        queries: workload.len(),
        exact: stats.exact,
        approx: stats.approx,
        predicted: stats.predicted,
        rejected: stats.rejected,
        deadline_misses: stats.deadline_misses,
        p50_s: percentile(&latencies, 0.50),
        p99_s: percentile(&latencies, 0.99),
        miss_rate: stats.deadline_misses as f64 / total,
        degrade_rate: (stats.approx + stats.predicted) as f64 / total,
        reject_rate: stats.rejected as f64 / total,
        exact_bit_identical,
        bounds_checked,
        bounds_contained,
    }
}

/// Runs the grid over explicit sweeps. Each offered-QPS level generates
/// one workload, replayed unchanged at every shard count (and by the
/// single-engine reference), so cells in a row differ only in cluster
/// shape.
pub fn traffic_cells_for(
    qps_levels: &[f64],
    shard_counts: &[usize],
    queries_per_cell: usize,
    seed: u64,
) -> TrafficSummary {
    let kbs = traffic_kbs(seed);
    let mut cells = Vec::with_capacity(qps_levels.len() * shard_counts.len());
    for (qi, &qps) in qps_levels.iter().enumerate() {
        let workload =
            traffic_workload(&kbs, queries_per_cell, qps, seed ^ ((qi as u64 + 1) << 32));
        let reference = reference_answers(&kbs, &workload, seed);
        for &shards in shard_counts {
            cells.push(run_cell(&kbs, &workload, &reference, qps, shards, seed));
        }
    }
    TrafficSummary { cells, queries_per_cell, kbs: kbs.len() }
}

/// Runs the full committed grid ([`TRAFFIC_QPS`] × [`TRAFFIC_SHARDS`])
/// and enforces the harness guards: exact answers bit-identical to the
/// single-engine reference in every cell, and the sweep actually
/// reaching both degradation and saturation.
pub fn traffic_summary(seed: u64) -> TrafficSummary {
    let summary = traffic_cells_for(&TRAFFIC_QPS, &TRAFFIC_SHARDS, TRAFFIC_QUERIES, seed);
    for cell in &summary.cells {
        assert!(
            cell.exact_bit_identical,
            "sharded exact answers diverged from the single-engine reference at \
             qps={} shards={}",
            cell.offered_qps, cell.shards
        );
    }
    let degraded: u64 = summary.cells.iter().map(|c| c.approx + c.predicted).sum();
    let rejected: u64 = summary.cells.iter().map(|c| c.rejected).sum();
    assert!(degraded > 0, "the sweep never exercised the degrade ladder");
    assert!(rejected > 0, "the sweep never saturated a shard into rejects");
    summary
}

fn cells_to_text(summary: &TrafficSummary) -> String {
    let mut out = String::from(
        "=== reason-serve cluster: sharded admission under open-loop Poisson/Zipf traffic ===\n",
    );
    let _ = writeln!(
        out,
        "{:>10} {:>7} {:>9} {:>9} {:>7} {:>8} {:>7} {:>7} {:>7} {:>6}",
        "QPS", "shards", "p50 us", "p99 us", "miss%", "degrade%", "rej%", "exact", "bounds", "bit"
    );
    for c in &summary.cells {
        let _ = writeln!(
            out,
            "{:>10.0} {:>7} {:>9.2} {:>9.2} {:>6.1}% {:>7.1}% {:>6.1}% {:>7} {:>3}/{:>3} {:>5}",
            c.offered_qps,
            c.shards,
            1e6 * c.p50_s,
            1e6 * c.p99_s,
            100.0 * c.miss_rate,
            100.0 * c.degrade_rate,
            100.0 * c.reject_rate,
            c.exact,
            c.bounds_contained,
            c.bounds_checked,
            if c.exact_bit_identical { "yes" } else { "NO" },
        );
    }
    let _ = writeln!(
        out,
        "({} queries/cell over {} Zipf-skewed tenants; p50/p99 are modeled virtual-time \
         latencies of admitted queries; misses count rejects; `bit` = exact answers \
         bit-identical to a single-engine deadline-free replay)",
        summary.queries_per_cell, summary.kbs,
    );
    out
}

fn cells_to_json(summary: &TrafficSummary, seed: u64) -> Json {
    Json::Obj(vec![
        ("experiment".into(), Json::Str("traffic".into())),
        ("seed".into(), Json::Num(seed as f64)),
        ("queries_per_cell".into(), Json::Num(summary.queries_per_cell as f64)),
        ("tenants".into(), Json::Num(summary.kbs as f64)),
        (
            "cells".into(),
            Json::Arr(
                summary
                    .cells
                    .iter()
                    .map(|c| {
                        Json::Obj(vec![
                            ("offered_qps".into(), Json::Num(c.offered_qps)),
                            ("shards".into(), Json::Num(c.shards as f64)),
                            ("queries".into(), Json::Num(c.queries as f64)),
                            ("admitted_exact".into(), Json::Num(c.exact as f64)),
                            ("admitted_approx".into(), Json::Num(c.approx as f64)),
                            ("admitted_predicted".into(), Json::Num(c.predicted as f64)),
                            ("rejected".into(), Json::Num(c.rejected as f64)),
                            ("deadline_misses".into(), Json::Num(c.deadline_misses as f64)),
                            ("p50_latency_s".into(), Json::Num(c.p50_s)),
                            ("p99_latency_s".into(), Json::Num(c.p99_s)),
                            ("deadline_miss_rate".into(), Json::Num(c.miss_rate)),
                            ("degrade_rate".into(), Json::Num(c.degrade_rate)),
                            ("reject_rate".into(), Json::Num(c.reject_rate)),
                            ("exact_bit_identical".into(), Json::Bool(c.exact_bit_identical)),
                            ("bounds_checked".into(), Json::Num(c.bounds_checked as f64)),
                            ("bounds_contained".into(), Json::Num(c.bounds_contained as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Text report of the traffic grid.
pub fn traffic(seed: u64) -> String {
    cells_to_text(&traffic_summary(seed))
}

/// JSON report of the traffic grid (for `reason-eval traffic --json`,
/// the `BENCH_traffic.json` generator). Byte-identical across runs with
/// the same seed.
pub fn traffic_json(seed: u64) -> Json {
    cells_to_json(&traffic_summary(seed), seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn tiny_summary() -> TrafficSummary {
        // One saturating QPS level at two shard counts, few queries:
        // cheap enough for debug-profile tests.
        traffic_cells_for(&[4.5e5], &[1, 2], 80, 11)
    }

    #[test]
    fn cells_are_sound_and_account_for_every_query() {
        let summary = tiny_summary();
        assert_eq!(summary.cells.len(), 2);
        for c in &summary.cells {
            assert_eq!(
                c.exact + c.approx + c.predicted + c.rejected,
                c.queries as u64,
                "every query admitted or rejected: {c:?}"
            );
            assert!(c.exact_bit_identical, "sharding changed an exact answer: {c:?}");
            assert!(c.p99_s >= c.p50_s);
            assert!(c.miss_rate <= 1.0 && c.degrade_rate <= 1.0 && c.reject_rate <= 1.0);
            assert!(c.bounds_contained <= c.bounds_checked);
        }
    }

    #[test]
    fn more_shards_never_reject_more() {
        let summary = tiny_summary();
        // Same workload, more shards: the queue spreads, so saturation
        // pressure (rejects) must not increase.
        assert!(summary.cells[1].rejected <= summary.cells[0].rejected);
    }

    #[test]
    fn traffic_json_is_byte_identical_across_runs() {
        // The determinism contract behind the committed baseline: two
        // full pipeline runs (fresh clusters, fresh engines, real
        // dispatch) render identical JSON for the same seed.
        let a = cells_to_json(&tiny_summary(), 11).render();
        let b = cells_to_json(&tiny_summary(), 11).render();
        assert_eq!(a, b);
        let parsed = json::parse(&a).expect("traffic JSON must parse");
        assert_eq!(parsed.get("experiment").unwrap().as_str(), Some("traffic"));
        let cells = parsed.get("cells").unwrap().as_arr().unwrap();
        assert_eq!(cells.len(), 2);
        for cell in cells {
            assert_eq!(cell.get("exact_bit_identical").unwrap().as_bool(), Some(true));
            assert!(cell.get("p99_latency_s").unwrap().as_f64().is_some());
            assert!(cell.get("deadline_miss_rate").unwrap().as_f64().is_some());
        }
    }

    #[test]
    fn text_report_renders_every_cell() {
        let summary = tiny_summary();
        let text = cells_to_text(&summary);
        assert!(text.contains("sharded admission"));
        for c in &summary.cells {
            assert!(text.contains(&format!("{:>10.0} {:>7}", c.offered_qps, c.shards)));
        }
    }
}
