//! Live SLO burn-rate evaluation over the chaos scenarios
//! (`reason-eval slo`) — the `BENCH_slo.json` generator.
//!
//! The chaos sweep's seeded fault scenarios, replayed against a
//! telemetry-instrumented [`ServeCluster`] with the default SLO set
//! ([`ServeCluster::default_slo_specs`]) installed, so alerting is
//! evaluated *live* at every arrival instead of asserted post hoc.
//!
//! Unlike the chaos sweep, every cell first runs a deadline-free
//! **warm-up pass** (one exact query per tenant at `t = 0`) and the
//! measured workload is shifted to start at [`SLO_WARM_PAD_S`]. The
//! cold-compile era — which rejects tight-deadline queries identically
//! with and without faults, and therefore cannot distinguish an outage
//! from a cold start — is over before monitoring begins. What remains
//! is the steady-state contract the paper's serving story needs:
//!
//! * **baseline** (no faults): warm stores, backlog near zero, no
//!   rejects — every SLO stays quiet for the whole horizon.
//! * **crash_one_shard**: the dead shard's tenants fail over and
//!   recompile on the survivor; the localized reject/deadline burst
//!   burns the availability budget in both the fast and slow windows
//!   and deterministically fires the `availability` alert, which
//!   resolves once the failover compiles drain.
//! * **rolling_slow** / **cache_wipe_storm**: recorded for the
//!   committed artifact; whether they page depends on how fast their
//!   backlog concentrates, and the byte-determinism contract pins
//!   whatever the seed produces.
//!
//! Alerts are deterministic records (virtual-time stamps, peak burn
//! rates) and also land as `slo.alert` spans on
//! [`reason_serve::SLO_TRACK`] plus `slo_*` metrics, so the sweep
//! cross-checks record-vs-span consistency per cell. `reason-eval slo
//! --json > BENCH_slo.json` regenerates the committed artifact
//! byte-identically per seed; CI runs it twice and `cmp`s.

use std::fmt::Write as _;
use std::sync::Arc;

use reason_serve::{
    ClusterConfig, ClusterKbId, FaultConfig, FaultPlan, Objective, Query, RetryConfig,
    ServeCluster, SloAlert, SloSpec, SLO_TRACK,
};
use reason_telemetry::{is_well_formed_forest, Telemetry, VirtualClock};

use super::traffic::{traffic_engine_config, traffic_kbs, traffic_workload, TrafficKb};
use crate::json::Json;

/// Offered load of every SLO cell (queries per second of virtual
/// time). Same operating point as the chaos sweep: a healthy warm
/// cluster serves it without backlog, so any burn is attributable to
/// the injected faults.
pub const SLO_QPS: f64 = 3.0e4;

/// Cluster width of the committed grid. Two shards is the width where
/// one crash removes half the capacity — the separation the
/// availability alert must catch.
pub const SLO_SHARDS: usize = 2;

/// Queries per cell in the committed grid.
pub const SLO_QUERIES: usize = 300;

/// The fault scenarios evaluated live, after the no-fault `baseline`
/// cell. Same plans as the chaos sweep, shifted to the measured window.
pub const SLO_SCENARIOS: [&str; 3] = ["crash_one_shard", "rolling_slow", "cache_wipe_storm"];

/// Virtual seconds between the warm-up pass (at `t = 0`) and the first
/// measured arrival — generous headroom for every tenant's cold
/// compile to drain, so the monitored phase starts on an idle cluster.
pub const SLO_WARM_PAD_S: f64 = 0.05;

/// One cell of the SLO grid: admission shape plus the full alert
/// history of the default SLO set.
#[derive(Debug, Clone)]
pub struct SloCell {
    /// Scenario name (`baseline` or one of [`SLO_SCENARIOS`]).
    pub scenario: &'static str,
    /// Shards in the cluster.
    pub shards: usize,
    /// Measured queries replayed (the warm-up pass is not counted).
    pub queries: usize,
    /// Measured-phase rejects.
    pub rejected: u64,
    /// Measured-phase deadline misses among admitted queries.
    pub deadline_misses: u64,
    /// Every alert the monitor fired, in fire order (all resolved by
    /// the end-of-horizon [`ServeCluster::finish_slos`]).
    pub alerts: Vec<SloAlert>,
    /// `slo.alert` spans recorded on [`SLO_TRACK`] — must equal
    /// `alerts.len()`.
    pub alert_spans: usize,
}

/// The whole grid plus the SLO set it was judged against.
#[derive(Debug, Clone)]
pub struct SloSummary {
    /// One `baseline` cell, then one per [`SLO_SCENARIOS`] entry.
    pub cells: Vec<SloCell>,
    /// Measured queries per cell.
    pub queries_per_cell: usize,
    /// Measured horizon in virtual seconds (workload span).
    pub horizon_s: f64,
    /// The installed objectives ([`ServeCluster::default_slo_specs`]
    /// over [`SloSummary::horizon_s`]).
    pub specs: Vec<SloSpec>,
}

/// The chaos fault plans, shifted to cover the measured window
/// `[start_s, start_s + horizon_s]` instead of `[0, horizon_s]`.
fn offset_plan(scenario: &str, shards: usize, start_s: f64, horizon_s: f64) -> FaultPlan {
    let at = |frac: f64| start_s + frac * horizon_s;
    match scenario {
        "baseline" => FaultPlan::new(),
        "crash_one_shard" => FaultPlan::new().crash(0, at(0.2), at(0.6)),
        "rolling_slow" => {
            let slice = 1.0 / shards as f64;
            (0..shards).fold(FaultPlan::new(), |plan, s| {
                plan.slow(s, at(s as f64 * slice), at((s + 1) as f64 * slice), 8.0)
            })
        }
        "cache_wipe_storm" => (0..shards)
            .fold(FaultPlan::new(), |plan, s| plan.wipe_cache(s, at(0.3)).wipe_cache(s, at(0.6))),
        other => panic!("unknown SLO scenario {other:?}"),
    }
}

/// Replays one warmed, monitored cell and collects its alert history.
fn run_slo_cell(
    kbs: &[TrafficKb],
    workload: &[super::traffic::Arrival],
    scenario: &'static str,
    shards: usize,
    seed: u64,
) -> SloCell {
    let horizon_s = workload.last().map_or(0.0, |a| a.3).max(f64::MIN_POSITIVE);
    let telemetry = Arc::new(Telemetry::with_clock(VirtualClock::shared()));
    let mut cluster = ServeCluster::new(ClusterConfig {
        shards,
        engine: traffic_engine_config(seed),
        ..ClusterConfig::default()
    });
    cluster.attach_telemetry(telemetry.clone());
    let ids: Vec<ClusterKbId> =
        kbs.iter().map(|kb| cluster.register(&kb.name, &kb.cnf, kb.weights.clone())).collect();

    // Warm-up: one deadline-free exact query per tenant at t = 0
    // compiles every circuit on its home shard before monitoring
    // starts, so the measured phase judges steady-state serving.
    let warm: Vec<(ClusterKbId, Query, f64)> = ids
        .iter()
        .zip(kbs)
        .map(|(&id, kb)| (id, Query { kind: kb.shapes[0].clone(), deadline: None }, 0.0))
        .collect();
    cluster.serve_at(&warm).expect("mass-probed tenants");

    cluster.install_fault_domain(
        offset_plan(scenario, shards, SLO_WARM_PAD_S, horizon_s),
        FaultConfig { retry: RetryConfig { seed, ..RetryConfig::default() }, ..Default::default() },
    );
    cluster.install_slos(ServeCluster::default_slo_specs(horizon_s));

    let arrivals: Vec<(ClusterKbId, Query, f64)> = workload
        .iter()
        .map(|&(kb, shape, deadline, t)| {
            let kind = kbs[kb].shapes[shape].clone();
            (ids[kb], Query { kind, deadline }, SLO_WARM_PAD_S + t)
        })
        .collect();
    let report = cluster.serve_at(&arrivals).expect("mass-probed tenants");
    cluster.finish_slos(SLO_WARM_PAD_S + horizon_s);

    let spans = telemetry.tracer.finished();
    assert!(is_well_formed_forest(&spans), "slo cell {scenario}: malformed span forest");
    let alert_spans = spans.iter().filter(|s| s.track == SLO_TRACK).count();
    let alerts = cluster.slo_alerts().to_vec();
    assert!(
        alerts.iter().all(|a| a.resolved_at_s.is_some()),
        "{scenario}: finish_slos left an active alert: {alerts:?}"
    );

    SloCell {
        scenario,
        shards,
        queries: workload.len(),
        rejected: report.stats.rejected,
        deadline_misses: report.stats.deadline_misses,
        alerts,
        alert_spans,
    }
}

/// Runs the grid over an explicit scenario list and cell size. One
/// workload is generated once and replayed by every cell.
pub fn slo_cells_for(
    scenarios: &[&'static str],
    shards: usize,
    queries_per_cell: usize,
    qps: f64,
    seed: u64,
) -> SloSummary {
    let kbs = traffic_kbs(seed);
    let workload = traffic_workload(&kbs, queries_per_cell, qps, seed ^ (1 << 32));
    let horizon_s = workload.last().map_or(0.0, |a| a.3).max(f64::MIN_POSITIVE);
    let mut cells = Vec::with_capacity(scenarios.len() + 1);
    cells.push(run_slo_cell(&kbs, &workload, "baseline", shards, seed));
    for &scenario in scenarios {
        cells.push(run_slo_cell(&kbs, &workload, scenario, shards, seed));
    }
    SloSummary {
        cells,
        queries_per_cell,
        horizon_s,
        specs: ServeCluster::default_slo_specs(horizon_s),
    }
}

/// Runs the committed grid and enforces the alerting contract: the
/// warm no-fault baseline never pages, the crash cell deterministically
/// fires (and resolves) the availability burn-rate alert, and every
/// cell's alert records match its `slo.alert` spans one-for-one.
pub fn slo_summary(seed: u64) -> SloSummary {
    let summary = slo_cells_for(&SLO_SCENARIOS, SLO_SHARDS, SLO_QUERIES, SLO_QPS, seed);
    for cell in &summary.cells {
        assert_eq!(
            cell.alert_spans,
            cell.alerts.len(),
            "{}: alert records and slo.alert spans disagree",
            cell.scenario
        );
        match cell.scenario {
            "baseline" => {
                assert!(cell.alerts.is_empty(), "warm no-fault baseline paged: {:?}", cell.alerts)
            }
            "crash_one_shard" => assert!(
                cell.alerts.iter().any(|a| a.slo == "availability"),
                "crash cell did not trip the availability burn-rate alert: {:?}",
                cell.alerts
            ),
            _ => {}
        }
    }
    summary
}

fn alert_to_json(a: &SloAlert) -> Json {
    Json::Obj(vec![
        ("slo".into(), Json::Str(a.slo.clone())),
        ("fired_at_s".into(), Json::Num(a.fired_at_s)),
        ("resolved_at_s".into(), a.resolved_at_s.map_or(Json::Null, Json::Num)),
        ("peak_burn_fast".into(), Json::Num(a.peak_burn_fast)),
        ("peak_burn_slow".into(), Json::Num(a.peak_burn_slow)),
    ])
}

fn spec_to_json(spec: &SloSpec) -> Json {
    let objective = match &spec.objective {
        Objective::CounterRatio { bad, total } => Json::Obj(vec![
            ("kind".into(), Json::Str("counter_ratio".into())),
            ("bad".into(), Json::Arr(bad.iter().map(|n| Json::Str(n.clone())).collect())),
            ("total".into(), Json::Arr(total.iter().map(|n| Json::Str(n.clone())).collect())),
        ]),
        Objective::LatencyAbove { histogram, threshold_s } => Json::Obj(vec![
            ("kind".into(), Json::Str("latency_above".into())),
            ("histogram".into(), Json::Str(histogram.clone())),
            ("threshold_s".into(), Json::Num(*threshold_s)),
        ]),
    };
    Json::Obj(vec![
        ("name".into(), Json::Str(spec.name.clone())),
        ("objective".into(), objective),
        ("budget".into(), Json::Num(spec.budget)),
        ("fast_window_s".into(), Json::Num(spec.fast_window_s)),
        ("slow_window_s".into(), Json::Num(spec.slow_window_s)),
        ("burn_threshold".into(), Json::Num(spec.burn_threshold)),
    ])
}

fn summary_to_json(summary: &SloSummary, seed: u64) -> Json {
    Json::Obj(vec![
        ("experiment".into(), Json::Str("slo".into())),
        ("seed".into(), Json::Num(seed as f64)),
        ("offered_qps".into(), Json::Num(SLO_QPS)),
        ("queries_per_cell".into(), Json::Num(summary.queries_per_cell as f64)),
        ("horizon_s".into(), Json::Num(summary.horizon_s)),
        ("warm_pad_s".into(), Json::Num(SLO_WARM_PAD_S)),
        ("slos".into(), Json::Arr(summary.specs.iter().map(spec_to_json).collect())),
        (
            "cells".into(),
            Json::Arr(
                summary
                    .cells
                    .iter()
                    .map(|c| {
                        Json::Obj(vec![
                            ("scenario".into(), Json::Str(c.scenario.into())),
                            ("shards".into(), Json::Num(c.shards as f64)),
                            ("queries".into(), Json::Num(c.queries as f64)),
                            ("rejected".into(), Json::Num(c.rejected as f64)),
                            ("deadline_misses".into(), Json::Num(c.deadline_misses as f64)),
                            ("alert_spans".into(), Json::Num(c.alert_spans as f64)),
                            (
                                "alerts".into(),
                                Json::Arr(c.alerts.iter().map(alert_to_json).collect()),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn summary_to_text(summary: &SloSummary) -> String {
    let mut out =
        String::from("=== slo: live burn-rate alerting over the chaos scenarios (warmed) ===\n");
    let _ = writeln!(
        out,
        "{} queries/cell at {:.0e} QPS; SLOs: {}\n",
        summary.queries_per_cell,
        SLO_QPS,
        summary
            .specs
            .iter()
            .map(|s| format!("{} (budget {}, {}x burn)", s.name, s.budget, s.burn_threshold))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(
        out,
        "{:>16} {:>3} {:>6} {:>6} {:>7}  alerts",
        "scenario", "sh", "rej", "miss", "pages"
    );
    for c in &summary.cells {
        let alerts = if c.alerts.is_empty() {
            "-".to_string()
        } else {
            c.alerts
                .iter()
                .map(|a| {
                    format!(
                        "{} @{:.1}ms..{:.1}ms (burn {:.0}x/{:.0}x)",
                        a.slo,
                        a.fired_at_s * 1e3,
                        a.resolved_at_s.unwrap_or(f64::NAN) * 1e3,
                        a.peak_burn_fast,
                        a.peak_burn_slow
                    )
                })
                .collect::<Vec<_>>()
                .join("; ")
        };
        let _ = writeln!(
            out,
            "{:>16} {:>3} {:>6} {:>6} {:>7}  {}",
            c.scenario,
            c.shards,
            c.rejected,
            c.deadline_misses,
            c.alerts.len(),
            alerts
        );
    }
    out.push_str(
        "\nguards: the warm baseline never pages; the crash cell deterministically\n\
         trips (and resolves) the availability burn-rate alert; alert records match\n\
         slo.alert spans one-for-one in every cell.\n",
    );
    out
}

/// Text report of the SLO grid.
pub fn slo(seed: u64) -> String {
    summary_to_text(&slo_summary(seed))
}

/// JSON report (the `BENCH_slo.json` generator). Byte-identical across
/// runs with the same seed: alert times are virtual, burn rates are
/// pure functions of seeded counters.
pub fn slo_json(seed: u64) -> Json {
    summary_to_json(&slo_summary(seed), seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn tiny_summary() -> SloSummary {
        slo_cells_for(&["crash_one_shard"], 2, 150, SLO_QPS, 11)
    }

    #[test]
    fn warm_baseline_stays_quiet_and_crash_pages_availability() {
        let summary = tiny_summary();
        assert_eq!(summary.cells.len(), 2);
        let baseline = &summary.cells[0];
        assert_eq!(baseline.scenario, "baseline");
        assert!(baseline.alerts.is_empty(), "warm baseline paged: {baseline:?}");
        // Warm steady state stays inside the availability budget (the
        // occasional Poisson-burst reject is the budget's whole point).
        assert!(
            (baseline.rejected as f64) < 0.01 * baseline.queries as f64,
            "warm baseline burned its whole reject budget: {baseline:?}"
        );
        let crash = &summary.cells[1];
        assert!(
            crash.alerts.iter().any(|a| a.slo == "availability"),
            "crash cell must trip availability: {crash:?}"
        );
        let alert = crash.alerts.iter().find(|a| a.slo == "availability").unwrap();
        assert!(alert.resolved_at_s.is_some());
        assert!(alert.peak_burn_fast >= 10.0, "{alert:?}");
    }

    #[test]
    fn alert_records_match_alert_spans() {
        for cell in tiny_summary().cells {
            assert_eq!(cell.alert_spans, cell.alerts.len(), "{cell:?}");
        }
    }

    #[test]
    fn slo_json_is_byte_identical_across_runs() {
        let a = summary_to_json(&tiny_summary(), 11).render();
        let b = summary_to_json(&tiny_summary(), 11).render();
        assert_eq!(a, b);
        let parsed = json::parse(&a).expect("slo JSON must parse");
        assert_eq!(parsed.get("experiment").unwrap().as_str(), Some("slo"));
        assert_eq!(parsed.get("slos").unwrap().as_arr().unwrap().len(), 3);
    }
}
