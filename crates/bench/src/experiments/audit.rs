//! The perf-regression sentinel (`reason-eval audit`): re-runs the
//! cheap sweeps behind every committed `BENCH_*.json` baseline and
//! compares the fresh reports field-by-field.
//!
//! The comparison applies **per-metric tolerance bands**. This repo's
//! evaluation is deterministic by construction — seeded workloads,
//! virtual clocks, canonical orderings — so the band for almost every
//! metric is *zero*: counts, availability, modeled latencies, circuit
//! shapes, and answers must match the committed bytes exactly, and a
//! drift of even one ULP is a reported regression. The only exception
//! is the explicit **noisy** set per file: wall-clock measurements
//! (`*_s` timings and the speedups derived from them) whose band is
//! infinite — they are skipped (and counted) rather than compared, so
//! the verdict never depends on machine speed.
//!
//! The verdict is machine-readable (`reason-eval audit --json`),
//! byte-deterministic when passing, and drives the process exit code
//! (`1` on any mismatch), which is what makes it a CI gate: the
//! workflow runs the audit twice, `cmp`s the two verdicts, and fails
//! the build on either a regression or nondeterminism.

use std::fmt::Write as _;
use std::path::Path;

use crate::json::{self, Json};

/// One committed baseline file with its regeneration recipe.
#[derive(Debug, Clone, Copy)]
pub struct AuditRule {
    /// The committed file, relative to the baseline directory
    /// (normally the repo root).
    pub file: &'static str,
    /// The `reason-eval` experiment that regenerates it.
    pub experiment: &'static str,
    /// Keys with an *infinite* tolerance band: wall-clock measurements
    /// skipped during comparison. A key in this list suppresses the
    /// whole subtree under any object key of that name. Every other
    /// leaf is held to band zero (exact equality).
    pub noisy: &'static [&'static str],
}

/// Every committed baseline the sentinel re-derives. `BENCH_obs_trace.json`
/// (the Chrome-trace artifact) is exercised separately by the CI
/// byte-determinism check on `--trace-out`.
pub const RULES: &[AuditRule] = &[
    AuditRule {
        file: "BENCH_pc.json",
        experiment: "compile",
        noisy: &["new_s", "old_s", "speedup"],
    },
    AuditRule {
        file: "BENCH_serve.json",
        experiment: "serve",
        noisy: &["compile_s", "first_query_s", "warm_mean_s", "speedup", "incremental_compile_s"],
    },
    AuditRule {
        file: "BENCH_batch.json",
        experiment: "batch",
        noisy: &["per_query_s", "batched_s", "speedup"],
    },
    AuditRule { file: "BENCH_traffic.json", experiment: "traffic", noisy: &[] },
    AuditRule { file: "BENCH_obs.json", experiment: "trace", noisy: &[] },
    AuditRule { file: "BENCH_chaos.json", experiment: "chaos", noisy: &[] },
    AuditRule { file: "BENCH_slo.json", experiment: "slo", noisy: &[] },
];

/// The verdict for one baseline file.
#[derive(Debug, Clone)]
pub struct AuditCheck {
    /// The committed file.
    pub file: String,
    /// The experiment that was re-run.
    pub experiment: String,
    /// Seed read from the committed file (what the re-run used).
    pub seed: u64,
    /// Leaves compared at band zero.
    pub compared: usize,
    /// Subtrees skipped under the infinite band (noisy keys).
    pub skipped_noisy: usize,
    /// Human-readable mismatch descriptions (`path: committed vs
    /// fresh`). Empty iff the check passed.
    pub mismatches: Vec<String>,
}

impl AuditCheck {
    /// Whether the committed baseline reproduced exactly.
    pub fn pass(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// Caps the mismatch list per file so one structural drift doesn't
/// produce a megabyte of verdict.
const MAX_MISMATCHES: usize = 20;

fn kind(v: &Json) -> &'static str {
    match v {
        Json::Null => "null",
        Json::Bool(_) => "bool",
        Json::Num(_) => "number",
        Json::Str(_) => "string",
        Json::Arr(_) => "array",
        Json::Obj(_) => "object",
    }
}

fn push_mismatch(out: &mut Vec<String>, msg: String) {
    if out.len() < MAX_MISMATCHES {
        out.push(msg);
    }
}

fn walk(
    path: &str,
    committed: &Json,
    fresh: &Json,
    noisy: &[&str],
    compared: &mut usize,
    skipped: &mut usize,
    out: &mut Vec<String>,
) {
    match (committed, fresh) {
        (Json::Obj(a), Json::Obj(b)) => {
            for (key, av) in a {
                let sub = if path.is_empty() { key.clone() } else { format!("{path}.{key}") };
                if noisy.contains(&key.as_str()) {
                    *skipped += 1;
                    continue;
                }
                match b.iter().find(|(k, _)| k == key) {
                    Some((_, bv)) => walk(&sub, av, bv, noisy, compared, skipped, out),
                    None => push_mismatch(out, format!("{sub}: missing from the fresh report")),
                }
            }
            for (key, _) in b {
                if !a.iter().any(|(k, _)| k == key) && !noisy.contains(&key.as_str()) {
                    let sub = if path.is_empty() { key.clone() } else { format!("{path}.{key}") };
                    push_mismatch(out, format!("{sub}: not in the committed baseline"));
                }
            }
        }
        (Json::Arr(a), Json::Arr(b)) => {
            if a.len() != b.len() {
                push_mismatch(
                    out,
                    format!("{path}: length {} committed vs {} fresh", a.len(), b.len()),
                );
                return;
            }
            for (i, (av, bv)) in a.iter().zip(b).enumerate() {
                walk(&format!("{path}[{i}]"), av, bv, noisy, compared, skipped, out);
            }
        }
        (Json::Num(a), Json::Num(b)) => {
            *compared += 1;
            // Band zero means bit equality — a one-ULP drift in a
            // modeled latency is a real (if tiny) regression.
            if a.to_bits() != b.to_bits() {
                push_mismatch(out, format!("{path}: {a:?} committed vs {b:?} fresh"));
            }
        }
        (Json::Str(a), Json::Str(b)) => {
            *compared += 1;
            if a != b {
                push_mismatch(out, format!("{path}: {a:?} committed vs {b:?} fresh"));
            }
        }
        (Json::Bool(a), Json::Bool(b)) => {
            *compared += 1;
            if a != b {
                push_mismatch(out, format!("{path}: {a} committed vs {b} fresh"));
            }
        }
        (Json::Null, Json::Null) => *compared += 1,
        _ => push_mismatch(
            out,
            format!("{path}: {} committed vs {} fresh", kind(committed), kind(fresh)),
        ),
    }
}

/// Compares a fresh report against a committed baseline under the
/// rule's tolerance bands. Returns `(compared, skipped_noisy,
/// mismatches)`; the check passes iff `mismatches` is empty.
pub fn audit_compare(
    committed: &Json,
    fresh: &Json,
    noisy: &[&str],
) -> (usize, usize, Vec<String>) {
    let (mut compared, mut skipped) = (0, 0);
    let mut out = Vec::new();
    walk("", committed, fresh, noisy, &mut compared, &mut skipped, &mut out);
    (compared, skipped, out)
}

/// Regenerates the report a rule's baseline was committed from.
fn rerun(experiment: &str, seed: u64) -> Json {
    match experiment {
        // The compile sweep's second positional arg is the Shannon
        // baseline's variable cap; committed runs use the default 28.
        "compile" => super::compile_json(seed, 28),
        "serve" => super::serve_json(seed),
        "batch" => super::batch_json(seed),
        "traffic" => super::traffic_json(seed),
        "trace" => super::trace_json(seed),
        "chaos" => super::chaos_json(seed),
        "slo" => super::slo_json(seed),
        other => unreachable!("no audit recipe for experiment `{other}`"),
    }
}

fn check_rule(dir: &Path, rule: &AuditRule) -> AuditCheck {
    let path = dir.join(rule.file);
    let mut check = AuditCheck {
        file: rule.file.to_string(),
        experiment: rule.experiment.to_string(),
        seed: 0,
        compared: 0,
        skipped_noisy: 0,
        mismatches: Vec::new(),
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(err) => {
            check.mismatches.push(format!("unreadable baseline {}: {err}", path.display()));
            return check;
        }
    };
    let committed = match json::parse(&text) {
        Ok(v) => v,
        Err(err) => {
            check.mismatches.push(format!("unparseable baseline {}: {err}", path.display()));
            return check;
        }
    };
    let Some(seed) = committed.get("seed").and_then(Json::as_f64) else {
        check.mismatches.push(format!("{}: no `seed` field to re-run with", rule.file));
        return check;
    };
    check.seed = seed as u64;
    let fresh = rerun(rule.experiment, check.seed);
    let (compared, skipped, mismatches) = audit_compare(&committed, &fresh, rule.noisy);
    check.compared = compared;
    check.skipped_noisy = skipped;
    check.mismatches = mismatches;
    check
}

/// Runs every [`RULES`] entry against the baselines in `dir` (normally
/// the repo root). Returns the per-file checks and the overall
/// verdict: `true` iff every baseline reproduced.
pub fn audit_verdict(dir: &Path) -> (Vec<AuditCheck>, bool) {
    let checks: Vec<AuditCheck> = RULES.iter().map(|rule| check_rule(dir, rule)).collect();
    let pass = checks.iter().all(AuditCheck::pass);
    (checks, pass)
}

fn check_to_json(check: &AuditCheck) -> Json {
    Json::Obj(vec![
        ("file".into(), Json::Str(check.file.clone())),
        ("experiment".into(), Json::Str(check.experiment.clone())),
        ("seed".into(), Json::Num(check.seed as f64)),
        ("compared".into(), Json::Num(check.compared as f64)),
        ("skipped_noisy".into(), Json::Num(check.skipped_noisy as f64)),
        (
            "mismatches".into(),
            Json::Arr(check.mismatches.iter().map(|m| Json::Str(m.clone())).collect()),
        ),
        ("pass".into(), Json::Bool(check.pass())),
    ])
}

/// Renders checks (from [`audit_verdict`]) as the machine-readable
/// verdict. Byte-deterministic whenever the audit passes (mismatch
/// messages may quote machine-local values).
pub fn audit_render_json(checks: &[AuditCheck]) -> Json {
    Json::Obj(vec![
        ("experiment".into(), Json::Str("audit".into())),
        ("checks".into(), Json::Arr(checks.iter().map(check_to_json).collect())),
        ("pass".into(), Json::Bool(checks.iter().all(AuditCheck::pass))),
    ])
}

/// Machine-readable verdict over the baselines in `dir`.
pub fn audit_json(dir: &Path) -> Json {
    audit_render_json(&audit_verdict(dir).0)
}

/// Renders checks as the text verdict, one line per baseline plus
/// mismatch details.
pub fn audit_render_text(checks: &[AuditCheck]) -> String {
    let pass = checks.iter().all(AuditCheck::pass);
    let mut out = String::from("=== audit: committed baselines vs fresh re-runs ===\n");
    for check in checks {
        let _ = writeln!(
            out,
            "{:>5}  {:<18} ({:<7} seed {}) {} exact, {} noisy-skipped",
            if check.pass() { "ok" } else { "FAIL" },
            check.file,
            check.experiment,
            check.seed,
            check.compared,
            check.skipped_noisy,
        );
        for m in &check.mismatches {
            let _ = writeln!(out, "         {m}");
        }
    }
    out.push_str(if pass {
        "verdict: PASS — every baseline reproduced bit-for-bit\n"
    } else {
        "verdict: FAIL — regenerate with `reason-eval <exp> --json > BENCH_<file>` \
         if the change is intended\n"
    });
    out
}

/// Text verdict over the baselines in `dir`.
pub fn audit(dir: &Path) -> String {
    audit_render_text(&audit_verdict(dir).0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    fn sample() -> Json {
        obj(vec![
            ("experiment", Json::Str("demo".into())),
            ("seed", Json::Num(42.0)),
            (
                "rows",
                Json::Arr(vec![
                    obj(vec![
                        ("nodes", Json::Num(61.0)),
                        ("new_s", Json::Num(0.0123)),
                        ("ok", Json::Bool(true)),
                    ]),
                    obj(vec![
                        ("nodes", Json::Num(85.0)),
                        ("new_s", Json::Num(0.0456)),
                        ("ok", Json::Bool(true)),
                    ]),
                ]),
            ),
        ])
    }

    #[test]
    fn identical_reports_pass_with_zero_band() {
        let (compared, skipped, mismatches) = audit_compare(&sample(), &sample(), &["new_s"]);
        assert!(mismatches.is_empty(), "{mismatches:?}");
        assert_eq!(skipped, 2, "one noisy key per row");
        assert_eq!(compared, 6, "experiment, seed, 2x(nodes, ok)");
    }

    #[test]
    fn injected_synthetic_regression_is_caught() {
        // The sentinel's core promise: a deterministic metric drifting
        // by even one ULP fails the audit.
        let mut fresh = sample();
        if let Json::Obj(top) = &mut fresh {
            if let Some((_, Json::Arr(rows))) = top.iter_mut().find(|(k, _)| k == "rows") {
                if let Json::Obj(row) = &mut rows[1] {
                    if let Some((_, v)) = row.iter_mut().find(|(k, _)| k == "nodes") {
                        *v = Json::Num(85.0 + f64::EPSILON * 64.0);
                    }
                }
            }
        }
        let (_, _, mismatches) = audit_compare(&sample(), &fresh, &["new_s"]);
        assert_eq!(mismatches.len(), 1, "{mismatches:?}");
        assert!(mismatches[0].starts_with("rows[1].nodes:"), "{}", mismatches[0]);
    }

    #[test]
    fn noisy_keys_have_an_infinite_band() {
        let mut fresh = sample();
        if let Json::Obj(top) = &mut fresh {
            if let Some((_, Json::Arr(rows))) = top.iter_mut().find(|(k, _)| k == "rows") {
                if let Json::Obj(row) = &mut rows[0] {
                    if let Some((_, v)) = row.iter_mut().find(|(k, _)| k == "new_s") {
                        *v = Json::Num(99.9); // a wildly slower machine
                    }
                }
            }
        }
        let (_, skipped, mismatches) = audit_compare(&sample(), &fresh, &["new_s"]);
        assert!(mismatches.is_empty(), "{mismatches:?}");
        assert_eq!(skipped, 2);
    }

    #[test]
    fn structural_drift_fails() {
        // Missing key.
        let mut fresh = sample();
        if let Json::Obj(top) = &mut fresh {
            top.retain(|(k, _)| k != "seed");
        }
        let (_, _, mismatches) = audit_compare(&sample(), &fresh, &[]);
        assert!(mismatches.iter().any(|m| m.starts_with("seed:")), "{mismatches:?}");

        // Extra row: array lengths are part of the contract.
        let mut fresh = sample();
        if let Json::Obj(top) = &mut fresh {
            if let Some((_, Json::Arr(rows))) = top.iter_mut().find(|(k, _)| k == "rows") {
                let extra = rows[0].clone();
                rows.push(extra);
            }
        }
        let (_, _, mismatches) = audit_compare(&sample(), &fresh, &[]);
        assert!(mismatches.iter().any(|m| m.contains("length 2 committed vs 3")), "{mismatches:?}");

        // Type change.
        let mut fresh = sample();
        if let Json::Obj(top) = &mut fresh {
            if let Some((_, v)) = top.iter_mut().find(|(k, _)| k == "seed") {
                *v = Json::Str("42".into());
            }
        }
        let (_, _, mismatches) = audit_compare(&sample(), &fresh, &[]);
        assert!(
            mismatches.iter().any(|m| m.contains("number committed vs string")),
            "{mismatches:?}"
        );
    }

    #[test]
    fn mismatch_flood_is_capped() {
        let committed = Json::Arr((0..100).map(|i| Json::Num(i as f64)).collect());
        let fresh = Json::Arr((0..100).map(|i| Json::Num(i as f64 + 1.0)).collect());
        let (_, _, mismatches) = audit_compare(&committed, &fresh, &[]);
        assert_eq!(mismatches.len(), MAX_MISMATCHES);
    }

    #[test]
    fn rules_cover_every_committed_baseline() {
        // Every rule re-runs a known experiment, and the noisy sets
        // only name wall-clock keys.
        for rule in RULES {
            assert!(rule.file.starts_with("BENCH_"));
            assert!(!rule.experiment.is_empty());
            for key in rule.noisy {
                assert!(
                    key.ends_with("_s") || *key == "speedup",
                    "noisy keys must be wall-clock measurements: {key}"
                );
            }
        }
    }
}
