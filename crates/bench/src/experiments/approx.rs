//! Exact-vs-approximate inference sweep (`reason-eval approx`).
//!
//! Across instance sizes, compile-and-evaluate the exact weighted
//! model count (`reason_pc::compile_cnf`) and run the anytime
//! importance-sampling estimator, reporting accuracy (relative error,
//! bound containment) and latency (exact-over-approx ratio).
//!
//! The sweep's shape records the compiler rewrite: under the legacy
//! Shannon expansion the exact side took *seconds* at n = 28 and the
//! estimator won by 14–37×; the top-down component-caching compiler
//! holds exact compilation to milliseconds through n = 40 (the exact
//! engine now *beats* the sampler there — ratios below 1) and the
//! ladder extends to n = 60, where exact cost finally grows past the
//! estimator's linear budget again and the anytime trade re-emerges.

use std::fmt::Write as _;
use std::time::Instant;

use reason_approx::{ApproxConfig, ApproxEngine, SampleConfig};
use reason_pc::{compile_cnf, Evidence, WmcWeights};
use reason_sat::gen::random_ksat;

use crate::json::Json;

/// One instance size of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct ApproxRow {
    /// Variable count.
    pub num_vars: usize,
    /// Clause count.
    pub num_clauses: usize,
    /// Exact weighted model count (compiled circuit evaluation).
    pub exact: f64,
    /// Approximate estimate.
    pub estimate: f64,
    /// Anytime lower bound.
    pub lower: f64,
    /// Anytime upper bound.
    pub upper: f64,
    /// `|estimate - exact| / exact`.
    pub rel_error: f64,
    /// Whether the final bracket contains the exact answer.
    pub contains: bool,
    /// Exact compile+evaluate seconds.
    pub exact_s: f64,
    /// Approximate adapt+estimate seconds.
    pub approx_s: f64,
    /// Samples consumed by the estimator.
    pub samples: u64,
}

impl ApproxRow {
    /// Exact-over-approximate latency ratio.
    pub fn speedup(&self) -> f64 {
        self.exact_s / self.approx_s.max(1e-12)
    }
}

/// The sweep's instance ladder `(num_vars, num_clauses)`: clause count
/// grows slowly (`m = n + 24`) so the satisfying mass stays estimable.
/// The exact rungs used to stop at n = 28, where the legacy Shannon
/// compiler took seconds; the top-down component-caching compiler
/// (PR 4) holds the exact side to milliseconds through n = 60, so the
/// ladder now extends well past the old wall.
pub const SWEEP_SIZES: [(usize, usize); 7] =
    [(12, 36), (16, 40), (20, 44), (24, 48), (28, 52), (40, 64), (60, 84)];

/// Alternating mildly skewed per-variable marginals — shared with the
/// `compile` sweep so the two ladders stay instance-for-instance
/// comparable.
pub(crate) fn sweep_weights(num_vars: usize) -> WmcWeights {
    WmcWeights::new((0..num_vars).map(|v| 0.45 + 0.1 * (v % 2) as f64).collect())
}

/// The estimator budget for an instance size: linear in the variable
/// count (`2048·n` samples), 16 anytime checkpoints.
fn sweep_config(num_vars: usize, seed: u64) -> ApproxConfig {
    let samples = 2048 * num_vars as u64;
    ApproxConfig {
        sampling: SampleConfig { samples, checkpoint: samples / 16, seed },
        ..ApproxConfig::default()
    }
}

/// Runs the sweep over an explicit size ladder: one satisfiable seeded
/// instance per size (seeds walk past UNSAT draws), exact and
/// approximate timed on the same instance.
pub fn approx_rows_for(sizes: &[(usize, usize)], seed: u64) -> Vec<ApproxRow> {
    sizes
        .iter()
        .map(|&(n, m)| {
            // Walk seeds until the instance is satisfiable (UNSAT rows
            // would make the accuracy columns vacuous).
            let mut instance_seed = seed;
            loop {
                let cnf = random_ksat(n, m, 3, instance_seed);
                let weights = sweep_weights(n);

                let t0 = Instant::now();
                let compiled = compile_cnf(&cnf, &weights);
                let exact = compiled.as_ref().map(|c| c.probability(&Evidence::empty(n)));
                let exact_s = t0.elapsed().as_secs_f64();
                match exact {
                    Some(exact) if exact > 0.0 => {
                        let engine = ApproxEngine::new(sweep_config(n, seed));
                        let t1 = Instant::now();
                        let est = engine.wmc(&cnf, &weights);
                        let approx_s = t1.elapsed().as_secs_f64();
                        return ApproxRow {
                            num_vars: n,
                            num_clauses: m,
                            exact,
                            estimate: est.estimate,
                            lower: est.lower,
                            upper: est.upper,
                            rel_error: est.rel_error(exact),
                            contains: est.contains(exact),
                            exact_s,
                            approx_s,
                            samples: est.samples,
                        };
                    }
                    _ => instance_seed += 1,
                }
            }
        })
        .collect()
}

/// Runs the full sweep ladder ([`SWEEP_SIZES`]).
pub fn approx_rows(seed: u64) -> Vec<ApproxRow> {
    approx_rows_for(&SWEEP_SIZES, seed)
}

/// Text report of the sweep.
pub fn approx(seed: u64) -> String {
    rows_to_text(&approx_rows(seed))
}

fn rows_to_text(rows: &[ApproxRow]) -> String {
    let mut out = String::from(
        "=== reason-approx: exact vs anytime approximate WMC (seeded random 3-SAT) ===\n",
    );
    let _ = writeln!(
        out,
        "{:>6} {:>8} {:>9} {:>12} {:>12} {:>9} {:>9} {:>11} {:>11} {:>9}",
        "vars",
        "clauses",
        "samples",
        "exact Z",
        "estimate",
        "rel err",
        "in bnds",
        "exact s",
        "approx s",
        "speedup"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:>6} {:>8} {:>9} {:>12.6} {:>12.6} {:>8.2}% {:>9} {:>11.5} {:>11.5} {:>8.1}x",
            r.num_vars,
            r.num_clauses,
            r.samples,
            r.exact,
            r.estimate,
            100.0 * r.rel_error,
            if r.contains { "yes" } else { "NO" },
            r.exact_s,
            r.approx_s,
            r.speedup()
        );
    }
    let best = rows.iter().map(ApproxRow::speedup).fold(f64::NEG_INFINITY, f64::max);
    let exact_wins = rows.iter().filter(|r| r.speedup() < 1.0).count();
    let _ = writeln!(
        out,
        "(importance sampling, model-seeded mixture proposal, budget = 2048 samples/var; \
         speedup = exact s / approx s, so values < 1 mean the exact engine wins — the top-down \
         component-caching compiler takes {exact_wins} of {} rungs outright, and the estimator's \
         linear-budget anytime trade only pays off at the top of the ladder, peaking at \
         {best:.1}x)",
        rows.len()
    );
    out
}

fn rows_to_json(rows: &[ApproxRow], seed: u64) -> Json {
    Json::Obj(vec![
        ("experiment".into(), Json::Str("approx".into())),
        ("seed".into(), Json::Num(seed as f64)),
        (
            "rows".into(),
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("num_vars".into(), Json::Num(r.num_vars as f64)),
                            ("num_clauses".into(), Json::Num(r.num_clauses as f64)),
                            ("exact".into(), Json::Num(r.exact)),
                            ("estimate".into(), Json::Num(r.estimate)),
                            ("lower".into(), Json::Num(r.lower)),
                            ("upper".into(), Json::Num(r.upper)),
                            ("rel_error".into(), Json::Num(r.rel_error)),
                            ("contains_exact".into(), Json::Bool(r.contains)),
                            ("exact_s".into(), Json::Num(r.exact_s)),
                            ("approx_s".into(), Json::Num(r.approx_s)),
                            ("speedup".into(), Json::Num(r.speedup())),
                            ("samples".into(), Json::Num(r.samples as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// JSON report of the sweep (for `reason-eval approx --json`).
pub fn approx_json(seed: u64) -> Json {
    rows_to_json(&approx_rows(seed), seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn small_sweep_rows_are_accurate_and_bracketed() {
        // Only the cheap end of the ladder, to keep the test quick
        // under debug-profile `cargo test`.
        let rows = approx_rows_for(&SWEEP_SIZES[..2], 7);
        for r in &rows {
            assert!(r.contains, "bounds must contain exact: {r:?}");
        }
        let small = &rows[0];
        assert_eq!(small.num_vars, 12);
        assert!(small.rel_error < 0.05, "rel error {}", small.rel_error);
    }

    #[test]
    fn text_report_renders_every_row() {
        let rows = approx_rows_for(&SWEEP_SIZES[..2], 7);
        let text = rows_to_text(&rows);
        assert!(text.contains("exact vs anytime approximate WMC"));
        assert!(text.contains("component-caching compiler"));
        for r in &rows {
            assert!(text.contains(&format!("{:>6} {:>8}", r.num_vars, r.num_clauses)));
        }
    }

    #[test]
    fn json_output_parses_and_carries_the_sweep() {
        let rows = approx_rows_for(&SWEEP_SIZES[..2], 7);
        let text = rows_to_json(&rows, 7).render();
        let parsed = json::parse(&text).expect("sweep JSON must parse");
        assert_eq!(parsed.get("experiment").unwrap().as_str(), Some("approx"));
        let parsed_rows = parsed.get("rows").unwrap().as_arr().unwrap();
        assert_eq!(parsed_rows.len(), 2);
        for row in parsed_rows {
            assert!(row.get("estimate").unwrap().as_f64().is_some());
            assert_eq!(row.get("contains_exact").unwrap().as_bool(), Some(true));
        }
    }
}
