//! Deterministic trace replay of the serving stack (`reason-eval
//! trace`) — the observability sweep behind `BENCH_obs.json`.
//!
//! The experiment replays a seeded open-loop traffic workload (the same
//! Poisson/Zipf generator as `reason-eval traffic`) against a
//! [`ServeCluster`] with a [`Telemetry`] sink attached on a
//! [`VirtualClock`]. Everything observable is then cross-checked and
//! exported:
//!
//! * **per-stage latency attribution** — every query's modeled latency
//!   is decomposed by [`StageBreakdown`] into queue / compile / exec
//!   seconds. Per outcome the partition is *bit-exact* (the cluster
//!   defines the modeled latency as the stage sum); per cell the two
//!   summation orders may differ only by float reassociation (≤1e-12
//!   relative).
//! * **metric snapshot** — the deterministic subset of the registry
//!   ([`METRIC_ALLOWLIST`]): admission/route/store/compile-event
//!   counters and modeled histograms. Wall-clock histograms
//!   (`*_seconds` measured on real clocks) and scheduling-dependent
//!   lane counters are deliberately excluded — they vary run to run and
//!   would break the byte-determinism contract of the committed
//!   artifact.
//! * **cost-model snapshots** — each tenant's deterministic
//!   [`reason_serve::KbTelemetry`] state via
//!   [`reason_serve::KbTelemetry::snapshot`].
//! * **span chains** — the Chrome `trace_event` export
//!   ([`chrome_trace_json`], loadable in Perfetto) must contain, for at
//!   least one warm and one cold query, the full
//!   `admit → route → store probe → (compile →) eval` chain with shard
//!   and tenant labels; spans are stamped with virtual timestamps, so
//!   the trace replays byte-identically per seed.
//!
//! `reason-eval trace --json > BENCH_obs.json` regenerates the
//! committed artifact; `--trace-out FILE` writes the Perfetto trace of
//! the final (most loaded) cell. CI runs the subcommand twice and
//! `cmp`s both outputs.

use std::fmt::Write as _;
use std::sync::Arc;

use reason_serve::{
    Admission, ClusterConfig, ClusterKbId, KbTelemetry, Query, ServeCluster, StageBreakdown,
};
use reason_telemetry::{
    chrome_trace_json, is_well_formed_forest, MetricSnapshot, MetricValue, SpanRecord, Telemetry,
    VirtualClock,
};

use crate::experiments::traffic::{traffic_engine_config, traffic_kbs, traffic_workload, Arrival};
use crate::json::Json;

/// Offered-load sweep: comfortable underload and ~shard saturation
/// (same units as `TRAFFIC_QPS` — queries per second of virtual time).
pub const TRACE_QPS: [f64; 2] = [5.0e4, 4.5e5];

/// Shard-count sweep.
pub const TRACE_SHARDS: [usize; 2] = [1, 2];

/// Queries per grid cell in the committed baseline.
pub const TRACE_QUERIES: usize = 200;

/// The metrics the committed artifact snapshots: every one is a pure
/// function of the seeded workload and the deterministic cost model.
/// Excluded on purpose: `*_seconds` histograms measured on wall clocks
/// (`serve_latency_seconds`, `executor_stage_seconds`,
/// `pc_compile_phase_seconds`), the measured `pipeline_*` gauges, and
/// `executor_lane_tasks_total` (which worker drains a task is thread
/// scheduling, not semantics).
pub const METRIC_ALLOWLIST: [&str; 15] = [
    "cluster_admissions_total",
    "cluster_deadline_miss_total",
    "cluster_rejects_total",
    "executor_edf_reorder_depth",
    "executor_tasks_total",
    "pc_cache_probes_total",
    "pc_compile_total",
    "pc_components_total",
    "pc_decisions_total",
    "pc_persistent_probes_total",
    "pc_propagations_total",
    "serve_compiles_total",
    "serve_queries_total",
    "store_entries",
    "store_insertions_total",
];

/// One exported cost-model row: `(tenant, shard, model snapshot)`.
pub type KbModelRow = (String, usize, KbTelemetry);

/// One cell of the `offered QPS × shard count` grid: where the modeled
/// latency went, summed over the cell's queries.
#[derive(Debug, Clone)]
pub struct TraceCell {
    /// Offered queries per second of virtual time.
    pub offered_qps: f64,
    /// Shards in the cluster.
    pub shards: usize,
    /// Queries replayed.
    pub queries: usize,
    /// Queries admitted (any rung).
    pub admitted: u64,
    /// Queries rejected pre-dispatch.
    pub rejected: u64,
    /// Summed stage attribution over every outcome (seconds).
    pub stages: StageBreakdown,
    /// Summed end-to-end modeled latency over every outcome (seconds).
    pub modeled_total_s: f64,
    /// `|stages.total() − modeled_total_s| / modeled_total_s` — pure
    /// summation-reassociation error (the per-outcome partition is
    /// bit-exact), so it stays within ~1e-16 · outcomes.
    pub attribution_rel_err: f64,
    /// Span chains whose store probe hit (warm exact queries).
    pub warm_chains: usize,
    /// Span chains that paid a cold compile.
    pub cold_chains: usize,
}

/// The whole sweep plus the exported observability state of its final
/// (most loaded) cell.
#[derive(Debug, Clone)]
pub struct TraceSummary {
    /// One row per `(offered QPS, shard count)` pair.
    pub cells: Vec<TraceCell>,
    /// Queries per cell.
    pub queries_per_cell: usize,
    /// Deterministic metric snapshot of the final cell
    /// ([`METRIC_ALLOWLIST`] only).
    pub metrics: Vec<MetricSnapshot>,
    /// Final cell's per-tenant cost-model snapshots:
    /// `(tenant, shard, model)`.
    pub kb_models: Vec<KbModelRow>,
    /// Chrome `trace_event` JSON of the final cell (Perfetto-loadable).
    pub trace_json: String,
    /// Spans in the final cell's trace.
    pub trace_spans: usize,
}

/// Children of `root` in `spans`.
fn children_of(spans: &[SpanRecord], root: u64) -> Vec<&SpanRecord> {
    spans.iter().filter(|s| s.parent == Some(root)).collect()
}

/// Classifies a `cluster.query` root's chain: `Some(true)` = cold
/// (store probe missed and a compile child is present), `Some(false)` =
/// warm (probe hit), `None` = no probe (non-exact routes, rejects).
fn chain_is_cold(spans: &[SpanRecord], root: u64) -> Option<bool> {
    let kids = children_of(spans, root);
    let probe = kids.iter().find(|s| s.name == "store.probe")?;
    let result = probe.labels.iter().find(|(k, _)| k == "result").map(|(_, v)| v.as_str());
    match result {
        Some("miss") => Some(true),
        Some("hit") => Some(false),
        _ => None,
    }
}

/// `true` iff the chain under `root` carries the full query life:
/// admit → route → queue wait → store probe → (compile, cold only) →
/// eval, with shard and tenant labels on the root.
fn chain_is_complete(spans: &[SpanRecord], root: &SpanRecord, cold: bool) -> bool {
    let names: Vec<&str> = children_of(spans, root.id).iter().map(|s| s.name.as_str()).collect();
    let labeled = ["shard", "tenant", "route", "reason"]
        .iter()
        .all(|key| root.labels.iter().any(|(k, _)| k == key));
    labeled
        && names.contains(&"cluster.admit")
        && names.contains(&"cluster.route")
        && names.contains(&"queue.wait")
        && names.contains(&"store.probe")
        && names.contains(&"serve.eval")
        && names.contains(&"serve.compile") == cold
}

/// Replays one cell with a fresh cluster and telemetry sink; returns
/// the cell row plus the sink for the caller to export.
fn run_trace_cell(
    kbs: &[crate::experiments::traffic::TrafficKb],
    workload: &[Arrival],
    qps: f64,
    shards: usize,
    seed: u64,
) -> (TraceCell, Arc<Telemetry>, Vec<KbModelRow>) {
    let telemetry = Arc::new(Telemetry::with_clock(VirtualClock::shared()));
    let mut cluster = ServeCluster::new(ClusterConfig {
        shards,
        engine: traffic_engine_config(seed),
        ..ClusterConfig::default()
    });
    cluster.attach_telemetry(telemetry.clone());
    let ids: Vec<ClusterKbId> =
        kbs.iter().map(|kb| cluster.register(&kb.name, &kb.cnf, kb.weights.clone())).collect();
    let arrivals: Vec<(ClusterKbId, Query, f64)> = workload
        .iter()
        .map(|&(kb, shape, deadline, t)| {
            (ids[kb], Query { kind: kbs[kb].shapes[shape].clone(), deadline }, t)
        })
        .collect();
    let report = cluster.serve_at(&arrivals).expect("mass-probed tenants");

    let mut stages = StageBreakdown::default();
    let mut modeled_total_s = 0.0;
    let mut admitted = 0u64;
    let mut rejected = 0u64;
    for outcome in &report.outcomes {
        // Per outcome the partition is *bit-exact*: the cluster defines
        // the modeled latency as the sum of its stage breakdown.
        assert_eq!(
            outcome.stage.total().to_bits(),
            outcome.modeled_latency_s.to_bits(),
            "stage breakdown must partition the modeled latency exactly: {outcome:?}"
        );
        stages.queue_s += outcome.stage.queue_s;
        stages.compile_s += outcome.stage.compile_s;
        stages.exec_s += outcome.stage.exec_s;
        modeled_total_s += outcome.modeled_latency_s;
        match outcome.decision {
            Admission::Admit(_) => admitted += 1,
            Admission::Reject { .. } => rejected += 1,
        }
    }
    let attribution_rel_err = if modeled_total_s > 0.0 {
        (stages.total() - modeled_total_s).abs() / modeled_total_s
    } else {
        0.0
    };

    let spans = telemetry.tracer.finished();
    assert!(is_well_formed_forest(&spans), "cell qps={qps} shards={shards}: malformed spans");
    let mut warm_chains = 0usize;
    let mut cold_chains = 0usize;
    for root in spans.iter().filter(|s| s.name == "cluster.query") {
        match chain_is_cold(&spans, root.id) {
            Some(cold) if chain_is_complete(&spans, root, cold) => {
                if cold {
                    cold_chains += 1;
                } else {
                    warm_chains += 1;
                }
            }
            _ => {}
        }
    }

    let cell = TraceCell {
        offered_qps: qps,
        shards,
        queries: workload.len(),
        admitted,
        rejected,
        stages,
        modeled_total_s,
        attribution_rel_err,
        warm_chains,
        cold_chains,
    };
    (cell, telemetry, cluster.kb_models())
}

/// The deterministic subset of a registry snapshot (see
/// [`METRIC_ALLOWLIST`]).
pub fn allowlisted_metrics(telemetry: &Telemetry) -> Vec<MetricSnapshot> {
    telemetry
        .registry
        .snapshot()
        .into_iter()
        .filter(|m| METRIC_ALLOWLIST.contains(&m.name.as_str()))
        .collect()
}

/// Runs the sweep over explicit grids. Each QPS level generates one
/// workload, replayed at every shard count.
pub fn trace_cells_for(
    qps_levels: &[f64],
    shard_counts: &[usize],
    queries_per_cell: usize,
    seed: u64,
) -> TraceSummary {
    let kbs = traffic_kbs(seed);
    let mut cells = Vec::with_capacity(qps_levels.len() * shard_counts.len());
    let mut last: Option<(Arc<Telemetry>, Vec<KbModelRow>)> = None;
    for (qi, &qps) in qps_levels.iter().enumerate() {
        let workload =
            traffic_workload(&kbs, queries_per_cell, qps, seed ^ ((qi as u64 + 1) << 32));
        for &shards in shard_counts {
            let (cell, telemetry, models) = run_trace_cell(&kbs, &workload, qps, shards, seed);
            cells.push(cell);
            last = Some((telemetry, models));
        }
    }
    let (telemetry, kb_models) = last.expect("at least one cell");
    let spans = telemetry.tracer.finished();
    TraceSummary {
        cells,
        queries_per_cell,
        metrics: allowlisted_metrics(&telemetry),
        kb_models,
        trace_json: chrome_trace_json(&spans),
        trace_spans: spans.len(),
    }
}

/// Runs the committed grid ([`TRACE_QPS`] × [`TRACE_SHARDS`]) and
/// enforces the observability contracts: stage attribution partitions
/// the modeled latency exactly per outcome (bit-equal; asserted inside
/// each cell) and to summation reassociation per cell, and at least one
/// warm and one cold query with complete span chains in the exported
/// trace.
pub fn trace_summary(seed: u64) -> TraceSummary {
    let summary = trace_cells_for(&TRACE_QPS, &TRACE_SHARDS, TRACE_QUERIES, seed);
    for cell in &summary.cells {
        assert!(
            cell.attribution_rel_err <= 1e-12,
            "stage attribution off by {:e} (beyond reassociation error) at qps={} shards={}",
            cell.attribution_rel_err,
            cell.offered_qps,
            cell.shards
        );
        assert_eq!(cell.admitted + cell.rejected, cell.queries as u64);
    }
    let warm: usize = summary.cells.iter().map(|c| c.warm_chains).sum();
    let cold: usize = summary.cells.iter().map(|c| c.cold_chains).sum();
    assert!(warm > 0, "the sweep produced no warm (store-hit) span chain");
    assert!(cold > 0, "the sweep produced no cold (compile) span chain");
    let last = summary.cells.last().expect("non-empty grid");
    assert!(
        last.warm_chains > 0 && last.cold_chains > 0,
        "the exported trace cell must carry both a warm and a cold chain"
    );
    summary
}

fn metric_to_json(m: &MetricSnapshot) -> Json {
    let labels =
        Json::Obj(m.labels.iter().map(|(k, v)| (k.clone(), Json::Str(v.clone()))).collect());
    let (kind, value) = match &m.value {
        MetricValue::Counter(v) => ("counter", Json::Num(*v as f64)),
        MetricValue::Gauge(g) => ("gauge", Json::Num(*g)),
        MetricValue::Histogram(h) => (
            "histogram",
            Json::Obj(vec![
                ("count".into(), Json::Num(h.count as f64)),
                ("sum".into(), Json::Num(h.sum)),
                ("p50".into(), Json::Num(h.p50().unwrap_or(0.0))),
                ("p90".into(), Json::Num(h.p90().unwrap_or(0.0))),
                ("p99".into(), Json::Num(h.p99().unwrap_or(0.0))),
            ]),
        ),
    };
    Json::Obj(vec![
        ("name".into(), Json::Str(m.name.clone())),
        ("labels".into(), labels),
        ("kind".into(), Json::Str(kind.into())),
        ("value".into(), value),
    ])
}

fn summary_to_json(summary: &TraceSummary, seed: u64) -> Json {
    Json::Obj(vec![
        ("experiment".into(), Json::Str("trace".into())),
        ("seed".into(), Json::Num(seed as f64)),
        ("queries_per_cell".into(), Json::Num(summary.queries_per_cell as f64)),
        (
            "cells".into(),
            Json::Arr(
                summary
                    .cells
                    .iter()
                    .map(|c| {
                        Json::Obj(vec![
                            ("offered_qps".into(), Json::Num(c.offered_qps)),
                            ("shards".into(), Json::Num(c.shards as f64)),
                            ("queries".into(), Json::Num(c.queries as f64)),
                            ("admitted".into(), Json::Num(c.admitted as f64)),
                            ("rejected".into(), Json::Num(c.rejected as f64)),
                            ("queue_s".into(), Json::Num(c.stages.queue_s)),
                            ("compile_s".into(), Json::Num(c.stages.compile_s)),
                            ("exec_s".into(), Json::Num(c.stages.exec_s)),
                            ("modeled_total_s".into(), Json::Num(c.modeled_total_s)),
                            ("attribution_rel_err".into(), Json::Num(c.attribution_rel_err)),
                            ("warm_chains".into(), Json::Num(c.warm_chains as f64)),
                            ("cold_chains".into(), Json::Num(c.cold_chains as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("metrics".into(), Json::Arr(summary.metrics.iter().map(metric_to_json).collect())),
        (
            "kb_models".into(),
            Json::Arr(
                summary
                    .kb_models
                    .iter()
                    .map(|(tenant, shard, model)| {
                        let mut fields = vec![
                            ("tenant".into(), Json::Str(tenant.clone())),
                            ("shard".into(), Json::Num(*shard as f64)),
                        ];
                        for (key, value) in model.snapshot() {
                            fields.push((key.to_string(), Json::Num(value)));
                        }
                        Json::Obj(fields)
                    })
                    .collect(),
            ),
        ),
        ("trace_spans".into(), Json::Num(summary.trace_spans as f64)),
    ])
}

fn summary_to_text(summary: &TraceSummary) -> String {
    let mut out =
        String::from("=== observability: deterministic trace replay of the serving stack ===\n");
    let _ = writeln!(
        out,
        "{:>10} {:>7} {:>9} {:>9} {:>11} {:>11} {:>11} {:>9} {:>5} {:>5}",
        "QPS",
        "shards",
        "admitted",
        "rejected",
        "queue s",
        "compile s",
        "exec s",
        "attr err",
        "warm",
        "cold"
    );
    for c in &summary.cells {
        let _ = writeln!(
            out,
            "{:>10.0} {:>7} {:>9} {:>9} {:>11.6} {:>11.6} {:>11.6} {:>8.4}% {:>5} {:>5}",
            c.offered_qps,
            c.shards,
            c.admitted,
            c.rejected,
            c.stages.queue_s,
            c.stages.compile_s,
            c.stages.exec_s,
            100.0 * c.attribution_rel_err,
            c.warm_chains,
            c.cold_chains,
        );
    }
    let _ = writeln!(
        out,
        "({} queries/cell; stage sums are virtual-time seconds over all outcomes and must \
         reproduce the modeled end-to-end latency — `attr err` is the relative gap; final cell \
         exports {} deterministic metrics and a {}-span Perfetto trace)",
        summary.queries_per_cell,
        summary.metrics.len(),
        summary.trace_spans,
    );
    out
}

/// Text report of the trace sweep.
pub fn trace(seed: u64) -> String {
    summary_to_text(&trace_summary(seed))
}

/// JSON report (the `BENCH_obs.json` generator). Byte-identical across
/// runs with the same seed: only [`METRIC_ALLOWLIST`] metrics and
/// virtual-time spans are exported.
pub fn trace_json(seed: u64) -> Json {
    summary_to_json(&trace_summary(seed), seed)
}

/// The Perfetto/Chrome trace of the sweep's final cell, for
/// `reason-eval trace --trace-out FILE`.
pub fn trace_artifact(seed: u64) -> String {
    trace_summary(seed).trace_json
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn tiny_summary() -> TraceSummary {
        trace_cells_for(&[4.5e5], &[2], 80, 11)
    }

    #[test]
    fn stage_sums_reproduce_modeled_latency_and_chains_exist() {
        let summary = tiny_summary();
        assert_eq!(summary.cells.len(), 1);
        let cell = &summary.cells[0];
        assert!(cell.attribution_rel_err <= 1e-12, "{cell:?}");
        assert_eq!(cell.admitted + cell.rejected, cell.queries as u64);
        assert!(cell.warm_chains > 0, "warm chain missing: {cell:?}");
        assert!(cell.cold_chains > 0, "cold chain missing: {cell:?}");
        assert!(!summary.metrics.is_empty());
        assert!(summary.metrics.iter().all(|m| METRIC_ALLOWLIST.contains(&m.name.as_str())));
        assert_eq!(summary.kb_models.len(), 6, "one cost model per tenant");
    }

    #[test]
    fn sweep_registry_passes_the_prometheus_lint() {
        let summary = tiny_summary();
        let text = reason_telemetry::prometheus_text(&summary.metrics);
        reason_telemetry::lint_prometheus(&text).expect("exposition is well-formed");
        assert!(text.contains("cluster_admissions_total"));
    }

    #[test]
    fn trace_json_is_byte_identical_across_runs() {
        let a = summary_to_json(&tiny_summary(), 11).render();
        let b = summary_to_json(&tiny_summary(), 11).render();
        assert_eq!(a, b);
        let parsed = json::parse(&a).expect("trace JSON must parse");
        assert_eq!(parsed.get("experiment").unwrap().as_str(), Some("trace"));
        assert!(parsed.get("metrics").unwrap().as_arr().unwrap().len() > 4);
        assert!(parsed.get("trace_spans").unwrap().as_f64().unwrap() > 0.0);
    }

    #[test]
    fn trace_artifact_is_deterministic_and_perfetto_shaped() {
        let a = tiny_summary().trace_json;
        let b = tiny_summary().trace_json;
        assert_eq!(a, b, "Perfetto trace must replay byte-identically");
        let parsed = json::parse(&a).expect("chrome trace is valid JSON");
        let events = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        assert!(!events.is_empty());
        for ev in events {
            assert_eq!(ev.get("ph").unwrap().as_str(), Some("X"));
            assert!(ev.get("ts").unwrap().as_f64().is_some());
        }
        assert!(
            events.iter().any(|ev| ev.get("name").unwrap().as_str() == Some("cluster.query")),
            "query roots must appear in the exported trace"
        );
    }
}
