//! Batched d-DNNF arena evaluation sweep (`reason-eval batch`).
//!
//! The experiment behind `reason_pc`'s structure-of-arrays batch
//! evaluator: across the serving ladder's random 3-SAT knowledge bases
//! it measures what one shared arena traversal buys over per-query
//! evaluation — `B` queries answered by a single pass with tight inner
//! sum/max loops versus `B` separate [`reason_pc::DnnfBuffer`] walks —
//! and closes the HW/SW loop by lowering each rung's compiled circuit
//! through `reason-compiler` onto the simulated accelerator:
//!
//! 1. a **throughput sweep**: per rung and batch width
//!    `B ∈ {8, 32, 128}`, best-of-reps wall clock for the per-query
//!    path against the batched path, with the speedup asserted at the
//!    top of the ladder (`>= 3x` for `B >= 32`);
//! 2. a **bit-identity guard**: on every `(rung, B)` cell a mixed
//!    WMC / marginal / MPE batch (with duplicate lanes) must match the
//!    single-query answers bit-for-bit — the same contract the serve
//!    path's `SymbolicStage::ServeBatch` relies on;
//! 3. an **accelerator round**: the rung's circuit is regularized,
//!    compiled onto [`reason_arch::ArchConfig::paper`], and executed on
//!    the cycle-accurate VLIW model; the compiler's analytic no-stall
//!    bound ([`reason_compiler::CompiledKernel::predicted_cycles`]) is
//!    reported next to the measured cycles. Rungs whose kernels exceed
//!    the register file record the overflow instead of a lowering.
//!
//! `reason-eval batch --json > BENCH_batch.json` regenerates the
//! committed baseline.

use std::fmt::Write as _;
use std::time::Instant;

use rand::prelude::*;
use reason_arch::{ArchConfig, VliwExecutor};
use reason_compiler::ReasonCompiler;
use reason_core::{dag_from_circuit, regularize};
use reason_pc::{BatchBuffer, CompiledWmc, Dnnf, DnnfBatch, DnnfBuffer, Evidence, WmcWeights};
use reason_sat::gen::random_ksat;

use crate::json::Json;

use super::serve::SERVE_SIZES;

/// Batch widths swept per rung.
pub const BATCH_LANES: [usize; 3] = [8, 32, 128];

/// Mildly skewed per-variable marginals (the serve sweep's shape, so
/// both experiments exercise the same artifacts).
fn batch_weights(num_vars: usize) -> WmcWeights {
    WmcWeights::new((0..num_vars).map(|v| 0.45 + 0.1 * (v % 2) as f64).collect())
}

/// One `(knowledge base, batch width)` cell of the throughput sweep.
#[derive(Debug, Clone)]
pub struct BatchRow {
    /// Variable count.
    pub num_vars: usize,
    /// Clause count.
    pub num_clauses: usize,
    /// Seed the instance was generated from.
    pub seed: u64,
    /// Arena nodes.
    pub nodes: usize,
    /// Arena edges.
    pub edges: usize,
    /// Batch width `B`.
    pub lanes: usize,
    /// Best-of-reps seconds answering `B` queries one at a time.
    pub per_query_s: f64,
    /// Best-of-reps seconds answering all `B` lanes in one traversal.
    pub batched_s: f64,
    /// `per_query_s / batched_s`.
    pub speedup: f64,
    /// Mixed WMC/marginal/MPE batch matched per-query answers
    /// bit-for-bit (including duplicate lanes).
    pub bit_identical: bool,
}

/// One rung's accelerator lowering.
#[derive(Debug, Clone)]
pub struct AccelRow {
    /// Variable count.
    pub num_vars: usize,
    /// Arena nodes (the circuit the kernel computes).
    pub nodes: usize,
    /// Kernel lowered onto the paper design point (false = the register
    /// file overflowed, recorded gracefully instead of lowering).
    pub lowered: bool,
    /// VLIW instructions emitted.
    pub instructions: usize,
    /// The compiler's analytic no-stall cycle bound.
    pub predicted_cycles: u64,
    /// Cycle-accurate executor measurement.
    pub measured_cycles: u64,
}

/// Sweep output: throughput cells plus per-rung lowerings.
#[derive(Debug, Clone)]
pub struct BatchSummary {
    /// `(rung, B)` throughput cells.
    pub rows: Vec<BatchRow>,
    /// One lowering attempt per rung.
    pub accel: Vec<AccelRow>,
}

/// Mixed evidence batch shaped like serve traffic: empty lanes (WMC /
/// marginal normalizers), single-variable lanes (marginal numerators),
/// an occasional three-variable posterior, and every fifth lane
/// duplicating an earlier one so repeated queries ride the same
/// traversal.
fn evidence_batch(n: usize, lanes: usize, rng: &mut StdRng) -> Vec<Evidence> {
    let mut evs: Vec<Evidence> = Vec::with_capacity(lanes);
    for i in 0..lanes {
        if i % 5 == 4 {
            evs.push(evs[i - 2].clone());
            continue;
        }
        let mut ev = Evidence::empty(n);
        let observed = match i % 7 {
            0..=2 => 0,
            6 => 3,
            _ => 1,
        };
        for _ in 0..observed {
            ev.set(rng.gen_range(0..n), usize::from(rng.gen_bool(0.5)));
        }
        evs.push(ev);
    }
    evs
}

/// The bit-identity guard for one packed batch: WMC on every lane plus
/// marginal and MPE spot lanes, each against the single-query path.
fn batch_matches_per_query(
    arena: &Dnnf,
    evs: &[Evidence],
    batch: &DnnfBatch,
    rng: &mut StdRng,
) -> bool {
    let mut sbuf = DnnfBuffer::new();
    let mut bbuf = BatchBuffer::new();
    let n = arena.num_vars();
    let mut ok = true;
    let wmc = arena.wmc_batch(batch, &mut bbuf);
    for (ev, got) in evs.iter().zip(&wmc) {
        ok &= *got == arena.probability(ev, &mut sbuf);
    }
    let var = rng.gen_range(0..n);
    let marginals = arena.marginal_batch(batch, var, &mut bbuf);
    for (ev, got) in evs.iter().zip(&marginals) {
        ok &= *got == arena.marginal(ev, var, &mut sbuf);
    }
    let mpes = arena.mpe_batch(batch, &mut bbuf);
    for (ev, got) in evs.iter().zip(&mpes) {
        let want = arena.mpe(ev, &mut sbuf);
        ok &= got.assignment == want.assignment && got.log_prob == want.log_prob;
    }
    ok
}

/// Runs the sweep over an explicit ladder and batch widths, taking the
/// best of `reps` timing repetitions per cell. Each rung walks seeds
/// until the instance carries mass.
pub fn batch_rows_for(
    sizes: &[(usize, usize)],
    lanes_list: &[usize],
    reps: usize,
    seed: u64,
) -> BatchSummary {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBA7C4);
    let mut rows = Vec::with_capacity(sizes.len() * lanes_list.len());
    let mut accel = Vec::with_capacity(sizes.len());
    let config = ArchConfig::paper();
    for &(n, m) in sizes {
        let weights = batch_weights(n);
        let mut instance_seed = seed;
        let cnf = loop {
            let cnf = random_ksat(n, m, 3, instance_seed);
            if reason_pc::weighted_model_count(&cnf, &weights) > 0.0 {
                break cnf;
            }
            instance_seed += 1;
        };
        let oracle = CompiledWmc::new(&cnf, &weights);
        let circuit = oracle.circuit().expect("probed mass above");
        let arena = Dnnf::from_circuit(circuit).expect("compiled circuits are binary");

        for &lanes in lanes_list {
            let evs = evidence_batch(n, lanes, &mut rng);
            let batch = DnnfBatch::pack(&evs);
            let mut sbuf = DnnfBuffer::new();
            let mut bbuf = BatchBuffer::new();

            let mut per_query_s = f64::INFINITY;
            let mut batched_s = f64::INFINITY;
            for _ in 0..reps.max(1) {
                let t0 = Instant::now();
                for ev in &evs {
                    std::hint::black_box(arena.log_probability(ev, &mut sbuf));
                }
                per_query_s = per_query_s.min(t0.elapsed().as_secs_f64());
                let t0 = Instant::now();
                std::hint::black_box(arena.log_probability_batch(&batch, &mut bbuf));
                batched_s = batched_s.min(t0.elapsed().as_secs_f64());
            }

            let bit_identical = batch_matches_per_query(&arena, &evs, &batch, &mut rng);
            assert!(bit_identical, "n={n} B={lanes}: batched answers diverged from per-query");
            rows.push(BatchRow {
                num_vars: n,
                num_clauses: m,
                seed: instance_seed,
                nodes: arena.num_nodes(),
                edges: arena.num_edges(),
                lanes,
                per_query_s,
                batched_s,
                speedup: per_query_s / batched_s.max(1e-12),
                bit_identical,
            });
        }

        // Accelerator round: lower this rung's circuit onto the paper
        // design point and report predicted vs measured cycles.
        let (dag, map) = dag_from_circuit(circuit);
        let dag = regularize(&dag);
        match ReasonCompiler::new(config).compile(&dag) {
            Ok(kernel) => {
                let inputs = map.inputs_for_evidence(circuit.arities(), &vec![None; n]);
                let report = VliwExecutor::new(config).execute(&kernel.program(&inputs));
                let predicted = kernel.predicted_cycles(&config);
                assert!(
                    predicted <= report.cycles,
                    "n={n}: no-stall bound {predicted} exceeds measured {}",
                    report.cycles
                );
                // The lowered kernel computes the same quantity the
                // arena's empty-evidence lane does: the partition
                // function.
                assert!(
                    (report.output - oracle.wmc()).abs() <= 1e-9 * oracle.wmc().max(1e-30),
                    "n={n}: accelerator output diverged from CompiledWmc"
                );
                accel.push(AccelRow {
                    num_vars: n,
                    nodes: arena.num_nodes(),
                    lowered: true,
                    instructions: kernel.report.instructions,
                    predicted_cycles: predicted,
                    measured_cycles: report.cycles,
                });
            }
            Err(err) => {
                // Big arenas can exceed the register file; the sweep
                // records the overflow instead of failing.
                let _ = err;
                accel.push(AccelRow {
                    num_vars: n,
                    nodes: arena.num_nodes(),
                    lowered: false,
                    instructions: 0,
                    predicted_cycles: 0,
                    measured_cycles: 0,
                });
            }
        }
    }
    BatchSummary { rows, accel }
}

/// Runs the full ladder ([`SERVE_SIZES`] × [`BATCH_LANES`]) and asserts
/// the headline: at the top rung, batched evaluation clears `3x` for
/// some `B >= 32`.
pub fn batch_summary(seed: u64) -> BatchSummary {
    let summary = batch_rows_for(&SERVE_SIZES, &BATCH_LANES, 7, seed);
    let (top_n, _) = *SERVE_SIZES.last().expect("ladder is non-empty");
    let top = summary
        .rows
        .iter()
        .filter(|r| r.num_vars == top_n && r.lanes >= 32)
        .map(|r| r.speedup)
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(top >= 3.0, "batched speedup regressed below 3x at n={top_n} for B >= 32: {top:.2}x");
    assert!(
        summary.accel.iter().any(|a| a.lowered),
        "no rung lowered onto the simulated accelerator"
    );
    summary
}

fn rows_to_text(summary: &BatchSummary) -> String {
    let mut out =
        String::from("=== reason-pc: batched d-DNNF arena evaluation (seeded random 3-SAT) ===\n");
    let _ = writeln!(
        out,
        "{:>6} {:>8} {:>8} {:>8} {:>6} {:>13} {:>12} {:>9} {:>5}",
        "vars", "clauses", "nodes", "edges", "B", "per-query us", "batched us", "speedup", "bits"
    );
    for r in &summary.rows {
        let _ = writeln!(
            out,
            "{:>6} {:>8} {:>8} {:>8} {:>6} {:>13.2} {:>12.2} {:>8.2}x {:>5}",
            r.num_vars,
            r.num_clauses,
            r.nodes,
            r.edges,
            r.lanes,
            1e6 * r.per_query_s,
            1e6 * r.batched_s,
            r.speedup,
            if r.bit_identical { "yes" } else { "NO" },
        );
    }
    out.push_str("-- accelerator lowering (ArchConfig::paper, cycle-accurate VLIW) --\n");
    let _ = writeln!(
        out,
        "{:>6} {:>8} {:>7} {:>8} {:>11} {:>10} {:>7}",
        "vars", "nodes", "instrs", "cycles", "predicted", "stalls", "ratio"
    );
    for a in &summary.accel {
        if a.lowered {
            let _ = writeln!(
                out,
                "{:>6} {:>8} {:>7} {:>8} {:>11} {:>10} {:>6.2}x",
                a.num_vars,
                a.nodes,
                a.instructions,
                a.measured_cycles,
                a.predicted_cycles,
                a.measured_cycles - a.predicted_cycles,
                a.measured_cycles as f64 / a.predicted_cycles.max(1) as f64,
            );
        } else {
            let _ = writeln!(
                out,
                "{:>6} {:>8} {:>7}",
                a.num_vars, a.nodes, "register file overflow (not lowered)"
            );
        }
    }
    let best = summary.rows.iter().map(|r| r.speedup).fold(f64::NEG_INFINITY, f64::max);
    let _ = writeln!(
        out,
        "(speedup = B per-query DnnfBuffer walks / one DnnfBatch traversal, best-of-reps; every \
         cell cross-checks a mixed WMC/marginal/MPE batch bit-for-bit against single queries — \
         peak {best:.1}x on this ladder; predicted = the compiler's no-stall bound, measured adds \
         RAW and bank-conflict stalls)"
    );
    out
}

fn rows_to_json(summary: &BatchSummary, seed: u64) -> Json {
    Json::Obj(vec![
        ("experiment".into(), Json::Str("batch".into())),
        ("seed".into(), Json::Num(seed as f64)),
        (
            "rows".into(),
            Json::Arr(
                summary
                    .rows
                    .iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("num_vars".into(), Json::Num(r.num_vars as f64)),
                            ("num_clauses".into(), Json::Num(r.num_clauses as f64)),
                            ("instance_seed".into(), Json::Num(r.seed as f64)),
                            ("nodes".into(), Json::Num(r.nodes as f64)),
                            ("edges".into(), Json::Num(r.edges as f64)),
                            ("lanes".into(), Json::Num(r.lanes as f64)),
                            ("per_query_s".into(), Json::Num(r.per_query_s)),
                            ("batched_s".into(), Json::Num(r.batched_s)),
                            ("speedup".into(), Json::Num(r.speedup)),
                            ("bit_identical".into(), Json::Bool(r.bit_identical)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "accelerator".into(),
            Json::Arr(
                summary
                    .accel
                    .iter()
                    .map(|a| {
                        Json::Obj(vec![
                            ("num_vars".into(), Json::Num(a.num_vars as f64)),
                            ("nodes".into(), Json::Num(a.nodes as f64)),
                            ("lowered".into(), Json::Bool(a.lowered)),
                            ("instructions".into(), Json::Num(a.instructions as f64)),
                            ("predicted_cycles".into(), Json::Num(a.predicted_cycles as f64)),
                            ("measured_cycles".into(), Json::Num(a.measured_cycles as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Text report of the batched-evaluation sweep.
pub fn batch(seed: u64) -> String {
    rows_to_text(&batch_summary(seed))
}

/// JSON report of the batched-evaluation sweep (for
/// `reason-eval batch --json`, the `BENCH_batch.json` generator).
pub fn batch_json(seed: u64) -> Json {
    rows_to_json(&batch_summary(seed), seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn small_summary() -> BatchSummary {
        // Cheap rungs and narrow batches for the debug profile; the
        // 3x assertion only applies to the release-profile full ladder.
        batch_rows_for(&SERVE_SIZES[..2], &[4, 8], 2, 7)
    }

    #[test]
    fn sweep_cells_are_bit_identical_and_lower_onto_the_accelerator() {
        let summary = small_summary();
        assert_eq!(summary.rows.len(), 4);
        for r in &summary.rows {
            assert!(r.bit_identical);
            assert!(r.per_query_s > 0.0 && r.batched_s > 0.0);
            assert!(r.speedup > 0.0);
        }
        assert_eq!(summary.accel.len(), 2);
        for a in &summary.accel {
            assert!(a.lowered, "small rungs fit the register file");
            assert!(a.predicted_cycles > 0);
            assert!(a.predicted_cycles <= a.measured_cycles);
        }
    }

    #[test]
    fn text_report_renders_every_cell() {
        let summary = small_summary();
        let text = rows_to_text(&summary);
        assert!(text.contains("batched d-DNNF arena evaluation"));
        assert!(text.contains("accelerator lowering"));
        for r in &summary.rows {
            assert!(
                text.contains(&format!("{:>6} {:>8} {:>8}", r.num_vars, r.num_clauses, r.nodes))
            );
        }
    }

    #[test]
    fn json_output_parses_and_carries_the_sweep() {
        let text = rows_to_json(&small_summary(), 7).render();
        let parsed = json::parse(&text).expect("sweep JSON must parse");
        assert_eq!(parsed.get("experiment").unwrap().as_str(), Some("batch"));
        let rows = parsed.get("rows").unwrap().as_arr().unwrap();
        assert_eq!(rows.len(), 4);
        for row in rows {
            assert!(row.get("speedup").unwrap().as_f64().is_some());
            assert_eq!(row.get("bit_identical").unwrap().as_bool(), Some(true));
        }
        let accel = parsed.get("accelerator").unwrap().as_arr().unwrap();
        assert_eq!(accel.len(), 2);
        for a in accel {
            assert_eq!(a.get("lowered").unwrap().as_bool(), Some(true));
            assert!(a.get("predicted_cycles").unwrap().as_f64().unwrap() > 0.0);
        }
    }
}
