//! Every table and figure of the paper's evaluation, as reproducible
//! experiment functions. Each returns a printable report whose rows and
//! series mirror the paper's layout and close with the paper's reported
//! values, so printed-vs-paper comparison needs no external record.

pub mod approx;
pub mod audit;
pub mod batch;
pub mod chaos;
pub mod compile;
pub mod profile;
pub mod serve;
pub mod slo;
pub mod trace;
pub mod traffic;

pub use approx::{approx, approx_json, approx_rows, approx_rows_for, ApproxRow, SWEEP_SIZES};
pub use audit::{
    audit, audit_compare, audit_json, audit_render_json, audit_render_text, audit_verdict,
    AuditCheck, AuditRule, RULES,
};
pub use batch::{
    batch, batch_json, batch_rows_for, batch_summary, AccelRow, BatchRow, BATCH_LANES,
};
pub use chaos::{
    chaos, chaos_cells_for, chaos_json, chaos_summary, ChaosCell, ChaosSummary, CHAOS_QPS,
    CHAOS_QUERIES, CHAOS_SCENARIOS, CHAOS_SHARDS,
};
pub use compile::{
    compile_json, compile_report, compile_rows, CompileRow, COMPARE_SIZES, EXTENDED_SIZES,
};
pub use profile::{
    profile, profile_artifact, profile_json, profile_summary, ProfileSummary, PROFILE_QPS,
    PROFILE_QUERIES, PROFILE_SHARDS,
};
pub use serve::{serve, serve_json, serve_rows_for, serve_summary, ServeRow, SERVE_SIZES};
pub use slo::{
    slo, slo_cells_for, slo_json, slo_summary, SloCell, SloSummary, SLO_QPS, SLO_QUERIES,
    SLO_SCENARIOS, SLO_SHARDS,
};
pub use trace::{
    trace, trace_artifact, trace_cells_for, trace_json, trace_summary, TraceCell, TraceSummary,
    METRIC_ALLOWLIST, TRACE_QPS, TRACE_QUERIES, TRACE_SHARDS,
};
pub use traffic::{
    traffic, traffic_cells_for, traffic_json, traffic_summary, TrafficCell, TrafficSummary,
    TRAFFIC_QPS, TRAFFIC_QUERIES, TRAFFIC_SHARDS,
};

use std::fmt::Write as _;

use reason_arch::{
    broadcast_latency_cycles, explore_design_space, noc_latency_breakdown, ArchConfig, NocTopology,
    SymbolicEngine, TechNode, VliwExecutor,
};
use reason_compiler::ReasonCompiler;
use reason_core::{KernelSource, PipelineConfig, ReasonPipeline};
use reason_sim::{roofline_point, DpuModel, GpuModel, KernelProfile, TpuModel};
use reason_workloads::scaling::{accuracy_scaling, runtime_scaling, TaskFamily};
use reason_workloads::{batch_score, model_for, Dataset, Scale, TaskSpec, Workload};

use crate::{baseline_symbolic_cost, end_to_end_cost, neural_cost, Platform, TaskCost};

/// Fig. 2: scaling performance (accuracy vs model size; runtime vs task
/// complexity).
pub fn fig2() -> String {
    let mut out = String::from(
        "=== Fig. 2(a-c): accuracy vs model size (C = compositional, M = monolithic) ===\n",
    );
    for family in
        [TaskFamily::ComplexReasoning, TaskFamily::MathReasoning, TaskFamily::QuestionAnswering]
    {
        let _ = writeln!(out, "-- {} --", family.name());
        let _ = writeln!(out, "{:>6} {:>8} {:>8}", "model", "C (%)", "M (%)");
        for p in accuracy_scaling(family) {
            let _ = writeln!(
                out,
                "{:>6} {:>8.1} {:>8.1}",
                p.model, p.compositional_pct, p.monolithic_pct
            );
        }
    }
    out.push_str("=== Fig. 2(d): task runtime vs complexity (minutes) ===\n");
    let _ = writeln!(out, "{:>10} {:>14} {:>10}", "complexity", "neuro-symb", "CoT-RL");
    for p in runtime_scaling(8) {
        let _ = writeln!(
            out,
            "{:>10} {:>14.2} {:>10.2}",
            p.complexity, p.neuro_symbolic_min, p.cot_min
        );
    }
    out
}

/// Fig. 3(a): neural vs symbolic runtime split per workload on the
/// CPU+GPU platform.
pub fn fig3a() -> String {
    let mut out =
        String::from("=== Fig. 3(a): runtime split, neural vs symbolic (A6000 platform) ===\n");
    let _ = writeln!(
        out,
        "{:>14} {:>10} {:>12} {:>12} {:>12}",
        "workload", "neural %", "symbolic %", "neural s", "symbolic s"
    );
    for w in Workload::all() {
        let dataset = Dataset::all()
            .into_iter()
            .find(|d| d.workload() == w)
            .expect("every workload has a dataset");
        let spec = TaskSpec::new(dataset, Scale::Small, 0);
        let n = neural_cost(Platform::RtxA6000, &spec);
        let s = baseline_symbolic_cost(Platform::RtxA6000, &spec);
        let total = n.seconds + s.seconds;
        let _ = writeln!(
            out,
            "{:>14} {:>10.1} {:>12.1} {:>12.4} {:>12.4}",
            w.name(),
            100.0 * n.seconds / total,
            100.0 * s.seconds / total,
            n.seconds,
            s.seconds
        );
    }
    out.push_str(
        "(paper: symbolic share 63.8/62.7/36.6/63.9/50.5/34.8% across the six workloads)\n",
    );
    out
}

/// Fig. 3(b): runtime across task scales.
pub fn fig3b() -> String {
    let mut out =
        String::from("=== Fig. 3(b): runtime vs task scale (A6000 platform, s/task) ===\n");
    let _ =
        writeln!(out, "{:>10} {:>10} {:>12} {:>12}", "dataset", "scale", "neural s", "symbolic s");
    for dataset in Dataset::all() {
        for scale in [Scale::Small, Scale::Large] {
            let spec = TaskSpec::new(dataset, scale, 0);
            let n = neural_cost(Platform::RtxA6000, &spec);
            let s = baseline_symbolic_cost(Platform::RtxA6000, &spec);
            let _ = writeln!(
                out,
                "{:>10} {:>10} {:>12.4} {:>12.4}",
                dataset.name(),
                if scale == Scale::Small { "Small" } else { "Large" },
                n.seconds,
                s.seconds
            );
        }
    }
    out.push_str("(paper: relative neural/symbolic split stays stable; totals grow with scale)\n");
    out
}

/// Fig. 3(c): A6000 vs Orin NX latency.
pub fn fig3c() -> String {
    let mut out = String::from("=== Fig. 3(c): A6000 vs Orin NX (s/task, symbolic stage) ===\n");
    let _ = writeln!(out, "{:>10} {:>12} {:>12} {:>8}", "dataset", "A6000 s", "Orin s", "ratio");
    for dataset in [Dataset::MiniF2F, Dataset::XsTest] {
        let spec = TaskSpec::new(dataset, Scale::Small, 0);
        let a = baseline_symbolic_cost(Platform::RtxA6000, &spec);
        let o = baseline_symbolic_cost(Platform::OrinNx, &spec);
        let _ = writeln!(
            out,
            "{:>10} {:>12.4} {:>12.4} {:>8.1}",
            dataset.name(),
            a.seconds,
            o.seconds,
            o.seconds / a.seconds
        );
    }
    out
}

/// Fig. 3(d): roofline analysis.
pub fn fig3d() -> String {
    let gpu = GpuModel::a6000();
    let mut out = String::from("=== Fig. 3(d): roofline (A6000) ===\n");
    let _ = writeln!(
        out,
        "{:>16} {:>12} {:>16} {:>16} {:>8}",
        "kernel", "FLOPs/byte", "attainable GF/s", "achieved GF/s", "bound"
    );
    for k in KernelProfile::table2_suite() {
        let p = roofline_point(&gpu, &k);
        let _ = writeln!(
            out,
            "{:>16} {:>12.3} {:>16.1} {:>16.2} {:>8}",
            p.name,
            p.intensity,
            p.attainable_flops / 1e9,
            p.achieved_flops / 1e9,
            if p.memory_bound { "memory" } else { "compute" }
        );
    }
    out.push_str(
        "(paper: symbolic/probabilistic kernels sit far left, under the bandwidth roof)\n",
    );
    out
}

/// Table II: hardware inefficiency counters per kernel.
pub fn table2() -> String {
    let gpu = GpuModel::a6000();
    let mut out = String::from("=== Table II: kernel counters on the GPU model (A6000) ===\n");
    let _ = writeln!(
        out,
        "{:>16} {:>9} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "kernel", "compute%", "ALU%", "L1 hit%", "L2 hit%", "DRAM%", "warp%", "branch%"
    );
    for k in KernelProfile::table2_suite() {
        let r = gpu.run(&k);
        let _ = writeln!(
            out,
            "{:>16} {:>9.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1}",
            k.name,
            r.compute_throughput_pct,
            r.alu_utilization_pct,
            r.l1_hit_rate_pct,
            r.l2_hit_rate_pct,
            r.dram_bw_utilization_pct,
            r.warp_efficiency_pct,
            r.branch_efficiency_pct
        );
    }
    out.push_str(
        "(paper: MatMul 96.8/98.4, Logic 14.7/29.3 compute/ALU; symbolic kernels DRAM-bound)\n",
    );
    out
}

/// Table III / Fig. 10: hardware specifications with technology scaling.
pub fn table3() -> String {
    let mut out = String::from("=== Table III / Fig. 10: REASON physical design ===\n");
    let _ = writeln!(out, "{:>8} {:>10} {:>10}", "node", "area mm2", "power W");
    for tech in [TechNode::N28, TechNode::N12, TechNode::N8] {
        let _ =
            writeln!(out, "{:>8?} {:>10.2} {:>10.2}", tech, tech.area_mm2(), tech.avg_power_w());
    }
    let c = ArchConfig::paper();
    let _ = writeln!(
        out,
        "config: D={} B={} R={} PEs={} nodes={} SRAM={} KiB @ {} MHz",
        c.tree_depth,
        c.num_banks,
        c.regs_per_bank,
        c.num_pes,
        c.total_nodes(),
        c.sram_kib,
        c.freq_mhz
    );
    out
}

/// Table IV: algorithm-optimization accuracy and memory reduction.
pub fn table4(tasks_per_dataset: usize) -> String {
    let mut out = String::from("=== Table IV: REASON algorithm optimization ===\n");
    let _ = writeln!(
        out,
        "{:>14} {:>10} {:>10} {:>10} {:>9}",
        "workload", "dataset", "baseline", "optimized", "memory↓"
    );
    let mut total_reduction = 0.0;
    let mut rows = 0usize;
    for dataset in Dataset::all() {
        let model = model_for(dataset.workload());
        let specs = TaskSpec::batch(dataset, Scale::Small, tasks_per_dataset);
        let base = batch_score(model.as_ref(), &specs, false);
        let opt = batch_score(model.as_ref(), &specs, true);
        let bytes: Vec<(usize, usize)> = specs
            .iter()
            .map(|s| (model.run_task(s, false).kernel_bytes, model.run_task(s, true).kernel_bytes))
            .collect();
        let before: usize = bytes.iter().map(|b| b.0).sum();
        let after: usize = bytes.iter().map(|b| b.1).sum();
        let reduction = 100.0 * (1.0 - after as f64 / before.max(1) as f64);
        total_reduction += reduction;
        rows += 1;
        let _ = writeln!(
            out,
            "{:>14} {:>10} {:>10.3} {:>10.3} {:>8.1}%",
            dataset.workload().name(),
            dataset.name(),
            base,
            opt,
            reduction
        );
    }
    let _ = writeln!(
        out,
        "average memory reduction: {:.1}% (paper: 31.7%)",
        total_reduction / rows as f64
    );
    out
}

/// Fig. 8: interconnect scalability.
pub fn fig8() -> String {
    let mut out = String::from("=== Fig. 8(a): latency breakdown as leaves grow (cycles) ===\n");
    let base = 8usize;
    let _ = writeln!(
        out,
        "{:>6} {:>10} {:>8} {:>6} {:>8} {:>10} {:>8}",
        "N", "topology", "memory", "PE", "periph", "internode", "total"
    );
    for mult in 1..=8 {
        for topo in NocTopology::all() {
            let b = noc_latency_breakdown(topo, base * mult);
            let _ = writeln!(
                out,
                "{:>6} {:>10} {:>8.1} {:>6.1} {:>8.1} {:>10.1} {:>8.1}",
                base * mult,
                topo.name(),
                b.memory,
                b.pe,
                b.peripheries,
                b.inter_node,
                b.total()
            );
        }
    }
    out.push_str("=== Fig. 8(b): broadcast-to-root cycles ===\n");
    let _ = writeln!(out, "{:>6} {:>10} {:>8} {:>8}", "N", "tree", "mesh", "all-to-one");
    for mult in 1..=8 {
        let n = base * mult;
        let _ = writeln!(
            out,
            "{:>6} {:>10} {:>8} {:>8}",
            n,
            broadcast_latency_cycles(NocTopology::Tree, n),
            broadcast_latency_cycles(NocTopology::Mesh, n),
            broadcast_latency_cycles(NocTopology::AllToOne, n)
        );
    }
    out.push_str("(paper: tree O(log N) ≪ mesh O(√N) ≪ bus O(N))\n");
    out
}

/// Fig. 11: end-to-end runtime across platforms, normalized to REASON.
pub fn fig11(tasks: usize) -> String {
    let mut out = String::from("=== Fig. 11: end-to-end runtime, normalized to REASON = 1.0 ===\n");
    let _ = writeln!(
        out,
        "{:>10} {:>12} {:>10} {:>10} {:>10} {:>14}",
        "dataset", "Xeon", "Orin NX", "RTX GPU", "REASON", "REASON s/task"
    );
    for dataset in Dataset::all() {
        let costs: Vec<TaskCost> =
            Platform::all().iter().map(|&p| end_to_end_cost(p, dataset, tasks)).collect();
        let reason_s = costs[3].seconds;
        let _ = writeln!(
            out,
            "{:>10} {:>12.1} {:>10.1} {:>10.1} {:>10.1} {:>14.3}",
            dataset.name(),
            costs[0].seconds / reason_s,
            costs[1].seconds / reason_s,
            costs[2].seconds / reason_s,
            1.0,
            reason_s
        );
    }
    out.push_str("(paper: Xeon ~96-100x, Orin ~48-53x, RTX ~9.8-13.8x; REASON < 1.0 s/task)\n");
    out
}

/// Fig. 12: power and energy efficiency.
pub fn fig12(tasks: usize) -> String {
    let mut out = String::from("=== Fig. 12(a): REASON power across workloads ===\n");
    let _ = writeln!(out, "{:>10} {:>10}", "dataset", "power W");
    let config = ArchConfig::paper();
    let model = reason_arch::EnergyModel::paper();
    for dataset in
        [Dataset::TwinSafety, Dataset::XsTest, Dataset::CommonGen, Dataset::News, Dataset::AwA2]
    {
        // Sustained-array power: the busy-cycle event profile scaled by
        // the workload's achieved utilization (>90% per Sec. V-F, with
        // per-workload variation from its sparsity).
        let w = dataset.workload();
        let utilization = 0.70 + 0.35 * (1.0 - w.sparsity());
        let mut events = reason_arch::EnergyModel::busy_cycle_events(
            config.num_pes,
            config.nodes_per_pe(),
            config.leaves_per_pe(),
        );
        events.alu_ops = (events.alu_ops as f64 * utilization) as u64;
        events.dram_bytes = (events.dram_bytes as f64 * utilization) as u64;
        let mut total = reason_arch::EnergyEvents::default();
        for _ in 0..1000 {
            total.accumulate(&events);
        }
        let report = model.report(&total);
        let _ = writeln!(out, "{:>10} {:>10.2}", dataset.name(), report.avg_power_w);
    }
    out.push_str("(paper: 1.88-2.51 W, average 2.12 W)\n");
    out.push_str(
        "=== Fig. 12(b): reasoning-stage energy per task, normalized to REASON = 1.0 ===\n",
    );
    let _ = writeln!(
        out,
        "{:>10} {:>12} {:>10} {:>10} {:>14}",
        "dataset", "Xeon", "Orin NX", "RTX GPU", "REASON J/task"
    );
    let _ = tasks;
    for dataset in Dataset::all() {
        let spec = TaskSpec::new(dataset, Scale::Small, 0);
        let costs: Vec<TaskCost> =
            Platform::all().iter().map(|&p| crate::baseline_symbolic_cost(p, &spec)).collect();
        let reason_j = costs[3].energy_j;
        let _ = writeln!(
            out,
            "{:>10} {:>12.0} {:>10.0} {:>10.0} {:>14.4}",
            dataset.name(),
            costs[0].energy_j / reason_j,
            costs[1].energy_j / reason_j,
            costs[2].energy_j / reason_j,
            reason_j
        );
    }
    out.push_str("(paper: 310-838x across devices, 681x vs RTX GPU)\n");
    out
}

/// Fig. 13: comparison against ML accelerators.
pub fn fig13() -> String {
    let mut out =
        String::from("=== Fig. 13: vs TPU-like and DPU-like (runtime normalized to REASON) ===\n");
    let tpu = TpuModel::paper();
    let dpu = DpuModel::paper();
    let config = ArchConfig::paper();
    let _ = writeln!(
        out,
        "{:>14} {:>22} {:>22} {:>22}",
        "workload", "symbolic (TPU/DPU)", "neural (TPU/DPU)", "end-to-end (TPU/DPU)"
    );
    for w in Workload::all() {
        let dataset =
            Dataset::all().into_iter().find(|d| d.workload() == w).expect("dataset exists");
        let spec = TaskSpec::new(dataset, Scale::Small, 0);
        let profiles = model_for(w).kernel_profiles(&spec);
        let steps = w.reasoning_steps() as f64;
        // Symbolic stage (whole task: per-step kernels x step count).
        let reason_sym = crate::reason_symbolic_cost(&spec, &config).seconds;
        let tpu_sym: f64 = profiles.iter().map(|k| tpu.run(k).seconds).sum::<f64>() * steps;
        let dpu_sym: f64 = profiles.iter().map(|k| dpu.run(k).seconds).sum::<f64>() * steps;
        // Neural stage: small-DNN kernels; REASON's SpMSpM mode runs at its
        // array peak, the DPU at its smaller array, and the TPU at
        // launch/fill-drain-limited small-tile throughput (a 128x128 tile
        // barely wets a 128x128x8 array).
        let neural = KernelProfile::matmul(128 * spec.scale.factor());
        let reason_neural =
            neural.flops / (2.0 * config.total_nodes() as f64 * config.freq_mhz as f64 * 1e6 * 0.8);
        let tpu_neural = neural.flops / (2.0 * tpu.peak_macs() * 4e-4);
        let dpu_neural = dpu.run(&neural).seconds;
        // End to end: neural + symbolic serial on accelerators.
        let reason_e2e = reason_sym + reason_neural;
        let tpu_e2e = tpu_sym + tpu_neural;
        let dpu_e2e = dpu_sym + dpu_neural;
        let _ = writeln!(
            out,
            "{:>14} {:>11.1}/{:>9.1} {:>12.2}/{:>8.2} {:>12.1}/{:>8.1}",
            w.name(),
            tpu_sym / reason_sym,
            dpu_sym / reason_sym,
            tpu_neural / reason_neural,
            dpu_neural / reason_neural,
            tpu_e2e / reason_e2e,
            dpu_e2e / reason_e2e
        );
    }
    out.push_str("(paper: symbolic TPU 74-110x / DPU 5-24x; neural TPU ~0.7x / DPU ~4.3x; end-to-end TPU 9.8-21x / DPU 2.2-8.6x)\n");
    out
}

/// Table V: necessity of co-design (algorithm-only vs algorithm+hardware).
pub fn table5(tasks: usize) -> String {
    let mut out = String::from("=== Table V: co-design ablation (normalized runtime %) ===\n");
    let _ = writeln!(
        out,
        "{:>10} {:>16} {:>20} {:>22}",
        "dataset", "baseline @Orin", "REASON-algo @Orin", "REASON-algo @REASON"
    );
    for dataset in
        [Dataset::Imo, Dataset::MiniF2F, Dataset::TwinSafety, Dataset::XsTest, Dataset::CommonGen]
    {
        let specs = TaskSpec::batch(dataset, Scale::Small, tasks);
        let model = model_for(dataset.workload());
        // Memory reduction drives the algorithm-level op reduction.
        let mut before = 0usize;
        let mut after = 0usize;
        for s in &specs {
            before += model.run_task(s, false).kernel_bytes;
            after += model.run_task(s, true).kernel_bytes;
        }
        let keep = after as f64 / before.max(1) as f64;
        let spec = specs[0];
        let orin_neural = neural_cost(Platform::OrinNx, &spec).seconds;
        let orin_sym = baseline_symbolic_cost(Platform::OrinNx, &spec).seconds;
        let baseline = orin_neural + orin_sym;
        // Algorithm-only: symbolic work scales with the surviving fraction
        // (plus a floor: control flow does not shrink linearly).
        let algo_only = orin_neural + orin_sym * (0.55 + 0.45 * keep);
        // Algorithm + hardware: symbolic on REASON, pipelined.
        let reason_sym = baseline_symbolic_cost(Platform::Reason, &spec).seconds * keep;
        let co_designed = orin_neural.max(reason_sym);
        let _ = writeln!(
            out,
            "{:>10} {:>15.1}% {:>19.1}% {:>21.2}%",
            dataset.name(),
            100.0,
            100.0 * algo_only / baseline,
            100.0 * co_designed / baseline
        );
    }
    out.push_str("(paper: algo-only 78.3-87.0%; algo+HW 1.94-2.08%)\n");
    out
}

/// Sec. VII-C hardware-technique ablation.
pub fn ablation() -> String {
    let mut out = String::from("=== Hardware-technique ablation (symbolic kernel cycles) ===\n");
    let cnf = reason_sat::gen::random_ksat(40, 170, 3, 7);
    let full = ArchConfig::paper();
    let mut no_wl = full;
    no_wl.ablation.wl_memory_layout = false;
    let (_, base) = SymbolicEngine::new(full).solve(&cnf);
    let (_, wl_off) = SymbolicEngine::new(no_wl).solve(&cnf);
    let _ = writeln!(out, "full configuration:        {:>10} cycles", base.cycles);
    let _ = writeln!(
        out,
        "w/o WL memory layout:      {:>10} cycles (+{:.0}%)",
        wl_off.cycles,
        100.0 * (wl_off.cycles as f64 / base.cycles as f64 - 1.0)
    );

    // DAG-mode ablations on a compiled probabilistic kernel.
    let circuit = reason_pc::random_mixture_circuit(&reason_pc::StructureConfig {
        num_vars: 10,
        depth: 3,
        num_components: 3,
        seed: 3,
    });
    let pipeline = ReasonPipeline::with_config(PipelineConfig { prune: false, regularize: true });
    let kernel = pipeline.compile(KernelSource::Pc(&circuit)).expect("compiles");
    let mut no_sched = full;
    no_sched.ablation.scheduling = false;
    let mut no_reconf = full;
    no_reconf.ablation.reconfigurable = false;
    for (name, cfg) in [
        ("full configuration", full),
        ("w/o scheduling", no_sched),
        ("w/o reconfigurable array", no_reconf),
    ] {
        let compiled = ReasonCompiler::new(cfg).compile(&kernel.dag).expect("maps");
        let exec = VliwExecutor::new(cfg);
        let report = exec.execute(&compiled.program(&vec![1.0; compiled.num_inputs()]));
        let _ = writeln!(out, "{name:<26} {:>10} cycles (DAG mode)", report.cycles);
    }
    out.push_str(
        "(paper: memory layout ~22%, reconfig+scheduling up to 56-73% runtime reduction)\n",
    );
    out
}

/// Fig. 9 case study: a working example of symbolic execution — one
/// small SAT instance narrated through the hardware pipeline events.
pub fn fig9() -> String {
    let mut out =
        String::from("=== Fig. 9 case study: symbolic execution on the BCP pipeline ===\n");
    let config = ArchConfig::paper();
    let cnf = reason_sat::gen::random_ksat(16, 68, 3, 4);
    let engine = SymbolicEngine::new(config);
    let (solution, r) = engine.solve(&cnf);
    let _ = writeln!(
        out,
        "instance: 16 vars, 68 clauses -> {}",
        if solution.is_sat() { "SAT" } else { "UNSAT" }
    );
    let _ = writeln!(
        out,
        "decisions broadcast through the tree ({} cycles root->leaf): {}",
        config.tree_depth, r.decisions
    );
    let _ = writeln!(
        out,
        "implications pipelined through the reduction tree:        {}",
        r.implications
    );
    let _ = writeln!(
        out,
        "watched-literal SRAM reads (linked-list traversals):      {}",
        r.wl_sram_reads
    );
    let _ =
        writeln!(out, "conflicts (priority propagation + FIFO flush):            {}", r.conflicts);
    let _ =
        writeln!(out, "learned clauses recorded by the scalar PE:                {}", r.learned);
    let _ = writeln!(
        out,
        "BCP FIFO high-water mark:                                 {}",
        r.fifo_max_occupancy
    );
    let _ = writeln!(
        out,
        "DMA fetches for clause-database misses:                   {}",
        r.dma_fetches
    );
    let _ = writeln!(out, "total: {} cycles, {:.2} uJ", r.cycles, r.energy.total_j() * 1e6);
    out.push_str("(paper Fig. 9: decision broadcast T1-T4, pipelined implications, conflict at T22 flushing the FIFO and halting DMA)\n");
    out
}

/// The threaded two-level pipeline, executed for real: a mixed
/// SAT/PC/approx/exact-WMC/serve batch on the `reason-system`
/// [`BatchExecutor`](reason_system::BatchExecutor), serial vs overlapped
/// vs multi-worker symbolic conquering, with the flow-shop cost model's
/// prediction next to the measured wall clock (validates Sec. VI-C
/// against execution instead of simulation).
pub fn pipeline(tasks: usize, workers: usize, seed: u64) -> String {
    use reason_system::{BatchExecutor, ExecutorConfig};

    let mut out = String::from("=== Sec. VI-C: two-level pipeline, executed ===\n");

    // Part 1: real reasoning kernels — threading must never change an
    // answer, whatever the pool shape.
    let batch = reason_system::demo_batch(tasks, seed);
    let _ = writeln!(
        out,
        "-- determinism: {} real tasks (rotating cube-and-conquer SAT / PC marginal / approx WMC \
         / exact WMC / shared-KB serve) --",
        tasks
    );
    let wide_workers = workers.max(1);
    let serial = BatchExecutor::new(ExecutorConfig::sequential()).run(&batch);
    let mut sweep = vec![1];
    if wide_workers > 1 {
        sweep.push(wide_workers);
    }
    for &w in &sweep {
        let report = BatchExecutor::new(ExecutorConfig::overlapped(w)).run(&batch);
        assert!(
            report.agrees_with(&serial),
            "threaded execution changed a verdict — determinism bug"
        );
    }
    let verdicts = serial.verdicts();
    let sat = verdicts
        .iter()
        .filter(|v| matches!(v, reason_system::Verdict::Sat(s) if s.is_sat()))
        .count();
    let marginals =
        verdicts.iter().filter(|v| matches!(v, reason_system::Verdict::LogMarginal(_))).count();
    let wmc = verdicts.iter().filter(|v| matches!(v, reason_system::Verdict::Wmc { .. })).count();
    let swept: Vec<String> = sweep.iter().map(|w| format!("{w}-worker")).collect();
    let _ = writeln!(
        out,
        "verdicts identical across serial / {} runs: {} SAT, {} PC marginals, {} WMC \
         (approx + exact)",
        swept.join(" / "),
        sat,
        marginals,
        wmc
    );

    // Part 2: calibrated stage durations — validate the flow-shop cost
    // model against measured wall clock where overhead is negligible.
    let calibrated = reason_system::synthetic_batch(&vec![(8u64, 8u64); tasks.max(4)]);
    let _ = writeln!(
        out,
        "-- schedule: {} calibrated tasks, 8 ms neural + 8 ms symbolic each --",
        tasks.max(4)
    );
    let _ = writeln!(
        out,
        "{:>28} {:>12} {:>12} {:>8}",
        "configuration", "makespan s", "serial s", "gain"
    );
    // Every schedule is published into one metrics registry (the
    // structured path — `PipelineReport::record_into` with documented
    // units) and the table below is rendered *from* the registry, so
    // nothing here is print-only.
    let registry = reason_telemetry::MetricsRegistry::new();
    let serial_cal = BatchExecutor::new(ExecutorConfig::sequential()).run(&calibrated);
    let overlapped = BatchExecutor::new(ExecutorConfig::overlapped(1)).run(&calibrated);
    serial_cal.measured.record_into(&registry, "serial");
    overlapped.measured.record_into(&registry, "overlapped_1");
    overlapped.predicted().record_into(&registry, "predicted");
    let mut rows = vec![
        ("serial (no overlap)".to_string(), "serial"),
        ("overlapped, 1 sym worker".to_string(), "overlapped_1"),
        ("  cost-model prediction".to_string(), "predicted"),
    ];
    if wide_workers > 1 {
        let wide = BatchExecutor::new(ExecutorConfig::overlapped(wide_workers)).run(&calibrated);
        wide.measured.record_into(&registry, "overlapped_wide");
        rows.push((format!("overlapped, {wide_workers} sym workers"), "overlapped_wide"));
    }
    let gauge = |name: &str, labels: &[(&str, &str)]| -> f64 {
        let mut want: Vec<(String, String)> =
            labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        want.sort();
        registry
            .snapshot()
            .iter()
            .find_map(|m| match &m.value {
                reason_telemetry::MetricValue::Gauge(g) if m.name == name && m.labels == want => {
                    Some(*g)
                }
                _ => None,
            })
            .unwrap_or_else(|| panic!("missing gauge {name}{labels:?}"))
    };
    for (name, schedule) in &rows {
        let _ = writeln!(
            out,
            "{:>28} {:>12.4} {:>12.4} {:>7.1}%",
            name,
            gauge("pipeline_makespan_seconds", &[("schedule", schedule), ("mode", "pipelined")]),
            gauge("pipeline_makespan_seconds", &[("schedule", schedule), ("mode", "serial")]),
            100.0 * gauge("pipeline_overlap_gain", &[("schedule", schedule)])
        );
    }
    out.push_str("(paper: overlap hides the shorter stage; gain -> 50% on balanced stages)\n");
    out
}

/// Sec. V-F design-space exploration.
pub fn dse() -> String {
    let mut out = String::from("=== Sec. V-F: design-space exploration over (D, B, R) ===\n");
    let circuit = reason_pc::random_mixture_circuit(&reason_pc::StructureConfig {
        num_vars: 10,
        depth: 3,
        num_components: 3,
        seed: 1,
    });
    let pipeline = ReasonPipeline::new();
    let base = ArchConfig::paper();
    let points = explore_design_space(&[2, 3, 4], &[32, 64, 128], &[16, 32], &base, |cfg| {
        let kernel = pipeline.compile(KernelSource::Pc(&circuit)).expect("compiles");
        match ReasonCompiler::new(*cfg).compile(&kernel.dag) {
            Ok(compiled) => {
                let report = VliwExecutor::new(*cfg)
                    .execute(&compiled.program(&vec![1.0; compiled.num_inputs()]));
                (report.cycles, report.energy.total_j())
            }
            Err(_) => (u64::MAX / 2, f64::MAX / 2.0),
        }
    });
    let _ = writeln!(
        out,
        "{:>4} {:>6} {:>4} {:>10} {:>14} {:>14}",
        "D", "B", "R", "cycles", "energy J", "EDP"
    );
    for p in points.iter().take(8) {
        let _ = writeln!(
            out,
            "{:>4} {:>6} {:>4} {:>10} {:>14.3e} {:>14.3e}",
            p.tree_depth,
            p.num_banks,
            p.regs_per_bank,
            p.cycles,
            p.energy_j,
            p.edp()
        );
    }
    let best = &points[0];
    let _ = writeln!(
        out,
        "best by EDP: D={} B={} R={} (paper selects D=3, B=64, R=32)",
        best.tree_depth, best.num_banks, best.regs_per_bank
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_experiment_produces_output() {
        // Smoke: each experiment renders non-trivially. Kept to the
        // cheapest parameters; full runs happen in reason-eval.
        assert!(fig2().lines().count() > 10);
        assert!(table3().contains("6.00"));
        assert!(fig8().contains("all-to-one") || fig8().contains("All-to-One"));
        assert!(dse().contains("best by EDP"));
    }

    #[test]
    fn table4_reports_reduction() {
        let t = table4(2);
        assert!(t.contains("average memory reduction"));
    }

    #[test]
    fn fig11_normalizes_to_reason() {
        let f = fig11(2);
        assert!(f.contains("REASON"));
        assert!(f.contains("1.0"));
    }

    #[test]
    fn pipeline_experiment_validates_determinism() {
        // pipeline() asserts internally that every executor configuration
        // returns identical verdicts; reaching the report text means the
        // determinism contract held.
        let p = pipeline(4, 2, 42);
        assert!(p.contains("cost-model prediction"));
        assert!(p.contains("verdicts identical across serial"));
        assert!(p.contains("approx WMC"));
    }
}
