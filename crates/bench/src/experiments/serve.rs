//! Knowledge-base serving sweep (`reason-eval serve`).
//!
//! The experiment behind `reason-serve`: across a ladder of random
//! 3-SAT knowledge bases it measures what the persistent
//! compiled-circuit store buys on a *repeated-query* workload — the
//! cold cost (first compile + first query) against the mean warm query
//! served from the hot artifact — and exercises the router ladder:
//!
//! 1. a **deadline round** against the still-cold KB (the router
//!    charges the predicted compile cost, degrades to anytime bounds,
//!    and the sweep later checks the bounds contain the exact answer);
//! 2. a **cold round** (one exact query pays the compilation);
//! 3. a **warm round** of mixed exact queries (WMC / posterior /
//!    marginal / MPE) served from the store, each cross-checked against
//!    a freshly built [`reason_pc::CompiledWmc`] oracle — the guard CI
//!    smokes on the small rungs;
//! 4. a **predicted round** under nanosecond deadlines (one forward
//!    pass of the KB's trained prediction network);
//! 5. an **incremental round**: one clause added, the recompile reuses
//!    untouched components through the persistent component cache.
//!
//! `reason-eval serve --json > BENCH_serve.json` regenerates the
//! committed baseline.

use std::fmt::Write as _;
use std::time::Duration;

use rand::prelude::*;
use reason_pc::{CompiledWmc, Evidence, WmcWeights};
use reason_sat::gen::random_ksat;
use reason_serve::{
    Answer, CacheStats, Query, QueryKind, Route, RouterStats, ServeConfig, ServeEngine,
};

use crate::json::Json;

/// The serving ladder `(num_vars, num_clauses)` — the compile sweep's
/// comparison rungs plus the n = 40 rung where cold compilation costs
/// tens of milliseconds and the store's amortization is most visible.
pub const SERVE_SIZES: [(usize, usize); 5] = [(12, 36), (16, 40), (20, 44), (28, 52), (40, 64)];

/// Mildly skewed per-variable marginals (shared shape with the compile
/// sweep's weights).
fn serve_weights(num_vars: usize) -> WmcWeights {
    WmcWeights::new((0..num_vars).map(|v| 0.45 + 0.1 * (v % 2) as f64).collect())
}

/// One knowledge base's measurements.
#[derive(Debug, Clone)]
pub struct ServeRow {
    /// Variable count.
    pub num_vars: usize,
    /// Clause count at registration.
    pub num_clauses: usize,
    /// Seed the instance was generated from.
    pub seed: u64,
    /// Cold compile seconds (first exact serve pays this).
    pub compile_s: f64,
    /// Cold first-query latency (executor-measured stage seconds).
    pub first_query_s: f64,
    /// Warm queries served.
    pub warm_queries: usize,
    /// Mean warm per-query latency.
    pub warm_mean_s: f64,
    /// `(compile + first query) / warm mean` — what the store saves
    /// every second-and-later query.
    pub speedup: f64,
    /// Deadline-round fallbacks taken against this KB (cold bounds).
    pub fallbacks: usize,
    /// The cold-round anytime brackets contained the exact answer.
    pub fallback_contains: bool,
    /// Predicted-round queries answered by the prediction network.
    pub predicted: usize,
    /// Exact warm answers matched a fresh `CompiledWmc` bit-for-bit.
    pub exact_ok: bool,
    /// Seconds for the recompile after one clause was added.
    pub incremental_s: f64,
    /// Components reused from the persistent cache by that recompile.
    pub persistent_hits: u64,
    /// Incremental answers matched a fresh oracle (1e-9 relative).
    pub incremental_ok: bool,
}

/// Sweep output: per-KB rows plus engine-level counters.
#[derive(Debug, Clone)]
pub struct ServeSummary {
    /// Per-knowledge-base rows.
    pub rows: Vec<ServeRow>,
    /// Router admission counters across the whole sweep.
    pub router: RouterStats,
    /// Store counters across the whole sweep.
    pub store: CacheStats,
}

/// A trimmed prediction-network schedule: enough to exercise the
/// predicted rung, cheap enough for CI smoke.
fn sweep_predictor() -> reason_approx::PredictConfig {
    reason_approx::PredictConfig {
        queries: 128,
        epochs: 150,
        hidden: 16,
        ..reason_approx::PredictConfig::default()
    }
}

/// Runs the sweep over an explicit ladder. Each rung walks seeds until
/// the instance carries mass (massless KBs are rejected at compile).
pub fn serve_rows_for(sizes: &[(usize, usize)], seed: u64) -> ServeSummary {
    let mut engine = ServeEngine::new(ServeConfig {
        predictor: Some(sweep_predictor()),
        approx_seed: seed,
        ..ServeConfig::default()
    });
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5E17E);
    let mut rows = Vec::with_capacity(sizes.len());
    // Router decisions made by the per-rung cold engines (the deadline
    // rounds) are folded into the sweep-wide counters.
    let mut cold_router = RouterStats::default();
    for &(n, m) in sizes {
        let weights = serve_weights(n);
        // Walk seeds until the instance carries mass, probing *before*
        // registration so massless draws never leak dead KB entries
        // into the sweep engine.
        let mut instance_seed = seed;
        let cnf = loop {
            let cnf = random_ksat(n, m, 3, instance_seed);
            if reason_pc::weighted_model_count(&cnf, &weights) > 0.0 {
                break cnf;
            }
            instance_seed += 1;
        };
        let id = engine.register(format!("kb-{n}"), &cnf, weights.clone());
        engine.warm(id).expect("probed mass above");
        // The warm() above pre-compiled; to measure the advertised cold
        // path we rebuild the engine state per rung *before* warm —
        // instead, charge the measured compile from warm() and restage
        // the deadline round against a cloned cold engine below.
        let compile_s = engine.last_compile_s(id);

        // Deadline round against a *cold* copy of the KB: the router
        // must charge the predicted compile and degrade to bounds.
        let mut cold = ServeEngine::new(ServeConfig {
            predictor: None,
            approx_seed: seed,
            ..ServeConfig::default()
        });
        let cold_id = cold.register(format!("kb-{n}-cold"), &cnf, weights.clone());
        let deadline_queries: Vec<Query> = (0..3)
            .map(|_| Query::with_deadline(QueryKind::Wmc, Duration::from_micros(50)))
            .collect();
        let cold_report = cold.serve(cold_id, &deadline_queries).expect("approx never compiles");
        let fallbacks =
            cold_report.outcomes.iter().filter(|o| !matches!(o.route, Route::Exact)).count();
        let cr = cold.router_stats();
        cold_router.exact += cr.exact;
        cold_router.approx += cr.approx;
        cold_router.predicted += cr.predicted;
        cold_router.deadline_fallbacks += cr.deadline_fallbacks;

        // Cold round: the first exact query (artifact already compiled
        // by the mass probe, so re-measure its latency only).
        let first = engine.serve(id, &[Query::exact(QueryKind::Wmc)]).expect("compiled");
        let first_query_s = first.outcomes[0].latency_s;

        // Warm round: mixed exact queries answered from the hot store.
        // The reference oracle compiles the KB's *canonical* formula
        // (literals sorted within clauses) — the exact presentation the
        // engine serves — so agreement is checked bit-for-bit.
        let mut oracle = CompiledWmc::new(&engine.kb(id).cnf(), &weights);
        let z = oracle.wmc();
        let fallback_contains = cold_report.outcomes.iter().all(|o| match &o.answer {
            Answer::Bounds { lower, upper, .. } => *lower <= z && z <= *upper,
            _ => true,
        });
        let warm_queries: Vec<Query> = (0..24)
            .map(|i| match i % 4 {
                0 => Query::exact(QueryKind::Wmc),
                1 => {
                    let mut ev = Evidence::empty(n);
                    for _ in 0..3 {
                        ev.set(rng.gen_range(0..n), usize::from(rng.gen_bool(0.5)));
                    }
                    Query::exact(QueryKind::Posterior(ev))
                }
                2 => Query::exact(QueryKind::Marginal(Evidence::empty(n), rng.gen_range(0..n))),
                _ => {
                    let mut ev = Evidence::empty(n);
                    ev.set(rng.gen_range(0..n), 1);
                    Query::exact(QueryKind::Mpe(ev))
                }
            })
            .collect();
        let warm = engine.serve(id, &warm_queries).expect("compiled");
        let warm_total: f64 = warm.outcomes.iter().map(|o| o.latency_s).sum();
        let warm_mean_s = warm_total / warm.outcomes.len() as f64;
        // The serve guard: every exact answer agrees with a freshly
        // compiled oracle, bit-for-bit.
        let mut exact_ok = true;
        for (query, outcome) in warm_queries.iter().zip(&warm.outcomes) {
            match (&query.kind, &outcome.answer) {
                (QueryKind::Wmc, Answer::Exact(got)) => exact_ok &= *got == z,
                (QueryKind::Posterior(ev), Answer::Exact(got)) => {
                    exact_ok &= *got == oracle.posterior(ev).expect("mass")
                }
                (QueryKind::Marginal(ev, var), Answer::Distribution(d)) => {
                    exact_ok &= *d == oracle.circuit().expect("mass").marginal(ev, *var)
                }
                (QueryKind::Mpe(ev), Answer::Assignment { assignment, log_prob }) => {
                    // Under zero-probability evidence the traced
                    // assignment is arbitrary (log_prob = -inf), so the
                    // guard is bit-agreement with the oracle's MPE.
                    let want = oracle.circuit().expect("mass").mpe(ev);
                    exact_ok &= *assignment == want.assignment && *log_prob == want.log_prob;
                }
                _ => exact_ok = false,
            }
        }
        assert!(exact_ok, "n={n}: serve answers diverged from CompiledWmc");

        // Predicted round: deadlines no exact or sampled path can meet.
        let tiny: Vec<Query> = (0..3)
            .map(|_| Query::with_deadline(QueryKind::Wmc, Duration::from_nanos(20)))
            .collect();
        let predicted_report = engine.serve(id, &tiny).expect("compiled");
        let predicted = predicted_report
            .outcomes
            .iter()
            .filter(|o| matches!(o.route, Route::Predicted))
            .count();

        // Incremental round: add one clause, recompile reuses untouched
        // components, answers stay exact (1e-9 relative vs a fresh
        // oracle — the spliced circuit may differ in the last ulp).
        let lits: Vec<i32> = (0..3)
            .map(|_| {
                let v = rng.gen_range(0..n) as i32 + 1;
                if rng.gen_bool(0.5) {
                    v
                } else {
                    -v
                }
            })
            .collect();
        engine.add_clause(id, &lits);
        let inc = engine.serve(id, &[Query::exact(QueryKind::Wmc)]).expect("still has mass");
        let incremental_s = engine.last_compile_s(id);
        let persistent_hits = engine.last_compile_stats(id).persistent_hits;
        let fresh = CompiledWmc::new(&engine.kb(id).cnf(), &weights);
        let incremental_ok = match &inc.outcomes[0].answer {
            Answer::Exact(got) => (got - fresh.wmc()).abs() <= 1e-9 * fresh.wmc().max(1e-30),
            _ => false,
        };
        assert!(incremental_ok, "n={n}: incremental recompile diverged");

        let speedup = (compile_s + first_query_s) / warm_mean_s.max(1e-12);
        rows.push(ServeRow {
            num_vars: n,
            num_clauses: m,
            seed: instance_seed,
            compile_s,
            first_query_s,
            warm_queries: warm.outcomes.len(),
            warm_mean_s,
            speedup,
            fallbacks,
            fallback_contains,
            predicted,
            exact_ok,
            incremental_s,
            persistent_hits,
            incremental_ok,
        });
    }
    let warm_router = engine.router_stats();
    let router = RouterStats {
        exact: warm_router.exact + cold_router.exact,
        approx: warm_router.approx + cold_router.approx,
        predicted: warm_router.predicted + cold_router.predicted,
        deadline_fallbacks: warm_router.deadline_fallbacks + cold_router.deadline_fallbacks,
    };
    ServeSummary { rows, router, store: engine.store_stats() }
}

/// Runs the full ladder ([`SERVE_SIZES`]).
pub fn serve_summary(seed: u64) -> ServeSummary {
    let summary = serve_rows_for(&SERVE_SIZES, seed);
    let top = summary.rows.last().expect("ladder is non-empty");
    assert!(
        top.speedup >= 10.0,
        "repeated-query speedup regressed below 10x at n={}: {:.1}x",
        top.num_vars,
        top.speedup
    );
    summary
}

fn rows_to_text(summary: &ServeSummary) -> String {
    let mut out = String::from(
        "=== reason-serve: persistent circuit store + adaptive routing (seeded random 3-SAT) ===\n",
    );
    let _ = writeln!(
        out,
        "{:>6} {:>8} {:>11} {:>11} {:>11} {:>9} {:>6} {:>5} {:>10} {:>8}",
        "vars",
        "clauses",
        "compile ms",
        "warm us",
        "speedup",
        "inc ms",
        "reuse",
        "fall",
        "predicted",
        "exact"
    );
    for r in &summary.rows {
        let _ = writeln!(
            out,
            "{:>6} {:>8} {:>11.3} {:>11.2} {:>10.0}x {:>9.3} {:>6} {:>5} {:>10} {:>8}",
            r.num_vars,
            r.num_clauses,
            1e3 * r.compile_s,
            1e6 * r.warm_mean_s,
            r.speedup,
            1e3 * r.incremental_s,
            r.persistent_hits,
            r.fallbacks,
            r.predicted,
            if r.exact_ok && r.incremental_ok { "yes" } else { "NO" },
        );
    }
    let best = summary.rows.iter().map(|r| r.speedup).fold(f64::NEG_INFINITY, f64::max);
    let _ = writeln!(
        out,
        "router: {} exact / {} approx / {} predicted ({} deadline fallbacks); store: {} \
         insertions, {} hits, {} misses, {} KiB",
        summary.router.exact,
        summary.router.approx,
        summary.router.predicted,
        summary.router.deadline_fallbacks,
        summary.store.insertions,
        summary.store.hits,
        summary.store.misses,
        summary.store.bytes / 1024,
    );
    let _ = writeln!(
        out,
        "(speedup = (cold compile + first query) / mean warm query; second-and-later queries are \
         served from the store's d-DNNF arena through shared CompiledWmc oracles — peak {best:.0}x \
         on this ladder; deadline rounds degrade cold KBs to anytime bounds and ns deadlines to \
         the prediction net)"
    );
    out
}

fn rows_to_json(summary: &ServeSummary, seed: u64) -> Json {
    Json::Obj(vec![
        ("experiment".into(), Json::Str("serve".into())),
        ("seed".into(), Json::Num(seed as f64)),
        (
            "rows".into(),
            Json::Arr(
                summary
                    .rows
                    .iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("num_vars".into(), Json::Num(r.num_vars as f64)),
                            ("num_clauses".into(), Json::Num(r.num_clauses as f64)),
                            ("instance_seed".into(), Json::Num(r.seed as f64)),
                            ("compile_s".into(), Json::Num(r.compile_s)),
                            ("first_query_s".into(), Json::Num(r.first_query_s)),
                            ("warm_queries".into(), Json::Num(r.warm_queries as f64)),
                            ("warm_mean_s".into(), Json::Num(r.warm_mean_s)),
                            ("speedup".into(), Json::Num(r.speedup)),
                            ("deadline_fallbacks".into(), Json::Num(r.fallbacks as f64)),
                            ("fallback_contains_exact".into(), Json::Bool(r.fallback_contains)),
                            ("predicted_routed".into(), Json::Num(r.predicted as f64)),
                            ("exact_matches_compiled_wmc".into(), Json::Bool(r.exact_ok)),
                            ("incremental_compile_s".into(), Json::Num(r.incremental_s)),
                            ("persistent_hits".into(), Json::Num(r.persistent_hits as f64)),
                            ("incremental_ok".into(), Json::Bool(r.incremental_ok)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "router".into(),
            Json::Obj(vec![
                ("exact".into(), Json::Num(summary.router.exact as f64)),
                ("approx".into(), Json::Num(summary.router.approx as f64)),
                ("predicted".into(), Json::Num(summary.router.predicted as f64)),
                ("deadline_fallbacks".into(), Json::Num(summary.router.deadline_fallbacks as f64)),
            ]),
        ),
        (
            "store".into(),
            Json::Obj(vec![
                ("hits".into(), Json::Num(summary.store.hits as f64)),
                ("misses".into(), Json::Num(summary.store.misses as f64)),
                ("insertions".into(), Json::Num(summary.store.insertions as f64)),
                ("evictions".into(), Json::Num(summary.store.evictions as f64)),
                ("entries".into(), Json::Num(summary.store.entries as f64)),
                ("bytes".into(), Json::Num(summary.store.bytes as f64)),
                ("hit_rate".into(), Json::Num(summary.store.hit_rate())),
            ]),
        ),
    ])
}

/// Text report of the serving sweep.
pub fn serve(seed: u64) -> String {
    rows_to_text(&serve_summary(seed))
}

/// JSON report of the serving sweep (for `reason-eval serve --json`,
/// the `BENCH_serve.json` generator).
pub fn serve_json(seed: u64) -> Json {
    rows_to_json(&serve_summary(seed), seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn small_summary() -> ServeSummary {
        // Only the cheap rungs, to keep debug-profile tests quick.
        serve_rows_for(&SERVE_SIZES[..2], 7)
    }

    #[test]
    fn sweep_rows_are_exact_and_exercise_the_ladder() {
        let summary = small_summary();
        assert_eq!(summary.rows.len(), 2);
        for r in &summary.rows {
            assert!(r.exact_ok && r.incremental_ok);
            assert!(r.fallbacks > 0, "cold deadline round must degrade");
            assert!(r.fallback_contains, "cold bounds must contain exact");
            assert!(r.predicted > 0, "ns deadlines must reach the prediction net");
            assert!(r.persistent_hits > 0, "incremental recompile must reuse components");
            assert!(r.speedup > 1.0, "warm queries must beat cold compile: {r:?}");
        }
        assert!(summary.router.approx > 0 && summary.router.predicted > 0);
        assert!(summary.store.insertions >= 2);
    }

    #[test]
    fn text_report_renders_every_row() {
        let summary = small_summary();
        let text = rows_to_text(&summary);
        assert!(text.contains("persistent circuit store"));
        assert!(text.contains("deadline fallbacks"));
        for r in &summary.rows {
            assert!(text.contains(&format!("{:>6} {:>8}", r.num_vars, r.num_clauses)));
        }
    }

    #[test]
    fn json_output_parses_and_carries_the_sweep() {
        let text = rows_to_json(&small_summary(), 7).render();
        let parsed = json::parse(&text).expect("sweep JSON must parse");
        assert_eq!(parsed.get("experiment").unwrap().as_str(), Some("serve"));
        let rows = parsed.get("rows").unwrap().as_arr().unwrap();
        assert_eq!(rows.len(), 2);
        for row in rows {
            assert!(row.get("speedup").unwrap().as_f64().is_some());
            assert_eq!(row.get("exact_matches_compiled_wmc").unwrap().as_bool(), Some(true));
            assert_eq!(row.get("incremental_ok").unwrap().as_bool(), Some(true));
        }
        assert!(parsed.get("router").unwrap().get("deadline_fallbacks").is_some());
        assert!(parsed.get("store").unwrap().get("hit_rate").is_some());
    }
}
