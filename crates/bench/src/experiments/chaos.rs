//! Chaos sweep for the fault-tolerant serving cluster
//! (`reason-eval chaos`).
//!
//! The traffic harness's seeded workloads, replayed against a
//! [`ServeCluster`] with a deterministic [`FaultPlan`] installed. Three
//! scenarios exercise the failure-domain ladder:
//!
//! * **crash_one_shard** — the busiest shard is dead for the middle 40%
//!   of the workload horizon; its queries must hedge, trip the breaker,
//!   fail over through the shrunk hash ring, and recompile on the
//!   surviving shards.
//! * **rolling_slow** — an 8× latency window rolls across the shards,
//!   one slice of the horizon each; admission must degrade under the
//!   inflated backlog instead of missing deadlines blindly.
//! * **cache_wipe_storm** — every shard's circuit store is wiped twice;
//!   every later exact query must recompile and still answer
//!   bit-identically.
//!
//! Guards run inside every cell: **zero lost queries** (every admitted
//! query answers; rejects are flagged, answerless, and counted), and
//! **exact bit-identity** — every exact answer not degraded by a fault
//! matches the single-engine deadline-free oracle bit-for-bit, whether
//! it was served on its home shard or recompiled after failover. The
//! crash scenario additionally must hold ≥ 99% availability through
//! failover and degradation.
//!
//! Determinism: fault windows, retries (seeded backoff jitter), breaker
//! walks, and the virtual-time queue model read only seeded inputs, so
//! `reason-eval chaos --seed S --json` is byte-identical across runs.
//! `reason-eval chaos --json > BENCH_chaos.json` regenerates the
//! committed baseline.

use std::fmt::Write as _;

use reason_serve::{
    Admission, Answer, ClusterConfig, ClusterKbId, FaultConfig, FaultPlan, FaultStats, Query,
    RetryConfig, Route, ServeCluster,
};

use super::traffic::{
    percentile, reference_answers, traffic_engine_config, traffic_kbs, traffic_workload, Arrival,
    TrafficKb,
};
use crate::json::Json;

/// Offered load of every chaos cell (queries per second of virtual
/// time). Far below a healthy shard's saturation point, so admission
/// losses under fault injection are attributable to the faults, not to
/// baseline overload.
pub const CHAOS_QPS: f64 = 3.0e4;

/// Cluster widths swept per scenario.
pub const CHAOS_SHARDS: [usize; 2] = [2, 4];

/// Queries per cell in the committed grid.
pub const CHAOS_QUERIES: usize = 300;

/// The committed fault scenario names, in grid order. Each shard count
/// additionally runs a `baseline` cell (empty fault plan) that anchors
/// the availability metric: only rejects *in excess of* the baseline's
/// are charged to the faults.
pub const CHAOS_SCENARIOS: [&str; 3] = ["crash_one_shard", "rolling_slow", "cache_wipe_storm"];

/// One cell of the `scenario × shard count` chaos grid.
#[derive(Debug, Clone)]
pub struct ChaosCell {
    /// Scenario name (one of [`CHAOS_SCENARIOS`]).
    pub scenario: &'static str,
    /// Shards in the cluster.
    pub shards: usize,
    /// Queries replayed.
    pub queries: usize,
    /// Admitted queries that never produced an answer. The harness
    /// asserts this is zero in every cell.
    pub lost: u64,
    /// Queries that received an answer (admitted and served).
    pub answered: u64,
    /// Fault-attributed availability: `1 - (lost + excess_rejects) /
    /// queries`, where `excess_rejects` is this cell's reject count
    /// beyond the same-shape baseline cell's. Admission-control rejects
    /// that happen identically without faults (tight deadlines against
    /// cold-compile backlogs) are not charged to the fault plan.
    pub availability: f64,
    /// Queries rejected by admission control (flagged, answerless).
    pub rejected: u64,
    /// The baseline (no-fault) cell's reject count at this shard width.
    pub baseline_rejected: u64,
    /// Exact / anytime-bounds / predicted admissions.
    pub exact: u64,
    /// Anytime-bounds admissions.
    pub approx: u64,
    /// Prediction-network admissions.
    pub predicted: u64,
    /// Queries pushed down the degrade ladder *by a fault* (compile
    /// fault on the exact rung, or a post-admission dispatch fallback).
    pub degraded_by_fault: u64,
    /// p50 of modeled latency over answered queries.
    pub p50_s: f64,
    /// p99 of modeled latency over answered queries.
    pub p99_s: f64,
    /// Degraded fraction (approx + predicted over total).
    pub degrade_rate: f64,
    /// Every non-degraded exact answer matched the single-engine
    /// oracle bit-for-bit.
    pub exact_bit_identical: bool,
    /// Fault-domain counters accumulated over the cell.
    pub fault: FaultStats,
}

/// The full chaos grid plus its workload shape.
#[derive(Debug, Clone)]
pub struct ChaosSummary {
    /// All cells, shard-major: a `baseline` cell then the
    /// [`CHAOS_SCENARIOS`] cells per shard width.
    pub cells: Vec<ChaosCell>,
    /// Queries per cell.
    pub queries_per_cell: usize,
    /// Registered tenants (knowledge bases).
    pub kbs: usize,
}

/// The deterministic fault plan for one scenario over `horizon_s`
/// seconds of virtual time on a `shards`-wide cluster.
fn plan_for(scenario: &str, shards: usize, horizon_s: f64) -> FaultPlan {
    match scenario {
        // The availability anchor: no faults at all.
        "baseline" => FaultPlan::new(),
        // Shard 0 is dead for the middle 40% of the horizon.
        "crash_one_shard" => FaultPlan::new().crash(0, 0.2 * horizon_s, 0.6 * horizon_s),
        // An 8x slowdown rolls across the shards, one equal slice each.
        "rolling_slow" => {
            let slice = horizon_s / shards as f64;
            (0..shards).fold(FaultPlan::new(), |plan, s| {
                plan.slow(s, s as f64 * slice, (s + 1) as f64 * slice, 8.0)
            })
        }
        // Every shard's store is wiped at 30% and 60% of the horizon.
        "cache_wipe_storm" => (0..shards).fold(FaultPlan::new(), |plan, s| {
            plan.wipe_cache(s, 0.3 * horizon_s).wipe_cache(s, 0.6 * horizon_s)
        }),
        other => panic!("unknown chaos scenario {other:?}"),
    }
}

/// Replays one workload through a fresh faulted cluster and scores it
/// against the single-engine reference.
fn run_cell(
    kbs: &[TrafficKb],
    workload: &[Arrival],
    reference: &[Answer],
    scenario: &'static str,
    shards: usize,
    seed: u64,
    baseline_rejected: u64,
) -> ChaosCell {
    let horizon_s = workload.last().map_or(0.0, |a| a.3).max(f64::MIN_POSITIVE);
    let mut cluster = ServeCluster::new(ClusterConfig {
        shards,
        engine: traffic_engine_config(seed),
        ..ClusterConfig::default()
    });
    let ids: Vec<ClusterKbId> =
        kbs.iter().map(|kb| cluster.register(&kb.name, &kb.cnf, kb.weights.clone())).collect();
    cluster.install_fault_domain(
        plan_for(scenario, shards, horizon_s),
        FaultConfig { retry: RetryConfig { seed, ..RetryConfig::default() }, ..Default::default() },
    );
    let arrivals: Vec<(ClusterKbId, Query, f64)> = workload
        .iter()
        .map(|&(kb, shape, deadline, t)| {
            let kind = kbs[kb].shapes[shape].clone();
            (ids[kb], Query { kind, deadline }, t)
        })
        .collect();
    let report = cluster.serve_at(&arrivals).expect("mass-probed tenants");
    assert_eq!(report.outcomes.len(), workload.len(), "every query keeps an outcome");

    let mut lost = 0u64;
    let mut answered = 0u64;
    let mut degraded_by_fault = 0u64;
    let mut exact_bit_identical = true;
    let mut latencies: Vec<f64> = Vec::with_capacity(workload.len());
    for (outcome, want) in report.outcomes.iter().zip(reference) {
        if outcome.degraded_by_fault {
            degraded_by_fault += 1;
        }
        match outcome.decision {
            Admission::Reject { .. } => assert!(outcome.answer.is_none()),
            Admission::Admit(route) => {
                match &outcome.answer {
                    Some(answer) => {
                        answered += 1;
                        if matches!(route, Route::Exact) && !outcome.degraded_by_fault {
                            exact_bit_identical &= answer == want;
                        }
                    }
                    None => lost += 1,
                }
                latencies.push(outcome.modeled_latency_s);
            }
        }
    }
    latencies.sort_by(f64::total_cmp);

    let stats = report.stats;
    let total = workload.len() as f64;
    let excess_rejects = stats.rejected.saturating_sub(baseline_rejected);
    ChaosCell {
        scenario,
        shards,
        queries: workload.len(),
        lost,
        answered,
        availability: 1.0 - (lost + excess_rejects) as f64 / total,
        rejected: stats.rejected,
        baseline_rejected,
        exact: stats.exact,
        approx: stats.approx,
        predicted: stats.predicted,
        degraded_by_fault,
        p50_s: percentile(&latencies, 0.50),
        p99_s: percentile(&latencies, 0.99),
        degrade_rate: (stats.approx + stats.predicted) as f64 / total,
        exact_bit_identical,
        fault: cluster.fault_stats().expect("fault domain installed"),
    }
}

/// Runs the grid over explicit sweeps. One workload is generated once
/// and replayed by every cell (and the single-engine reference). Each
/// shard count first runs a no-fault `baseline` cell, which anchors the
/// availability metric of that width's fault cells.
pub fn chaos_cells_for(
    scenarios: &[&'static str],
    shard_counts: &[usize],
    queries_per_cell: usize,
    qps: f64,
    seed: u64,
) -> ChaosSummary {
    let kbs = traffic_kbs(seed);
    let workload = traffic_workload(&kbs, queries_per_cell, qps, seed ^ (1 << 32));
    let reference = reference_answers(&kbs, &workload, seed);
    let mut cells = Vec::with_capacity((scenarios.len() + 1) * shard_counts.len());
    for &shards in shard_counts {
        let mut baseline = run_cell(&kbs, &workload, &reference, "baseline", shards, seed, 0);
        // The baseline anchors itself: with no faults installed, its
        // fault-attributed availability is 1 minus losses (which the
        // harness asserts are zero anyway).
        baseline.baseline_rejected = baseline.rejected;
        baseline.availability = 1.0 - baseline.lost as f64 / baseline.queries as f64;
        let anchor = baseline.rejected;
        cells.push(baseline);
        for &scenario in scenarios {
            cells.push(run_cell(&kbs, &workload, &reference, scenario, shards, seed, anchor));
        }
    }
    ChaosSummary { cells, queries_per_cell, kbs: kbs.len() }
}

/// Runs the full committed grid ([`CHAOS_SCENARIOS`] × [`CHAOS_SHARDS`])
/// and enforces the harness guards: zero lost queries and exact
/// bit-identity in every cell, ≥ 99% availability in every
/// crash-one-shard cell, and every scenario's faults actually firing.
pub fn chaos_summary(seed: u64) -> ChaosSummary {
    let summary = chaos_cells_for(&CHAOS_SCENARIOS, &CHAOS_SHARDS, CHAOS_QUERIES, CHAOS_QPS, seed);
    for cell in &summary.cells {
        assert_eq!(
            cell.lost, 0,
            "{} shards={} lost {} queries",
            cell.scenario, cell.shards, cell.lost
        );
        assert!(
            cell.exact_bit_identical,
            "{} shards={}: a non-degraded exact answer diverged from the oracle",
            cell.scenario, cell.shards
        );
        match cell.scenario {
            "baseline" => {
                assert!(cell.fault.is_quiet(), "the baseline cell hit faults: {:?}", cell.fault);
            }
            "crash_one_shard" => {
                assert!(
                    cell.availability >= 0.99,
                    "crash cell shards={} availability {:.4} < 0.99",
                    cell.shards,
                    cell.availability
                );
                assert!(cell.fault.crashes_hit > 0, "the crash window was never hit");
                assert!(cell.fault.failovers > 0, "no query failed over the dead shard");
            }
            "rolling_slow" => {
                assert!(cell.fault.slowdowns_hit > 0, "the slow windows were never hit");
            }
            "cache_wipe_storm" => {
                assert!(cell.fault.cache_wipes > 0, "no wipe fired");
            }
            _ => unreachable!(),
        }
    }
    summary
}

fn cells_to_text(summary: &ChaosSummary) -> String {
    let mut out = String::from("=== chaos: fault injection over the sharded serving cluster ===\n");
    let _ = writeln!(
        out,
        "{} queries/cell at {:.0e} QPS over {} tenants; plans per scenario, seeded\n",
        summary.queries_per_cell, CHAOS_QPS, summary.kbs
    );
    let _ = writeln!(
        out,
        "{:>16} {:>3} {:>5} {:>5} {:>6} {:>8} {:>8} {:>8} {:>5} {:>5} {:>5} {:>6}",
        "scenario",
        "sh",
        "lost",
        "avail",
        "rej",
        "p50(us)",
        "p99(us)",
        "degr",
        "retry",
        "fail",
        "brk",
        "exact="
    );
    for c in &summary.cells {
        let _ = writeln!(
            out,
            "{:>16} {:>3} {:>5} {:>5.3} {:>6} {:>8.2} {:>8.2} {:>8.3} {:>5} {:>5} {:>5} {:>6}",
            c.scenario,
            c.shards,
            c.lost,
            c.availability,
            c.rejected,
            c.p50_s * 1e6,
            c.p99_s * 1e6,
            c.degrade_rate,
            c.fault.retries,
            c.fault.failovers,
            c.fault.breaker_rejections,
            if c.exact_bit_identical { "yes" } else { "NO" },
        );
    }
    out.push_str(
        "\nguards: zero lost queries per cell; non-degraded exact answers bit-identical\n\
         to the single-engine oracle; crash cells >= 99% availability via failover.\n",
    );
    out
}

fn cells_to_json(summary: &ChaosSummary, seed: u64) -> Json {
    Json::Obj(vec![
        ("experiment".into(), Json::Str("chaos".into())),
        ("seed".into(), Json::Num(seed as f64)),
        ("offered_qps".into(), Json::Num(CHAOS_QPS)),
        ("queries_per_cell".into(), Json::Num(summary.queries_per_cell as f64)),
        ("tenants".into(), Json::Num(summary.kbs as f64)),
        (
            "cells".into(),
            Json::Arr(
                summary
                    .cells
                    .iter()
                    .map(|c| {
                        Json::Obj(vec![
                            ("scenario".into(), Json::Str(c.scenario.into())),
                            ("shards".into(), Json::Num(c.shards as f64)),
                            ("queries".into(), Json::Num(c.queries as f64)),
                            ("lost".into(), Json::Num(c.lost as f64)),
                            ("answered".into(), Json::Num(c.answered as f64)),
                            ("availability".into(), Json::Num(c.availability)),
                            ("rejected".into(), Json::Num(c.rejected as f64)),
                            ("baseline_rejected".into(), Json::Num(c.baseline_rejected as f64)),
                            ("admitted_exact".into(), Json::Num(c.exact as f64)),
                            ("admitted_approx".into(), Json::Num(c.approx as f64)),
                            ("admitted_predicted".into(), Json::Num(c.predicted as f64)),
                            ("degraded_by_fault".into(), Json::Num(c.degraded_by_fault as f64)),
                            ("p50_latency_s".into(), Json::Num(c.p50_s)),
                            ("p99_latency_s".into(), Json::Num(c.p99_s)),
                            ("degrade_rate".into(), Json::Num(c.degrade_rate)),
                            ("exact_bit_identical".into(), Json::Bool(c.exact_bit_identical)),
                            ("crashes_hit".into(), Json::Num(c.fault.crashes_hit as f64)),
                            ("slowdowns_hit".into(), Json::Num(c.fault.slowdowns_hit as f64)),
                            (
                                "compile_faults_hit".into(),
                                Json::Num(c.fault.compile_faults_hit as f64),
                            ),
                            ("cache_wipes".into(), Json::Num(c.fault.cache_wipes as f64)),
                            ("retries".into(), Json::Num(c.fault.retries as f64)),
                            ("failovers".into(), Json::Num(c.fault.failovers as f64)),
                            (
                                "degraded_under_failure".into(),
                                Json::Num(c.fault.degraded_under_failure as f64),
                            ),
                            (
                                "breaker_rejections".into(),
                                Json::Num(c.fault.breaker_rejections as f64),
                            ),
                            (
                                "waited_for_recovery".into(),
                                Json::Num(c.fault.waited_for_recovery as f64),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Text report of the chaos grid.
pub fn chaos(seed: u64) -> String {
    cells_to_text(&chaos_summary(seed))
}

/// JSON report of the chaos grid (for `reason-eval chaos --json`, the
/// `BENCH_chaos.json` generator). Byte-identical across runs with the
/// same seed.
pub fn chaos_json(seed: u64) -> Json {
    cells_to_json(&chaos_summary(seed), seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_summary() -> ChaosSummary {
        chaos_cells_for(&CHAOS_SCENARIOS, &[2], 60, CHAOS_QPS, 11)
    }

    #[test]
    fn cells_lose_nothing_and_stay_bit_identical() {
        for c in tiny_summary().cells {
            assert_eq!(c.lost, 0, "{c:?}");
            assert!(c.exact_bit_identical, "{c:?}");
            assert_eq!(c.answered + c.rejected + c.lost, c.queries as u64, "{c:?}");
        }
    }

    #[test]
    fn crash_scenario_actually_fails_over() {
        let summary = tiny_summary();
        let crash = summary.cells.iter().find(|c| c.scenario == "crash_one_shard").unwrap();
        assert!(crash.fault.crashes_hit > 0);
        assert!(crash.fault.failovers > 0);
        assert!(crash.availability >= 0.9, "{crash:?}");
    }

    #[test]
    fn chaos_json_is_byte_identical_across_runs() {
        let a = cells_to_json(&tiny_summary(), 11).render();
        let b = cells_to_json(&tiny_summary(), 11).render();
        assert_eq!(a, b);
    }

    #[test]
    fn text_report_renders_every_cell() {
        let summary = tiny_summary();
        let text = cells_to_text(&summary);
        for c in &summary.cells {
            assert!(text.contains(c.scenario), "missing {}", c.scenario);
        }
    }
}
