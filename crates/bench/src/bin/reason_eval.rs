//! `reason-eval` — regenerates every table and figure of the REASON
//! paper's evaluation.
//!
//! ```text
//! reason-eval <experiment> [tasks] [workers]
//!   experiments: fig2 fig3a fig3b fig3c fig3d table2 table3 table4
//!                fig8 fig11 fig12 fig13 table5 ablation dse pipeline all
//!   pipeline: runs [tasks] mixed SAT/PC tasks on the threaded
//!             BatchExecutor with [workers] symbolic workers
//! ```

use reason_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).map(String::as_str).unwrap_or("all");
    let tasks: usize = args.get(2).and_then(|t| t.parse().ok()).unwrap_or(4);
    let workers: usize = args.get(3).and_then(|t| t.parse().ok()).unwrap_or(4);

    let run = |name: &str| -> Option<String> {
        match name {
            "fig2" => Some(experiments::fig2()),
            "fig3a" => Some(experiments::fig3a()),
            "fig3b" => Some(experiments::fig3b()),
            "fig3c" => Some(experiments::fig3c()),
            "fig3d" => Some(experiments::fig3d()),
            "table2" => Some(experiments::table2()),
            "table3" => Some(experiments::table3()),
            "table4" => Some(experiments::table4(tasks)),
            "fig8" => Some(experiments::fig8()),
            "fig9" => Some(experiments::fig9()),
            "fig11" => Some(experiments::fig11(tasks)),
            "fig12" => Some(experiments::fig12(tasks)),
            "fig13" => Some(experiments::fig13()),
            "table5" => Some(experiments::table5(tasks)),
            "ablation" => Some(experiments::ablation()),
            "dse" => Some(experiments::dse()),
            "pipeline" => Some(experiments::pipeline(tasks, workers)),
            _ => None,
        }
    };

    if which == "all" {
        for name in [
            "fig2", "fig3a", "fig3b", "fig3c", "fig3d", "table2", "table3", "table4", "fig8",
            "fig9", "fig11", "fig12", "fig13", "table5", "ablation", "dse", "pipeline",
        ] {
            println!("{}", run(name).expect("known experiment"));
        }
    } else {
        match run(which) {
            Some(text) => println!("{text}"),
            None => {
                eprintln!(
                    "unknown experiment `{which}`; expected one of: fig2 fig3a fig3b fig3c \
                     fig3d table2 table3 table4 fig8 fig9 fig11 fig12 fig13 table5 ablation dse \
                     pipeline all"
                );
                std::process::exit(2);
            }
        }
    }
}
