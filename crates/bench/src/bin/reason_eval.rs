//! `reason-eval` — regenerates every table and figure of the REASON
//! paper's evaluation, plus the approximate-inference sweep.
//!
//! ```text
//! reason-eval <experiment> [tasks] [workers] [--json] [--seed N]
//!             [--trace-out FILE] [--profile-out FILE]
//!             [--baseline-dir DIR]
//!   experiments: fig2 fig3a fig3b fig3c fig3d table2 table3 table4
//!                fig8 fig9 fig11 fig12 fig13 table5 ablation dse
//!                pipeline approx compile serve batch traffic trace
//!                chaos slo profile audit all
//!   pipeline: runs [tasks] mixed SAT/PC/approx/exact-WMC/serve tasks
//!             on the threaded BatchExecutor with [workers] symbolic
//!             workers
//!   approx:   exact-vs-approximate WMC sweep (reason-approx)
//!   compile:  knowledge-compilation scaling sweep — top-down
//!             component-caching compiler vs the legacy Shannon
//!             baseline; [tasks] caps the baseline's variable count
//!             (default 28)
//!   serve:    knowledge-base serving sweep (reason-serve) — persistent
//!             circuit store, repeated-query speedups, router deadline
//!             fallbacks, incremental clause edits
//!   batch:    batched d-DNNF arena evaluation sweep — per-query vs
//!             one-traversal throughput, bit-identity guard, and the
//!             compiled-kernel lowering onto the simulated accelerator
//!             (predicted vs measured cycles)
//!   traffic:  sharded-cluster traffic harness — open-loop Poisson
//!             arrivals with Zipf tenant/query skew swept over offered
//!             QPS and shard count; p50/p99 modeled latency,
//!             deadline-miss/degrade/reject rates, bit-identity vs a
//!             single engine (byte-identical JSON per seed)
//!   trace:    deterministic observability replay — the traffic
//!             generator against a telemetry-instrumented cluster on a
//!             virtual clock; per-stage latency attribution
//!             (queue/compile/exec partitions the modeled latency
//!             bit-exactly per query), an allowlisted metric snapshot, per-tenant
//!             cost-model state, and a Perfetto/Chrome trace
//!             (--trace-out FILE writes it); --json is the committed
//!             BENCH_obs.json and is byte-identical per seed
//!   chaos:    fault-injection sweep over the sharded cluster — seeded
//!             crash / rolling-slowdown / cache-wipe fault plans
//!             replayed against the traffic workload; per-cell
//!             availability, p50/p99, degrade rate, retry/failover/
//!             breaker counters; guards zero lost queries and exact
//!             bit-identity vs the single-engine oracle (byte-identical
//!             JSON per seed)
//!   slo:      SLO burn-rate sweep — the default serving objectives
//!             (availability, deadline-miss, latency-quantile) evaluated
//!             live against a warmed cluster under the chaos fault
//!             plans; crash cells deterministically page the
//!             availability SLO while the no-fault baseline stays
//!             quiet; --json is the committed BENCH_slo.json and is
//!             byte-identical per seed
//!   profile:  continuous-profiling experiment — the span forest of a
//!             traffic replay folded into deterministic flame-graph
//!             profiles: top-k hotspots (self vs total time), a
//!             differential profile of the crash plan vs the no-fault
//!             baseline, and worst-query tail exemplars with full
//!             admit -> route -> compile -> eval span chains
//!   audit:    the perf-regression sentinel — re-runs the sweep behind
//!             every committed BENCH_*.json baseline and compares
//!             field-by-field under per-metric tolerance bands (zero
//!             for deterministic metrics, infinite for wall-clock
//!             timings); exits 1 on any mismatch, so it gates CI
//!   --seed N: seeds the seedable experiments (approx, pipeline,
//!             compile, serve, batch, traffic, trace, chaos, slo,
//!             profile)
//!   --trace-out FILE: with `trace`, writes the final cell's Chrome
//!             trace_event JSON to FILE (open in Perfetto)
//!   --profile-out FILE: with `profile`, writes the baseline cell's
//!             collapsed-stack profile to FILE (load in speedscope or
//!             feed to inferno-flamegraph)
//!   --baseline-dir DIR: with `audit`, the directory holding the
//!             committed BENCH_*.json files (default `.`)
//!   --json:   machine-readable output — native rows for approx,
//!             compile, serve, and batch, a {"experiment", "text"} wrapper for
//!             the table/figure experiments — so sweeps are scriptable
//! ```

use reason_bench::experiments;
use reason_bench::json::Json;

#[derive(Debug, Clone, Copy)]
struct EvalOpts {
    tasks: usize,
    workers: usize,
    seed: u64,
    json: bool,
    /// Baseline-compiler variable cap for the `compile` sweep: the
    /// first positional argument when given, else 28 (the top of the
    /// comparison ladder; the Shannon baseline takes seconds there).
    baseline_cap: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: reason-eval <experiment> [tasks] [workers] [--json] [--seed N] \
         [--trace-out FILE] [--profile-out FILE] [--baseline-dir DIR]\n\
         experiments: fig2 fig3a fig3b fig3c fig3d table2 table3 table4 fig8 fig9 \
         fig11 fig12 fig13 table5 ablation dse pipeline approx compile serve batch traffic \
         trace chaos slo profile audit all"
    );
    std::process::exit(2);
}

fn main() {
    let mut which: Option<String> = None;
    let mut positional: Vec<usize> = Vec::new();
    let mut trace_out: Option<String> = None;
    let mut profile_out: Option<String> = None;
    let mut baseline_dir = ".".to_string();
    let mut opts = EvalOpts { tasks: 4, workers: 4, seed: 42, json: false, baseline_cap: 28 };

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(seed) => opts.seed = seed,
                None => {
                    eprintln!("--seed requires an integer value");
                    usage();
                }
            },
            "--trace-out" => match args.next() {
                Some(path) => trace_out = Some(path),
                None => {
                    eprintln!("--trace-out requires a file path");
                    usage();
                }
            },
            "--profile-out" => match args.next() {
                Some(path) => profile_out = Some(path),
                None => {
                    eprintln!("--profile-out requires a file path");
                    usage();
                }
            },
            "--baseline-dir" => match args.next() {
                Some(dir) => baseline_dir = dir,
                None => {
                    eprintln!("--baseline-dir requires a directory path");
                    usage();
                }
            },
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag `{flag}`");
                usage();
            }
            _ if which.is_none() => which = Some(arg),
            _ => match arg.parse() {
                Ok(n) => positional.push(n),
                Err(_) => {
                    eprintln!("expected a number, got `{arg}`");
                    usage();
                }
            },
        }
    }
    let which = which.unwrap_or_else(|| "all".to_string());
    if let Some(&t) = positional.first() {
        opts.tasks = t;
        opts.baseline_cap = t;
    }
    if let Some(&w) = positional.get(1) {
        opts.workers = w;
    }

    let run = |name: &str| -> Option<String> {
        match name {
            "fig2" => Some(experiments::fig2()),
            "fig3a" => Some(experiments::fig3a()),
            "fig3b" => Some(experiments::fig3b()),
            "fig3c" => Some(experiments::fig3c()),
            "fig3d" => Some(experiments::fig3d()),
            "table2" => Some(experiments::table2()),
            "table3" => Some(experiments::table3()),
            "table4" => Some(experiments::table4(opts.tasks)),
            "fig8" => Some(experiments::fig8()),
            "fig9" => Some(experiments::fig9()),
            "fig11" => Some(experiments::fig11(opts.tasks)),
            "fig12" => Some(experiments::fig12(opts.tasks)),
            "fig13" => Some(experiments::fig13()),
            "table5" => Some(experiments::table5(opts.tasks)),
            "ablation" => Some(experiments::ablation()),
            "dse" => Some(experiments::dse()),
            "pipeline" => Some(experiments::pipeline(opts.tasks, opts.workers, opts.seed)),
            "approx" => Some(experiments::approx(opts.seed)),
            "compile" => Some(experiments::compile_report(opts.seed, opts.baseline_cap)),
            "serve" => Some(experiments::serve(opts.seed)),
            "batch" => Some(experiments::batch(opts.seed)),
            "traffic" => Some(experiments::traffic(opts.seed)),
            "trace" => Some(experiments::trace(opts.seed)),
            "chaos" => Some(experiments::chaos(opts.seed)),
            "slo" => Some(experiments::slo(opts.seed)),
            "profile" => Some(experiments::profile(opts.seed)),
            _ => None,
        }
    };

    // Experiments with native machine-readable output; everything else
    // is wrapped as {"experiment": ..., "text": ...} under --json.
    let run_json = |name: &str| -> Option<Json> {
        match name {
            "approx" => Some(experiments::approx_json(opts.seed)),
            "compile" => Some(experiments::compile_json(opts.seed, opts.baseline_cap)),
            "serve" => Some(experiments::serve_json(opts.seed)),
            "batch" => Some(experiments::batch_json(opts.seed)),
            "traffic" => Some(experiments::traffic_json(opts.seed)),
            "trace" => Some(experiments::trace_json(opts.seed)),
            "chaos" => Some(experiments::chaos_json(opts.seed)),
            "slo" => Some(experiments::slo_json(opts.seed)),
            "profile" => Some(experiments::profile_json(opts.seed)),
            _ => run(name).map(|text| {
                Json::Obj(vec![
                    ("experiment".into(), Json::Str(name.into())),
                    ("text".into(), Json::Str(text)),
                ])
            }),
        }
    };

    // `audit` is not part of `all`: it re-runs the other sweeps and
    // compares them against the committed files, so it is a gate over
    // the suite, not a member of it.
    let all = [
        "fig2", "fig3a", "fig3b", "fig3c", "fig3d", "table2", "table3", "table4", "fig8", "fig9",
        "fig11", "fig12", "fig13", "table5", "ablation", "dse", "pipeline", "approx", "compile",
        "serve", "batch", "traffic", "trace", "chaos", "slo", "profile",
    ];
    if let Some(path) = &trace_out {
        if which != "trace" {
            eprintln!("--trace-out only applies to the `trace` experiment");
            usage();
        }
        let artifact = experiments::trace_artifact(opts.seed);
        if let Err(err) = std::fs::write(path, artifact) {
            eprintln!("failed to write {path}: {err}");
            std::process::exit(1);
        }
    }
    if let Some(path) = &profile_out {
        if which != "profile" {
            eprintln!("--profile-out only applies to the `profile` experiment");
            usage();
        }
        let artifact = experiments::profile_artifact(opts.seed);
        if let Err(err) = std::fs::write(path, artifact) {
            eprintln!("failed to write {path}: {err}");
            std::process::exit(1);
        }
    }
    if which == "audit" {
        let (checks, pass) = experiments::audit_verdict(std::path::Path::new(&baseline_dir));
        if opts.json {
            println!("{}", experiments::audit_render_json(&checks).render());
        } else {
            println!("{}", experiments::audit_render_text(&checks));
        }
        std::process::exit(if pass { 0 } else { 1 });
    }
    if which == "all" {
        if opts.json {
            let reports: Vec<Json> =
                all.iter().map(|n| run_json(n).expect("known experiment")).collect();
            println!("{}", Json::Arr(reports).render());
        } else {
            for name in all {
                println!("{}", run(name).expect("known experiment"));
            }
        }
    } else if opts.json {
        match run_json(&which) {
            Some(v) => println!("{}", v.render()),
            None => {
                eprintln!("unknown experiment `{which}`");
                usage();
            }
        }
    } else {
        match run(&which) {
            Some(text) => println!("{text}"),
            None => {
                eprintln!("unknown experiment `{which}`");
                usage();
            }
        }
    }
}
