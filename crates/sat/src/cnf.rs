//! CNF formulas and DIMACS I/O.

use std::fmt;

use crate::types::{Clause, Lit, Var};

/// A propositional formula in conjunctive normal form.
///
/// ```
/// use reason_sat::Cnf;
/// let cnf = Cnf::from_clauses(3, vec![vec![1, -2], vec![2, 3]]);
/// assert_eq!(cnf.num_vars(), 3);
/// assert_eq!(cnf.num_clauses(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Cnf {
    num_vars: usize,
    clauses: Vec<Clause>,
}

impl Cnf {
    /// Creates an empty formula (trivially satisfiable) over `num_vars`
    /// variables.
    pub fn new(num_vars: usize) -> Self {
        Cnf { num_vars, clauses: Vec::new() }
    }

    /// Builds a formula from DIMACS-style signed-integer clauses.
    ///
    /// # Panics
    ///
    /// Panics if any literal is `0` or references a variable outside
    /// `1..=num_vars`.
    pub fn from_clauses(num_vars: usize, clauses: Vec<Vec<i32>>) -> Self {
        let mut cnf = Cnf::new(num_vars);
        for ints in clauses {
            cnf.add_clause(Clause::from_dimacs(&ints));
        }
        cnf
    }

    /// Adds a clause.
    ///
    /// # Panics
    ///
    /// Panics if the clause references a variable `>= num_vars`.
    pub fn add_clause(&mut self, clause: Clause) {
        for lit in clause.iter() {
            assert!(
                lit.var().index() < self.num_vars,
                "literal {lit} out of range for {} variables",
                self.num_vars
            );
        }
        self.clauses.push(clause);
    }

    /// Adds a clause given as DIMACS signed integers.
    pub fn add_dimacs_clause(&mut self, ints: &[i32]) {
        self.add_clause(Clause::from_dimacs(ints));
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Total number of literal occurrences across all clauses.
    pub fn num_literals(&self) -> usize {
        self.clauses.iter().map(Clause::len).sum()
    }

    /// The clauses of the formula.
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// Iterates over the clauses.
    pub fn iter(&self) -> std::slice::Iter<'_, Clause> {
        self.clauses.iter()
    }

    /// Grows the variable universe to at least `num_vars`.
    pub fn reserve_vars(&mut self, num_vars: usize) {
        self.num_vars = self.num_vars.max(num_vars);
    }

    /// Allocates and returns a fresh variable.
    pub fn fresh_var(&mut self) -> Var {
        let v = Var::new(self.num_vars);
        self.num_vars += 1;
        v
    }

    /// Evaluates the whole formula under a complete model.
    ///
    /// # Panics
    ///
    /// Panics if `model.len() < num_vars`.
    pub fn eval(&self, model: &[bool]) -> bool {
        assert!(model.len() >= self.num_vars, "model too short");
        self.clauses.iter().all(|c| c.eval(model))
    }

    /// `true` when any clause is empty, which makes the formula
    /// unsatisfiable outright.
    pub fn has_empty_clause(&self) -> bool {
        self.clauses.iter().any(Clause::is_empty)
    }

    /// Removes tautological clauses and duplicate literals within clauses,
    /// returning the number of clauses removed. Satisfiability-preserving.
    pub fn normalize(&mut self) -> usize {
        let before = self.clauses.len();
        self.clauses.retain(|c| !c.is_tautology());
        for c in &mut self.clauses {
            c.dedup();
        }
        before - self.clauses.len()
    }

    /// An estimate of the memory footprint in bytes: one 32-bit word per
    /// literal occurrence plus one header word per clause. This is the
    /// metric used for the "memory reduction" column of paper Table IV.
    pub fn footprint_bytes(&self) -> usize {
        4 * (self.num_literals() + self.num_clauses())
    }

    /// Parses DIMACS CNF text.
    ///
    /// # Errors
    ///
    /// Returns [`DimacsError`] on malformed headers, out-of-range literals,
    /// or garbage tokens.
    ///
    /// ```
    /// use reason_sat::Cnf;
    /// let cnf = Cnf::parse_dimacs("c comment\np cnf 2 2\n1 -2 0\n2 0\n").unwrap();
    /// assert_eq!(cnf.num_vars(), 2);
    /// assert_eq!(cnf.num_clauses(), 2);
    /// ```
    pub fn parse_dimacs(text: &str) -> Result<Self, DimacsError> {
        let mut num_vars: Option<usize> = None;
        let mut declared_clauses = 0usize;
        let mut clauses: Vec<Clause> = Vec::new();
        let mut current: Vec<Lit> = Vec::new();

        for (line_no, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('c') || line.starts_with('%') {
                continue;
            }
            if let Some(rest) = line.strip_prefix('p') {
                let parts: Vec<&str> = rest.split_whitespace().collect();
                if parts.len() != 3 || parts[0] != "cnf" {
                    return Err(DimacsError::BadHeader { line: line_no + 1 });
                }
                num_vars = Some(
                    parts[1].parse().map_err(|_| DimacsError::BadHeader { line: line_no + 1 })?,
                );
                declared_clauses =
                    parts[2].parse().map_err(|_| DimacsError::BadHeader { line: line_no + 1 })?;
                continue;
            }
            let nv = num_vars.ok_or(DimacsError::MissingHeader)?;
            for tok in line.split_whitespace() {
                let val: i32 = tok.parse().map_err(|_| DimacsError::BadToken {
                    line: line_no + 1,
                    token: tok.to_string(),
                })?;
                if val == 0 {
                    clauses.push(Clause::new(std::mem::take(&mut current)));
                } else {
                    if val.unsigned_abs() as usize > nv {
                        return Err(DimacsError::LiteralOutOfRange {
                            line: line_no + 1,
                            literal: val,
                        });
                    }
                    current.push(Lit::from_dimacs(val));
                }
            }
        }
        if !current.is_empty() {
            clauses.push(Clause::new(current));
        }
        let num_vars = num_vars.ok_or(DimacsError::MissingHeader)?;
        if declared_clauses != 0 && clauses.len() != declared_clauses {
            // Tolerated: many generators emit inaccurate counts. Header is advisory.
        }
        Ok(Cnf { num_vars, clauses })
    }

    /// Renders the formula as DIMACS CNF text.
    pub fn to_dimacs(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("p cnf {} {}\n", self.num_vars, self.clauses.len()));
        for c in &self.clauses {
            for l in c.iter() {
                out.push_str(&l.to_dimacs().to_string());
                out.push(' ');
            }
            out.push_str("0\n");
        }
        out
    }
}

impl fmt::Display for Cnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, " & ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Cnf {
    type Item = &'a Clause;
    type IntoIter = std::slice::Iter<'a, Clause>;

    fn into_iter(self) -> Self::IntoIter {
        self.clauses.iter()
    }
}

/// Errors produced while parsing DIMACS text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DimacsError {
    /// No `p cnf <vars> <clauses>` line before the first clause.
    MissingHeader,
    /// A malformed problem line.
    BadHeader {
        /// 1-based source line.
        line: usize,
    },
    /// A token that is not a signed integer.
    BadToken {
        /// 1-based source line.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// A literal referencing a variable above the declared count.
    LiteralOutOfRange {
        /// 1-based source line.
        line: usize,
        /// The offending literal.
        literal: i32,
    },
}

impl fmt::Display for DimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DimacsError::MissingHeader => write!(f, "missing `p cnf` header"),
            DimacsError::BadHeader { line } => write!(f, "malformed problem line at line {line}"),
            DimacsError::BadToken { line, token } => {
                write!(f, "unexpected token `{token}` at line {line}")
            }
            DimacsError::LiteralOutOfRange { line, literal } => {
                write!(f, "literal {literal} out of declared range at line {line}")
            }
        }
    }
}

impl std::error::Error for DimacsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_eval() {
        let cnf = Cnf::from_clauses(2, vec![vec![1, 2], vec![-1, 2]]);
        assert!(cnf.eval(&[true, true]));
        assert!(cnf.eval(&[false, true]));
        assert!(!cnf.eval(&[true, false]));
    }

    #[test]
    fn dimacs_roundtrip() {
        let cnf = Cnf::from_clauses(3, vec![vec![1, -2], vec![2, 3], vec![-3]]);
        let text = cnf.to_dimacs();
        let back = Cnf::parse_dimacs(&text).unwrap();
        assert_eq!(cnf, back);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(matches!(Cnf::parse_dimacs("1 2 0"), Err(DimacsError::MissingHeader)));
        assert!(matches!(Cnf::parse_dimacs("p cnf x 2"), Err(DimacsError::BadHeader { .. })));
        assert!(matches!(
            Cnf::parse_dimacs("p cnf 2 1\n1 zebra 0"),
            Err(DimacsError::BadToken { .. })
        ));
        assert!(matches!(
            Cnf::parse_dimacs("p cnf 2 1\n1 5 0"),
            Err(DimacsError::LiteralOutOfRange { .. })
        ));
    }

    #[test]
    fn parse_skips_comments_and_blank_lines() {
        let cnf = Cnf::parse_dimacs("c hi\n\np cnf 1 1\nc mid\n1 0\n").unwrap();
        assert_eq!(cnf.num_clauses(), 1);
    }

    #[test]
    fn normalize_removes_tautologies() {
        let mut cnf = Cnf::from_clauses(2, vec![vec![1, -1], vec![1, 1, 2]]);
        let removed = cnf.normalize();
        assert_eq!(removed, 1);
        assert_eq!(cnf.num_clauses(), 1);
        assert_eq!(cnf.clauses()[0].len(), 2);
    }

    #[test]
    fn fresh_var_extends_universe() {
        let mut cnf = Cnf::new(2);
        let v = cnf.fresh_var();
        assert_eq!(v.index(), 2);
        assert_eq!(cnf.num_vars(), 3);
    }

    #[test]
    fn footprint_counts_words() {
        let cnf = Cnf::from_clauses(2, vec![vec![1, 2], vec![-1]]);
        assert_eq!(cnf.footprint_bytes(), 4 * (3 + 2));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_clause_checks_range() {
        let mut cnf = Cnf::new(1);
        cnf.add_dimacs_clause(&[2]);
    }
}
