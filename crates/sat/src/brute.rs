//! Brute-force satisfiability checking and model counting.
//!
//! These are reference oracles for the test suite: every solver and every
//! satisfiability-preserving transformation in this workspace is validated
//! against exhaustive enumeration on small instances.

use crate::cnf::Cnf;
use crate::Solution;

/// Maximum variable count accepted by the exhaustive routines.
pub const MAX_BRUTE_VARS: usize = 26;

/// Exhaustively searches for a model.
///
/// # Panics
///
/// Panics if the formula has more than [`MAX_BRUTE_VARS`] variables.
///
/// ```
/// use reason_sat::{brute_force, Cnf};
/// let cnf = Cnf::from_clauses(2, vec![vec![1], vec![-1, -2]]);
/// assert!(brute_force(&cnf).is_sat());
/// ```
pub fn brute_force(cnf: &Cnf) -> Solution {
    let n = cnf.num_vars();
    assert!(n <= MAX_BRUTE_VARS, "brute force limited to {MAX_BRUTE_VARS} variables");
    let mut model = vec![false; n];
    for bits in 0u64..(1u64 << n) {
        for (v, slot) in model.iter_mut().enumerate() {
            *slot = bits >> v & 1 == 1;
        }
        if cnf.eval(&model) {
            return Solution::Sat(model);
        }
    }
    Solution::Unsat
}

/// Counts the models of the formula exactly.
///
/// Used to cross-check weighted model counting through probabilistic
/// circuits (`reason-pc` compiles CNF to circuits whose partition function
/// with uniform weights must equal `count_models / 2^n`).
///
/// # Panics
///
/// Panics if the formula has more than [`MAX_BRUTE_VARS`] variables.
pub fn count_models(cnf: &Cnf) -> u64 {
    let n = cnf.num_vars();
    assert!(n <= MAX_BRUTE_VARS, "model counting limited to {MAX_BRUTE_VARS} variables");
    let mut count = 0;
    let mut model = vec![false; n];
    for bits in 0u64..(1u64 << n) {
        for (v, slot) in model.iter_mut().enumerate() {
            *slot = bits >> v & 1 == 1;
        }
        if cnf.eval(&model) {
            count += 1;
        }
    }
    count
}

/// Computes the weighted model count exactly by enumeration: the total
/// probability mass of satisfying assignments under independent
/// per-variable Bernoulli marginals `probs[v] = p(X_v = 1)`.
///
/// This is the reference oracle the approximate inference engine
/// (`reason-approx`) and the circuit compiler (`reason-pc`) are both
/// validated against.
///
/// # Panics
///
/// Panics if `probs.len() != cnf.num_vars()`, if any probability lies
/// outside `[0, 1]`, or if the formula has more than [`MAX_BRUTE_VARS`]
/// variables.
///
/// ```
/// use reason_sat::{weighted_count, Cnf};
/// // x0 | x1: Z = 1 - (1-0.3)(1-0.5) = 0.65.
/// let cnf = Cnf::from_clauses(2, vec![vec![1, 2]]);
/// assert!((weighted_count(&cnf, &[0.3, 0.5]) - 0.65).abs() < 1e-12);
/// ```
pub fn weighted_count(cnf: &Cnf, probs: &[f64]) -> f64 {
    let n = cnf.num_vars();
    assert!(n <= MAX_BRUTE_VARS, "weighted counting limited to {MAX_BRUTE_VARS} variables");
    assert_eq!(probs.len(), n, "weights arity mismatch");
    assert!(probs.iter().all(|p| (0.0..=1.0).contains(p)), "probabilities must be in [0,1]");
    let mut total = 0.0;
    let mut model = vec![false; n];
    for bits in 0u64..(1u64 << n) {
        for (v, slot) in model.iter_mut().enumerate() {
            *slot = bits >> v & 1 == 1;
        }
        if cnf.eval(&model) {
            let mut w = 1.0;
            for (v, &b) in model.iter().enumerate() {
                w *= if b { probs[v] } else { 1.0 - probs[v] };
            }
            total += w;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_formula_has_all_models() {
        let cnf = Cnf::new(3);
        assert_eq!(count_models(&cnf), 8);
        assert!(brute_force(&cnf).is_sat());
    }

    #[test]
    fn unsat_formula_has_no_models() {
        let cnf = Cnf::from_clauses(1, vec![vec![1], vec![-1]]);
        assert_eq!(count_models(&cnf), 0);
        assert!(!brute_force(&cnf).is_sat());
    }

    #[test]
    fn xor_has_half_the_models() {
        // x0 XOR x1 = (x0|x1) & (!x0|!x1)
        let cnf = Cnf::from_clauses(2, vec![vec![1, 2], vec![-1, -2]]);
        assert_eq!(count_models(&cnf), 2);
    }

    #[test]
    fn uniform_weighted_count_is_model_fraction() {
        let cnf = Cnf::from_clauses(3, vec![vec![1, 2], vec![-2, 3]]);
        let z = weighted_count(&cnf, &[0.5; 3]);
        assert!((z - count_models(&cnf) as f64 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_count_respects_marginals() {
        // Single unit clause x0: Z = p(x0 = 1).
        let cnf = Cnf::from_clauses(2, vec![vec![1]]);
        assert!((weighted_count(&cnf, &[0.9, 0.4]) - 0.9).abs() < 1e-12);
        // Unsatisfiable: zero mass regardless of weights.
        let unsat = Cnf::from_clauses(1, vec![vec![1], vec![-1]]);
        assert_eq!(weighted_count(&unsat, &[0.7]), 0.0);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn weighted_count_checks_arity() {
        let cnf = Cnf::new(2);
        let _ = weighted_count(&cnf, &[0.5]);
    }

    #[test]
    fn returned_model_satisfies() {
        let cnf = Cnf::from_clauses(3, vec![vec![1, 2], vec![-2, 3], vec![-1]]);
        match brute_force(&cnf) {
            Solution::Sat(m) => assert!(cnf.eval(&m)),
            Solution::Unsat => panic!("satisfiable"),
        }
    }
}
