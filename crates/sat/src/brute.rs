//! Brute-force satisfiability checking and model counting.
//!
//! These are reference oracles for the test suite: every solver and every
//! satisfiability-preserving transformation in this workspace is validated
//! against exhaustive enumeration on small instances.

use crate::cnf::Cnf;
use crate::Solution;

/// Maximum variable count accepted by the exhaustive routines.
pub const MAX_BRUTE_VARS: usize = 26;

/// Exhaustively searches for a model.
///
/// # Panics
///
/// Panics if the formula has more than [`MAX_BRUTE_VARS`] variables.
///
/// ```
/// use reason_sat::{brute_force, Cnf};
/// let cnf = Cnf::from_clauses(2, vec![vec![1], vec![-1, -2]]);
/// assert!(brute_force(&cnf).is_sat());
/// ```
pub fn brute_force(cnf: &Cnf) -> Solution {
    let n = cnf.num_vars();
    assert!(n <= MAX_BRUTE_VARS, "brute force limited to {MAX_BRUTE_VARS} variables");
    let mut model = vec![false; n];
    for bits in 0u64..(1u64 << n) {
        for (v, slot) in model.iter_mut().enumerate() {
            *slot = bits >> v & 1 == 1;
        }
        if cnf.eval(&model) {
            return Solution::Sat(model);
        }
    }
    Solution::Unsat
}

/// Counts the models of the formula exactly.
///
/// Used to cross-check weighted model counting through probabilistic
/// circuits (`reason-pc` compiles CNF to circuits whose partition function
/// with uniform weights must equal `count_models / 2^n`).
///
/// # Panics
///
/// Panics if the formula has more than [`MAX_BRUTE_VARS`] variables.
pub fn count_models(cnf: &Cnf) -> u64 {
    let n = cnf.num_vars();
    assert!(n <= MAX_BRUTE_VARS, "model counting limited to {MAX_BRUTE_VARS} variables");
    let mut count = 0;
    let mut model = vec![false; n];
    for bits in 0u64..(1u64 << n) {
        for (v, slot) in model.iter_mut().enumerate() {
            *slot = bits >> v & 1 == 1;
        }
        if cnf.eval(&model) {
            count += 1;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_formula_has_all_models() {
        let cnf = Cnf::new(3);
        assert_eq!(count_models(&cnf), 8);
        assert!(brute_force(&cnf).is_sat());
    }

    #[test]
    fn unsat_formula_has_no_models() {
        let cnf = Cnf::from_clauses(1, vec![vec![1], vec![-1]]);
        assert_eq!(count_models(&cnf), 0);
        assert!(!brute_force(&cnf).is_sat());
    }

    #[test]
    fn xor_has_half_the_models() {
        // x0 XOR x1 = (x0|x1) & (!x0|!x1)
        let cnf = Cnf::from_clauses(2, vec![vec![1, 2], vec![-1, -2]]);
        assert_eq!(count_models(&cnf), 2);
    }

    #[test]
    fn returned_model_satisfies() {
        let cnf = Cnf::from_clauses(3, vec![vec![1, 2], vec![-2, 3], vec![-1]]);
        match brute_force(&cnf) {
            Solution::Sat(m) => assert!(cnf.eval(&m)),
            Solution::Unsat => panic!("satisfiable"),
        }
    }
}
