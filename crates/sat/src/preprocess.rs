//! Satisfiability-preserving CNF preprocessing.
//!
//! This module implements the symbolic side of REASON's *adaptive DAG
//! pruning* (paper Sec. IV-B): the binary implication graph (BIG) is built
//! from the formula's binary clauses, reachability over the BIG exposes
//! *hidden literals* that can be dropped from clauses without changing
//! satisfiability, *failed literals* whose negations are forced, and
//! strongly connected components of equivalent literals that can be
//! substituted away. Unit propagation and pure-literal elimination round
//! out the pipeline.
//!
//! Every transformation records a reconstruction step so that a model of
//! the reduced formula can be extended back to a model of the original
//! formula ([`PreprocessResult::reconstruct_model`]).

use std::collections::{HashMap, HashSet};

use crate::cnf::Cnf;
use crate::types::{Clause, Lit, Var};

/// The binary implication graph of a CNF formula.
///
/// Every binary clause `(a | b)` induces the implications `!a -> b` and
/// `!b -> a`. Reachability over this graph is the pruning relation used by
/// hidden-literal elimination: if `a` reaches `b`, then whenever `a` holds,
/// `b` holds.
///
/// ```
/// use reason_sat::{BinaryImplicationGraph, Cnf, Var};
/// let cnf = Cnf::from_clauses(3, vec![vec![-1, 2], vec![-2, 3]]);
/// let mut big = BinaryImplicationGraph::new(&cnf);
/// // x0 -> x1 -> x2
/// assert!(big.implies(Var::new(0).pos(), Var::new(2).pos()));
/// assert!(!big.implies(Var::new(2).pos(), Var::new(0).pos()));
/// ```
#[derive(Debug, Clone)]
pub struct BinaryImplicationGraph {
    /// Successors per literal code.
    succ: Vec<Vec<Lit>>,
    /// Cap on nodes explored per reachability query (soundness is kept:
    /// truncated searches only *miss* pruning opportunities).
    reach_limit: usize,
    cache: HashMap<usize, HashSet<usize>>,
}

impl BinaryImplicationGraph {
    /// Builds the BIG from all binary clauses of `cnf`.
    pub fn new(cnf: &Cnf) -> Self {
        let mut succ = vec![Vec::new(); 2 * cnf.num_vars()];
        for clause in cnf.clauses() {
            if clause.len() == 2 {
                let (a, b) = (clause.lits()[0], clause.lits()[1]);
                succ[(!a).code()].push(b);
                succ[(!b).code()].push(a);
            }
        }
        BinaryImplicationGraph { succ, reach_limit: 100_000, cache: HashMap::new() }
    }

    /// Number of implication edges.
    pub fn num_edges(&self) -> usize {
        self.succ.iter().map(Vec::len).sum()
    }

    /// Direct successors of a literal.
    pub fn successors(&self, lit: Lit) -> &[Lit] {
        &self.succ[lit.code()]
    }

    /// The set of literal codes reachable from `lit` (excluding `lit`
    /// itself unless it lies on a cycle). Memoized.
    pub fn reachable(&mut self, lit: Lit) -> &HashSet<usize> {
        if !self.cache.contains_key(&lit.code()) {
            let mut seen: HashSet<usize> = HashSet::new();
            let mut stack: Vec<Lit> = self.succ[lit.code()].clone();
            while let Some(l) = stack.pop() {
                if seen.len() >= self.reach_limit {
                    break;
                }
                if seen.insert(l.code()) {
                    stack.extend_from_slice(&self.succ[l.code()]);
                }
            }
            self.cache.insert(lit.code(), seen);
        }
        &self.cache[&lit.code()]
    }

    /// `true` when assigning `from` true forces `to` true through chains of
    /// binary clauses.
    pub fn implies(&mut self, from: Lit, to: Lit) -> bool {
        self.reachable(from).contains(&to.code())
    }

    /// Literals `l` with `l -> !l`: these *failed literals* force `!l`.
    pub fn failed_literals(&mut self) -> Vec<Lit> {
        let n = self.succ.len();
        let mut failed = Vec::new();
        for code in 0..n {
            let lit = Lit::from_code(code);
            if !self.succ[code].is_empty() && self.implies(lit, !lit) {
                failed.push(lit);
            }
        }
        failed
    }

    /// Tarjan SCC over the literal graph. Returns, per literal code, its
    /// component id. Literals in one component are pairwise equivalent.
    pub fn sccs(&self) -> Vec<u32> {
        let n = self.succ.len();
        let mut index = vec![u32::MAX; n];
        let mut low = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut comp = vec![u32::MAX; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0u32;
        let mut next_comp = 0u32;

        // Iterative Tarjan with an explicit work stack.
        enum Frame {
            Enter(usize),
            Exit(usize, usize), // (node, successor position resumed after)
        }
        for root in 0..n {
            if index[root] != u32::MAX {
                continue;
            }
            let mut work = vec![Frame::Enter(root)];
            while let Some(frame) = work.pop() {
                match frame {
                    Frame::Enter(v) => {
                        if index[v] != u32::MAX {
                            continue;
                        }
                        index[v] = next_index;
                        low[v] = next_index;
                        next_index += 1;
                        stack.push(v);
                        on_stack[v] = true;
                        work.push(Frame::Exit(v, 0));
                    }
                    Frame::Exit(v, mut pos) => {
                        // Fold in the child just finished, if any.
                        if pos > 0 {
                            let w = self.succ[v][pos - 1].code();
                            low[v] = low[v].min(low[w]);
                        }
                        let mut descended = false;
                        while pos < self.succ[v].len() {
                            let w = self.succ[v][pos].code();
                            pos += 1;
                            if index[w] == u32::MAX {
                                work.push(Frame::Exit(v, pos));
                                work.push(Frame::Enter(w));
                                descended = true;
                                break;
                            } else if on_stack[w] {
                                low[v] = low[v].min(index[w]);
                            }
                        }
                        if descended {
                            continue;
                        }
                        if low[v] == index[v] {
                            loop {
                                let w = stack.pop().expect("tarjan stack underflow");
                                on_stack[w] = false;
                                comp[w] = next_comp;
                                if w == v {
                                    break;
                                }
                            }
                            next_comp += 1;
                        }
                    }
                }
            }
        }
        comp
    }
}

/// One reversible preprocessing action, recorded for model reconstruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Step {
    /// Variable fixed to a constant (unit propagation, failed or pure literal).
    Fixed(Var, bool),
    /// Variable substituted by an equivalent literal.
    Subst(Var, Lit),
}

/// Statistics produced by a preprocessing run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruneStats {
    /// Variables fixed by unit propagation.
    pub units_fixed: usize,
    /// Failed literals detected through the BIG.
    pub failed_literals: usize,
    /// Variables substituted by equivalent literals (BIG SCCs).
    pub equivalences: usize,
    /// Variables fixed by pure-literal elimination.
    pub pure_literals: usize,
    /// Literal occurrences dropped by hidden-literal elimination.
    pub hidden_literals: usize,
    /// Clauses removed end to end.
    pub clauses_removed: usize,
    /// Formula footprint in bytes before preprocessing.
    pub bytes_before: usize,
    /// Formula footprint in bytes after preprocessing.
    pub bytes_after: usize,
}

impl PruneStats {
    /// Fraction of the memory footprint removed, in `[0, 1]`.
    pub fn memory_reduction(&self) -> f64 {
        if self.bytes_before == 0 {
            0.0
        } else {
            1.0 - self.bytes_after as f64 / self.bytes_before as f64
        }
    }
}

/// Configuration of the preprocessing pipeline.
#[derive(Debug, Clone)]
pub struct PreprocessConfig {
    /// Enable pure-literal elimination (satisfiability-preserving but not
    /// model-count-preserving; disable when counting models).
    pub pure_literals: bool,
    /// Enable equivalent-literal substitution via BIG SCCs.
    pub equivalences: bool,
    /// Enable hidden-literal elimination.
    pub hidden_literals: bool,
    /// Enable failed-literal detection over the BIG.
    pub failed_literals: bool,
    /// Pipeline rounds (the reductions enable one another).
    pub rounds: usize,
}

impl Default for PreprocessConfig {
    fn default() -> Self {
        PreprocessConfig {
            pure_literals: true,
            equivalences: true,
            hidden_literals: true,
            failed_literals: true,
            rounds: 2,
        }
    }
}

/// Result of preprocessing: the reduced formula plus everything needed to
/// lift models back to the original variable universe.
#[derive(Debug, Clone)]
pub struct PreprocessResult {
    /// The reduced formula (same variable universe as the input).
    pub cnf: Cnf,
    /// `Some(false)` when preprocessing proved the formula unsatisfiable;
    /// `Some(true)` when it proved it satisfiable (all clauses eliminated);
    /// `None` when a solver still has work to do.
    pub decided: Option<bool>,
    /// Reduction statistics.
    pub stats: PruneStats,
    steps: Vec<Step>,
}

impl PreprocessResult {
    /// Extends a model of the reduced formula to a model of the original
    /// formula by replaying the recorded eliminations in reverse.
    ///
    /// # Panics
    ///
    /// Panics if `reduced_model` is shorter than the variable universe.
    pub fn reconstruct_model(&self, reduced_model: &[bool]) -> Vec<bool> {
        let mut model = reduced_model.to_vec();
        for step in self.steps.iter().rev() {
            match *step {
                Step::Fixed(v, b) => model[v.index()] = b,
                Step::Subst(v, lit) => model[v.index()] = lit.eval(model[lit.var().index()]),
            }
        }
        model
    }
}

/// The preprocessing pipeline driver.
///
/// ```
/// use reason_sat::{Cnf, Preprocessor};
/// let cnf = Cnf::from_clauses(3, vec![vec![1], vec![-1, 2], vec![-2, 3, 1]]);
/// let result = Preprocessor::new().run(&cnf);
/// assert_eq!(result.decided, Some(true)); // fully solved by propagation
/// ```
#[derive(Debug, Default)]
pub struct Preprocessor {
    config: PreprocessConfig,
}

impl Preprocessor {
    /// Creates a preprocessor with the default configuration.
    pub fn new() -> Self {
        Preprocessor { config: PreprocessConfig::default() }
    }

    /// Creates a preprocessor with an explicit configuration.
    pub fn with_config(config: PreprocessConfig) -> Self {
        Preprocessor { config }
    }

    /// Runs the pipeline on `cnf`.
    pub fn run(&self, cnf: &Cnf) -> PreprocessResult {
        let mut work = cnf.clone();
        let mut stats =
            PruneStats { bytes_before: work.footprint_bytes(), ..PruneStats::default() };
        let clauses_before = work.num_clauses();
        let mut steps: Vec<Step> = Vec::new();
        work.normalize();

        let mut decided: Option<bool> = None;
        'rounds: for _ in 0..self.config.rounds {
            // 1. Unit propagation to fixpoint.
            match propagate_units(&mut work, &mut steps, &mut stats) {
                UnitOutcome::Conflict => {
                    decided = Some(false);
                    break 'rounds;
                }
                UnitOutcome::Done => {}
            }
            if work.num_clauses() == 0 {
                decided = Some(true);
                break 'rounds;
            }

            // 2. Failed literals over the BIG.
            if self.config.failed_literals {
                let mut big = BinaryImplicationGraph::new(&work);
                let failed = big.failed_literals();
                if !failed.is_empty() {
                    stats.failed_literals += failed.len();
                    for l in failed {
                        // `l -> !l` forces `!l`.
                        work.add_clause(Clause::new(vec![!l]));
                    }
                    match propagate_units(&mut work, &mut steps, &mut stats) {
                        UnitOutcome::Conflict => {
                            decided = Some(false);
                            break 'rounds;
                        }
                        UnitOutcome::Done => {}
                    }
                }
            }

            // 3. Equivalent-literal substitution via SCCs.
            if self.config.equivalences {
                let big = BinaryImplicationGraph::new(&work);
                let comp = big.sccs();
                // Detect l ~ !l: unsatisfiable.
                let mut rep_of_comp: HashMap<u32, Lit> = HashMap::new();
                for code in 0..comp.len() {
                    let lit = Lit::from_code(code);
                    if comp[code] == comp[(!lit).code()] && comp[code] != u32::MAX {
                        // A literal equivalent to its own negation.
                        decided = Some(false);
                        break 'rounds;
                    }
                    let entry = rep_of_comp.entry(comp[code]).or_insert(lit);
                    if lit.code() < entry.code() {
                        *entry = lit;
                    }
                }
                let mut subst: Vec<Option<Lit>> = vec![None; work.num_vars()];
                for code in 0..comp.len() {
                    let lit = Lit::from_code(code);
                    let rep = rep_of_comp[&comp[code]];
                    if rep != lit && rep.var() != lit.var() {
                        // Record once per variable using the positive polarity.
                        if !lit.is_neg() && subst[lit.var().index()].is_none() {
                            subst[lit.var().index()] = Some(rep);
                        }
                    }
                }
                let mut any = false;
                for (v, rep) in subst.iter().enumerate() {
                    if let Some(rep) = rep {
                        steps.push(Step::Subst(Var::new(v), *rep));
                        stats.equivalences += 1;
                        any = true;
                    }
                }
                if any {
                    apply_substitution(&mut work, &subst);
                    work.normalize();
                    match propagate_units(&mut work, &mut steps, &mut stats) {
                        UnitOutcome::Conflict => {
                            decided = Some(false);
                            break 'rounds;
                        }
                        UnitOutcome::Done => {}
                    }
                }
            }

            // 4. Hidden-literal elimination.
            if self.config.hidden_literals {
                let mut big = BinaryImplicationGraph::new(&work);
                let mut new_clauses: Vec<Clause> = Vec::with_capacity(work.num_clauses());
                let mut dropped = 0usize;
                for clause in work.clauses() {
                    if clause.len() < 2 {
                        new_clauses.push(clause.clone());
                        continue;
                    }
                    let mut kept: Vec<Lit> = clause.lits().to_vec();
                    let mut i = 0;
                    while i < kept.len() {
                        let a = kept[i];
                        // Skip failed-literal cases (handled above).
                        if big.implies(a, !a) {
                            i += 1;
                            continue;
                        }
                        let drop =
                            kept.iter().enumerate().any(|(j, &b)| j != i && big.implies(a, b));
                        if drop {
                            kept.remove(i);
                            dropped += 1;
                        } else {
                            i += 1;
                        }
                    }
                    new_clauses.push(Clause::new(kept));
                }
                if dropped > 0 {
                    stats.hidden_literals += dropped;
                    let num_vars = work.num_vars();
                    work = Cnf::new(num_vars);
                    for c in new_clauses {
                        work.add_clause(c);
                    }
                    match propagate_units(&mut work, &mut steps, &mut stats) {
                        UnitOutcome::Conflict => {
                            decided = Some(false);
                            break 'rounds;
                        }
                        UnitOutcome::Done => {}
                    }
                }
            }

            // 5. Pure-literal elimination.
            if self.config.pure_literals {
                let fixed = eliminate_pure_literals(&mut work, &mut steps, &mut stats);
                if fixed && work.num_clauses() == 0 {
                    decided = Some(true);
                    break 'rounds;
                }
            }

            if work.num_clauses() == 0 {
                decided = Some(true);
                break 'rounds;
            }
        }

        if work.has_empty_clause() {
            decided = Some(false);
        }
        if decided == Some(false) {
            // A proven-unsatisfiable formula reduces to the empty clause.
            let num_vars = work.num_vars();
            work = Cnf::new(num_vars);
            work.add_clause(Clause::new(Vec::new()));
        }
        stats.bytes_after = work.footprint_bytes();
        stats.clauses_removed = clauses_before.saturating_sub(work.num_clauses());
        PreprocessResult { cnf: work, decided, stats, steps }
    }
}

enum UnitOutcome {
    Done,
    Conflict,
}

/// Propagates all unit clauses to fixpoint, simplifying in place.
fn propagate_units(cnf: &mut Cnf, steps: &mut Vec<Step>, stats: &mut PruneStats) -> UnitOutcome {
    let num_vars = cnf.num_vars();
    let mut value: Vec<Option<bool>> = vec![None; num_vars];
    // Seed with current units.
    let mut queue: Vec<Lit> = Vec::new();
    for c in cnf.clauses() {
        if c.is_unit() {
            queue.push(c.lits()[0]);
        }
        if c.is_empty() {
            return UnitOutcome::Conflict;
        }
    }
    let mut clauses: Vec<Clause> = cnf.clauses().to_vec();
    loop {
        let mut progressed = false;
        while let Some(l) = queue.pop() {
            match value[l.var().index()] {
                Some(b) if b == l.is_neg() => return UnitOutcome::Conflict,
                Some(_) => {}
                None => {
                    value[l.var().index()] = Some(!l.is_neg());
                    steps.push(Step::Fixed(l.var(), !l.is_neg()));
                    stats.units_fixed += 1;
                    progressed = true;
                }
            }
        }
        if !progressed {
            break;
        }
        // Simplify clauses under the accumulated assignment.
        let mut next: Vec<Clause> = Vec::with_capacity(clauses.len());
        for c in &clauses {
            let mut lits: Vec<Lit> = Vec::with_capacity(c.len());
            let mut satisfied = false;
            for &l in c.iter() {
                match value[l.var().index()] {
                    Some(b) => {
                        if l.eval(b) {
                            satisfied = true;
                            break;
                        }
                    }
                    None => lits.push(l),
                }
            }
            if satisfied {
                continue;
            }
            if lits.is_empty() {
                return UnitOutcome::Conflict;
            }
            if lits.len() == 1 {
                queue.push(lits[0]);
            }
            next.push(Clause::new(lits));
        }
        clauses = next;
    }
    let mut out = Cnf::new(num_vars);
    for c in clauses {
        out.add_clause(c);
    }
    *cnf = out;
    UnitOutcome::Done
}

fn apply_substitution(cnf: &mut Cnf, subst: &[Option<Lit>]) {
    let num_vars = cnf.num_vars();
    let mut out = Cnf::new(num_vars);
    for c in cnf.clauses() {
        let lits: Vec<Lit> = c
            .iter()
            .map(|&l| match subst[l.var().index()] {
                Some(rep) => {
                    if l.is_neg() {
                        !rep
                    } else {
                        rep
                    }
                }
                None => l,
            })
            .collect();
        out.add_clause(Clause::new(lits));
    }
    *cnf = out;
}

fn eliminate_pure_literals(cnf: &mut Cnf, steps: &mut Vec<Step>, stats: &mut PruneStats) -> bool {
    let mut any = false;
    loop {
        let n = cnf.num_vars();
        let mut pos = vec![false; n];
        let mut neg = vec![false; n];
        for c in cnf.clauses() {
            for &l in c.iter() {
                if l.is_neg() {
                    neg[l.var().index()] = true;
                } else {
                    pos[l.var().index()] = true;
                }
            }
        }
        let mut pure: Vec<Lit> = Vec::new();
        for v in 0..n {
            match (pos[v], neg[v]) {
                (true, false) => pure.push(Var::new(v).pos()),
                (false, true) => pure.push(Var::new(v).neg()),
                _ => {}
            }
        }
        if pure.is_empty() {
            return any;
        }
        any = true;
        let pure_set: HashSet<usize> = pure.iter().map(|l| l.code()).collect();
        for l in &pure {
            steps.push(Step::Fixed(l.var(), !l.is_neg()));
            stats.pure_literals += 1;
        }
        let num_vars = cnf.num_vars();
        let mut out = Cnf::new(num_vars);
        for c in cnf.clauses() {
            if !c.iter().any(|l| pure_set.contains(&l.code())) {
                out.add_clause(c.clone());
            }
        }
        *cnf = out;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force;
    use crate::cdcl::CdclSolver;
    use crate::gen::random_ksat;
    use crate::Solution;

    #[test]
    fn big_edges_from_binary_clauses() {
        let cnf = Cnf::from_clauses(2, vec![vec![1, 2]]);
        let mut big = BinaryImplicationGraph::new(&cnf);
        assert!(big.implies(Var::new(0).neg(), Var::new(1).pos()));
        assert!(big.implies(Var::new(1).neg(), Var::new(0).pos()));
        assert_eq!(big.num_edges(), 2);
    }

    #[test]
    fn big_transitive_reachability() {
        let cnf = Cnf::from_clauses(4, vec![vec![-1, 2], vec![-2, 3], vec![-3, 4]]);
        let mut big = BinaryImplicationGraph::new(&cnf);
        assert!(big.implies(Var::new(0).pos(), Var::new(3).pos()));
        assert!(!big.implies(Var::new(3).pos(), Var::new(0).pos()));
    }

    #[test]
    fn failed_literal_found() {
        // x0 -> x1, x0 -> !x1  ==>  x0 -> !x0 via x1? Not directly in BIG;
        // use the direct encoding: x0 -> x1 and x1 -> !x0 gives x0 -> !x0.
        let cnf = Cnf::from_clauses(2, vec![vec![-1, 2], vec![-2, -1]]);
        let mut big = BinaryImplicationGraph::new(&cnf);
        let failed = big.failed_literals();
        assert!(failed.contains(&Var::new(0).pos()));
    }

    #[test]
    fn scc_finds_equivalent_literals() {
        // x0 <-> x1 via (x0 -> x1) and (x1 -> x0).
        let cnf = Cnf::from_clauses(2, vec![vec![-1, 2], vec![-2, 1]]);
        let big = BinaryImplicationGraph::new(&cnf);
        let comp = big.sccs();
        assert_eq!(comp[Var::new(0).pos().code()], comp[Var::new(1).pos().code()]);
        assert_eq!(comp[Var::new(0).neg().code()], comp[Var::new(1).neg().code()]);
        assert_ne!(comp[Var::new(0).pos().code()], comp[Var::new(0).neg().code()]);
    }

    #[test]
    fn hidden_literal_elimination_example() {
        // Paper example: clause (l | l') with l -> l' drops l, leaving (l').
        // l = x0, l' = x1; implication from clause (!x0 | x1).
        let cnf = Cnf::from_clauses(3, vec![vec![-1, 2], vec![1, 2, 3]]);
        let config = PreprocessConfig {
            pure_literals: false,
            equivalences: false,
            failed_literals: false,
            hidden_literals: true,
            rounds: 1,
        };
        let result = Preprocessor::with_config(config).run(&cnf);
        assert!(result.stats.hidden_literals >= 1);
        // The wide clause shrank.
        assert!(result.cnf.clauses().iter().all(|c| c.len() <= 2));
    }

    #[test]
    fn preserves_satisfiability_on_random_instances() {
        for seed in 0..30 {
            let cnf = random_ksat(10, 42, 3, seed);
            let expect = brute_force(&cnf).is_sat();
            let result = Preprocessor::new().run(&cnf);
            let got = match result.decided {
                Some(d) => d,
                None => CdclSolver::new(&result.cnf).solve().is_sat(),
            };
            assert_eq!(got, expect, "preprocessing changed satisfiability on seed {seed}");
        }
    }

    #[test]
    fn model_reconstruction_is_valid() {
        for seed in 0..30 {
            let cnf = random_ksat(10, 30, 3, 500 + seed);
            let result = Preprocessor::new().run(&cnf);
            let reduced_model = match result.decided {
                Some(false) => continue,
                Some(true) => vec![false; cnf.num_vars()],
                None => match CdclSolver::new(&result.cnf).solve() {
                    Solution::Sat(m) => m,
                    Solution::Unsat => continue,
                },
            };
            let model = result.reconstruct_model(&reduced_model);
            assert!(cnf.eval(&model), "reconstructed model invalid on seed {seed}");
        }
    }

    #[test]
    fn unit_propagation_decides_chains() {
        let cnf = Cnf::from_clauses(3, vec![vec![1], vec![-1, 2], vec![-2, 3]]);
        let result = Preprocessor::new().run(&cnf);
        assert_eq!(result.decided, Some(true));
        let model = result.reconstruct_model(&[false; 3]);
        assert_eq!(model, vec![true, true, true]);
    }

    #[test]
    fn detects_trivial_unsat() {
        let cnf = Cnf::from_clauses(2, vec![vec![1], vec![-1]]);
        let result = Preprocessor::new().run(&cnf);
        assert_eq!(result.decided, Some(false));
    }

    #[test]
    fn stats_track_memory_reduction() {
        let cnf = random_ksat(20, 90, 3, 17);
        let result = Preprocessor::new().run(&cnf);
        assert!(result.stats.bytes_before >= result.stats.bytes_after);
        let r = result.stats.memory_reduction();
        assert!((0.0..=1.0).contains(&r));
    }
}
