//! Conflict-driven clause learning (CDCL) SAT solver.
//!
//! This is a MiniSat-lineage solver with the feature set the REASON paper
//! assumes of its symbolic kernels (Sec. II-C): two-watched-literal Boolean
//! constraint propagation (BCP), first-UIP conflict analysis with clause
//! learning and non-chronological backtracking, VSIDS branching with phase
//! saving, Luby restarts, and LBD-based learnt-clause database reduction.
//! Assumption-based solving supports the cube-and-conquer driver in
//! [`crate::cube`].
//!
//! The solver exposes an observer interface ([`SolverObserver`]) that streams
//! decision/implication/conflict events; the hardware model in `reason-arch`
//! replays these events through its cycle-level BCP pipeline so that the
//! simulated accelerator executes exactly the propagation work the software
//! solver performed.

use crate::cnf::Cnf;
use crate::types::{Lit, Var};
use crate::Solution;

/// Tunable solver parameters.
#[derive(Debug, Clone)]
pub struct CdclConfig {
    /// Conflicts per Luby-restart unit.
    pub restart_base: u64,
    /// Multiplicative VSIDS decay applied after each conflict.
    pub var_decay: f64,
    /// Activity decay for learnt clauses.
    pub clause_decay: f64,
    /// Initial learnt-clause budget as a fraction of the problem clauses.
    pub learntsize_factor: f64,
    /// Growth of the learnt-clause budget at each database reduction.
    pub learntsize_inc: f64,
    /// Hard cap on conflicts (0 = unlimited); exceeded searches return
    /// `None` from [`CdclSolver::solve_limited`].
    pub conflict_limit: u64,
}

impl Default for CdclConfig {
    fn default() -> Self {
        CdclConfig {
            restart_base: 100,
            var_decay: 0.95,
            clause_decay: 0.999,
            learntsize_factor: 1.0 / 3.0,
            learntsize_inc: 1.1,
            conflict_limit: 0,
        }
    }
}

/// Aggregate search statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SolverStats {
    /// Branching decisions made.
    pub decisions: u64,
    /// Literals enqueued by BCP.
    pub propagations: u64,
    /// Conflicts analyzed.
    pub conflicts: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Learnt clauses added.
    pub learned: u64,
    /// Learnt clauses discarded by database reductions.
    pub removed_learnts: u64,
    /// Database reduction passes.
    pub db_reductions: u64,
    /// Deepest decision level reached.
    pub max_decision_level: u32,
    /// Clause lookups during propagation (watch-list traversal work, the
    /// quantity REASON's watched-literal hardware unit parallelizes).
    pub clause_inspections: u64,
    /// Decisions proposed by an external [`BranchingHeuristic`] (the
    /// rest fell through to VSIDS).
    pub guided_decisions: u64,
}

/// Receives fine-grained solver events.
///
/// All methods default to no-ops so implementors only override what they
/// need. `reason-arch` implements this to drive its cycle-level symbolic
/// pipeline model.
pub trait SolverObserver {
    /// A branching decision assigned `lit` at `level`.
    fn on_decision(&mut self, lit: Lit, level: u32) {
        let _ = (lit, level);
    }
    /// BCP implied `lit` from a clause of length `clause_len`.
    fn on_implication(&mut self, lit: Lit, clause_len: usize, level: u32) {
        let _ = (lit, clause_len, level);
    }
    /// A conflict occurred at `level`.
    fn on_conflict(&mut self, level: u32) {
        let _ = level;
    }
    /// A clause of length `len` with the given LBD was learnt.
    fn on_learned(&mut self, len: usize, lbd: u32) {
        let _ = (len, lbd);
    }
    /// The solver backjumped from `from` to `to`.
    fn on_backjump(&mut self, from: u32, to: u32) {
        let _ = (from, to);
    }
    /// The solver restarted.
    fn on_restart(&mut self) {}
}

/// A no-op observer.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl SolverObserver for NullObserver {}

/// A pluggable branching heuristic, consulted before VSIDS at every
/// decision point (Valentin et al.-style guided logical inference: an
/// external scorer — e.g. a learned proposal or prediction network in
/// `reason-approx` — steers the search, and the solver's own machinery
/// remains the completeness/correctness backstop).
///
/// Returning `None`, or a literal whose variable is already assigned or
/// out of range, defers that decision to the solver's VSIDS heap, so a
/// heuristic can guide as much or as little of the search as it wants
/// without ever affecting soundness.
pub trait BranchingHeuristic {
    /// Proposes the next decision literal given a read-only view of the
    /// current assignment state.
    fn pick(&mut self, view: &BranchView<'_>) -> Option<Lit>;
}

/// The default heuristic: never proposes, so every decision falls
/// through to VSIDS with phase saving.
#[derive(Debug, Clone, Copy, Default)]
pub struct VsidsBranching;

impl BranchingHeuristic for VsidsBranching {
    fn pick(&mut self, _view: &BranchView<'_>) -> Option<Lit> {
        None
    }
}

/// Read-only snapshot of the solver state handed to a
/// [`BranchingHeuristic`] at each decision point.
#[derive(Debug)]
pub struct BranchView<'a> {
    assign: &'a [u8],
    activity: &'a [f64],
    phase: &'a [bool],
    decision_level: u32,
}

impl BranchView<'_> {
    /// Number of variables in the solver's universe.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Current value of variable `v`: `None` while unassigned.
    pub fn value(&self, v: usize) -> Option<bool> {
        match self.assign[v] {
            LBOOL_UNDEF => None,
            b => Some(b == 1),
        }
    }

    /// `true` if variable `v` currently has a value.
    pub fn is_assigned(&self, v: usize) -> bool {
        self.assign[v] != LBOOL_UNDEF
    }

    /// The variable's VSIDS activity score.
    pub fn activity(&self, v: usize) -> f64 {
        self.activity[v]
    }

    /// The variable's saved phase (last assigned polarity).
    pub fn saved_phase(&self, v: usize) -> bool {
        self.phase[v]
    }

    /// The decision level the next decision will open from.
    pub fn decision_level(&self) -> u32 {
        self.decision_level
    }
}

const LBOOL_UNDEF: u8 = 2;

type ClauseRef = u32;

#[derive(Debug)]
struct ClauseData {
    lits: Vec<Lit>,
    learnt: bool,
    deleted: bool,
    lbd: u32,
    activity: f64,
}

#[derive(Debug, Clone, Copy)]
struct Watcher {
    cref: ClauseRef,
    blocker: Lit,
}

/// Max-heap over variable activities (MiniSat order heap).
#[derive(Debug, Default)]
struct VarHeap {
    heap: Vec<u32>,
    index: Vec<i32>,
}

impl VarHeap {
    fn with_vars(n: usize) -> Self {
        VarHeap { heap: (0..n as u32).collect(), index: (0..n as i32).collect() }
    }

    fn contains(&self, v: usize) -> bool {
        self.index[v] >= 0
    }

    fn percolate_up(&mut self, mut i: usize, act: &[f64]) {
        let x = self.heap[i];
        while i > 0 {
            let p = (i - 1) >> 1;
            if act[self.heap[p] as usize] >= act[x as usize] {
                break;
            }
            self.heap[i] = self.heap[p];
            self.index[self.heap[i] as usize] = i as i32;
            i = p;
        }
        self.heap[i] = x;
        self.index[x as usize] = i as i32;
    }

    fn percolate_down(&mut self, mut i: usize, act: &[f64]) {
        let x = self.heap[i];
        let n = self.heap.len();
        loop {
            let l = 2 * i + 1;
            if l >= n {
                break;
            }
            let r = l + 1;
            let c = if r < n && act[self.heap[r] as usize] > act[self.heap[l] as usize] {
                r
            } else {
                l
            };
            if act[self.heap[c] as usize] <= act[x as usize] {
                break;
            }
            self.heap[i] = self.heap[c];
            self.index[self.heap[i] as usize] = i as i32;
            i = c;
        }
        self.heap[i] = x;
        self.index[x as usize] = i as i32;
    }

    fn insert(&mut self, v: usize, act: &[f64]) {
        if self.contains(v) {
            return;
        }
        self.heap.push(v as u32);
        let i = self.heap.len() - 1;
        self.index[v] = i as i32;
        self.percolate_up(i, act);
    }

    fn pop_max(&mut self, act: &[f64]) -> Option<usize> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0] as usize;
        let last = self.heap.pop().unwrap();
        self.index[top] = -1;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.index[last as usize] = 0;
            self.percolate_down(0, act);
        }
        Some(top)
    }

    fn bumped(&mut self, v: usize, act: &[f64]) {
        if self.contains(v) {
            self.percolate_up(self.index[v] as usize, act);
        }
    }
}

/// A CDCL SAT solver over a fixed [`Cnf`].
///
/// ```
/// use reason_sat::{Cnf, CdclSolver};
/// let cnf = Cnf::from_clauses(3, vec![vec![1, 2, 3], vec![-1, -2], vec![-2, -3], vec![2]]);
/// let sol = CdclSolver::new(&cnf).solve();
/// assert!(sol.is_sat());
/// ```
#[derive(Debug)]
pub struct CdclSolver {
    num_vars: usize,
    clauses: Vec<ClauseData>,
    watches: Vec<Vec<Watcher>>,
    assign: Vec<u8>,
    level: Vec<u32>,
    reason: Vec<Option<ClauseRef>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    heap: VarHeap,
    phase: Vec<bool>,
    seen: Vec<bool>,
    ok: bool,
    config: CdclConfig,
    stats: SolverStats,
    num_original: usize,
    max_learnts: f64,
}

impl CdclSolver {
    /// Builds a solver for `cnf`, normalizing away tautologies and duplicate
    /// literals at ingest.
    pub fn new(cnf: &Cnf) -> Self {
        Self::with_config(cnf, CdclConfig::default())
    }

    /// Builds a solver with explicit [`CdclConfig`] parameters.
    pub fn with_config(cnf: &Cnf, config: CdclConfig) -> Self {
        let n = cnf.num_vars();
        let mut s = CdclSolver {
            num_vars: n,
            clauses: Vec::with_capacity(cnf.num_clauses()),
            watches: vec![Vec::new(); 2 * n],
            assign: vec![LBOOL_UNDEF; n],
            level: vec![0; n],
            reason: vec![None; n],
            trail: Vec::with_capacity(n),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: vec![0.0; n],
            var_inc: 1.0,
            cla_inc: 1.0,
            heap: VarHeap::with_vars(n),
            phase: vec![false; n],
            seen: vec![false; n],
            ok: true,
            config,
            stats: SolverStats::default(),
            num_original: 0,
            max_learnts: 0.0,
        };
        for clause in cnf.iter() {
            let mut lits: Vec<Lit> = clause.lits().to_vec();
            lits.sort_unstable();
            lits.dedup();
            if lits.windows(2).any(|w| w[0] == !w[1]) {
                continue; // tautology
            }
            s.add_clause_internal(lits, false);
            if !s.ok {
                break;
            }
        }
        s.num_original = s.clauses.len();
        s.max_learnts = s.num_original as f64 * s.config.learntsize_factor + 100.0;
        s
    }

    /// Search statistics accumulated so far.
    pub fn stats(&self) -> &SolverStats {
        &self.stats
    }

    /// Number of variables in the solver's universe.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    fn value(&self, lit: Lit) -> u8 {
        let v = self.assign[lit.var().index()];
        if v == LBOOL_UNDEF {
            LBOOL_UNDEF
        } else {
            v ^ u8::from(lit.is_neg())
        }
    }

    fn add_clause_internal(&mut self, lits: Vec<Lit>, learnt: bool) -> Option<ClauseRef> {
        match lits.len() {
            0 => {
                self.ok = false;
                None
            }
            1 => {
                match self.value(lits[0]) {
                    0 => self.ok = false,
                    LBOOL_UNDEF => self.enqueue(lits[0], None),
                    _ => {}
                }
                None
            }
            _ => {
                let cref = self.clauses.len() as ClauseRef;
                self.watches[(!lits[0]).code()].push(Watcher { cref, blocker: lits[1] });
                self.watches[(!lits[1]).code()].push(Watcher { cref, blocker: lits[0] });
                self.clauses.push(ClauseData {
                    lits,
                    learnt,
                    deleted: false,
                    lbd: 0,
                    activity: 0.0,
                });
                Some(cref)
            }
        }
    }

    fn enqueue(&mut self, lit: Lit, from: Option<ClauseRef>) {
        debug_assert_eq!(self.value(lit), LBOOL_UNDEF);
        let v = lit.var().index();
        self.assign[v] = u8::from(!lit.is_neg());
        self.level[v] = self.decision_level();
        self.reason[v] = from;
        self.phase[v] = !lit.is_neg();
        self.trail.push(lit);
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn propagate<O: SolverObserver>(&mut self, obs: &mut O) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;

            let mut i = 0;
            let mut j = 0;
            let mut ws = std::mem::take(&mut self.watches[p.code()]);
            let mut conflict = None;
            'watches: while i < ws.len() {
                let w = ws[i];
                i += 1;
                // Fast path: blocker already true.
                if self.value(w.blocker) == 1 {
                    ws[j] = w;
                    j += 1;
                    continue;
                }
                self.stats.clause_inspections += 1;
                let cref = w.cref;
                if self.clauses[cref as usize].deleted {
                    continue;
                }
                // Ensure the false literal is in slot 1.
                let not_p = !p;
                {
                    let lits = &mut self.clauses[cref as usize].lits;
                    if lits[0] == not_p {
                        lits.swap(0, 1);
                    }
                }
                let first = self.clauses[cref as usize].lits[0];
                if first != w.blocker && self.value(first) == 1 {
                    ws[j] = Watcher { cref, blocker: first };
                    j += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let len = self.clauses[cref as usize].lits.len();
                for k in 2..len {
                    let lk = self.clauses[cref as usize].lits[k];
                    if self.value(lk) != 0 {
                        self.clauses[cref as usize].lits.swap(1, k);
                        self.watches[(!lk).code()].push(Watcher { cref, blocker: first });
                        continue 'watches;
                    }
                }
                // No new watch: clause is unit or conflicting.
                ws[j] = Watcher { cref, blocker: first };
                j += 1;
                if self.value(first) == 0 {
                    // Conflict: copy back remaining watchers and bail out.
                    while i < ws.len() {
                        ws[j] = ws[i];
                        j += 1;
                        i += 1;
                    }
                    self.qhead = self.trail.len();
                    conflict = Some(cref);
                } else {
                    obs.on_implication(first, len, self.decision_level());
                    self.enqueue(first, Some(cref));
                }
            }
            ws.truncate(j);
            self.watches[p.code()] = ws;
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    fn bump_var(&mut self, v: usize) {
        self.activity[v] += self.var_inc;
        if self.activity[v] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.heap.bumped(v, &self.activity);
    }

    fn bump_clause(&mut self, cref: ClauseRef) {
        let c = &mut self.clauses[cref as usize];
        c.activity += self.cla_inc;
        if c.activity > 1e20 {
            for cd in &mut self.clauses {
                cd.activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// First-UIP conflict analysis. Returns (learnt clause, backjump level, lbd).
    fn analyze(&mut self, confl: ClauseRef) -> (Vec<Lit>, u32, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::from_code(0)]; // slot 0 = asserting literal
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut confl = confl;
        let mut index = self.trail.len();
        let current = self.decision_level();

        loop {
            self.bump_clause(confl);
            let lits: Vec<Lit> = self.clauses[confl as usize].lits.clone();
            let start = usize::from(p.is_some());
            for &q in &lits[start..] {
                let v = q.var().index();
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.bump_var(v);
                    if self.level[v] >= current {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select next literal to expand from the trail.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let pl = self.trail[index];
            self.seen[pl.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = !pl;
                break;
            }
            p = Some(pl);
            confl = self.reason[pl.var().index()].expect("non-decision must have a reason");
        }

        // Local minimization: drop literals whose reason is fully subsumed.
        let keep: Vec<bool> = learnt
            .iter()
            .enumerate()
            .map(|(i, &l)| {
                if i == 0 {
                    return true;
                }
                match self.reason[l.var().index()] {
                    None => true,
                    Some(r) => self.clauses[r as usize].lits.iter().any(|&q| {
                        q.var() != l.var()
                            && !self.seen[q.var().index()]
                            && self.level[q.var().index()] > 0
                    }),
                }
            })
            .collect();
        // `seen` currently true for all learnt literals except index 0's var was cleared;
        // re-mark for the subsumption test above to be meaningful.
        // (Simpler: mark all learnt vars seen first, then test.)
        let mut learnt: Vec<Lit> = learnt
            .into_iter()
            .zip(keep)
            .filter_map(|(l, k)| if k { Some(l) } else { None })
            .collect();
        for &l in &learnt {
            self.seen[l.var().index()] = false;
        }
        // Clear any stragglers.
        for i in 0..self.trail.len() {
            self.seen[self.trail[i].var().index()] = false;
        }

        // Compute backjump level: second-highest level in the learnt clause.
        let backjump = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()]
        };

        // LBD: number of distinct decision levels among learnt literals.
        let mut levels: Vec<u32> = learnt.iter().map(|l| self.level[l.var().index()]).collect();
        levels.sort_unstable();
        levels.dedup();
        let lbd = levels.len() as u32;

        (learnt, backjump, lbd)
    }

    fn cancel_until(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let bound = self.trail_lim[level as usize];
        for i in (bound..self.trail.len()).rev() {
            let v = self.trail[i].var().index();
            self.assign[v] = LBOOL_UNDEF;
            self.reason[v] = None;
            self.heap.insert(v, &self.activity);
        }
        self.trail.truncate(bound);
        self.trail_lim.truncate(level as usize);
        self.qhead = self.trail.len();
    }

    fn pick_branch(&mut self) -> Option<Lit> {
        while let Some(v) = self.heap.pop_max(&self.activity) {
            if self.assign[v] == LBOOL_UNDEF {
                return Some(Lit::new(Var::new(v), !self.phase[v]));
            }
        }
        None
    }

    fn reduce_db(&mut self) {
        self.stats.db_reductions += 1;
        let mut learnt_refs: Vec<ClauseRef> = (self.num_original..self.clauses.len())
            .map(|i| i as ClauseRef)
            .filter(|&c| {
                let cd = &self.clauses[c as usize];
                cd.learnt && !cd.deleted && cd.lits.len() > 2
            })
            .collect();
        // Worst first: high LBD, then low activity.
        learnt_refs.sort_by(|&a, &b| {
            let (ca, cb) = (&self.clauses[a as usize], &self.clauses[b as usize]);
            cb.lbd.cmp(&ca.lbd).then(ca.activity.partial_cmp(&cb.activity).unwrap())
        });
        let locked: Vec<bool> = learnt_refs
            .iter()
            .map(|&c| {
                let lit0 = self.clauses[c as usize].lits[0];
                self.value(lit0) == 1 && self.reason[lit0.var().index()] == Some(c)
            })
            .collect();
        let target = learnt_refs.len() / 2;
        let mut removed = 0;
        for (k, &c) in learnt_refs.iter().enumerate() {
            if removed >= target {
                break;
            }
            if locked[k] || self.clauses[c as usize].lbd <= 2 {
                continue;
            }
            self.clauses[c as usize].deleted = true;
            removed += 1;
        }
        self.stats.removed_learnts += removed as u64;
        // Scrub watch lists of deleted clauses (disjoint field borrows).
        let clauses = &self.clauses;
        for w in &mut self.watches {
            w.retain(|watcher| !clauses[watcher.cref as usize].deleted);
        }
    }

    fn luby(y: f64, mut x: u64) -> f64 {
        let (mut size, mut seq) = (1u64, 0u32);
        while size < x + 1 {
            seq += 1;
            size = 2 * size + 1;
        }
        while size - 1 != x {
            size = (size - 1) >> 1;
            seq -= 1;
            x %= size;
        }
        y.powi(seq as i32)
    }

    /// Solves the formula.
    pub fn solve(&mut self) -> Solution {
        self.solve_with(&mut NullObserver, &[])
            .expect("unlimited solve cannot exhaust the conflict budget")
    }

    /// Solves under assumptions: the given literals are forced as
    /// pseudo-decisions before free search. Used by cube-and-conquer.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> Solution {
        self.solve_with(&mut NullObserver, assumptions)
            .expect("unlimited solve cannot exhaust the conflict budget")
    }

    /// Solves with a conflict budget; returns `None` if the budget was
    /// exhausted before an answer was found.
    pub fn solve_limited(&mut self, conflict_limit: u64) -> Option<Solution> {
        self.config.conflict_limit = conflict_limit;
        self.solve_with(&mut NullObserver, &[])
    }

    /// Solves with an external [`BranchingHeuristic`] steering decisions
    /// (VSIDS backstops every deferred or invalid proposal).
    pub fn solve_guided<H: BranchingHeuristic>(&mut self, heuristic: &mut H) -> Solution {
        self.solve_full(&mut NullObserver, &[], heuristic)
            .expect("unlimited solve cannot exhaust the conflict budget")
    }

    /// Observer events plus assumptions, with VSIDS branching.
    ///
    /// Returns `None` only if [`CdclConfig::conflict_limit`] is non-zero and
    /// exhausted.
    pub fn solve_with<O: SolverObserver>(
        &mut self,
        obs: &mut O,
        assumptions: &[Lit],
    ) -> Option<Solution> {
        self.solve_full(obs, assumptions, &mut VsidsBranching)
    }

    /// Full-control entry point: observer events, assumptions, and an
    /// external branching heuristic.
    ///
    /// Returns `None` only if [`CdclConfig::conflict_limit`] is non-zero and
    /// exhausted.
    pub fn solve_full<O: SolverObserver, H: BranchingHeuristic>(
        &mut self,
        obs: &mut O,
        assumptions: &[Lit],
        heuristic: &mut H,
    ) -> Option<Solution> {
        if !self.ok {
            return Some(Solution::Unsat);
        }
        self.cancel_until(0);
        if self.propagate(obs).is_some() {
            self.ok = false;
            return Some(Solution::Unsat);
        }

        let mut curr_restarts = 0u64;
        loop {
            let budget = (Self::luby(2.0, curr_restarts) * self.config.restart_base as f64) as u64;
            match self.search(budget, obs, assumptions, heuristic) {
                SearchResult::Sat => {
                    let model = (0..self.num_vars)
                        .map(|v| {
                            self.assign[v] == 1 || (self.assign[v] == LBOOL_UNDEF && self.phase[v])
                        })
                        .collect();
                    self.cancel_until(0);
                    return Some(Solution::Sat(model));
                }
                SearchResult::Unsat => {
                    self.cancel_until(0);
                    return Some(Solution::Unsat);
                }
                SearchResult::Restart => {
                    curr_restarts += 1;
                    self.stats.restarts += 1;
                    obs.on_restart();
                    self.cancel_until(0);
                    if self.config.conflict_limit != 0
                        && self.stats.conflicts >= self.config.conflict_limit
                    {
                        self.cancel_until(0);
                        return None;
                    }
                }
            }
        }
    }

    fn search<O: SolverObserver, H: BranchingHeuristic>(
        &mut self,
        conflict_budget: u64,
        obs: &mut O,
        assumptions: &[Lit],
        heuristic: &mut H,
    ) -> SearchResult {
        let mut conflicts_here = 0u64;
        loop {
            if let Some(confl) = self.propagate(obs) {
                self.stats.conflicts += 1;
                conflicts_here += 1;
                obs.on_conflict(self.decision_level());
                if self.decision_level() == 0 {
                    self.ok = false;
                    return SearchResult::Unsat;
                }
                // A conflict below the assumption prefix means the cube itself
                // is inconsistent with the formula.
                if (self.decision_level() as usize) <= assumptions.len() {
                    return SearchResult::Unsat;
                }
                let (learnt, backjump, lbd) = self.analyze(confl);
                let backjump = backjump.max(assumptions.len() as u32);
                obs.on_learned(learnt.len(), lbd);
                obs.on_backjump(self.decision_level(), backjump);
                self.cancel_until(backjump);
                let asserting = learnt[0];
                if learnt.len() == 1 {
                    if self.value(asserting) == LBOOL_UNDEF {
                        self.enqueue(asserting, None);
                    } else if self.value(asserting) == 0 {
                        self.ok = false;
                        return SearchResult::Unsat;
                    }
                } else {
                    let cref = self
                        .add_clause_internal(learnt, true)
                        .expect("learnt clause has >= 2 lits");
                    self.clauses[cref as usize].lbd = lbd;
                    self.bump_clause(cref);
                    self.enqueue(asserting, Some(cref));
                }
                self.stats.learned += 1;
                self.var_inc /= self.config.var_decay;
                self.cla_inc /= self.config.clause_decay;

                let learnt_count = self.clauses.len() - self.num_original;
                if learnt_count as f64 > self.max_learnts {
                    self.reduce_db();
                    self.max_learnts *= self.config.learntsize_inc;
                }
            } else {
                if conflicts_here >= conflict_budget {
                    return SearchResult::Restart;
                }
                // Next decision: assumptions first, then VSIDS.
                let next = if (self.decision_level() as usize) < assumptions.len() {
                    let a = assumptions[self.decision_level() as usize];
                    match self.value(a) {
                        1 => {
                            // Already satisfied: open an empty level to keep the
                            // assumption-prefix invariant.
                            self.trail_lim.push(self.trail.len());
                            continue;
                        }
                        0 => return SearchResult::Unsat,
                        _ => Some(a),
                    }
                } else {
                    let view = BranchView {
                        assign: &self.assign,
                        activity: &self.activity,
                        phase: &self.phase,
                        decision_level: self.decision_level(),
                    };
                    match heuristic.pick(&view).filter(|l| {
                        l.var().index() < self.num_vars && self.value(*l) == LBOOL_UNDEF
                    }) {
                        Some(l) => {
                            self.stats.guided_decisions += 1;
                            Some(l)
                        }
                        None => self.pick_branch(),
                    }
                };
                match next {
                    None => return SearchResult::Sat,
                    Some(lit) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let lvl = self.decision_level();
                        self.stats.max_decision_level = self.stats.max_decision_level.max(lvl);
                        obs.on_decision(lit, lvl);
                        self.enqueue(lit, None);
                    }
                }
            }
        }
    }
}

enum SearchResult {
    Sat,
    Unsat,
    Restart,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force;
    use crate::gen::{pigeonhole, random_ksat};

    fn check_matches_brute(cnf: &Cnf) {
        let expect = brute_force(cnf).is_sat();
        let got = CdclSolver::new(cnf).solve();
        assert_eq!(got.is_sat(), expect, "cdcl disagrees with brute force on {cnf}");
        if let Solution::Sat(model) = got {
            assert!(cnf.eval(&model), "cdcl returned a non-model for {cnf}");
        }
    }

    #[test]
    fn trivial_cases() {
        // Empty formula: SAT.
        assert!(CdclSolver::new(&Cnf::new(3)).solve().is_sat());
        // Empty clause: UNSAT.
        let mut cnf = Cnf::new(1);
        cnf.add_clause(crate::types::Clause::new(vec![]));
        assert!(!CdclSolver::new(&cnf).solve().is_sat());
        // Contradictory units.
        let cnf = Cnf::from_clauses(1, vec![vec![1], vec![-1]]);
        assert!(!CdclSolver::new(&cnf).solve().is_sat());
    }

    #[test]
    fn simple_chain_propagation() {
        // x1 & (x1 -> x2) & (x2 -> x3)
        let cnf = Cnf::from_clauses(3, vec![vec![1], vec![-1, 2], vec![-2, 3]]);
        match CdclSolver::new(&cnf).solve() {
            Solution::Sat(m) => assert_eq!(m, vec![true, true, true]),
            Solution::Unsat => panic!("should be sat"),
        }
    }

    #[test]
    fn pigeonhole_unsat() {
        for n in 2..=4 {
            let cnf = pigeonhole(n);
            let mut solver = CdclSolver::new(&cnf);
            assert!(!solver.solve().is_sat(), "PHP({n}) must be UNSAT");
            assert!(solver.stats().conflicts > 0);
        }
    }

    #[test]
    fn random_instances_match_brute_force() {
        for seed in 0..30 {
            let cnf = random_ksat(8, 30, 3, seed);
            check_matches_brute(&cnf);
        }
        for seed in 0..15 {
            let cnf = random_ksat(12, 48, 3, 1000 + seed);
            check_matches_brute(&cnf);
        }
    }

    #[test]
    fn assumptions_prune_search() {
        // (x0 | x1) with assumption !x0 forces x1.
        let cnf = Cnf::from_clauses(2, vec![vec![1, 2]]);
        let mut s = CdclSolver::new(&cnf);
        match s.solve_with_assumptions(&[Var::new(0).neg()]) {
            Solution::Sat(m) => {
                assert!(!m[0]);
                assert!(m[1]);
            }
            Solution::Unsat => panic!("should be sat"),
        }
    }

    #[test]
    fn assumptions_can_make_unsat() {
        let cnf = Cnf::from_clauses(2, vec![vec![1], vec![-1, 2]]);
        let mut s = CdclSolver::new(&cnf);
        assert!(!s.solve_with_assumptions(&[Var::new(1).neg()]).is_sat());
        // Without the assumption it is satisfiable.
        let mut s2 = CdclSolver::new(&cnf);
        assert!(s2.solve().is_sat());
    }

    #[test]
    fn conflict_limit_yields_none() {
        let cnf = pigeonhole(6);
        let mut s = CdclSolver::new(&cnf);
        // PHP(6) needs far more than 1 conflict.
        assert_eq!(s.solve_limited(1), None);
    }

    #[test]
    fn observer_sees_events() {
        #[derive(Default)]
        struct Counter {
            decisions: usize,
            implications: usize,
            conflicts: usize,
        }
        impl SolverObserver for Counter {
            fn on_decision(&mut self, _: Lit, _: u32) {
                self.decisions += 1;
            }
            fn on_implication(&mut self, _: Lit, _: usize, _: u32) {
                self.implications += 1;
            }
            fn on_conflict(&mut self, _: u32) {
                self.conflicts += 1;
            }
        }
        let cnf = pigeonhole(3);
        let mut s = CdclSolver::new(&cnf);
        let mut obs = Counter::default();
        let sol = s.solve_with(&mut obs, &[]).unwrap();
        assert!(!sol.is_sat());
        assert!(obs.conflicts > 0);
        assert!(obs.decisions > 0);
        assert!(obs.implications > 0);
    }

    #[test]
    fn stats_are_populated() {
        let cnf = random_ksat(20, 85, 3, 7);
        let mut s = CdclSolver::new(&cnf);
        let _ = s.solve();
        assert!(s.stats().decisions > 0);
        assert!(s.stats().propagations > 0);
    }

    #[test]
    fn oracle_guided_branching_reaches_a_model_without_conflicts() {
        // A heuristic that always branches toward a known model can never
        // drive propagation into a falsified clause: every implied literal
        // is entailed by the model-consistent prefix.
        struct Oracle(Vec<bool>);
        impl BranchingHeuristic for Oracle {
            fn pick(&mut self, view: &BranchView<'_>) -> Option<Lit> {
                (0..view.num_vars())
                    .find(|&v| !view.is_assigned(v))
                    .map(|v| Lit::new(Var::new(v), !self.0[v]))
            }
        }
        for seed in 0..10 {
            let cnf = random_ksat(12, 40, 3, 400 + seed);
            let model = match brute_force(&cnf) {
                Solution::Sat(m) => m,
                Solution::Unsat => continue,
            };
            let mut s = CdclSolver::new(&cnf);
            let sol = s.solve_guided(&mut Oracle(model));
            assert!(sol.is_sat(), "seed {seed}");
            assert_eq!(s.stats().conflicts, 0, "seed {seed}: oracle guidance conflicted");
            assert!(s.stats().guided_decisions > 0, "seed {seed}");
        }
    }

    #[test]
    fn invalid_heuristic_proposals_fall_back_to_vsids() {
        // Always proposes an already-assigned or out-of-range literal;
        // the solver must still be correct and count zero guided picks.
        struct Bogus;
        impl BranchingHeuristic for Bogus {
            fn pick(&mut self, view: &BranchView<'_>) -> Option<Lit> {
                (0..view.num_vars())
                    .find(|&v| view.is_assigned(v))
                    .map(|v| Lit::new(Var::new(v), false))
            }
        }
        for seed in 0..10 {
            let cnf = random_ksat(8, 30, 3, seed);
            let expect = brute_force(&cnf).is_sat();
            let mut s = CdclSolver::new(&cnf);
            let sol = s.solve_guided(&mut Bogus);
            assert_eq!(sol.is_sat(), expect, "seed {seed}");
            if let Solution::Sat(m) = sol {
                assert!(cnf.eval(&m));
            }
        }
    }

    #[test]
    fn guided_solver_agrees_with_vsids_on_unsat() {
        struct FirstFree;
        impl BranchingHeuristic for FirstFree {
            fn pick(&mut self, view: &BranchView<'_>) -> Option<Lit> {
                (0..view.num_vars())
                    .find(|&v| !view.is_assigned(v))
                    .map(|v| Lit::new(Var::new(v), view.saved_phase(v)))
            }
        }
        let cnf = pigeonhole(4);
        let mut s = CdclSolver::new(&cnf);
        assert!(!s.solve_guided(&mut FirstFree).is_sat());
        assert!(s.stats().guided_decisions > 0);
    }

    #[test]
    fn larger_satisfiable_instance_model_is_valid() {
        // Under-constrained: almost surely SAT.
        let cnf = random_ksat(60, 150, 3, 42);
        let mut s = CdclSolver::new(&cnf);
        if let Solution::Sat(model) = s.solve() {
            assert!(cnf.eval(&model));
        }
    }
}
