//! Boolean satisfiability substrate for the REASON reproduction.
//!
//! This crate implements the logical-reasoning kernels that the REASON paper
//! (HPCA 2026) identifies as one half of the "probabilistic logical reasoning"
//! bottleneck: propositional satisfiability solving with the modern machinery
//! referenced in the paper — DPLL, conflict-driven clause learning (CDCL) with
//! two-watched-literal propagation, lookahead-guided cube-and-conquer, and the
//! binary-implication-graph preprocessing that REASON's adaptive DAG pruning
//! builds on.
//!
//! # Layout
//!
//! * [`types`] — [`Var`], [`Lit`], [`Clause`]: the propositional vocabulary.
//! * [`cnf`] — [`Cnf`] formulas with DIMACS parsing and printing.
//! * [`dpll`] — a simple chronological DPLL solver (baseline).
//! * [`cdcl`] — a full CDCL solver: 1UIP learning, VSIDS, phase saving,
//!   Luby restarts, LBD-based clause-database reduction, assumptions.
//! * [`lookahead`] — lookahead literal scoring used to pick cube-split
//!   variables.
//! * [`cube`] — cube-and-conquer: lookahead cube generation plus sequential
//!   or parallel CDCL conquering.
//! * [`pool`] — a shared indexed clause pool ([`ClausePool`]) and a
//!   trail-based unit propagator ([`Propagator`]) for search-style
//!   consumers that name residual formulas by clause id instead of
//!   cloning them — the substrate of `reason-pc`'s top-down
//!   component-caching compiler.
//! * [`preprocess`] — unit/pure-literal simplification, binary implication
//!   graph construction, failed-literal probing, hidden-literal elimination,
//!   and equivalent-literal substitution. These are the symbolic half of
//!   REASON's adaptive DAG pruning (paper Sec. IV-B).
//! * [`gen`] — seeded instance generators (random k-SAT, pigeonhole,
//!   graph coloring) used by the workload suite.
//! * [`brute`] — brute-force model enumeration and counting for testing.
//!
//! # Example
//!
//! ```
//! use reason_sat::{Cnf, CdclSolver, Solution};
//!
//! // (x0 | x1) & (!x0 | x1) & (x0 | !x1)  =>  x0 = x1 = true
//! let cnf = Cnf::from_clauses(2, vec![vec![1, 2], vec![-1, 2], vec![1, -2]]);
//! let mut solver = CdclSolver::new(&cnf);
//! match solver.solve() {
//!     Solution::Sat(model) => {
//!         assert!(model[0] && model[1]);
//!     }
//!     Solution::Unsat => unreachable!("formula is satisfiable"),
//! }
//! ```

pub mod brute;
pub mod cdcl;
pub mod cnf;
pub mod cube;
pub mod dpll;
pub mod gen;
pub mod lookahead;
pub mod pool;
pub mod preprocess;
pub mod types;

pub use brute::{brute_force, count_models, weighted_count};
pub use cdcl::{
    BranchView, BranchingHeuristic, CdclConfig, CdclSolver, SolverObserver, SolverStats,
    VsidsBranching,
};
pub use cnf::{Cnf, DimacsError};
pub use cube::{CubeAndConquer, CubeConfig, CubeOutcome};
pub use dpll::DpllSolver;
pub use lookahead::{Lookahead, LookaheadScore};
pub use pool::{ClausePool, Propagator};
pub use preprocess::{BinaryImplicationGraph, PreprocessResult, Preprocessor};
pub use types::{Clause, Lit, Var};

/// The outcome of a satisfiability query.
///
/// `Sat` carries a complete model indexed by variable: `model[v]` is the
/// truth value assigned to variable `v`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Solution {
    /// The formula is satisfiable; the payload is a witnessing assignment.
    Sat(Vec<bool>),
    /// The formula is unsatisfiable.
    Unsat,
}

impl Solution {
    /// Returns `true` if the query was satisfiable.
    pub fn is_sat(&self) -> bool {
        matches!(self, Solution::Sat(_))
    }

    /// Returns the model if satisfiable.
    pub fn model(&self) -> Option<&[bool]> {
        match self {
            Solution::Sat(m) => Some(m),
            Solution::Unsat => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solution_accessors() {
        let sat = Solution::Sat(vec![true, false]);
        assert!(sat.is_sat());
        assert_eq!(sat.model(), Some(&[true, false][..]));
        let unsat = Solution::Unsat;
        assert!(!unsat.is_sat());
        assert_eq!(unsat.model(), None);
    }
}
