//! Shared indexed clause pool and trail-based unit propagation.
//!
//! Search-style consumers — the top-down knowledge compiler in
//! `reason-pc` is the motivating one — need three things the plain
//! [`Cnf`] representation does not give them: stable integer clause
//! ids (so residual formulas can be *named* instead of cloned), a
//! per-variable occurrence index (so connected components can be found
//! by flood fill), and an undoable assignment with unit propagation
//! (so implied literals never become search branches). [`ClausePool`]
//! and [`Propagator`] provide exactly that, kept separate from the
//! CDCL solver's internal watched-literal arena: the pool is immutable
//! and shared, the propagator is a small trail that many nested
//! queries can push onto and roll back.
//!
//! ```
//! use reason_sat::{ClausePool, Cnf, Propagator, Var};
//!
//! // (x0) & (!x0 | x1): assuming nothing, propagation fixes both.
//! let cnf = Cnf::from_clauses(2, vec![vec![1], vec![-1, 2]]);
//! let pool = ClausePool::new(&cnf);
//! let mut prop = Propagator::new(pool.num_vars());
//! let all: Vec<u32> = (0..pool.num_clauses() as u32).collect();
//! assert!(prop.propagate(&pool, &all));
//! assert_eq!(prop.value(Var::new(0)), Some(true));
//! assert_eq!(prop.value(Var::new(1)), Some(true));
//! ```

use crate::cnf::Cnf;
use crate::types::{Lit, Var};

/// An immutable, indexed clause arena: clause `c` is addressable as a
/// literal slice, and every variable knows which clauses mention it.
///
/// The pool is the shared substrate for component-caching search: a
/// residual formula is a *list of clause ids* plus the current
/// assignment, never a cloned clause set.
#[derive(Debug, Clone)]
pub struct ClausePool {
    num_vars: usize,
    lits: Vec<Lit>,
    /// Clause `c` occupies `lits[bounds[c] .. bounds[c + 1]]`.
    bounds: Vec<u32>,
    /// `occurs[v]` = ids of clauses containing variable `v` (either
    /// polarity), each id listed once, in increasing order.
    occurs: Vec<Vec<u32>>,
}

impl ClausePool {
    /// Indexes the clauses of `cnf`.
    pub fn new(cnf: &Cnf) -> Self {
        let num_vars = cnf.num_vars();
        let mut lits = Vec::with_capacity(cnf.num_literals());
        let mut bounds = Vec::with_capacity(cnf.num_clauses() + 1);
        let mut occurs: Vec<Vec<u32>> = vec![Vec::new(); num_vars];
        bounds.push(0);
        for (id, clause) in cnf.clauses().iter().enumerate() {
            for &l in clause.iter() {
                lits.push(l);
                let occ = &mut occurs[l.var().index()];
                // A variable occurring twice in one clause (duplicate or
                // tautological literals) is still listed once.
                if occ.last() != Some(&(id as u32)) {
                    occ.push(id as u32);
                }
            }
            bounds.push(lits.len() as u32);
        }
        ClausePool { num_vars, lits, bounds, occurs }
    }

    /// Number of variables in the universe.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of clauses in the pool.
    pub fn num_clauses(&self) -> usize {
        self.bounds.len() - 1
    }

    /// The literals of clause `id`.
    pub fn clause(&self, id: u32) -> &[Lit] {
        let lo = self.bounds[id as usize] as usize;
        let hi = self.bounds[id as usize + 1] as usize;
        &self.lits[lo..hi]
    }

    /// Ids of the clauses mentioning `var`, in increasing order.
    pub fn occurrences(&self, var: Var) -> &[u32] {
        &self.occurs[var.index()]
    }
}

/// A trail-based partial assignment with unit propagation over clause
/// subsets of a [`ClausePool`].
///
/// Assignments are pushed with [`assume`](Self::assume) (or implied by
/// [`propagate`](Self::propagate)) and rolled back to any earlier
/// [`mark`](Self::mark) with [`undo_to`](Self::undo_to) — the
/// backtracking discipline of a DPLL-style search, without the CDCL
/// solver's clause-learning machinery.
#[derive(Debug, Clone)]
pub struct Propagator {
    /// Per-variable value; `i8` keeps the hot array dense
    /// (`-1` unassigned, `0` false, `1` true).
    values: Vec<i8>,
    trail: Vec<Lit>,
}

impl Propagator {
    /// An empty assignment over `num_vars` variables.
    pub fn new(num_vars: usize) -> Self {
        Propagator { values: vec![-1; num_vars], trail: Vec::new() }
    }

    /// The current value of `var`, if assigned.
    pub fn value(&self, var: Var) -> Option<bool> {
        match self.values[var.index()] {
            -1 => None,
            v => Some(v == 1),
        }
    }

    /// The truth value of `lit` under the current assignment, if its
    /// variable is assigned.
    pub fn lit_value(&self, lit: Lit) -> Option<bool> {
        self.value(lit.var()).map(|v| lit.eval(v))
    }

    /// `true` when `var` has a value.
    pub fn is_assigned(&self, var: Var) -> bool {
        self.values[var.index()] != -1
    }

    /// The assigned literals, oldest first (decisions and implications
    /// interleaved in assignment order).
    pub fn trail(&self) -> &[Lit] {
        &self.trail
    }

    /// Number of assigned variables.
    pub fn num_assigned(&self) -> usize {
        self.trail.len()
    }

    /// A checkpoint for [`undo_to`](Self::undo_to): the current trail
    /// length.
    pub fn mark(&self) -> usize {
        self.trail.len()
    }

    /// Asserts `lit` true.
    ///
    /// # Panics
    ///
    /// Panics if the literal's variable is already assigned.
    pub fn assume(&mut self, lit: Lit) {
        let v = lit.var().index();
        assert_eq!(self.values[v], -1, "variable {} already assigned", lit.var());
        self.values[v] = i8::from(!lit.is_neg());
        self.trail.push(lit);
    }

    /// Rolls the assignment back to a previous [`mark`](Self::mark).
    ///
    /// # Panics
    ///
    /// Panics if `mark` exceeds the current trail length.
    pub fn undo_to(&mut self, mark: usize) {
        assert!(mark <= self.trail.len(), "mark {mark} beyond trail");
        for lit in self.trail.drain(mark..) {
            self.values[lit.var().index()] = -1;
        }
    }

    /// `true` when some literal of clause `id` is true under the
    /// current assignment.
    pub fn clause_satisfied(&self, pool: &ClausePool, id: u32) -> bool {
        pool.clause(id).iter().any(|&l| self.lit_value(l) == Some(true))
    }

    /// Unit-propagates to fixpoint over the clauses named by
    /// `clause_ids`, pushing every implied literal onto the trail.
    ///
    /// Returns `false` on conflict (some clause has every literal
    /// false); the trail then holds whatever was implied before the
    /// conflict, and the caller is expected to roll back with
    /// [`undo_to`](Self::undo_to). Clauses outside `clause_ids` are
    /// never examined, so disjoint subproblems can share one
    /// propagator.
    ///
    /// Propagation is round-based (no watch lists): each round scans
    /// the clause list once and rounds repeat until no new literal is
    /// implied — linear-per-round, which is the right trade for the
    /// small residual components this type exists to serve. A clause
    /// whose only unassigned literals are duplicates of one another is
    /// treated as having two free slots (not propagated); duplicate
    /// literals cost completeness of *propagation* only, never
    /// soundness of the search that hosts it.
    #[must_use = "a false return is a conflict the caller must unwind"]
    pub fn propagate(&mut self, pool: &ClausePool, clause_ids: &[u32]) -> bool {
        loop {
            let mut progressed = false;
            for &c in clause_ids {
                let mut satisfied = false;
                let mut unassigned = 0usize;
                let mut unit = None;
                for &l in pool.clause(c) {
                    match self.lit_value(l) {
                        Some(true) => {
                            satisfied = true;
                            break;
                        }
                        Some(false) => {}
                        None => {
                            unassigned += 1;
                            if unassigned > 1 {
                                break;
                            }
                            unit = Some(l);
                        }
                    }
                }
                if satisfied || unassigned > 1 {
                    continue;
                }
                match unit {
                    None => return false, // every literal false
                    Some(l) => {
                        self.assume(l);
                        progressed = true;
                    }
                }
            }
            if !progressed {
                return true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_ids(pool: &ClausePool) -> Vec<u32> {
        (0..pool.num_clauses() as u32).collect()
    }

    #[test]
    fn pool_indexes_clauses_and_occurrences() {
        let cnf = Cnf::from_clauses(3, vec![vec![1, -2], vec![2, 3], vec![-3]]);
        let pool = ClausePool::new(&cnf);
        assert_eq!(pool.num_vars(), 3);
        assert_eq!(pool.num_clauses(), 3);
        assert_eq!(pool.clause(0), &[Lit::from_dimacs(1), Lit::from_dimacs(-2)]);
        assert_eq!(pool.occurrences(Var::new(1)), &[0, 1]);
        assert_eq!(pool.occurrences(Var::new(2)), &[1, 2]);
    }

    #[test]
    fn duplicate_literals_list_the_clause_once() {
        let cnf = Cnf::from_clauses(2, vec![vec![1, 1, -1], vec![2]]);
        let pool = ClausePool::new(&cnf);
        assert_eq!(pool.occurrences(Var::new(0)), &[0]);
    }

    #[test]
    fn assume_and_undo_roundtrip() {
        let mut prop = Propagator::new(3);
        let mark = prop.mark();
        prop.assume(Var::new(1).neg());
        assert_eq!(prop.value(Var::new(1)), Some(false));
        assert_eq!(prop.lit_value(Var::new(1).neg()), Some(true));
        assert_eq!(prop.trail(), &[Var::new(1).neg()]);
        prop.undo_to(mark);
        assert!(!prop.is_assigned(Var::new(1)));
        assert_eq!(prop.num_assigned(), 0);
    }

    #[test]
    #[should_panic(expected = "already assigned")]
    fn double_assume_panics() {
        let mut prop = Propagator::new(1);
        prop.assume(Var::new(0).pos());
        prop.assume(Var::new(0).neg());
    }

    #[test]
    fn propagation_chains_implications() {
        // x0 & (!x0 | x1) & (!x1 | x2)
        let cnf = Cnf::from_clauses(3, vec![vec![1], vec![-1, 2], vec![-2, 3]]);
        let pool = ClausePool::new(&cnf);
        let mut prop = Propagator::new(3);
        assert!(prop.propagate(&pool, &all_ids(&pool)));
        assert_eq!(prop.num_assigned(), 3);
        for v in 0..3 {
            assert_eq!(prop.value(Var::new(v)), Some(true));
        }
    }

    #[test]
    fn propagation_detects_conflicts() {
        let cnf = Cnf::from_clauses(2, vec![vec![1], vec![-1, 2], vec![-2, -1]]);
        let pool = ClausePool::new(&cnf);
        let mut prop = Propagator::new(2);
        assert!(!prop.propagate(&pool, &all_ids(&pool)));
    }

    #[test]
    fn propagation_respects_the_clause_subset() {
        let cnf = Cnf::from_clauses(2, vec![vec![1], vec![2]]);
        let pool = ClausePool::new(&cnf);
        let mut prop = Propagator::new(2);
        assert!(prop.propagate(&pool, &[0]));
        assert_eq!(prop.value(Var::new(0)), Some(true));
        assert!(!prop.is_assigned(Var::new(1)));
    }

    #[test]
    fn conflict_unwinds_cleanly_with_undo() {
        let cnf = Cnf::from_clauses(2, vec![vec![-1, 2], vec![-1, -2]]);
        let pool = ClausePool::new(&cnf);
        let mut prop = Propagator::new(2);
        let mark = prop.mark();
        prop.assume(Var::new(0).pos());
        assert!(!prop.propagate(&pool, &all_ids(&pool)));
        prop.undo_to(mark);
        // The other branch is fine.
        prop.assume(Var::new(0).neg());
        assert!(prop.propagate(&pool, &all_ids(&pool)));
        assert_eq!(prop.value(Var::new(0)), Some(false));
    }

    #[test]
    fn satisfied_clause_queries() {
        let cnf = Cnf::from_clauses(2, vec![vec![1, 2]]);
        let pool = ClausePool::new(&cnf);
        let mut prop = Propagator::new(2);
        assert!(!prop.clause_satisfied(&pool, 0));
        prop.assume(Var::new(1).pos());
        assert!(prop.clause_satisfied(&pool, 0));
    }

    #[test]
    fn empty_clause_is_an_immediate_conflict() {
        let mut cnf = Cnf::new(1);
        cnf.add_clause(crate::types::Clause::new(vec![]));
        let pool = ClausePool::new(&cnf);
        let mut prop = Propagator::new(1);
        assert!(!prop.propagate(&pool, &all_ids(&pool)));
    }
}
