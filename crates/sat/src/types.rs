//! Propositional vocabulary: variables, literals, and clauses.
//!
//! Variables are dense `u32` indices starting at 0. Literals use the
//! MiniSat-style packed encoding `var << 1 | sign` so that a literal and its
//! negation differ only in the lowest bit, which makes watch lists and
//! implication graphs indexable by `Lit::code()`.

use std::fmt;
use std::ops::Not;

/// A propositional variable, identified by a dense 0-based index.
///
/// ```
/// use reason_sat::Var;
/// let v = Var::new(3);
/// assert_eq!(v.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(u32);

impl Var {
    /// Creates a variable from its 0-based index.
    pub fn new(index: usize) -> Self {
        Var(index as u32)
    }

    /// The 0-based index of this variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The positive literal of this variable.
    pub fn pos(self) -> Lit {
        Lit::new(self, false)
    }

    /// The negative literal of this variable.
    // Not `std::ops::Neg`: this constructs a `Lit` from a `Var`, it does
    // not negate a `Var` into a `Var`.
    #[allow(clippy::should_implement_trait)]
    pub fn neg(self) -> Lit {
        Lit::new(self, true)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable or its negation, packed as `var << 1 | sign`.
///
/// The packed code of a literal (`code()`) is a dense index suitable for
/// watch lists and the binary implication graph: literal `x` and `!x` have
/// adjacent codes.
///
/// ```
/// use reason_sat::{Lit, Var};
/// let l = Var::new(2).pos();
/// assert_eq!((!l).var(), l.var());
/// assert!((!l).is_neg());
/// assert_eq!(!(!l), l);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// Creates a literal over `var`, negated when `negated` is true.
    pub fn new(var: Var, negated: bool) -> Self {
        Lit(var.0 << 1 | u32::from(negated))
    }

    /// Reconstructs a literal from its packed code.
    pub fn from_code(code: usize) -> Self {
        Lit(code as u32)
    }

    /// Parses a DIMACS-style signed integer (`3` → x2, `-3` → ¬x2).
    ///
    /// # Panics
    ///
    /// Panics if `dimacs == 0`, which DIMACS reserves as a terminator.
    pub fn from_dimacs(dimacs: i32) -> Self {
        assert!(dimacs != 0, "DIMACS literal 0 is the clause terminator");
        let var = Var::new(dimacs.unsigned_abs() as usize - 1);
        Lit::new(var, dimacs < 0)
    }

    /// Renders this literal as a DIMACS signed integer.
    pub fn to_dimacs(self) -> i32 {
        let v = (self.0 >> 1) as i32 + 1;
        if self.is_neg() {
            -v
        } else {
            v
        }
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// `true` when this is the negated polarity of the variable.
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// The packed code (`var * 2 + sign`), a dense index.
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Evaluates the literal under a truth value for its variable.
    pub fn eval(self, var_value: bool) -> bool {
        var_value ^ self.is_neg()
    }
}

impl Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_neg() {
            write!(f, "!{}", self.var())
        } else {
            write!(f, "{}", self.var())
        }
    }
}

/// A disjunction of literals.
///
/// Clauses are plain literal vectors with helper queries; solvers keep their
/// own annotated clause arenas internally.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Clause {
    lits: Vec<Lit>,
}

impl Clause {
    /// Creates a clause from literals.
    pub fn new(lits: Vec<Lit>) -> Self {
        Clause { lits }
    }

    /// Creates a clause from DIMACS-style signed integers.
    ///
    /// # Panics
    ///
    /// Panics if any entry is `0`.
    pub fn from_dimacs(ints: &[i32]) -> Self {
        Clause::new(ints.iter().map(|&i| Lit::from_dimacs(i)).collect())
    }

    /// The literals of the clause.
    pub fn lits(&self) -> &[Lit] {
        &self.lits
    }

    /// Number of literals.
    pub fn len(&self) -> usize {
        self.lits.len()
    }

    /// `true` when the clause has no literals (the empty clause is false).
    pub fn is_empty(&self) -> bool {
        self.lits.is_empty()
    }

    /// `true` when the clause has exactly one literal.
    pub fn is_unit(&self) -> bool {
        self.lits.len() == 1
    }

    /// `true` when the clause contains both a literal and its negation.
    pub fn is_tautology(&self) -> bool {
        let mut sorted: Vec<Lit> = self.lits.clone();
        sorted.sort_unstable();
        sorted.windows(2).any(|w| w[0] == !w[1] || !w[0] == w[1])
    }

    /// `true` when the clause contains the literal.
    pub fn contains(&self, lit: Lit) -> bool {
        self.lits.contains(&lit)
    }

    /// Removes duplicate literals (preserving first occurrence order).
    pub fn dedup(&mut self) {
        let mut seen = std::collections::HashSet::new();
        self.lits.retain(|l| seen.insert(*l));
    }

    /// Evaluates the clause under a complete model indexed by variable.
    pub fn eval(&self, model: &[bool]) -> bool {
        self.lits.iter().any(|l| l.eval(model[l.var().index()]))
    }

    /// Iterates over the literals.
    pub fn iter(&self) -> std::slice::Iter<'_, Lit> {
        self.lits.iter()
    }
}

impl From<Vec<Lit>> for Clause {
    fn from(lits: Vec<Lit>) -> Self {
        Clause::new(lits)
    }
}

impl FromIterator<Lit> for Clause {
    fn from_iter<I: IntoIterator<Item = Lit>>(iter: I) -> Self {
        Clause::new(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a Clause {
    type Item = &'a Lit;
    type IntoIter = std::slice::Iter<'a, Lit>;

    fn into_iter(self) -> Self::IntoIter {
        self.lits.iter()
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, l) in self.lits.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lit_packing_roundtrip() {
        for idx in 0..100 {
            let v = Var::new(idx);
            assert_eq!(v.pos().var(), v);
            assert_eq!(v.neg().var(), v);
            assert!(!v.pos().is_neg());
            assert!(v.neg().is_neg());
            assert_eq!(!v.pos(), v.neg());
            assert_eq!(Lit::from_code(v.pos().code()), v.pos());
        }
    }

    #[test]
    fn dimacs_roundtrip() {
        for d in [-42, -1, 1, 7, 42] {
            assert_eq!(Lit::from_dimacs(d).to_dimacs(), d);
        }
    }

    #[test]
    #[should_panic(expected = "terminator")]
    fn dimacs_zero_panics() {
        let _ = Lit::from_dimacs(0);
    }

    #[test]
    fn lit_eval() {
        let v = Var::new(0);
        assert!(v.pos().eval(true));
        assert!(!v.pos().eval(false));
        assert!(!v.neg().eval(true));
        assert!(v.neg().eval(false));
    }

    #[test]
    fn clause_queries() {
        let c = Clause::from_dimacs(&[1, -2, 3]);
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        assert!(!c.is_unit());
        assert!(!c.is_tautology());
        assert!(c.contains(Lit::from_dimacs(-2)));
        assert!(!c.contains(Lit::from_dimacs(2)));

        let t = Clause::from_dimacs(&[1, -1]);
        assert!(t.is_tautology());
    }

    #[test]
    fn clause_eval_against_model() {
        let c = Clause::from_dimacs(&[1, -2]);
        assert!(c.eval(&[true, true]));
        assert!(c.eval(&[false, false]));
        assert!(!c.eval(&[false, true]));
    }

    #[test]
    fn clause_dedup() {
        let mut c = Clause::from_dimacs(&[1, 1, -2, 1]);
        c.dedup();
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn display_forms() {
        let c = Clause::from_dimacs(&[1, -2]);
        assert_eq!(format!("{c}"), "(x0 | !x1)");
    }
}
