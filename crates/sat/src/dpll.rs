//! A chronological DPLL solver.
//!
//! This is the textbook Davis–Putnam–Logemann–Loveland procedure: unit
//! propagation, pure-literal elimination, and chronological backtracking on
//! a most-occurrences branching heuristic. It serves two roles in the
//! reproduction: a differential-testing oracle for the CDCL solver, and the
//! "DPLL lookahead" phase of cube-and-conquer whose per-node broadcast /
//! implication traffic the REASON hardware pipelines (paper Fig. 9).

use crate::cnf::Cnf;
use crate::types::{Lit, Var};
use crate::Solution;

/// Statistics for a DPLL run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DpllStats {
    /// Branching decisions.
    pub decisions: u64,
    /// Literals fixed by unit propagation.
    pub unit_propagations: u64,
    /// Literals fixed by pure-literal elimination.
    pub pure_literals: u64,
    /// Chronological backtracks.
    pub backtracks: u64,
}

/// A simple DPLL solver.
///
/// ```
/// use reason_sat::{Cnf, DpllSolver};
/// let cnf = Cnf::from_clauses(2, vec![vec![1, 2], vec![-1, 2]]);
/// assert!(DpllSolver::new(&cnf).solve().is_sat());
/// ```
#[derive(Debug)]
pub struct DpllSolver {
    cnf: Cnf,
    stats: DpllStats,
}

const UNASSIGNED: u8 = 2;

impl DpllSolver {
    /// Creates a solver over a copy of `cnf`.
    pub fn new(cnf: &Cnf) -> Self {
        DpllSolver { cnf: cnf.clone(), stats: DpllStats::default() }
    }

    /// Statistics for the most recent [`solve`](Self::solve) call.
    pub fn stats(&self) -> &DpllStats {
        &self.stats
    }

    /// Runs the DPLL search.
    pub fn solve(&mut self) -> Solution {
        self.stats = DpllStats::default();
        let mut assign = vec![UNASSIGNED; self.cnf.num_vars()];
        if self.search(&mut assign) {
            let model = assign.iter().map(|&a| a == 1).collect();
            Solution::Sat(model)
        } else {
            Solution::Unsat
        }
    }

    /// Returns the literals implied by unit propagation under `assumption`,
    /// or `None` if the assumption leads to an immediate conflict. Exposed
    /// for the lookahead heuristic.
    pub fn propagate_assumption(&mut self, assumption: Lit) -> Option<Vec<Lit>> {
        let mut assign = vec![UNASSIGNED; self.cnf.num_vars()];
        assign[assumption.var().index()] = u8::from(!assumption.is_neg());
        let mut implied = vec![assumption];
        match self.unit_propagate(&mut assign, &mut implied) {
            PropResult::Conflict => None,
            _ => Some(implied),
        }
    }

    fn search(&mut self, assign: &mut [u8]) -> bool {
        let mut implied: Vec<Lit> = Vec::new();
        match self.unit_propagate(assign, &mut implied) {
            PropResult::Conflict => {
                self.undo(assign, &implied);
                self.stats.backtracks += 1;
                return false;
            }
            PropResult::Fixpoint => {}
        }
        let pures = self.fix_pure_literals(assign);
        implied.extend_from_slice(&pures);

        let branch_var = self.pick_branch_var(assign);
        let Some(v) = branch_var else {
            // All clauses satisfied or all vars assigned: verify.
            if self.all_satisfied(assign) {
                return true;
            }
            self.undo(assign, &implied);
            self.stats.backtracks += 1;
            return false;
        };

        self.stats.decisions += 1;
        for &value in &[true, false] {
            assign[v.index()] = u8::from(value);
            if self.search(assign) {
                return true;
            }
            assign[v.index()] = UNASSIGNED;
        }
        self.undo(assign, &implied);
        self.stats.backtracks += 1;
        false
    }

    fn undo(&self, assign: &mut [u8], lits: &[Lit]) {
        for l in lits {
            assign[l.var().index()] = UNASSIGNED;
        }
    }

    fn unit_propagate(&mut self, assign: &mut [u8], implied: &mut Vec<Lit>) -> PropResult {
        loop {
            let mut changed = false;
            for clause in self.cnf.clauses() {
                let mut unassigned: Option<Lit> = None;
                let mut num_unassigned = 0;
                let mut satisfied = false;
                for &l in clause.iter() {
                    match assign[l.var().index()] {
                        UNASSIGNED => {
                            num_unassigned += 1;
                            unassigned = Some(l);
                        }
                        v => {
                            if l.eval(v == 1) {
                                satisfied = true;
                                break;
                            }
                        }
                    }
                }
                if satisfied {
                    continue;
                }
                match num_unassigned {
                    0 => return PropResult::Conflict,
                    1 => {
                        let l = unassigned.unwrap();
                        assign[l.var().index()] = u8::from(!l.is_neg());
                        implied.push(l);
                        self.stats.unit_propagations += 1;
                        changed = true;
                    }
                    _ => {}
                }
            }
            if !changed {
                return PropResult::Fixpoint;
            }
        }
    }

    fn fix_pure_literals(&mut self, assign: &mut [u8]) -> Vec<Lit> {
        let n = self.cnf.num_vars();
        let mut pos = vec![false; n];
        let mut neg = vec![false; n];
        for clause in self.cnf.clauses() {
            // Only unsatisfied clauses contribute occurrences.
            if clause.iter().any(|&l| {
                let a = assign[l.var().index()];
                a != UNASSIGNED && l.eval(a == 1)
            }) {
                continue;
            }
            for &l in clause.iter() {
                if assign[l.var().index()] == UNASSIGNED {
                    if l.is_neg() {
                        neg[l.var().index()] = true;
                    } else {
                        pos[l.var().index()] = true;
                    }
                }
            }
        }
        let mut fixed = Vec::new();
        for v in 0..n {
            if assign[v] != UNASSIGNED {
                continue;
            }
            let lit = match (pos[v], neg[v]) {
                (true, false) => Var::new(v).pos(),
                (false, true) => Var::new(v).neg(),
                _ => continue,
            };
            assign[v] = u8::from(!lit.is_neg());
            fixed.push(lit);
            self.stats.pure_literals += 1;
        }
        fixed
    }

    fn pick_branch_var(&self, assign: &[u8]) -> Option<Var> {
        let mut counts = vec![0u32; self.cnf.num_vars()];
        for clause in self.cnf.clauses() {
            if clause.iter().any(|&l| {
                let a = assign[l.var().index()];
                a != UNASSIGNED && l.eval(a == 1)
            }) {
                continue;
            }
            for &l in clause.iter() {
                if assign[l.var().index()] == UNASSIGNED {
                    counts[l.var().index()] += 1;
                }
            }
        }
        counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .max_by_key(|&(_, &c)| c)
            .map(|(v, _)| Var::new(v))
    }

    fn all_satisfied(&self, assign: &[u8]) -> bool {
        self.cnf.clauses().iter().all(|clause| {
            clause.iter().any(|&l| {
                let a = assign[l.var().index()];
                a != UNASSIGNED && l.eval(a == 1)
            })
        })
    }
}

enum PropResult {
    Conflict,
    Fixpoint,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force;
    use crate::gen::{pigeonhole, random_ksat};

    #[test]
    fn agrees_with_brute_force() {
        for seed in 0..25 {
            let cnf = random_ksat(8, 28, 3, seed);
            let expect = brute_force(&cnf).is_sat();
            let mut dpll = DpllSolver::new(&cnf);
            let got = dpll.solve();
            assert_eq!(got.is_sat(), expect, "dpll wrong on seed {seed}");
            if let Solution::Sat(m) = got {
                assert!(cnf.eval(&m));
            }
        }
    }

    #[test]
    fn pigeonhole_small_unsat() {
        let cnf = pigeonhole(3);
        assert!(!DpllSolver::new(&cnf).solve().is_sat());
    }

    #[test]
    fn pure_literal_elimination_used() {
        // x2 appears only positively.
        let cnf = Cnf::from_clauses(3, vec![vec![1, 3], vec![-1, 3], vec![1, 2]]);
        let mut s = DpllSolver::new(&cnf);
        assert!(s.solve().is_sat());
        assert!(s.stats().pure_literals > 0);
    }

    #[test]
    fn propagate_assumption_reports_implications() {
        // !x0 -> x1 -> x2
        let cnf = Cnf::from_clauses(3, vec![vec![1, 2], vec![-2, 3]]);
        let mut s = DpllSolver::new(&cnf);
        let implied = s.propagate_assumption(Var::new(0).neg()).unwrap();
        assert!(implied.contains(&Var::new(1).pos()));
        assert!(implied.contains(&Var::new(2).pos()));
    }

    #[test]
    fn propagate_assumption_detects_conflict() {
        let cnf = Cnf::from_clauses(2, vec![vec![1], vec![-1, 2], vec![-1, -2]]);
        let mut s = DpllSolver::new(&cnf);
        assert!(s.propagate_assumption(Var::new(0).pos()).is_none());
    }
}
