//! Seeded SAT instance generators.
//!
//! The REASON workload suite needs reproducible logic workloads at
//! controllable difficulty. These generators cover the three families used
//! by the paper-shaped experiments: uniform random k-SAT (tunable
//! clause/variable ratio), pigeonhole formulas (provably hard, UNSAT), and
//! graph-coloring encodings (structured, mixed SAT/UNSAT).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::cnf::Cnf;
use crate::types::{Clause, Lit, Var};

/// Generates a uniform random k-SAT formula with `num_vars` variables and
/// `num_clauses` clauses of width `k`, deterministically from `seed`.
///
/// Clauses contain `k` distinct variables with independent random polarity.
///
/// # Panics
///
/// Panics if `k == 0` or `k > num_vars`.
///
/// ```
/// use reason_sat::gen::random_ksat;
/// let cnf = random_ksat(20, 85, 3, 7);
/// assert_eq!(cnf.num_vars(), 20);
/// assert_eq!(cnf.num_clauses(), 85);
/// assert_eq!(cnf, random_ksat(20, 85, 3, 7)); // deterministic
/// ```
pub fn random_ksat(num_vars: usize, num_clauses: usize, k: usize, seed: u64) -> Cnf {
    assert!(k > 0 && k <= num_vars, "clause width must be in 1..=num_vars");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cnf = Cnf::new(num_vars);
    let mut vars: Vec<usize> = (0..num_vars).collect();
    for _ in 0..num_clauses {
        vars.shuffle(&mut rng);
        let lits: Vec<Lit> =
            vars[..k].iter().map(|&v| Lit::new(Var::new(v), rng.gen_bool(0.5))).collect();
        cnf.add_clause(Clause::new(lits));
    }
    cnf
}

/// Generates the pigeonhole principle PHP(`holes`): `holes + 1` pigeons into
/// `holes` holes. Always unsatisfiable; resolution proofs are exponential,
/// making these the standard hard UNSAT stressors.
///
/// Variable `p * holes + h` means "pigeon `p` sits in hole `h`".
pub fn pigeonhole(holes: usize) -> Cnf {
    let pigeons = holes + 1;
    let var = |p: usize, h: usize| Var::new(p * holes + h);
    let mut cnf = Cnf::new(pigeons * holes);
    // Every pigeon sits somewhere.
    for p in 0..pigeons {
        cnf.add_clause((0..holes).map(|h| var(p, h).pos()).collect());
    }
    // No two pigeons share a hole.
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                cnf.add_clause(Clause::new(vec![var(p1, h).neg(), var(p2, h).neg()]));
            }
        }
    }
    cnf
}

/// Generates a `colors`-coloring encoding of a random graph with
/// `num_nodes` nodes and `num_edges` distinct edges.
///
/// Variable `n * colors + c` means "node `n` has color `c`".
///
/// # Panics
///
/// Panics if more edges are requested than the complete graph has, or if
/// `num_nodes < 2`.
pub fn graph_coloring(num_nodes: usize, num_edges: usize, colors: usize, seed: u64) -> Cnf {
    assert!(num_nodes >= 2, "need at least two nodes");
    let max_edges = num_nodes * (num_nodes - 1) / 2;
    assert!(num_edges <= max_edges, "requested more edges than the complete graph has");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut all_edges: Vec<(usize, usize)> = Vec::with_capacity(max_edges);
    for a in 0..num_nodes {
        for b in (a + 1)..num_nodes {
            all_edges.push((a, b));
        }
    }
    all_edges.shuffle(&mut rng);
    all_edges.truncate(num_edges);

    let var = |n: usize, c: usize| Var::new(n * colors + c);
    let mut cnf = Cnf::new(num_nodes * colors);
    // Every node gets at least one color.
    for n in 0..num_nodes {
        cnf.add_clause((0..colors).map(|c| var(n, c).pos()).collect());
    }
    // At most one color per node.
    for n in 0..num_nodes {
        for c1 in 0..colors {
            for c2 in (c1 + 1)..colors {
                cnf.add_clause(Clause::new(vec![var(n, c1).neg(), var(n, c2).neg()]));
            }
        }
    }
    // Adjacent nodes differ.
    for (a, b) in all_edges {
        for c in 0..colors {
            cnf.add_clause(Clause::new(vec![var(a, c).neg(), var(b, c).neg()]));
        }
    }
    cnf
}

/// Generates a satisfiable "planted" random 3-SAT instance: a hidden model
/// is drawn first and every sampled clause is checked to be satisfied by
/// it. Useful when experiments require guaranteed-SAT workloads.
pub fn planted_ksat(num_vars: usize, num_clauses: usize, k: usize, seed: u64) -> Cnf {
    assert!(k > 0 && k <= num_vars, "clause width must be in 1..=num_vars");
    let mut rng = StdRng::seed_from_u64(seed);
    let model: Vec<bool> = (0..num_vars).map(|_| rng.gen_bool(0.5)).collect();
    let mut cnf = Cnf::new(num_vars);
    let mut vars: Vec<usize> = (0..num_vars).collect();
    while cnf.num_clauses() < num_clauses {
        vars.shuffle(&mut rng);
        let lits: Vec<Lit> =
            vars[..k].iter().map(|&v| Lit::new(Var::new(v), rng.gen_bool(0.5))).collect();
        let clause = Clause::new(lits);
        if clause.eval(&model) {
            cnf.add_clause(clause);
        }
    }
    cnf
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force;
    use crate::cdcl::CdclSolver;

    #[test]
    fn random_ksat_is_deterministic_and_well_formed() {
        let a = random_ksat(10, 40, 3, 99);
        let b = random_ksat(10, 40, 3, 99);
        assert_eq!(a, b);
        for c in a.clauses() {
            assert_eq!(c.len(), 3);
            assert!(!c.is_tautology());
        }
        let c = random_ksat(10, 40, 3, 100);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn pigeonhole_is_unsat() {
        for holes in 1..=3 {
            let cnf = pigeonhole(holes);
            assert!(!brute_force(&cnf).is_sat(), "PHP({holes})");
        }
    }

    #[test]
    fn coloring_triangle_two_colors_unsat() {
        // A triangle is not 2-colorable.
        let cnf = graph_coloring(3, 3, 2, 0);
        assert!(!CdclSolver::new(&cnf).solve().is_sat());
    }

    #[test]
    fn coloring_triangle_three_colors_sat() {
        let cnf = graph_coloring(3, 3, 3, 0);
        assert!(CdclSolver::new(&cnf).solve().is_sat());
    }

    #[test]
    fn planted_instances_are_sat() {
        for seed in 0..5 {
            let cnf = planted_ksat(15, 70, 3, seed);
            assert!(CdclSolver::new(&cnf).solve().is_sat(), "planted seed {seed}");
        }
    }
}
