//! Lookahead literal scoring for cube splitting.
//!
//! Cube-and-conquer (Heule et al., paper reference \[27\]) guides CDCL by a
//! lookahead phase: candidate split variables are evaluated by propagating
//! each polarity and measuring how strongly the formula shrinks. REASON's
//! working example (paper Fig. 9, "Lookahead: LA(A) < LA(B)") ranks DPLL
//! tree nodes by exactly this score.

use crate::cnf::Cnf;
use crate::dpll::DpllSolver;
use crate::types::{Lit, Var};

/// The lookahead measurement for one variable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LookaheadScore {
    /// The variable measured.
    pub var: Var,
    /// Literals implied when the positive literal is assumed
    /// (`None` encodes an immediate conflict ⇒ failed literal).
    pub pos_implied: Option<usize>,
    /// Literals implied when the negative literal is assumed.
    pub neg_implied: Option<usize>,
}

impl LookaheadScore {
    /// The product score `(1 + pos) * (1 + neg)` used to rank split
    /// variables; conflicts count as maximal reduction on that side.
    pub fn product(&self) -> u64 {
        let p = self.pos_implied.map_or(u64::MAX >> 33, |n| n as u64);
        let n = self.neg_implied.map_or(u64::MAX >> 33, |n| n as u64);
        (1 + p).saturating_mul(1 + n)
    }

    /// `true` if either polarity conflicts immediately — the other polarity
    /// is then forced (a *failed literal*).
    pub fn failed_literal(&self) -> Option<Lit> {
        match (self.pos_implied, self.neg_implied) {
            (None, Some(_)) => Some(self.var.neg()),
            (Some(_), None) => Some(self.var.pos()),
            _ => None,
        }
    }
}

/// Lookahead engine over a formula.
///
/// ```
/// use reason_sat::{Cnf, Lookahead};
/// let cnf = Cnf::from_clauses(3, vec![vec![1, 2], vec![-1, 3], vec![-2, 3]]);
/// let mut la = Lookahead::new(&cnf);
/// let best = la.best_split(4).unwrap();
/// assert!(best.index() < 3);
/// ```
#[derive(Debug)]
pub struct Lookahead {
    dpll: DpllSolver,
    num_vars: usize,
    occurrences: Vec<u32>,
}

impl Lookahead {
    /// Builds a lookahead engine for `cnf`.
    pub fn new(cnf: &Cnf) -> Self {
        let mut occurrences = vec![0u32; cnf.num_vars()];
        for clause in cnf.clauses() {
            for lit in clause.iter() {
                occurrences[lit.var().index()] += 1;
            }
        }
        Lookahead { dpll: DpllSolver::new(cnf), num_vars: cnf.num_vars(), occurrences }
    }

    /// Scores a single variable by propagating both polarities.
    pub fn score(&mut self, var: Var) -> LookaheadScore {
        let pos = self.dpll.propagate_assumption(var.pos()).map(|l| l.len());
        let neg = self.dpll.propagate_assumption(var.neg()).map(|l| l.len());
        LookaheadScore { var, pos_implied: pos, neg_implied: neg }
    }

    /// Scores the `num_candidates` most frequently occurring variables,
    /// excluding those listed in `frozen` (already decided in the cube).
    pub fn score_candidates(
        &mut self,
        num_candidates: usize,
        frozen: &[Var],
    ) -> Vec<LookaheadScore> {
        let mut by_occurrence: Vec<usize> = (0..self.num_vars).collect();
        by_occurrence.sort_by_key(|&v| std::cmp::Reverse(self.occurrences[v]));
        let frozen_set: std::collections::HashSet<usize> =
            frozen.iter().map(|v| v.index()).collect();
        let candidates: Vec<usize> = by_occurrence
            .into_iter()
            .filter(|v| !frozen_set.contains(v) && self.occurrences[*v] > 0)
            .take(num_candidates)
            .collect();
        candidates.into_iter().map(|v| self.score(Var::new(v))).collect()
    }

    /// Picks the best split variable among the top `num_candidates`
    /// occurring variables, by maximal product score. Returns `None` when no
    /// candidate exists (no variable occurs in any clause).
    pub fn best_split(&mut self, num_candidates: usize) -> Option<Var> {
        self.score_candidates(num_candidates, &[])
            .into_iter()
            .max_by_key(LookaheadScore::product)
            .map(|s| s.var)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn score_counts_implications() {
        // x0 -> x1 -> x2: assuming x0 implies 3 literals total (x0,x1,x2);
        // assuming !x0 implies just itself.
        let cnf = Cnf::from_clauses(3, vec![vec![-1, 2], vec![-2, 3]]);
        let mut la = Lookahead::new(&cnf);
        let s = la.score(Var::new(0));
        assert_eq!(s.pos_implied, Some(3));
        assert_eq!(s.neg_implied, Some(1));
        assert!(s.failed_literal().is_none());
    }

    #[test]
    fn failed_literal_detected() {
        // x0 -> x1 and x0 -> !x1: assuming x0 conflicts, so !x0 is forced.
        let cnf = Cnf::from_clauses(2, vec![vec![-1, 2], vec![-1, -2]]);
        let mut la = Lookahead::new(&cnf);
        let s = la.score(Var::new(0));
        assert_eq!(s.pos_implied, None);
        assert_eq!(s.failed_literal(), Some(Var::new(0).neg()));
    }

    #[test]
    fn best_split_prefers_high_impact_variable() {
        // x0 implies a long chain both ways; x3 is nearly free.
        let cnf = Cnf::from_clauses(
            5,
            vec![vec![-1, 2], vec![-2, 3], vec![1, 4], vec![-4, 5], vec![4, 5]],
        );
        let mut la = Lookahead::new(&cnf);
        let best = la.best_split(5).unwrap();
        // The chosen variable must maximize the product score.
        let scores = la.score_candidates(5, &[]);
        let max = scores.iter().map(LookaheadScore::product).max().unwrap();
        let best_score = scores.iter().find(|s| s.var == best).unwrap();
        assert_eq!(best_score.product(), max);
    }

    #[test]
    fn frozen_variables_are_skipped() {
        let cnf = Cnf::from_clauses(3, vec![vec![-1, 2], vec![-2, 3], vec![1, 3]]);
        let mut la = Lookahead::new(&cnf);
        let scores = la.score_candidates(3, &[Var::new(0)]);
        assert!(scores.iter().all(|s| s.var.index() != 0));
    }
}
