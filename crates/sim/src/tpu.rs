//! A TPU-like systolic-array model (paper Fig. 13 baseline).
//!
//! Configured like the paper's SCALE-Sim setup: eight 128×128 systolic
//! arrays. GEMM-shaped work maps with high utilization; irregular
//! symbolic/probabilistic DAG work cannot enter the array and falls back
//! to the scalar/vector frontend, which is the Fig. 13 result — "similar
//! performance in neural operations, \[but\] superior symbolic logic and
//! probabilistic operation efficiency [for REASON]".

use serde::{Deserialize, Serialize};

use crate::kernels::{KernelClass, KernelProfile};

/// A systolic-array accelerator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TpuModel {
    /// Device name.
    pub name: String,
    /// Number of systolic arrays.
    pub arrays: usize,
    /// Array dimension (`dim × dim` MACs each).
    pub dim: usize,
    /// Clock in Hz.
    pub clock_hz: f64,
    /// Board power in watts.
    pub tdp_w: f64,
    /// Scalar/vector frontend throughput for non-GEMM work, op/s.
    pub scalar_ops: f64,
}

impl TpuModel {
    /// The paper's TPU-like configuration: 8 arrays of 128×128 at ~940 MHz.
    pub fn paper() -> Self {
        TpuModel {
            name: "TPU-like".into(),
            arrays: 8,
            dim: 128,
            clock_hz: 940e6,
            tdp_w: 192.0,
            scalar_ops: 0.15e9,
        }
    }

    /// Peak MAC/s across all arrays.
    pub fn peak_macs(&self) -> f64 {
        self.arrays as f64 * (self.dim * self.dim) as f64 * self.clock_hz
    }

    /// Runs one kernel.
    pub fn run(&self, kernel: &KernelProfile) -> TpuReport {
        // GEMM pipelines through the array (output-stationary fill/drain
        // folded into the 0.8); irregular work bypasses the array entirely
        // and runs on the scalar/vector frontend at *absolute* throughput —
        // an idle 128x128 array contributes nothing to BCP.
        let (flops_per_sec, note) = match kernel.class {
            KernelClass::Neural => (2.0 * self.peak_macs() * 0.80, "systolic"),
            KernelClass::Symbolic => (self.scalar_ops, "scalar fallback"),
            KernelClass::Probabilistic => (self.scalar_ops * 1.6, "scalar fallback"),
        };
        let utilization = flops_per_sec / (2.0 * self.peak_macs());
        let seconds = kernel.flops / flops_per_sec;
        let activity = match kernel.class {
            KernelClass::Neural => 0.75,
            _ => 0.30,
        };
        TpuReport {
            device: self.name.clone(),
            seconds,
            energy_j: self.tdp_w * activity * seconds,
            utilization,
            mapping: note,
        }
    }
}

/// TPU run result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TpuReport {
    /// Device name.
    pub device: String,
    /// Latency in seconds.
    pub seconds: f64,
    /// Energy in joules.
    pub energy_j: f64,
    /// Achieved fraction of peak.
    pub utilization: f64,
    /// How the kernel was mapped.
    pub mapping: &'static str,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_runs_near_peak() {
        let tpu = TpuModel::paper();
        let r = tpu.run(&KernelProfile::matmul(1024));
        assert!(r.utilization > 0.5);
        assert!(tpu.run(&KernelProfile::logic_bcp(1000)).utilization < 1e-3);
        assert_eq!(r.mapping, "systolic");
    }

    #[test]
    fn symbolic_work_collapses_to_scalar() {
        let tpu = TpuModel::paper();
        let neural = tpu.run(&KernelProfile::matmul(256));
        let logic = tpu.run(&KernelProfile::logic_bcp(100_000));
        // Per-op cost explodes on irregular work (Fig. 13: 74–110× worse
        // than REASON on symbolic kernels).
        let neural_cost = neural.seconds / KernelProfile::matmul(256).flops;
        let logic_cost = logic.seconds / KernelProfile::logic_bcp(100_000).flops;
        assert!(logic_cost > 50.0 * neural_cost);
        assert_eq!(logic.mapping, "scalar fallback");
    }

    #[test]
    fn peak_matches_configuration() {
        let tpu = TpuModel::paper();
        assert!((tpu.peak_macs() - 8.0 * 128.0 * 128.0 * 940e6).abs() < 1.0);
    }
}
