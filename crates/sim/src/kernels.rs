//! Kernel profiles: the workload units the baseline models consume.
//!
//! A [`KernelProfile`] captures what the paper's Nsight profiling captures
//! per kernel: arithmetic work, data footprint, a representative access
//! trace, exploitable parallelism, and control divergence. Builders cover
//! the six kernels of Table II.

use serde::{Deserialize, Serialize};

use crate::trace::AccessTrace;

/// Kernel family (paper Table II column groups).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KernelClass {
    /// Dense tensor work (MatMul, Softmax).
    Neural,
    /// Logic deduction (BCP, clause evaluation) and sparse algebra.
    Symbolic,
    /// Probabilistic aggregation (marginals, Bayesian updates).
    Probabilistic,
}

impl KernelClass {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            KernelClass::Neural => "neural",
            KernelClass::Symbolic => "symbolic",
            KernelClass::Probabilistic => "probabilistic",
        }
    }
}

/// A device-independent kernel description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelProfile {
    /// Kernel name (Table II row).
    pub name: String,
    /// Family.
    pub class: KernelClass,
    /// Floating-point (or logic-op) work.
    pub flops: f64,
    /// Compulsory data movement in bytes.
    pub bytes: f64,
    /// Representative (sampled) access trace.
    pub trace: AccessTrace,
    /// Fraction of work that parallelizes (Amdahl).
    pub parallel_fraction: f64,
    /// Fraction of branches that diverge within a warp.
    pub branch_divergence: f64,
}

impl KernelProfile {
    /// Operational intensity in FLOPS/byte (the roofline x-axis).
    pub fn operational_intensity(&self) -> f64 {
        if self.bytes == 0.0 {
            0.0
        } else {
            self.flops / self.bytes
        }
    }

    /// Dense `n × n` GEMM: streaming accesses, near-perfect parallelism.
    pub fn matmul(n: usize) -> Self {
        let flops = 2.0 * (n as f64).powi(3);
        let bytes = 3.0 * 4.0 * (n as f64).powi(2);
        KernelProfile {
            name: format!("MatMul{n}"),
            class: KernelClass::Neural,
            flops,
            bytes,
            trace: AccessTrace::streaming(4096, 4),
            parallel_fraction: 0.99999,
            branch_divergence: 0.01,
        }
    }

    /// Row-wise softmax over an `n × n` activation block.
    pub fn softmax(n: usize) -> Self {
        let elems = (n as f64).powi(2);
        KernelProfile {
            name: format!("Softmax{n}"),
            class: KernelClass::Neural,
            flops: 5.0 * elems,
            bytes: 2.0 * 4.0 * elems,
            trace: AccessTrace::streaming(4096, 4),
            parallel_fraction: 0.9995,
            branch_divergence: 0.05,
        }
    }

    /// Sparse matrix-vector product over an `n × n` matrix at `density`.
    pub fn sparse_matvec(n: usize, density: f64) -> Self {
        let nnz = (n as f64).powi(2) * density;
        KernelProfile {
            name: format!("SparseMV{n}"),
            class: KernelClass::Symbolic,
            flops: 2.0 * nnz,
            bytes: 12.0 * nnz + 8.0 * n as f64,
            trace: AccessTrace::pointer_chasing(4096, (16.0 * nnz) as u64 | 0xFFF, 6, 11),
            parallel_fraction: 0.55,
            branch_divergence: 0.35,
        }
    }

    /// Boolean constraint propagation over `clauses` clauses: linked-list
    /// walks, heavy divergence, little arithmetic.
    pub fn logic_bcp(clauses: usize) -> Self {
        let work = clauses as f64 * 3.0;
        KernelProfile {
            name: format!("Logic{clauses}"),
            class: KernelClass::Symbolic,
            flops: work,
            bytes: 16.0 * clauses as f64,
            trace: AccessTrace::pointer_chasing(4096, (32 * clauses.max(1024)) as u64, 3, 13),
            parallel_fraction: 0.25,
            branch_divergence: 0.55,
        }
    }

    /// Marginal inference over a probabilistic circuit with `nodes` nodes:
    /// scattered child gathers, moderate parallelism per layer.
    pub fn pc_marginal(nodes: usize) -> Self {
        KernelProfile {
            name: format!("Marginal{nodes}"),
            class: KernelClass::Probabilistic,
            flops: 2.0 * nodes as f64,
            bytes: 12.0 * nodes as f64,
            trace: AccessTrace::scattered(4096, (16 * nodes.max(4096)) as u64, 17),
            parallel_fraction: 0.45,
            branch_divergence: 0.40,
        }
    }

    /// Batched marginal inference: `lanes` queries share one traversal
    /// of a `nodes`-node circuit arena. Structure reads amortize across
    /// the batch and the per-lane slab arithmetic is contiguous, so
    /// operational intensity, parallel fraction, and coalescing all
    /// improve with `lanes`; at `lanes == 1` the knobs match
    /// [`KernelProfile::pc_marginal`].
    pub fn pc_batch(nodes: usize, lanes: usize) -> Self {
        let lanes = lanes.max(1);
        let l = lanes as f64;
        let n = nodes as f64;
        KernelProfile {
            name: format!("Batch{nodes}x{lanes}"),
            class: KernelClass::Probabilistic,
            flops: 2.0 * n * l,
            bytes: 12.0 * n + 8.0 * n * l,
            trace: if lanes >= 8 {
                AccessTrace::streaming(4096, 8)
            } else {
                AccessTrace::scattered(4096, (16 * nodes.max(4096)) as u64, 17)
            },
            parallel_fraction: 0.45 + 0.55 * (1.0 - 1.0 / l),
            branch_divergence: 0.40 / l,
        }
    }

    /// Bayesian (forward) update over `states` states for `steps` steps:
    /// repeated small reductions with state reuse.
    pub fn bayesian_update(states: usize, steps: usize) -> Self {
        let work = (states * states * steps) as f64 * 2.0;
        KernelProfile {
            name: format!("Bayesian{states}x{steps}"),
            class: KernelClass::Probabilistic,
            flops: work,
            bytes: 8.0 * (states * states) as f64 + 8.0 * (states * steps) as f64,
            trace: AccessTrace::pointer_chasing(4096, (64 * states * states) as u64, 4, 23),
            parallel_fraction: 0.40,
            branch_divergence: 0.45,
        }
    }

    /// The six Table II kernels at the paper's representative sizes.
    pub fn table2_suite() -> Vec<KernelProfile> {
        vec![
            KernelProfile::matmul(512),
            KernelProfile::softmax(512),
            KernelProfile::sparse_matvec(2048, 0.05),
            KernelProfile::logic_bcp(20_000),
            KernelProfile::pc_marginal(50_000),
            KernelProfile::bayesian_update(256, 64),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intensity_ordering_matches_roofline_expectations() {
        // GEMM is compute-dense; logic/probabilistic kernels are not.
        let mm = KernelProfile::matmul(512);
        let bcp = KernelProfile::logic_bcp(20_000);
        let marg = KernelProfile::pc_marginal(50_000);
        assert!(mm.operational_intensity() > 10.0);
        assert!(bcp.operational_intensity() < 1.0);
        assert!(marg.operational_intensity() < 1.0);
    }

    #[test]
    fn neural_traces_coalesce_symbolic_do_not() {
        let mm = KernelProfile::matmul(256);
        let bcp = KernelProfile::logic_bcp(10_000);
        assert!(mm.trace.coalescing_factor() > 0.8);
        assert!(bcp.trace.coalescing_factor() < 0.4);
    }

    #[test]
    fn batching_amortizes_the_marginal_kernel() {
        let single = KernelProfile::pc_batch(50_000, 1);
        let batched = KernelProfile::pc_batch(50_000, 32);
        let marg = KernelProfile::pc_marginal(50_000);
        // One lane keeps pc_marginal's execution character.
        assert_eq!(single.parallel_fraction, marg.parallel_fraction);
        assert_eq!(single.branch_divergence, marg.branch_divergence);
        // Lanes amortize structure reads and regularize the access
        // pattern: intensity and parallelism rise, divergence falls.
        assert!(batched.operational_intensity() > marg.operational_intensity());
        assert!(batched.parallel_fraction > single.parallel_fraction);
        assert!(batched.branch_divergence < single.branch_divergence);
        assert!(batched.trace.coalescing_factor() > single.trace.coalescing_factor());
    }

    #[test]
    fn suite_has_six_kernels() {
        let suite = KernelProfile::table2_suite();
        assert_eq!(suite.len(), 6);
        assert_eq!(suite.iter().filter(|k| k.class == KernelClass::Neural).count(), 2);
        assert_eq!(suite.iter().filter(|k| k.class == KernelClass::Symbolic).count(), 2);
        assert_eq!(suite.iter().filter(|k| k.class == KernelClass::Probabilistic).count(), 2);
    }
}
