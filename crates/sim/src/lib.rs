//! `reason-sim` — baseline hardware models for the REASON evaluation.
//!
//! The paper compares REASON against real machines (Xeon CPU, RTX A6000,
//! Jetson Orin NX, V100/A100) and against ML accelerators (a TPU-like
//! systolic array via SCALE-Sim and a DPU-like tree array via MAERI).
//! None of that hardware exists in this environment, so this crate builds
//! the measurement substrate: trace-driven analytic models that reproduce
//! the *counters* the paper profiles with Nsight (Table II), the roofline
//! placement of Fig. 3(d), and the runtime/energy baselines behind
//! Figs. 11–13.
//!
//! Modules:
//!
//! * [`cache`] — a set-associative LRU cache simulator (L1/L2) consuming
//!   address traces.
//! * [`trace`] — memory-access traces with locality statistics, plus
//!   synthesizers for the characteristic patterns of each kernel family
//!   (streaming GEMM, row-major softmax, scattered sparse/logic walks).
//! * [`kernels`] — [`KernelProfile`] builders for the six Table II
//!   kernels (MatMul, Softmax, sparse MatVec, Logic, Marginal, Bayesian).
//! * [`gpu`] — the GPU SM model: warp divergence, coalescing from traces,
//!   cache hierarchy, DRAM bandwidth, Amdahl serialization; presets for
//!   A6000, Orin NX, V100, A100.
//! * [`cpu`] — a Xeon-class multicore model.
//! * [`tpu`] — a systolic-array model (SCALE-Sim-like utilization for
//!   GEMM, serialized execution of irregular DAG work).
//! * [`dpu`] — a DPU-like fixed-dataflow tree array (the paper's
//!   closest-prior accelerator baseline).
//! * [`roofline`] — attainable-performance analysis (Fig. 3(d)).

pub mod cache;
pub mod cpu;
pub mod dpu;
pub mod gpu;
pub mod kernels;
pub mod roofline;
pub mod tpu;
pub mod trace;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use cpu::{CpuModel, CpuReport};
pub use dpu::{DpuModel, DpuReport};
pub use gpu::{GpuKernelReport, GpuModel};
pub use kernels::{KernelClass, KernelProfile};
pub use roofline::{roofline_point, RooflinePoint};
pub use tpu::{TpuModel, TpuReport};
pub use trace::AccessTrace;
