//! Set-associative LRU cache simulation.

use serde::{Deserialize, Serialize};

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
}

impl CacheConfig {
    /// A 128 KiB, 128 B-line, 4-way L1 (the paper's simulated GPU L1).
    pub fn gpu_l1() -> Self {
        CacheConfig { capacity_bytes: 128 * 1024, line_bytes: 128, ways: 4 }
    }

    /// A 2 MiB, 128 B-line, 16-way L2.
    pub fn gpu_l2() -> Self {
        CacheConfig { capacity_bytes: 2 * 1024 * 1024, line_bytes: 128, ways: 16 }
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.capacity_bytes / (self.line_bytes * self.ways)
    }
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Accesses served from the cache.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]` (1 when no accesses occurred).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A set-associative LRU cache.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// `sets[set]` holds tags in LRU order (front = most recent).
    sets: Vec<Vec<u64>>,
    stats: CacheStats,
}

impl Cache {
    /// An empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sets or ways).
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.ways >= 1, "need at least one way");
        assert!(config.num_sets() >= 1, "capacity too small for geometry");
        Cache { config, sets: vec![Vec::new(); config.num_sets()], stats: CacheStats::default() }
    }

    /// The geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Counters so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Touches a byte address; returns `true` on hit.
    pub fn access(&mut self, address: u64) -> bool {
        let line = address / self.config.line_bytes as u64;
        let set = (line % self.sets.len() as u64) as usize;
        let tag = line / self.sets.len() as u64;
        let entries = &mut self.sets[set];
        if let Some(pos) = entries.iter().position(|&t| t == tag) {
            entries.remove(pos);
            entries.insert(0, tag);
            self.stats.hits += 1;
            true
        } else {
            entries.insert(0, tag);
            entries.truncate(self.config.ways);
            self.stats.misses += 1;
            false
        }
    }

    /// Runs a whole trace, returning the stats delta.
    pub fn run(&mut self, addresses: &[u64]) -> CacheStats {
        let before = self.stats;
        for &a in addresses {
            self.access(a);
        }
        CacheStats {
            hits: self.stats.hits - before.hits,
            misses: self.stats.misses - before.misses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut c = Cache::new(CacheConfig { capacity_bytes: 1024, line_bytes: 64, ways: 2 });
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(63)); // same line
        assert!(!c.access(64)); // next line
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_eviction() {
        // 1 set, 2 ways, 64B lines.
        let mut c = Cache::new(CacheConfig { capacity_bytes: 128, line_bytes: 64, ways: 2 });
        c.access(0); // line A
        c.access(64); // line B
        c.access(128); // line C evicts A
        assert!(!c.access(0), "A was evicted");
        assert!(c.access(128), "C stays resident");
    }

    #[test]
    fn streaming_misses_small_cache() {
        let mut c = Cache::new(CacheConfig { capacity_bytes: 4096, line_bytes: 128, ways: 4 });
        let trace: Vec<u64> = (0..1000u64).map(|i| i * 128).collect();
        let stats = c.run(&trace);
        assert_eq!(stats.hits, 0, "pure streaming never re-touches a line");
    }

    #[test]
    fn working_set_that_fits_hits_after_warmup() {
        let mut c = Cache::new(CacheConfig::gpu_l1());
        let trace: Vec<u64> = (0..256u64).map(|i| i * 128).collect();
        c.run(&trace); // warmup
        let stats = c.run(&trace);
        assert_eq!(stats.misses, 0, "32 KiB working set fits a 128 KiB L1");
    }

    #[test]
    fn hit_rate_bounds() {
        let s = CacheStats { hits: 3, misses: 1 };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 1.0);
    }
}
