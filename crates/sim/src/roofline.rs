//! Roofline analysis (paper Fig. 3(d)).
//!
//! Each kernel is placed at its operational intensity; attainable
//! performance is `min(peak_flops, bandwidth × intensity)`, and the
//! achieved point comes from a device model run. The paper's observation
//! — symbolic/probabilistic kernels sit far left, pinned under the
//! bandwidth roof — falls out of the kernel profiles.

use serde::{Deserialize, Serialize};

use crate::gpu::GpuModel;
use crate::kernels::KernelProfile;

/// One point on the roofline plot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RooflinePoint {
    /// Kernel name.
    pub name: String,
    /// Operational intensity (FLOPs/byte).
    pub intensity: f64,
    /// Attainable performance under the roofline (FLOP/s).
    pub attainable_flops: f64,
    /// Achieved performance from the device model (FLOP/s).
    pub achieved_flops: f64,
    /// `true` when the bandwidth roof (not the compute roof) binds.
    pub memory_bound: bool,
}

/// Places a kernel on a device's roofline.
pub fn roofline_point(gpu: &GpuModel, kernel: &KernelProfile) -> RooflinePoint {
    let intensity = kernel.operational_intensity();
    let bw_roof = gpu.peak_bw * intensity;
    let attainable = bw_roof.min(gpu.peak_flops);
    let report = gpu.run(kernel);
    let achieved = kernel.flops / report.seconds;
    RooflinePoint {
        name: kernel.name.clone(),
        intensity,
        attainable_flops: attainable,
        achieved_flops: achieved.min(attainable),
        memory_bound: bw_roof < gpu.peak_flops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbolic_kernels_are_under_the_bandwidth_roof() {
        let gpu = GpuModel::a6000();
        for k in [KernelProfile::logic_bcp(50_000), KernelProfile::pc_marginal(100_000)] {
            let p = roofline_point(&gpu, &k);
            assert!(p.memory_bound, "{} should be memory-bound", p.name);
            assert!(p.achieved_flops <= p.attainable_flops * 1.0001);
        }
    }

    #[test]
    fn large_gemm_reaches_the_compute_region() {
        let gpu = GpuModel::a6000();
        let p = roofline_point(&gpu, &KernelProfile::matmul(2048));
        assert!(!p.memory_bound, "large GEMM has high intensity");
        assert!(p.intensity > 100.0);
    }

    #[test]
    fn achieved_is_positive() {
        let gpu = GpuModel::orin_nx();
        let p = roofline_point(&gpu, &KernelProfile::bayesian_update(128, 32));
        assert!(p.achieved_flops > 0.0);
    }
}
