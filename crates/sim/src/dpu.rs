//! A DPU-like tree-array model (paper Fig. 13 and Table III baseline).
//!
//! DPU-v2 (paper reference \[46\]) executes irregular DAGs on a fixed-
//! dataflow tree array: 8 PEs / 56 nodes, 2.4 MB SRAM at 28 nm. It lacks
//! REASON's cycle-reconfigurable datapath, Benes operand crossbar,
//! conflict-aware bank mapping, and watched-literal hardware, so:
//! probabilistic DAGs run with materially lower node utilization (operand
//! routing conflicts), and symbolic (SAT) kernels must be *emulated*
//! arithmetically — the gap Fig. 13 quantifies.

use serde::{Deserialize, Serialize};

use crate::kernels::{KernelClass, KernelProfile};

/// A fixed-dataflow tree-array accelerator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DpuModel {
    /// Device name.
    pub name: String,
    /// Total compute nodes across trees.
    pub nodes: usize,
    /// Clock in Hz.
    pub clock_hz: f64,
    /// Average power in watts (Table III: 1.10 W).
    pub power_w: f64,
}

impl DpuModel {
    /// The paper's DPU-like configuration (Table III row).
    pub fn paper() -> Self {
        DpuModel { name: "DPU-like".into(), nodes: 56, clock_hz: 500e6, power_w: 1.10 }
    }

    /// Peak op/s across tree nodes.
    pub fn peak_ops(&self) -> f64 {
        self.nodes as f64 * self.clock_hz
    }

    /// Runs one kernel.
    pub fn run(&self, kernel: &KernelProfile) -> DpuReport {
        let utilization = match kernel.class {
            // Small neural kernels map onto the tree's MAC reduction well.
            KernelClass::Neural => 0.55,
            // Probabilistic DAGs fit the tree but the fixed interconnect
            // loses cycles to operand-bank conflicts and rigid mapping.
            KernelClass::Probabilistic => 0.08,
            // No comparator datapath or watched-literal memory: SAT-style
            // propagation is emulated with arithmetic ops and full scans.
            KernelClass::Symbolic => 0.012,
        };
        let seconds = kernel.flops / (self.peak_ops() * utilization);
        DpuReport {
            device: self.name.clone(),
            seconds,
            energy_j: self.power_w * seconds,
            utilization,
        }
    }
}

/// DPU run result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DpuReport {
    /// Device name.
    pub device: String,
    /// Latency in seconds.
    pub seconds: f64,
    /// Energy in joules.
    pub energy_j: f64,
    /// Achieved fraction of peak.
    pub utilization: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpu::TpuModel;

    #[test]
    fn dpu_beats_tpu_on_irregular_work() {
        // Fig. 13: on symbolic/probabilistic kernels the tree array is
        // much closer to REASON than the systolic array.
        let dpu = DpuModel::paper();
        let tpu = TpuModel::paper();
        let marg = KernelProfile::pc_marginal(200_000);
        assert!(dpu.run(&marg).seconds < tpu.run(&marg).seconds);
        let bcp = KernelProfile::logic_bcp(100_000);
        assert!(dpu.run(&bcp).seconds < tpu.run(&bcp).seconds);
    }

    #[test]
    fn symbolic_emulation_is_the_weak_spot() {
        let dpu = DpuModel::paper();
        let marg = dpu.run(&KernelProfile::pc_marginal(100_000));
        let bcp = dpu.run(&KernelProfile::logic_bcp(100_000));
        assert!(bcp.utilization < marg.utilization);
    }

    #[test]
    fn energy_uses_published_power() {
        let dpu = DpuModel::paper();
        let r = dpu.run(&KernelProfile::pc_marginal(50_000));
        assert!((r.energy_j / r.seconds - 1.10).abs() < 1e-9);
    }
}
