//! A Xeon-class multicore CPU model.
//!
//! The paper's CPU+GPU analysis (Sec. VII-C) finds "<5% CPU parallel
//! efficiency" on symbolic/probabilistic kernels; this model reproduces
//! that via per-class efficiency factors on top of the usual
//! compute-vs-bandwidth analysis.

use serde::{Deserialize, Serialize};

use crate::kernels::{KernelClass, KernelProfile};

/// A multicore CPU device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuModel {
    /// Device name.
    pub name: String,
    /// Core count.
    pub cores: usize,
    /// Peak vector throughput in FLOP/s.
    pub peak_flops: f64,
    /// Memory bandwidth in bytes/s.
    pub peak_bw: f64,
    /// Package power in watts.
    pub tdp_w: f64,
}

impl CpuModel {
    /// 4th-gen Xeon Scalable (paper Table III: 60 cores, 270 W).
    pub fn xeon() -> Self {
        CpuModel {
            name: "Xeon 8490H".into(),
            cores: 60,
            peak_flops: 7.3e12,
            peak_bw: 307e9,
            tdp_w: 270.0,
        }
    }

    /// Runs one kernel.
    pub fn run(&self, kernel: &KernelProfile) -> CpuReport {
        // Parallel efficiency per class: neural vectorizes, symbolic and
        // probabilistic kernels mostly do not (paper: <5%).
        let efficiency = match kernel.class {
            KernelClass::Neural => 0.60,
            KernelClass::Symbolic => 0.04,
            KernelClass::Probabilistic => 0.05,
        };
        let compute_time = kernel.flops / (self.peak_flops * efficiency);
        let locality = kernel.trace.coalescing_factor().clamp(0.05, 1.0);
        let memory_time = kernel.bytes / (self.peak_bw * locality.max(0.2));
        // Pointer chasing is latency-bound, not bandwidth-bound: each
        // non-local cache line costs a full ~80 ns round trip that a CPU
        // core cannot hide.
        let latency_time = kernel.bytes / 64.0 * (1.0 - locality) * 80e-9;
        let seconds = compute_time.max(memory_time).max(latency_time);
        let activity = 0.4 + 0.4 * (compute_time / seconds).min(1.0);
        CpuReport { device: self.name.clone(), seconds, energy_j: self.tdp_w * activity * seconds }
    }

    /// Sum over a kernel list.
    pub fn run_all(&self, kernels: &[KernelProfile]) -> (f64, f64) {
        kernels
            .iter()
            .map(|k| {
                let r = self.run(k);
                (r.seconds, r.energy_j)
            })
            .fold((0.0, 0.0), |acc, x| (acc.0 + x.0, acc.1 + x.1))
    }
}

/// CPU run result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuReport {
    /// Device name.
    pub device: String,
    /// Latency in seconds.
    pub seconds: f64,
    /// Energy in joules.
    pub energy_j: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::GpuModel;

    #[test]
    fn cpu_trails_gpu_on_neural_work() {
        let cpu = CpuModel::xeon();
        let gpu = GpuModel::a6000();
        let k = KernelProfile::matmul(1024);
        assert!(cpu.run(&k).seconds > gpu.run(&k).seconds);
    }

    #[test]
    fn symbolic_parallel_efficiency_is_tiny() {
        let cpu = CpuModel::xeon();
        let logic = cpu.run(&KernelProfile::logic_bcp(100_000));
        let neural = cpu.run(&KernelProfile::matmul(256));
        // Per-FLOP cost of logic work dwarfs neural work.
        let logic_cost = logic.seconds / KernelProfile::logic_bcp(100_000).flops;
        let neural_cost = neural.seconds / KernelProfile::matmul(256).flops;
        assert!(logic_cost > 5.0 * neural_cost);
    }

    #[test]
    fn energy_positive_and_bounded_by_tdp() {
        let cpu = CpuModel::xeon();
        let r = cpu.run(&KernelProfile::pc_marginal(100_000));
        assert!(r.energy_j > 0.0);
        assert!(r.energy_j <= cpu.tdp_w * r.seconds * 1.0001);
    }
}
