//! Memory-access traces and locality statistics.
//!
//! The paper's profiling insight (Sec. III-B) is that symbolic and
//! probabilistic kernels issue *scattered, uncoalesced* accesses while
//! neural kernels stream. Traces here carry that distinction: they are
//! consumed by the cache simulator for hit rates and analyzed for warp
//! coalescing factors.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A byte-address access trace (sampled, not exhaustive).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessTrace {
    /// Byte addresses in issue order.
    pub addresses: Vec<u64>,
}

impl AccessTrace {
    /// Wraps raw addresses.
    pub fn new(addresses: Vec<u64>) -> Self {
        AccessTrace { addresses }
    }

    /// Number of accesses.
    pub fn len(&self) -> usize {
        self.addresses.len()
    }

    /// `true` when the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.addresses.is_empty()
    }

    /// A sequential streaming trace (`count` accesses of `stride` bytes).
    pub fn streaming(count: usize, stride: u64) -> Self {
        AccessTrace { addresses: (0..count as u64).map(|i| i * stride).collect() }
    }

    /// A uniformly random scatter over `footprint_bytes`.
    pub fn scattered(count: usize, footprint_bytes: u64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        AccessTrace {
            addresses: (0..count).map(|_| rng.gen_range(0..footprint_bytes) & !3).collect(),
        }
    }

    /// A pointer-chasing walk with short runs: `run_len` sequential words
    /// then a random jump — the watch-list / linked-list pattern of logic
    /// kernels.
    pub fn pointer_chasing(count: usize, footprint_bytes: u64, run_len: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut addresses = Vec::with_capacity(count);
        let mut cur = rng.gen_range(0..footprint_bytes) & !3;
        for i in 0..count {
            if i % run_len == 0 {
                cur = rng.gen_range(0..footprint_bytes) & !3;
            } else {
                cur = (cur + 4) % footprint_bytes;
            }
            addresses.push(cur);
        }
        AccessTrace { addresses }
    }

    /// Warp coalescing factor in `(0, 1]`: for each window of 32
    /// consecutive accesses (one warp), the ratio of the minimum possible
    /// memory transactions (1) to the 128-byte lines actually touched.
    /// Streaming word accesses approach 1.0; random scatters approach
    /// 1/32.
    pub fn coalescing_factor(&self) -> f64 {
        if self.addresses.is_empty() {
            return 1.0;
        }
        let mut total_lines = 0usize;
        let mut windows = 0usize;
        for chunk in self.addresses.chunks(32) {
            let mut lines: Vec<u64> = chunk.iter().map(|a| a / 128).collect();
            lines.sort_unstable();
            lines.dedup();
            total_lines += lines.len();
            windows += 1;
        }
        windows as f64 / total_lines as f64
    }

    /// Unique bytes touched (footprint), assuming 4-byte words.
    pub fn footprint_bytes(&self) -> u64 {
        let mut words: Vec<u64> = self.addresses.iter().map(|a| a / 4).collect();
        words.sort_unstable();
        words.dedup();
        4 * words.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_coalesces_perfectly() {
        let t = AccessTrace::streaming(1024, 4);
        assert!(t.coalescing_factor() > 0.9, "factor {}", t.coalescing_factor());
    }

    #[test]
    fn scatter_coalesces_poorly() {
        let t = AccessTrace::scattered(1024, 1 << 24, 1);
        assert!(t.coalescing_factor() < 0.05, "factor {}", t.coalescing_factor());
    }

    #[test]
    fn pointer_chasing_sits_in_between() {
        let t = AccessTrace::pointer_chasing(1024, 1 << 22, 8, 2);
        let f = t.coalescing_factor();
        assert!(f > 0.05 && f < 0.9, "factor {f}");
    }

    #[test]
    fn footprint_counts_unique_words() {
        let t = AccessTrace::new(vec![0, 4, 8, 0, 4]);
        assert_eq!(t.footprint_bytes(), 12);
    }

    #[test]
    fn deterministic_generation() {
        assert_eq!(AccessTrace::scattered(64, 1024, 7), AccessTrace::scattered(64, 1024, 7));
    }
}
