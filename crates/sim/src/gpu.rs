//! The GPU SM model.
//!
//! An analytic, trace-calibrated model of a CUDA-class GPU: compute time
//! follows peak throughput derated by Amdahl parallelism and warp
//! divergence; memory time follows DRAM bandwidth derated by coalescing
//! and amplified by cache misses (simulated on the kernel's access
//! trace). The counters it emits mirror the Nsight metrics of paper
//! Table II, and its latency/energy outputs are the CPU/GPU baselines of
//! Figs. 11 and 12.

use serde::{Deserialize, Serialize};

use crate::cache::{Cache, CacheConfig};
use crate::kernels::KernelProfile;

/// A GPU device description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuModel {
    /// Device name.
    pub name: String,
    /// Streaming multiprocessors.
    pub sms: usize,
    /// Peak throughput in FLOP/s.
    pub peak_flops: f64,
    /// Peak DRAM bandwidth in bytes/s.
    pub peak_bw: f64,
    /// L1 geometry (per SM, modeled unified).
    pub l1: CacheConfig,
    /// L2 geometry.
    pub l2: CacheConfig,
    /// Board power in watts.
    pub tdp_w: f64,
    /// Single-thread scalar throughput in FLOP/s (serial sections).
    pub scalar_flops: f64,
}

impl GpuModel {
    /// NVIDIA RTX A6000 (paper Table III: 628 mm², 300 W, 10752 cores).
    pub fn a6000() -> Self {
        GpuModel {
            name: "RTX A6000".into(),
            sms: 84,
            peak_flops: 38.7e12,
            peak_bw: 768e9,
            l1: CacheConfig::gpu_l1(),
            l2: CacheConfig { capacity_bytes: 6 * 1024 * 1024, line_bytes: 128, ways: 16 },
            tdp_w: 300.0,
            scalar_flops: 0.5e9,
        }
    }

    /// NVIDIA Jetson Orin NX (paper Table III: 15 W edge module).
    pub fn orin_nx() -> Self {
        GpuModel {
            name: "Orin NX".into(),
            sms: 8,
            peak_flops: 3.8e12,
            peak_bw: 104e9,
            l1: CacheConfig::gpu_l1(),
            l2: CacheConfig::gpu_l2(),
            tdp_w: 15.0,
            scalar_flops: 0.2e9,
        }
    }

    /// NVIDIA V100 (Sec. VII-C comparison).
    pub fn v100() -> Self {
        GpuModel {
            name: "V100".into(),
            sms: 80,
            peak_flops: 31.4e12,
            peak_bw: 900e9,
            l1: CacheConfig::gpu_l1(),
            l2: CacheConfig { capacity_bytes: 6 * 1024 * 1024, line_bytes: 128, ways: 16 },
            tdp_w: 300.0,
            scalar_flops: 0.45e9,
        }
    }

    /// NVIDIA A100 (Sec. VII-C comparison).
    pub fn a100() -> Self {
        GpuModel {
            name: "A100".into(),
            sms: 108,
            peak_flops: 77.9e12,
            peak_bw: 1555e9,
            l1: CacheConfig::gpu_l1(),
            l2: CacheConfig { capacity_bytes: 40 * 1024 * 1024, line_bytes: 128, ways: 16 },
            tdp_w: 400.0,
            scalar_flops: 0.6e9,
        }
    }

    /// Runs one kernel, producing latency, energy, and Table II counters.
    pub fn run(&self, kernel: &KernelProfile) -> GpuKernelReport {
        // Cache hierarchy on the sampled trace.
        let mut l1 = Cache::new(self.l1);
        let mut l2 = Cache::new(self.l2);
        for &a in &kernel.trace.addresses {
            if !l1.access(a) {
                l2.access(a);
            }
        }
        let l1_hit = l1.stats().hit_rate();
        let l2_hit = l2.stats().hit_rate();

        let coalescing = kernel.trace.coalescing_factor();
        // Warp efficiency collapses under divergence.
        let warp_eff = (1.0 - kernel.branch_divergence).clamp(0.05, 1.0);
        // Compute: Amdahl-derated peak.
        let eff_flops = self.peak_flops * kernel.parallel_fraction * warp_eff;
        let compute_time = kernel.flops / eff_flops.max(1.0);
        // Serial remainder on one scalar pipeline.
        let serial_time = kernel.flops * (1.0 - kernel.parallel_fraction) / self.scalar_flops;
        // Memory: DRAM-visible traffic = compulsory bytes amplified by
        // uncoalesced line fetches, filtered by caches.
        let miss_chain = (1.0 - l1_hit) * (1.0 - l2_hit);
        let amplification = (1.0 / coalescing).clamp(1.0, 32.0);
        let dram_traffic = kernel.bytes * (miss_chain * amplification).max(0.02);
        let memory_time = dram_traffic / self.peak_bw;

        let latency = compute_time.max(memory_time) + serial_time;
        let compute_share = compute_time / latency;
        let memory_share = memory_time / latency;

        // Energy: idle floor plus activity-proportional dynamic power.
        let activity = 0.25 + 0.65 * compute_share.max(memory_share).min(1.0);
        let energy_j = self.tdp_w * activity * latency;

        GpuKernelReport {
            device: self.name.clone(),
            seconds: latency,
            energy_j,
            compute_throughput_pct: 100.0 * compute_share * warp_eff,
            alu_utilization_pct: 100.0 * compute_share * warp_eff * kernel.parallel_fraction + 2.0,
            l1_hit_rate_pct: 100.0 * l1_hit,
            l2_hit_rate_pct: 100.0 * l2_hit,
            dram_bw_utilization_pct: 100.0 * memory_share.min(1.0),
            warp_efficiency_pct: 100.0 * warp_eff,
            branch_efficiency_pct: 100.0 * (1.0 - 0.7 * kernel.branch_divergence),
            eligible_warps_pct: (8.0 * kernel.parallel_fraction * warp_eff).min(8.0),
        }
    }

    /// Sum of per-kernel runs (a whole workload phase).
    pub fn run_all(&self, kernels: &[KernelProfile]) -> (f64, f64) {
        kernels
            .iter()
            .map(|k| {
                let r = self.run(k);
                (r.seconds, r.energy_j)
            })
            .fold((0.0, 0.0), |acc, x| (acc.0 + x.0, acc.1 + x.1))
    }
}

/// Per-kernel GPU metrics (the Table II rows).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuKernelReport {
    /// Device name.
    pub device: String,
    /// Latency in seconds.
    pub seconds: f64,
    /// Energy in joules.
    pub energy_j: f64,
    /// Compute throughput (% of peak).
    pub compute_throughput_pct: f64,
    /// ALU utilization (%).
    pub alu_utilization_pct: f64,
    /// L1 cache hit rate (%).
    pub l1_hit_rate_pct: f64,
    /// L2 cache hit rate (%).
    pub l2_hit_rate_pct: f64,
    /// DRAM bandwidth utilization (%).
    pub dram_bw_utilization_pct: f64,
    /// Warp execution efficiency (%).
    pub warp_efficiency_pct: f64,
    /// Branch efficiency (%).
    pub branch_efficiency_pct: f64,
    /// Eligible warps per cycle (of 8 scheduler slots).
    pub eligible_warps_pct: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neural_kernels_utilize_symbolic_kernels_do_not() {
        let gpu = GpuModel::a6000();
        let mm = gpu.run(&KernelProfile::matmul(512));
        let bcp = gpu.run(&KernelProfile::logic_bcp(20_000));
        // Table II shape: MatMul ~97% throughput, Logic ~15%.
        assert!(mm.compute_throughput_pct > 50.0, "matmul {:.1}%", mm.compute_throughput_pct);
        assert!(bcp.compute_throughput_pct < 30.0, "logic {:.1}%", bcp.compute_throughput_pct);
        assert!(mm.warp_efficiency_pct > bcp.warp_efficiency_pct);
        assert!(mm.l1_hit_rate_pct > bcp.l1_hit_rate_pct);
    }

    #[test]
    fn symbolic_kernels_are_memory_bound() {
        let gpu = GpuModel::a6000();
        let marg = gpu.run(&KernelProfile::pc_marginal(50_000));
        assert!(
            marg.dram_bw_utilization_pct > marg.compute_throughput_pct,
            "marginal inference must be memory-bound: mem {:.1}% vs compute {:.1}%",
            marg.dram_bw_utilization_pct,
            marg.compute_throughput_pct
        );
    }

    #[test]
    fn edge_gpu_is_slower_than_desktop() {
        let desk = GpuModel::a6000();
        let edge = GpuModel::orin_nx();
        let k = KernelProfile::pc_marginal(100_000);
        assert!(edge.run(&k).seconds > desk.run(&k).seconds);
    }

    #[test]
    fn energy_scales_with_latency_and_tdp() {
        let desk = GpuModel::a6000();
        let edge = GpuModel::orin_nx();
        let k = KernelProfile::logic_bcp(50_000);
        let d = desk.run(&k);
        let e = edge.run(&k);
        // The edge part burns less power; energy ratio below latency ratio.
        assert!(e.seconds > d.seconds);
        assert!(e.energy_j < d.energy_j * (e.seconds / d.seconds));
    }

    #[test]
    fn run_all_accumulates() {
        let gpu = GpuModel::orin_nx();
        let suite = KernelProfile::table2_suite();
        let (secs, joules) = gpu.run_all(&suite);
        assert!(secs > 0.0);
        assert!(joules > 0.0);
    }
}
