//! Exact inference: likelihoods, marginals, conditionals, MPE.
//!
//! All queries run in one or two linear sweeps over the circuit — the
//! tractability property that makes PCs the probabilistic backbone of
//! neuro-symbolic systems (paper Sec. II-C). Arithmetic is done in
//! log-space throughout.

use crate::circuit::{Circuit, NodeId, PcNode};

/// Partial evidence over the circuit's variables: `Some(v)` fixes a value,
/// `None` marginalizes the variable out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Evidence {
    values: Vec<Option<usize>>,
}

impl Evidence {
    /// Evidence fixing nothing (full marginalization; probability 1 for a
    /// normalized circuit).
    pub fn empty(num_vars: usize) -> Self {
        Evidence { values: vec![None; num_vars] }
    }

    /// Evidence from a complete assignment.
    pub fn from_assignment(assignment: &[usize]) -> Self {
        Evidence { values: assignment.iter().map(|&v| Some(v)).collect() }
    }

    /// Evidence from optional values.
    pub fn from_values(values: &[Option<usize>]) -> Self {
        Evidence { values: values.to_vec() }
    }

    /// The optional value of variable `var`.
    pub fn value(&self, var: usize) -> Option<usize> {
        self.values[var]
    }

    /// Sets variable `var` to `value`.
    pub fn set(&mut self, var: usize, value: usize) -> &mut Self {
        self.values[var] = Some(value);
        self
    }

    /// Clears variable `var` (marginalizes it).
    pub fn clear(&mut self, var: usize) -> &mut Self {
        self.values[var] = None;
        self
    }

    /// Number of variables covered.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when no variable is covered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Reusable scratch space for circuit evaluation.
///
/// Every query needs a per-node value array (and MPE additionally an
/// argmax array and a traversal stack); allocating those afresh per
/// call dominates the cost of *repeated* queries on one circuit —
/// marginal sweeps, MPE sweeps, the approximate engine's exact-oracle
/// training labels. A caller-held `EvalBuffer` amortizes them: the
/// first query sizes the buffers, every later query reuses them.
///
/// ```
/// use reason_pc::{CircuitBuilder, EvalBuffer, Evidence};
///
/// let mut b = CircuitBuilder::new(vec![2]);
/// let leaf = b.categorical(0, &[0.25, 0.75]);
/// let c = b.build(leaf).unwrap();
/// let mut buf = EvalBuffer::new();
/// let mut ev = Evidence::empty(1);
/// ev.set(0, 1);
/// let lp = c.log_probability_with(&ev, &mut buf);
/// assert!((lp.exp() - 0.75).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct EvalBuffer {
    vals: Vec<f64>,
    arg: Vec<usize>,
    stack: Vec<NodeId>,
}

impl EvalBuffer {
    /// An empty buffer; the first query sizes it.
    pub fn new() -> Self {
        EvalBuffer::default()
    }

    /// The per-node log-values of the most recent evaluation.
    pub fn log_values(&self) -> &[f64] {
        &self.vals
    }
}

/// Result of a most-probable-explanation query.
#[derive(Debug, Clone, PartialEq)]
pub struct MpeResult {
    /// The maximizing complete assignment (evidence variables keep their
    /// observed values).
    pub assignment: Vec<usize>,
    /// Log-probability of the max-product circuit value. For deterministic
    /// circuits this is the exact MPE log-probability.
    pub log_prob: f64,
}

impl Circuit {
    /// Evaluates every node bottom-up under `evidence`, returning the
    /// log-value per node. `out[root]` is the log-probability of the
    /// evidence.
    ///
    /// Allocates a fresh value vector; repeated queries should prefer
    /// [`log_values_into`](Self::log_values_into) with a caller-held
    /// [`EvalBuffer`].
    ///
    /// # Panics
    ///
    /// Panics if `evidence.len() != self.num_vars()`.
    pub fn log_values(&self, evidence: &Evidence) -> Vec<f64> {
        let mut buf = EvalBuffer::new();
        self.log_values_into(evidence, &mut buf);
        buf.vals
    }

    /// Evaluates every node bottom-up under `evidence` into `buf`,
    /// returning the root's log-value (the log-probability of the
    /// evidence). Per-node values are readable afterwards through
    /// [`EvalBuffer::log_values`].
    ///
    /// This is the flattened, allocation-free evaluator: one linear
    /// sweep over the node array, no per-call heap traffic once the
    /// buffer is warm (sum mixtures are folded inline in two passes
    /// instead of materializing a scratch vector).
    ///
    /// # Panics
    ///
    /// Panics if `evidence.len() != self.num_vars()`.
    pub fn log_values_into(&self, evidence: &Evidence, buf: &mut EvalBuffer) -> f64 {
        assert_eq!(evidence.len(), self.num_vars(), "evidence arity mismatch");
        buf.vals.clear();
        buf.vals.resize(self.num_nodes(), 0.0);
        let vals = &mut buf.vals;
        for (i, node) in self.nodes().iter().enumerate() {
            vals[i] = match node {
                PcNode::Indicator { var, value } => match evidence.value(*var) {
                    Some(v) if v == *value => 0.0,
                    Some(_) => f64::NEG_INFINITY,
                    None => 0.0, // marginalized: Σ_v [v = value] = 1
                },
                PcNode::Categorical { var, log_probs } => match evidence.value(*var) {
                    Some(v) => log_probs[v],
                    None => 0.0, // distributions sum to 1
                },
                PcNode::Product { children } => children.iter().map(|c| vals[c.index()]).sum(),
                PcNode::Sum { children, log_weights } => {
                    // Inline log-sum-exp: max pass then sum pass, same
                    // numerics as `crate::log_sum_exp` without the
                    // scratch vector.
                    let m = children
                        .iter()
                        .zip(log_weights)
                        .map(|(c, lw)| lw + vals[c.index()])
                        .fold(f64::NEG_INFINITY, f64::max);
                    if m == f64::NEG_INFINITY {
                        f64::NEG_INFINITY
                    } else {
                        let total: f64 = children
                            .iter()
                            .zip(log_weights)
                            .map(|(c, lw)| (lw + vals[c.index()] - m).exp())
                            .sum();
                        m + total.ln()
                    }
                }
            };
        }
        vals[self.root().index()]
    }

    /// Log-probability of the evidence.
    pub fn log_probability(&self, evidence: &Evidence) -> f64 {
        self.log_values(evidence)[self.root().index()]
    }

    /// [`log_probability`](Self::log_probability) through a reusable
    /// [`EvalBuffer`] — the repeated-query fast path.
    pub fn log_probability_with(&self, evidence: &Evidence, buf: &mut EvalBuffer) -> f64 {
        self.log_values_into(evidence, buf)
    }

    /// Probability of the evidence (linear space).
    pub fn probability(&self, evidence: &Evidence) -> f64 {
        self.log_probability(evidence).exp()
    }

    /// [`probability`](Self::probability) through a reusable
    /// [`EvalBuffer`].
    pub fn probability_with(&self, evidence: &Evidence, buf: &mut EvalBuffer) -> f64 {
        self.log_values_into(evidence, buf).exp()
    }

    /// Log-likelihood of a complete assignment.
    pub fn log_likelihood(&self, assignment: &[usize]) -> f64 {
        self.log_probability(&Evidence::from_assignment(assignment))
    }

    /// The marginal distribution of `var` given `evidence` (any setting of
    /// `var` inside `evidence` is ignored).
    ///
    /// Returns a normalized probability vector of length `arity(var)`.
    /// Returns a uniform distribution when the evidence itself has zero
    /// probability.
    pub fn marginal(&self, evidence: &Evidence, var: usize) -> Vec<f64> {
        self.marginal_with(evidence, var, &mut EvalBuffer::new())
    }

    /// [`marginal`](Self::marginal) through a reusable [`EvalBuffer`]:
    /// the `arity + 1` circuit evaluations of one marginal query share
    /// the buffer, and sweeps over many variables reuse it across
    /// calls.
    pub fn marginal_with(&self, evidence: &Evidence, var: usize, buf: &mut EvalBuffer) -> Vec<f64> {
        let mut ev = evidence.clone();
        ev.clear(var);
        let log_z = self.log_probability_with(&ev, buf);
        let arity = self.arities()[var];
        if log_z == f64::NEG_INFINITY {
            return vec![1.0 / arity as f64; arity];
        }
        (0..arity)
            .map(|v| {
                ev.set(var, v);
                (self.log_probability_with(&ev, buf) - log_z).exp()
            })
            .collect()
    }

    /// Conditional probability `p(query | evidence)`, where `query` assigns
    /// additional variables on top of `evidence`.
    ///
    /// Returns `None` when the evidence has zero probability.
    pub fn conditional(&self, evidence: &Evidence, query: &[(usize, usize)]) -> Option<f64> {
        let log_e = self.log_probability(evidence);
        if log_e == f64::NEG_INFINITY {
            return None;
        }
        let mut joint = evidence.clone();
        for &(var, value) in query {
            joint.set(var, value);
        }
        Some((self.log_probability(&joint) - log_e).exp())
    }

    /// Most probable explanation: completes `evidence` with the assignment
    /// maximizing the max-product circuit value.
    ///
    /// For deterministic circuits (e.g. from [`crate::compile::compile_cnf`])
    /// the result is the exact MPE; otherwise it is the standard
    /// max-product approximation.
    pub fn mpe(&self, evidence: &Evidence) -> MpeResult {
        self.mpe_with(evidence, &mut EvalBuffer::new())
    }

    /// [`mpe`](Self::mpe) through a reusable [`EvalBuffer`] — MPE
    /// sweeps over many evidence patterns reuse the value/argmax
    /// arrays and the traversal stack.
    pub fn mpe_with(&self, evidence: &Evidence, buf: &mut EvalBuffer) -> MpeResult {
        // Upward max pass.
        let n = self.num_nodes();
        buf.vals.clear();
        buf.vals.resize(n, 0.0);
        buf.arg.clear();
        buf.arg.resize(n, 0); // argmax child position for sums
        let (vals, arg) = (&mut buf.vals, &mut buf.arg);
        for (i, node) in self.nodes().iter().enumerate() {
            match node {
                PcNode::Indicator { var, value } => {
                    vals[i] = match evidence.value(*var) {
                        Some(v) if v == *value => 0.0,
                        Some(_) => f64::NEG_INFINITY,
                        None => 0.0,
                    };
                }
                PcNode::Categorical { var, log_probs } => {
                    vals[i] = match evidence.value(*var) {
                        Some(v) => log_probs[v],
                        None => log_probs.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
                    };
                }
                PcNode::Product { children } => {
                    vals[i] = children.iter().map(|c| vals[c.index()]).sum();
                }
                PcNode::Sum { children, log_weights } => {
                    let (best, best_val) = children
                        .iter()
                        .zip(log_weights)
                        .enumerate()
                        .map(|(k, (c, lw))| (k, lw + vals[c.index()]))
                        .fold((0, f64::NEG_INFINITY), |acc, x| if x.1 > acc.1 { x } else { acc });
                    vals[i] = best_val;
                    arg[i] = best;
                }
            }
        }
        // Downward trace selecting one child per sum.
        let mut assignment: Vec<usize> =
            (0..self.num_vars()).map(|v| evidence.value(v).unwrap_or(0)).collect();
        let stack = &mut buf.stack;
        stack.clear();
        stack.push(self.root());
        while let Some(id) = stack.pop() {
            match self.node(id) {
                PcNode::Indicator { var, value } => {
                    if evidence.value(*var).is_none() {
                        assignment[*var] = *value;
                    }
                }
                PcNode::Categorical { var, log_probs } => {
                    if evidence.value(*var).is_none() {
                        let best =
                            log_probs
                                .iter()
                                .enumerate()
                                .fold((0, f64::NEG_INFINITY), |acc, (k, &lp)| {
                                    if lp > acc.1 {
                                        (k, lp)
                                    } else {
                                        acc
                                    }
                                })
                                .0;
                        assignment[*var] = best;
                    }
                }
                PcNode::Product { children } => stack.extend(children.iter().copied()),
                PcNode::Sum { children, .. } => stack.push(children[arg[id.index()]]),
            }
        }
        MpeResult { assignment, log_prob: vals[self.root().index()] }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::CircuitBuilder;

    /// Mixture: 0.3 * [x0=1][x1=1] + 0.7 * [x0=0]Cat(x1; 0.2, 0.8)
    fn mixed_circuit() -> Circuit {
        let mut b = CircuitBuilder::new(vec![2, 2]);
        let x0t = b.indicator(0, 1);
        let x0f = b.indicator(0, 0);
        let x1t = b.indicator(1, 1);
        let cat = b.categorical(1, &[0.2, 0.8]);
        let p0 = b.product(vec![x0t, x1t]);
        let p1 = b.product(vec![x0f, cat]);
        let root = b.sum(vec![p0, p1], vec![0.3, 0.7]);
        b.build(root).unwrap()
    }

    fn enumerate_probability(c: &Circuit, fixed: &[Option<usize>]) -> f64 {
        // Brute-force: sum over all completions.
        let n = c.num_vars();
        let mut total = 0.0;
        let mut assignment = vec![0usize; n];
        fn rec(
            c: &Circuit,
            fixed: &[Option<usize>],
            assignment: &mut Vec<usize>,
            var: usize,
            total: &mut f64,
        ) {
            if var == fixed.len() {
                *total += c.log_likelihood(assignment).exp();
                return;
            }
            match fixed[var] {
                Some(v) => {
                    assignment[var] = v;
                    rec(c, fixed, assignment, var + 1, total);
                }
                None => {
                    for v in 0..c.arities()[var] {
                        assignment[var] = v;
                        rec(c, fixed, assignment, var + 1, total);
                    }
                }
            }
        }
        rec(c, fixed, &mut assignment, 0, &mut total);
        total
    }

    #[test]
    fn normalizes_to_one() {
        let c = mixed_circuit();
        let p = c.probability(&Evidence::empty(2));
        assert!((p - 1.0).abs() < 1e-12);
    }

    #[test]
    fn joint_probabilities_match_enumeration() {
        let c = mixed_circuit();
        for x0 in 0..2 {
            for x1 in 0..2 {
                let p = c.probability(&Evidence::from_assignment(&[x0, x1]));
                let brute = enumerate_probability(&c, &[Some(x0), Some(x1)]);
                assert!((p - brute).abs() < 1e-12, "p({x0},{x1})");
            }
        }
    }

    #[test]
    fn marginals_match_enumeration_and_sum_to_one() {
        let c = mixed_circuit();
        let m = c.marginal(&Evidence::empty(2), 1);
        assert!((m.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        let brute1 = enumerate_probability(&c, &[None, Some(1)]);
        assert!((m[1] - brute1).abs() < 1e-12);
    }

    #[test]
    fn conditional_definition_holds() {
        let c = mixed_circuit();
        let mut ev = Evidence::empty(2);
        ev.set(0, 0);
        let cond = c.conditional(&ev, &[(1, 1)]).unwrap();
        let joint = c.probability(&Evidence::from_assignment(&[0, 1]));
        let marg = c.probability(&ev);
        assert!((cond - joint / marg).abs() < 1e-12);
    }

    #[test]
    fn conditional_on_impossible_evidence_is_none() {
        // x0=1 branch requires x1=1; evidence x0=1, x1=0 has probability 0.
        let c = mixed_circuit();
        let ev = Evidence::from_assignment(&[1, 0]);
        assert_eq!(c.conditional(&ev, &[(0, 1)]), None);
    }

    #[test]
    fn mpe_finds_the_mode() {
        let c = mixed_circuit();
        let res = c.mpe(&Evidence::empty(2));
        // Best complete assignment: x0=0, x1=1 with p = 0.7*0.8 = 0.56.
        assert_eq!(res.assignment, vec![0, 1]);
        assert!((res.log_prob.exp() - 0.56).abs() < 1e-12);
    }

    #[test]
    fn mpe_respects_evidence() {
        let c = mixed_circuit();
        let mut ev = Evidence::empty(2);
        ev.set(0, 1);
        let res = c.mpe(&ev);
        assert_eq!(res.assignment[0], 1);
        assert_eq!(res.assignment[1], 1); // forced by the x0=1 branch
    }

    #[test]
    fn zero_probability_evidence() {
        let c = mixed_circuit();
        // x0=1 requires x1=1.
        let p = c.probability(&Evidence::from_assignment(&[1, 0]));
        assert_eq!(p, 0.0);
        // Marginal under impossible evidence falls back to uniform.
        let mut ev = Evidence::empty(2);
        ev.set(0, 1);
        ev.set(1, 0);
        let m = c.marginal(&ev, 0);
        // With var 0 cleared the evidence is x1=0, which is possible.
        assert!((m.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }
}
