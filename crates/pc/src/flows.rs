//! Circuit flows and flow-driven parameter learning.
//!
//! The *circuit flow* through a sum edge `(n, c)` for input `x` is
//! `F(n,c)(x) = (θ(n,c) · p_c(x) / p_n(x)) · F_n(x)` with `F_root = 1`
//! (paper Sec. IV-B). Flows measure how much probability mass each edge
//! carries; REASON prunes the lowest-flow edges ([`crate::prune`]) and the
//! same quantities are the expected sufficient statistics of EM.

use crate::circuit::{Circuit, NodeId, PcNode};
use crate::infer::Evidence;

/// Per-edge flows of a circuit. Edges are addressed as
/// `(sum node id, child position)`.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeFlows {
    /// `flows[n][k]` = flow through child `k` of node `n` (0 for leaves and
    /// products, which are not separately addressed).
    flows: Vec<Vec<f64>>,
}

impl EdgeFlows {
    fn zeros(circuit: &Circuit) -> Self {
        EdgeFlows { flows: circuit.nodes().iter().map(|n| vec![0.0; n.children().len()]).collect() }
    }

    /// The flow through child `k` of sum node `n`.
    pub fn edge(&self, n: NodeId, k: usize) -> f64 {
        self.flows[n.index()][k]
    }

    /// All edge flows for node `n`.
    pub fn node(&self, n: NodeId) -> &[f64] {
        &self.flows[n.index()]
    }

    /// Accumulates another flow set (used to form dataset flows).
    pub fn accumulate(&mut self, other: &EdgeFlows) {
        for (a, b) in self.flows.iter_mut().zip(&other.flows) {
            for (x, y) in a.iter_mut().zip(b) {
                *x += *y;
            }
        }
    }

    /// Iterates over `(node, child position, flow)` for sum edges only.
    pub fn iter_sum_edges<'a>(
        &'a self,
        circuit: &'a Circuit,
    ) -> impl Iterator<Item = (NodeId, usize, f64)> + 'a {
        circuit.nodes().iter().enumerate().flat_map(move |(i, node)| {
            let is_sum = node.is_sum();
            self.flows[i].iter().enumerate().filter_map(move |(k, &f)| {
                if is_sum {
                    Some((NodeId(i as u32), k, f))
                } else {
                    None
                }
            })
        })
    }
}

impl Circuit {
    /// Computes the top-down flows for a single input.
    ///
    /// Inputs with zero probability produce all-zero flows.
    pub fn flows(&self, evidence: &Evidence) -> EdgeFlows {
        let vals = self.log_values(evidence);
        let n = self.num_nodes();
        let mut node_flow = vec![0.0f64; n];
        let mut out = EdgeFlows::zeros(self);
        if vals[self.root().index()] == f64::NEG_INFINITY {
            return out;
        }
        node_flow[self.root().index()] = 1.0;
        for i in (0..n).rev() {
            let f_n = node_flow[i];
            if f_n == 0.0 {
                continue;
            }
            match &self.nodes()[i] {
                PcNode::Sum { children, log_weights } => {
                    let log_pn = vals[i];
                    for (k, (c, lw)) in children.iter().zip(log_weights).enumerate() {
                        let log_pc = vals[c.index()];
                        let share = if log_pc == f64::NEG_INFINITY {
                            0.0
                        } else {
                            (lw + log_pc - log_pn).exp()
                        };
                        let f_edge = share * f_n;
                        out.flows[i][k] = f_edge;
                        node_flow[c.index()] += f_edge;
                    }
                }
                PcNode::Product { children } => {
                    for (k, c) in children.iter().enumerate() {
                        out.flows[i][k] = f_n;
                        node_flow[c.index()] += f_n;
                    }
                }
                _ => {}
            }
        }
        out
    }
}

/// Cumulative flows over a dataset of complete assignments:
/// `F(n,c)(D) = Σ_{x∈D} F(n,c)(x)` (paper Sec. IV-B).
pub fn dataset_flows(circuit: &Circuit, data: &[Vec<usize>]) -> EdgeFlows {
    let mut total = EdgeFlows::zeros(circuit);
    for x in data {
        let f = circuit.flows(&Evidence::from_assignment(x));
        total.accumulate(&f);
    }
    total
}

/// One EM step: re-estimates every sum-node weight as its normalized
/// expected flow, with additive smoothing `alpha`.
///
/// Returns the updated circuit. The train log-likelihood is non-decreasing
/// under repeated application (checked by tests).
pub fn em_step(circuit: &Circuit, data: &[Vec<usize>], alpha: f64) -> Circuit {
    let flows = dataset_flows(circuit, data);
    let mut nodes = circuit.nodes().to_vec();
    for (i, node) in nodes.iter_mut().enumerate() {
        if let PcNode::Sum { children, log_weights } = node {
            let f = flows.node(NodeId(i as u32));
            let total: f64 = f.iter().sum::<f64>() + alpha * children.len() as f64;
            if total > 0.0 {
                for (k, lw) in log_weights.iter_mut().enumerate() {
                    *lw = ((f[k] + alpha) / total).ln();
                }
            }
        }
    }
    Circuit::from_parts(circuit.arities().to_vec(), nodes, circuit.root())
}

/// Mean train log-likelihood of a dataset.
pub fn mean_log_likelihood(circuit: &Circuit, data: &[Vec<usize>]) -> f64 {
    data.iter().map(|x| circuit.log_likelihood(x)).sum::<f64>() / data.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::CircuitBuilder;
    use crate::structure::{random_mixture_circuit, StructureConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn mixture() -> Circuit {
        let mut b = CircuitBuilder::new(vec![2, 2]);
        let x0t = b.indicator(0, 1);
        let x0f = b.indicator(0, 0);
        let c0 = b.categorical(1, &[0.9, 0.1]);
        let c1 = b.categorical(1, &[0.2, 0.8]);
        let p0 = b.product(vec![x0t, c0]);
        let p1 = b.product(vec![x0f, c1]);
        let root = b.sum(vec![p0, p1], vec![0.4, 0.6]);
        b.build(root).unwrap()
    }

    #[test]
    fn flows_sum_to_node_flow() {
        let c = mixture();
        let f = c.flows(&Evidence::from_assignment(&[1, 0]));
        // Root flow is 1; sum of root edge flows must be 1.
        let root_flows = f.node(c.root());
        assert!((root_flows.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_input_routes_all_flow_one_way() {
        let c = mixture();
        // x0=1 selects the first branch exclusively.
        let f = c.flows(&Evidence::from_assignment(&[1, 0]));
        let rf = f.node(c.root());
        assert!((rf[0] - 1.0).abs() < 1e-12);
        assert!(rf[1].abs() < 1e-12);
    }

    #[test]
    fn zero_probability_input_has_zero_flows() {
        let mut b = CircuitBuilder::new(vec![2]);
        let t = b.indicator(0, 1);
        let f_ = b.indicator(0, 1);
        let root = b.sum(vec![t, f_], vec![0.5, 0.5]);
        let c = b.build(root).unwrap();
        let f = c.flows(&Evidence::from_assignment(&[0]));
        assert!(f.node(c.root()).iter().all(|&x| x == 0.0));
    }

    #[test]
    fn dataset_flows_accumulate() {
        let c = mixture();
        let data = vec![vec![1, 0], vec![0, 1], vec![0, 1]];
        let total = dataset_flows(&c, &data);
        let rf = total.node(c.root());
        // Three unit flows distributed across the two edges.
        assert!((rf.iter().sum::<f64>() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn em_increases_log_likelihood() {
        let cfg = StructureConfig { num_vars: 6, depth: 3, num_components: 3, seed: 5 };
        let mut circuit = random_mixture_circuit(&cfg);
        let mut rng = StdRng::seed_from_u64(42);
        let data: Vec<Vec<usize>> =
            (0..60).map(|_| (0..6).map(|_| rng.gen_range(0..2)).collect()).collect();
        let mut prev = mean_log_likelihood(&circuit, &data);
        for _ in 0..5 {
            circuit = em_step(&circuit, &data, 0.01);
            let ll = mean_log_likelihood(&circuit, &data);
            assert!(ll >= prev - 1e-6, "EM decreased LL: {prev} -> {ll}");
            prev = ll;
        }
    }

    #[test]
    fn em_preserves_validity() {
        let cfg = StructureConfig { num_vars: 4, depth: 2, num_components: 2, seed: 1 };
        let circuit = random_mixture_circuit(&cfg);
        let data = vec![vec![0, 1, 0, 1], vec![1, 1, 0, 0]];
        let updated = em_step(&circuit, &data, 0.1);
        updated.validate().unwrap();
        // Still normalized.
        let p = updated.probability(&Evidence::empty(4));
        assert!((p - 1.0).abs() < 1e-9);
    }

    #[test]
    fn iter_sum_edges_visits_only_sums() {
        let c = mixture();
        let f = c.flows(&Evidence::from_assignment(&[1, 1]));
        for (n, _, _) in f.iter_sum_edges(&c) {
            assert!(c.node(n).is_sum());
        }
    }
}
