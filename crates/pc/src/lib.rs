//! Probabilistic circuits (PCs) substrate for the REASON reproduction.
//!
//! Probabilistic circuits are the paper's tractable probabilistic backbone
//! (Sec. II-C, Eq. 1): rooted DAGs whose leaves are primitive distributions
//! and whose interior nodes are products (factorizations) and weighted sums
//! (mixtures). Structural properties — *smoothness* and *decomposability* —
//! guarantee exact marginal and conditional inference in time linear in
//! circuit size.
//!
//! This crate provides:
//!
//! * [`circuit`] — the circuit data structure, builders, and structural
//!   validation (scopes, smoothness, decomposability, determinism).
//! * [`infer`] — log-space evaluation, marginals, conditionals, and
//!   most-probable-explanation queries.
//! * [`flows`] — top-down *circuit flows* `F(n,c)(x)` (paper Sec. IV-B),
//!   expected flows over datasets, and flow-driven EM parameter learning.
//! * [`prune`] — flow-based edge pruning with the paper's bounded
//!   log-likelihood-loss criterion `Δ log L ≤ (1/|D|) Σ_x F(n,c)(x)`.
//! * [`compile`] — knowledge compilation from CNF formulas to smooth,
//!   deterministic circuits (how R²-Guard-style safety rules become PCs),
//!   with exact weighted model counting. The compiler is a top-down
//!   component-caching (sharpSAT/c2d-style) engine: unit propagation,
//!   connected-component decomposition, dynamic variable ordering, and
//!   hashed component fingerprints over `reason_sat`'s shared clause
//!   pool. [`CompiledWmc`] answers repeated queries from one
//!   compilation, and [`PersistentComponentCache`] carries compiled
//!   components *across* compilations for serving knowledge bases.
//! * [`dnnf`] — compiled circuits flattened into evaluation-ready
//!   d-DNNF arenas ([`Dnnf`]), the artifact a serving circuit store
//!   keeps hot; answers are bit-identical to circuit evaluation.
//! * [`structure`] — seeded structure generators (mixture-of-factorization
//!   region trees) for workload synthesis.
//! * [`mod@sample`] — forward sampling.
//!
//! # Example
//!
//! ```
//! use reason_pc::{CircuitBuilder, Evidence};
//!
//! // A naive-Bayes-style mixture over two binary variables.
//! let mut b = CircuitBuilder::new(vec![2, 2]);
//! let x0_t = b.indicator(0, 1);
//! let x0_f = b.indicator(0, 0);
//! let x1_t = b.indicator(1, 1);
//! let x1_f = b.indicator(1, 0);
//! let c0 = b.product(vec![x0_t, x1_t]);
//! let c1 = b.product(vec![x0_f, x1_f]);
//! let root = b.sum(vec![c0, c1], vec![0.25, 0.75]);
//! let circuit = b.build(root).unwrap();
//!
//! // p(x0=1, x1=1) = 0.25
//! let p = circuit.probability(&Evidence::from_values(&[Some(1), Some(1)]));
//! assert!((p - 0.25).abs() < 1e-12);
//! // Marginal over x1: p(x0=1) = 0.25
//! let p = circuit.probability(&Evidence::from_values(&[Some(1), None]));
//! assert!((p - 0.25).abs() < 1e-12);
//! ```

pub mod circuit;
pub mod compile;
pub mod dnnf;
pub mod fingerprint;
pub mod flows;
pub mod infer;
pub mod prune;
pub mod sample;
pub mod structure;

pub use circuit::{Circuit, CircuitBuilder, CircuitError, NodeId, PcNode};
pub use compile::{
    compile_cnf, compile_cnf_cached, compile_cnf_observed, compile_cnf_shannon, compile_cnf_with,
    compile_cnf_with_stats, weighted_model_count, CompileConfig, CompileStats, CompiledWmc,
    PersistentCacheStats, PersistentComponentCache, VarOrder, WmcWeights,
};
pub use dnnf::{BatchBuffer, Dnnf, DnnfBatch, DnnfBuffer, DnnfError};
pub use fingerprint::{ring_mix, FormulaFingerprint};
pub use flows::{dataset_flows, em_step, EdgeFlows};
pub use infer::{EvalBuffer, Evidence, MpeResult};
pub use prune::{prune_by_flow, PruneReport};
pub use sample::sample;
pub use structure::{random_mixture_circuit, StructureConfig};

/// Numerically stable `log(sum(exp(xs)))`.
///
/// Returns negative infinity for an empty slice (the empty sum).
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let m = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if m == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    m + xs.iter().map(|x| (x - m).exp()).sum::<f64>().ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_sum_exp_basics() {
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
        assert!((log_sum_exp(&[0.0, 0.0]) - 2.0f64.ln()).abs() < 1e-12);
        assert!((log_sum_exp(&[f64::NEG_INFINITY, 0.0]) - 0.0).abs() < 1e-12);
        // Stability with large magnitudes.
        let v = log_sum_exp(&[-1000.0, -1000.0]);
        assert!((v - (-1000.0 + 2.0f64.ln())).abs() < 1e-9);
    }
}
