//! Forward sampling from probabilistic circuits.

use rand::dist::sample_categorical;
use rand::Rng;

use crate::circuit::{Circuit, NodeId, PcNode};

/// Draws one complete assignment from the circuit's distribution by
/// top-down ancestral sampling: sum nodes choose a child proportionally to
/// its weight, product nodes descend into all children, and leaves emit
/// values.
///
/// For sub-normalized circuits (see [`crate::compile`]) sampling follows
/// the *renormalized* branch distribution.
///
/// # Panics
///
/// Panics if a sum node has zero total weight.
pub fn sample<R: Rng + ?Sized>(circuit: &Circuit, rng: &mut R) -> Vec<usize> {
    let mut assignment = vec![0usize; circuit.num_vars()];
    let mut stack: Vec<NodeId> = vec![circuit.root()];
    while let Some(id) = stack.pop() {
        match circuit.node(id) {
            PcNode::Indicator { var, value } => assignment[*var] = *value,
            PcNode::Categorical { var, log_probs } => {
                let probs: Vec<f64> = log_probs.iter().map(|lp| lp.exp()).collect();
                assignment[*var] = sample_categorical(rng, &probs);
            }
            PcNode::Product { children } => stack.extend(children.iter().copied()),
            PcNode::Sum { children, log_weights } => {
                let ws: Vec<f64> = log_weights.iter().map(|lw| lw.exp()).collect();
                stack.push(children[sample_categorical(rng, &ws)]);
            }
        }
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::CircuitBuilder;
    use crate::infer::Evidence;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sample_frequencies_approach_probabilities() {
        let mut b = CircuitBuilder::new(vec![2, 2]);
        let x0t = b.indicator(0, 1);
        let x0f = b.indicator(0, 0);
        let c0 = b.categorical(1, &[0.9, 0.1]);
        let c1 = b.categorical(1, &[0.2, 0.8]);
        let p0 = b.product(vec![x0t, c0]);
        let p1 = b.product(vec![x0f, c1]);
        let root = b.sum(vec![p0, p1], vec![0.3, 0.7]);
        let circuit = b.build(root).unwrap();

        let mut rng = StdRng::seed_from_u64(123);
        let n = 20_000;
        let mut count_x0 = 0usize;
        for _ in 0..n {
            let s = sample(&circuit, &mut rng);
            if s[0] == 1 {
                count_x0 += 1;
            }
        }
        let freq = count_x0 as f64 / n as f64;
        let expect = circuit.marginal(&Evidence::empty(2), 0)[1];
        assert!((freq - expect).abs() < 0.02, "freq {freq} vs p {expect}");
    }

    #[test]
    fn samples_respect_deterministic_structure() {
        // Mixture of [x0=1][x1=1] and [x0=0][x1=0]: samples are 11 or 00.
        let mut b = CircuitBuilder::new(vec![2, 2]);
        let a = b.indicator(0, 1);
        let bb = b.indicator(1, 1);
        let c = b.indicator(0, 0);
        let d = b.indicator(1, 0);
        let p0 = b.product(vec![a, bb]);
        let p1 = b.product(vec![c, d]);
        let root = b.sum(vec![p0, p1], vec![0.5, 0.5]);
        let circuit = b.build(root).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let s = sample(&circuit, &mut rng);
            assert_eq!(s[0], s[1]);
        }
    }
}
