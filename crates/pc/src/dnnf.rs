//! Flat, evaluation-ready d-DNNF arenas extracted from compiled circuits.
//!
//! [`crate::compile::compile_cnf`] emits a [`Circuit`]: enum nodes with
//! per-node child vectors, ideal for construction and structural
//! validation but pointer-chasing for the serving hot path. A [`Dnnf`]
//! is the same circuit flattened into arrays — one node table, one
//! contiguous edge array, one parallel edge-weight array — so a
//! repeated-query engine (the `reason-serve` circuit store) evaluates
//! it with nothing but linear index arithmetic.
//!
//! Extraction is **1:1 and order-preserving**: node `i` of the arena is
//! node `i` of the source circuit, children keep their order, and the
//! evaluator reproduces [`Circuit::log_values_into`]'s arithmetic
//! operation-for-operation. Arena answers are therefore bit-identical
//! to circuit answers — the store's round-trip guarantee rests on this.
//!
//! Only *binary* universes are accepted (every compiled formula circuit
//! is one); [`Dnnf::from_circuit`] reports [`DnnfError`] otherwise.
//!
//! ```
//! use reason_sat::Cnf;
//! use reason_pc::{compile_cnf, Dnnf, DnnfBuffer, Evidence, WmcWeights};
//!
//! let cnf = Cnf::from_clauses(2, vec![vec![1, 2]]);
//! let circuit = compile_cnf(&cnf, &WmcWeights::uniform(2)).unwrap();
//! let arena = Dnnf::from_circuit(&circuit).unwrap();
//! let mut buf = DnnfBuffer::new();
//! let z = arena.probability(&Evidence::empty(2), &mut buf);
//! assert_eq!(z, circuit.probability(&Evidence::empty(2)));
//! ```

use std::collections::HashMap;
use std::fmt;

use crate::circuit::{Circuit, PcNode};
use crate::infer::{Evidence, MpeResult};

/// Why a circuit could not be flattened into a [`Dnnf`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DnnfError {
    /// A variable with arity other than 2 — the arena stores Bernoulli
    /// leaves as fixed `[log p0, log p1]` pairs.
    NonBinaryVariable {
        /// The offending variable.
        var: usize,
        /// Its declared arity.
        arity: usize,
    },
}

impl fmt::Display for DnnfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DnnfError::NonBinaryVariable { var, arity } => {
                write!(f, "variable {var} has arity {arity}, arena supports binary only")
            }
        }
    }
}

impl std::error::Error for DnnfError {}

/// One flattened node. Interior nodes address a contiguous slice of the
/// arena's edge array instead of owning a child vector.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Node {
    /// Indicator leaf `[x_var = value]`.
    Indicator { var: u32, value: bool },
    /// Bernoulli leaf with `log_p[b] = log p(x_var = b)`.
    Leaf { var: u32, log_p: [f64; 2] },
    /// Decomposable conjunction over `edges[start..start+len]`.
    And { start: u32, len: u32 },
    /// Deterministic disjunction over `edges[start..start+len]`, with
    /// log-weights in the parallel weight array.
    Or { start: u32, len: u32 },
}

/// A compiled formula circuit flattened into an evaluation-ready arena
/// (see the [module docs](self)).
#[derive(Debug, Clone, PartialEq)]
pub struct Dnnf {
    num_vars: usize,
    nodes: Vec<Node>,
    /// Child node ids of every interior node, concatenated.
    edges: Vec<u32>,
    /// Log-weights parallel to `edges`; meaningful for `Or` slices,
    /// zero for `And` slices.
    edge_log_weights: Vec<f64>,
    root: u32,
}

/// Reusable scratch space for arena evaluation — the serving analogue
/// of [`crate::infer::EvalBuffer`]. One buffer per worker thread makes
/// every query after the first allocation-free.
#[derive(Debug, Clone, Default)]
pub struct DnnfBuffer {
    vals: Vec<f64>,
    arg: Vec<u32>,
    stack: Vec<u32>,
}

impl DnnfBuffer {
    /// An empty buffer; the first query sizes it.
    pub fn new() -> Self {
        DnnfBuffer::default()
    }
}

/// Evidence code for a marginalized (unobserved) variable in a
/// [`DnnfBatch`] lane; observed lanes store the value itself (0 or 1).
const MARGINALIZED: u8 = 2;

/// A batch of B evidence lanes packed structure-of-arrays: one byte per
/// `(variable, lane)` pair, variable-major, so a batched traversal reads
/// each variable's codes as one contiguous run. This is the weight
/// slab the batched evaluators ([`Dnnf::wmc_batch`],
/// [`Dnnf::marginal_batch`], [`Dnnf::mpe_batch`]) consume: B queries
/// against one arena become a single traversal with tight inner loops
/// over lanes, answers bit-identical per lane to the single-query
/// [`DnnfBuffer`] path.
///
/// Duplicate queries collapse at pack time: identical evidence columns
/// share one *storage* lane, evaluated once, and the answers fan back
/// out to every query lane when results are emitted. Serve batches
/// grouped by formula fingerprint routinely repeat the same posterior
/// or marginal, so the slab (and the traversal) only pays for the
/// distinct columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnnfBatch {
    num_vars: usize,
    /// Distinct storage lanes actually evaluated.
    lanes: usize,
    /// `codes[var * lanes + lane]`: 0/1 for an observed value,
    /// [`MARGINALIZED`] for an unobserved variable (storage lanes).
    codes: Vec<u8>,
    /// Query lane -> storage lane.
    expand: Vec<u32>,
}

impl DnnfBatch {
    /// Packs evidence lanes into a slab, collapsing duplicate columns.
    /// Lane `k` of every batched answer corresponds to `evidences[k]`.
    ///
    /// # Panics
    ///
    /// Panics if `evidences` is empty or the lanes disagree on arity.
    pub fn pack(evidences: &[Evidence]) -> Self {
        assert!(!evidences.is_empty(), "a batch needs at least one lane");
        let num_vars = evidences[0].len();
        let mut index: HashMap<Vec<u8>, u32> = HashMap::new();
        let mut columns: Vec<Vec<u8>> = Vec::new();
        let mut expand = Vec::with_capacity(evidences.len());
        for (lane, ev) in evidences.iter().enumerate() {
            assert_eq!(ev.len(), num_vars, "lane {lane} arity mismatch");
            let col: Vec<u8> =
                (0..num_vars).map(|var| ev.value(var).map_or(MARGINALIZED, |v| v as u8)).collect();
            let id = match index.get(&col) {
                Some(&id) => id,
                None => {
                    let id = columns.len() as u32;
                    index.insert(col.clone(), id);
                    columns.push(col);
                    id
                }
            };
            expand.push(id);
        }
        let lanes = columns.len();
        let mut codes = vec![MARGINALIZED; num_vars * lanes];
        for (lane, col) in columns.iter().enumerate() {
            for (var, &c) in col.iter().enumerate() {
                codes[var * lanes + lane] = c;
            }
        }
        DnnfBatch { num_vars, lanes, codes, expand }
    }

    /// Number of query lanes B (the length of every batched answer).
    pub fn lanes(&self) -> usize {
        self.expand.len()
    }

    /// Distinct evidence columns the traversal actually evaluates
    /// (`<= lanes()`; duplicates share a storage lane).
    pub fn distinct_lanes(&self) -> usize {
        self.lanes
    }

    /// Number of variables in the universe.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The evidence value of `var` in query lane `lane` (`None` =
    /// marginalized).
    pub fn value(&self, var: usize, lane: usize) -> Option<usize> {
        match self.codes[var * self.lanes + self.expand[lane] as usize] {
            MARGINALIZED => None,
            v => Some(v as usize),
        }
    }

    /// Fans a per-storage-lane result vector back out to query lanes.
    fn fan_out<T: Clone>(&self, per_storage: &[T]) -> Vec<T> {
        self.expand.iter().map(|&u| per_storage[u as usize].clone()).collect()
    }

    /// The evidence value of `var` in *storage* lane `lane` (`None` =
    /// marginalized) — for evaluators walking distinct columns.
    fn storage_value(&self, var: usize, lane: usize) -> Option<usize> {
        match self.codes[var * self.lanes + lane] {
            MARGINALIZED => None,
            v => Some(v as usize),
        }
    }

    /// Overwrites `var`'s code in every storage lane (the batched
    /// analogue of `Evidence::set`/`clear` across the whole batch).
    fn set_all(&mut self, var: usize, code: u8) {
        self.codes[var * self.lanes..(var + 1) * self.lanes].fill(code);
    }

    /// The contiguous code run of one variable (storage lanes).
    fn var_codes(&self, var: usize) -> &[u8] {
        &self.codes[var * self.lanes..(var + 1) * self.lanes]
    }
}

/// Reusable scratch space for batched arena evaluation: the node-value
/// slab (`nodes × lanes`, node-major chunks), the per-node argmax slab
/// for MPE, and a lane-wide accumulator for the log-sum-exp second
/// pass. One buffer per worker thread makes every batch after the first
/// allocation-free.
#[derive(Debug, Clone, Default)]
pub struct BatchBuffer {
    vals: Vec<f64>,
    arg: Vec<u32>,
    acc: Vec<f64>,
    stack: Vec<u32>,
}

impl BatchBuffer {
    /// An empty buffer; the first batch sizes it.
    pub fn new() -> Self {
        BatchBuffer::default()
    }
}

impl Dnnf {
    /// Flattens `circuit` into an arena, preserving node order and
    /// child order exactly.
    ///
    /// # Errors
    ///
    /// Returns [`DnnfError::NonBinaryVariable`] if any variable's arity
    /// is not 2.
    pub fn from_circuit(circuit: &Circuit) -> Result<Self, DnnfError> {
        if let Some((var, &arity)) = circuit.arities().iter().enumerate().find(|(_, &a)| a != 2) {
            return Err(DnnfError::NonBinaryVariable { var, arity });
        }
        let mut nodes = Vec::with_capacity(circuit.num_nodes());
        let mut edges: Vec<u32> = Vec::with_capacity(circuit.num_edges());
        let mut edge_log_weights: Vec<f64> = Vec::with_capacity(circuit.num_edges());
        for node in circuit.nodes() {
            let flat = match node {
                PcNode::Indicator { var, value } => {
                    Node::Indicator { var: *var as u32, value: *value == 1 }
                }
                PcNode::Categorical { var, log_probs } => {
                    Node::Leaf { var: *var as u32, log_p: [log_probs[0], log_probs[1]] }
                }
                PcNode::Product { children } => {
                    let start = edges.len() as u32;
                    for c in children {
                        edges.push(c.index() as u32);
                        edge_log_weights.push(0.0);
                    }
                    Node::And { start, len: children.len() as u32 }
                }
                PcNode::Sum { children, log_weights } => {
                    let start = edges.len() as u32;
                    for (c, lw) in children.iter().zip(log_weights) {
                        edges.push(c.index() as u32);
                        edge_log_weights.push(*lw);
                    }
                    Node::Or { start, len: children.len() as u32 }
                }
            };
            nodes.push(flat);
        }
        Ok(Dnnf {
            num_vars: circuit.num_vars(),
            nodes,
            edges,
            edge_log_weights,
            root: circuit.root().index() as u32,
        })
    }

    /// Number of variables in the universe.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of arena nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The arena's memory footprint in bytes: the node table plus the
    /// edge and edge-weight arrays. This is what the serving store's
    /// byte bound meters.
    pub fn bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<Node>()
            + self.edges.len() * std::mem::size_of::<u32>()
            + self.edge_log_weights.len() * std::mem::size_of::<f64>()
    }

    /// Log-probability of the evidence: one linear sweep over the node
    /// table, arithmetic identical to [`Circuit::log_values_into`].
    ///
    /// # Panics
    ///
    /// Panics if `evidence.len() != self.num_vars()`.
    pub fn log_probability(&self, evidence: &Evidence, buf: &mut DnnfBuffer) -> f64 {
        assert_eq!(evidence.len(), self.num_vars, "evidence arity mismatch");
        buf.vals.clear();
        buf.vals.resize(self.nodes.len(), 0.0);
        let vals = &mut buf.vals;
        for (i, node) in self.nodes.iter().enumerate() {
            vals[i] = match *node {
                Node::Indicator { var, value } => match evidence.value(var as usize) {
                    Some(v) if (v == 1) == value => 0.0,
                    Some(_) => f64::NEG_INFINITY,
                    None => 0.0, // marginalized: Σ_v [v = value] = 1
                },
                Node::Leaf { var, log_p } => match evidence.value(var as usize) {
                    Some(v) => log_p[v],
                    None => 0.0, // distributions sum to 1
                },
                Node::And { start, len } => {
                    let (s, e) = (start as usize, (start + len) as usize);
                    self.edges[s..e].iter().map(|&c| vals[c as usize]).sum()
                }
                Node::Or { start, len } => {
                    let (s, e) = (start as usize, (start + len) as usize);
                    // Inline log-sum-exp, same two-pass numerics as the
                    // circuit evaluator (bit-identical answers).
                    let m = self.edges[s..e]
                        .iter()
                        .zip(&self.edge_log_weights[s..e])
                        .map(|(&c, lw)| lw + vals[c as usize])
                        .fold(f64::NEG_INFINITY, f64::max);
                    if m == f64::NEG_INFINITY {
                        f64::NEG_INFINITY
                    } else {
                        let total: f64 = self.edges[s..e]
                            .iter()
                            .zip(&self.edge_log_weights[s..e])
                            .map(|(&c, lw)| (lw + vals[c as usize] - m).exp())
                            .sum();
                        m + total.ln()
                    }
                }
            };
        }
        vals[self.root as usize]
    }

    /// Probability of the evidence (linear space).
    pub fn probability(&self, evidence: &Evidence, buf: &mut DnnfBuffer) -> f64 {
        self.log_probability(evidence, buf).exp()
    }

    /// The marginal distribution of `var` given `evidence` (any setting
    /// of `var` inside `evidence` is ignored), normalized; uniform when
    /// the evidence itself has zero probability. Mirrors
    /// [`Circuit::marginal_with`].
    pub fn marginal(&self, evidence: &Evidence, var: usize, buf: &mut DnnfBuffer) -> Vec<f64> {
        let mut ev = evidence.clone();
        ev.clear(var);
        let log_z = self.log_probability(&ev, buf);
        if log_z == f64::NEG_INFINITY {
            return vec![0.5; 2];
        }
        (0..2)
            .map(|v| {
                ev.set(var, v);
                (self.log_probability(&ev, buf) - log_z).exp()
            })
            .collect()
    }

    /// Most probable explanation: completes `evidence` with the
    /// max-product maximizing assignment. Exact for the deterministic
    /// circuits the compiler emits; mirrors [`Circuit::mpe_with`].
    pub fn mpe(&self, evidence: &Evidence, buf: &mut DnnfBuffer) -> MpeResult {
        assert_eq!(evidence.len(), self.num_vars, "evidence arity mismatch");
        let n = self.nodes.len();
        buf.vals.clear();
        buf.vals.resize(n, 0.0);
        buf.arg.clear();
        buf.arg.resize(n, 0);
        let (vals, arg) = (&mut buf.vals, &mut buf.arg);
        for (i, node) in self.nodes.iter().enumerate() {
            match *node {
                Node::Indicator { var, value } => {
                    vals[i] = match evidence.value(var as usize) {
                        Some(v) if (v == 1) == value => 0.0,
                        Some(_) => f64::NEG_INFINITY,
                        None => 0.0,
                    };
                }
                Node::Leaf { var, log_p } => {
                    vals[i] = match evidence.value(var as usize) {
                        Some(v) => log_p[v],
                        None => log_p[0].max(log_p[1]),
                    };
                }
                Node::And { start, len } => {
                    let (s, e) = (start as usize, (start + len) as usize);
                    vals[i] = self.edges[s..e].iter().map(|&c| vals[c as usize]).sum();
                }
                Node::Or { start, len } => {
                    let (s, e) = (start as usize, (start + len) as usize);
                    let (best, best_val) = self.edges[s..e]
                        .iter()
                        .zip(&self.edge_log_weights[s..e])
                        .enumerate()
                        .map(|(k, (&c, lw))| (k, lw + vals[c as usize]))
                        .fold((0, f64::NEG_INFINITY), |acc, x| if x.1 > acc.1 { x } else { acc });
                    vals[i] = best_val;
                    arg[i] = best as u32;
                }
            }
        }
        // Downward trace selecting one child per disjunction.
        let mut assignment: Vec<usize> =
            (0..self.num_vars).map(|v| evidence.value(v).unwrap_or(0)).collect();
        let stack = &mut buf.stack;
        stack.clear();
        stack.push(self.root);
        while let Some(id) = stack.pop() {
            match self.nodes[id as usize] {
                Node::Indicator { var, value } => {
                    if evidence.value(var as usize).is_none() {
                        assignment[var as usize] = usize::from(value);
                    }
                }
                Node::Leaf { var, log_p } => {
                    if evidence.value(var as usize).is_none() {
                        assignment[var as usize] = usize::from(log_p[1] > log_p[0]);
                    }
                }
                Node::And { start, len } => {
                    let (s, e) = (start as usize, (start + len) as usize);
                    stack.extend(self.edges[s..e].iter().copied());
                }
                Node::Or { start, .. } => {
                    stack.push(self.edges[(start + arg[id as usize]) as usize]);
                }
            }
        }
        MpeResult { assignment, log_prob: vals[self.root as usize] }
    }

    /// Batched log-probabilities: one arena traversal evaluates every
    /// lane of `batch`, returning `log Pr[φ ∧ e_k]` per lane.
    ///
    /// Per lane this performs *exactly* the floating-point operation
    /// sequence of [`log_probability`](Self::log_probability) — same
    /// child order, same two-pass inline log-sum-exp — so each lane's
    /// answer is bit-identical to the single-query path. The batch only
    /// amortizes node decode, edge indexing, and memory traffic over B
    /// lanes.
    ///
    /// # Panics
    ///
    /// Panics if `batch.num_vars() != self.num_vars()`.
    pub fn log_probability_batch(&self, batch: &DnnfBatch, buf: &mut BatchBuffer) -> Vec<f64> {
        assert_eq!(batch.num_vars, self.num_vars, "batch arity mismatch");
        let l = batch.lanes;
        // No clear: every node chunk is fully written before it is read
        // (children precede parents in the arena).
        buf.vals.resize(self.nodes.len() * l, 0.0);
        buf.acc.resize(l, 0.0);
        for (i, node) in self.nodes.iter().enumerate() {
            let base = i * l;
            // Children precede their parent, so the read side (child
            // chunks) and write side (this node's chunk) never overlap.
            let (lo, hi) = buf.vals.split_at_mut(base);
            let out = &mut hi[..l];
            match *node {
                Node::Indicator { var, value } => {
                    // Branchless decode: value-match → 0, mismatch →
                    // -inf, marginalized → 0 (Σ_v [v = value] = 1).
                    let hit = [0.0, f64::NEG_INFINITY];
                    let table = [hit[usize::from(value)], hit[usize::from(!value)], 0.0];
                    for (o, &c) in out.iter_mut().zip(batch.var_codes(var as usize)) {
                        *o = table[c as usize];
                    }
                }
                Node::Leaf { var, log_p } => {
                    let table = [log_p[0], log_p[1], 0.0];
                    for (o, &c) in out.iter_mut().zip(batch.var_codes(var as usize)) {
                        *o = table[c as usize];
                    }
                }
                Node::And { start, len: 2 } => {
                    // Fused two-child product: one pass, both children
                    // in registers. The explicit `0.0 +` start keeps the
                    // fold order (and -0.0 behavior) of the generic
                    // `.sum()` below, so answers stay bit-identical.
                    let s = start as usize;
                    let (c0, c1) = (self.edges[s] as usize * l, self.edges[s + 1] as usize * l);
                    let (ca, cb) = (&lo[c0..c0 + l], &lo[c1..c1 + l]);
                    for ((o, &x), &y) in out.iter_mut().zip(ca).zip(cb) {
                        *o = (0.0 + x) + y;
                    }
                }
                Node::And { start, len } => {
                    let (s, e) = (start as usize, (start + len) as usize);
                    out.fill(0.0);
                    for &c in &self.edges[s..e] {
                        let child = &lo[c as usize * l..c as usize * l + l];
                        for (o, &v) in out.iter_mut().zip(child) {
                            *o += v;
                        }
                    }
                }
                Node::Or { start, len: 2 } => {
                    // Fused two-child log-sum-exp: the dominant shape
                    // (the compiler emits binary decision nodes). Both
                    // passes of the generic path collapse into one loop
                    // with the children held in registers; every
                    // floating-point step keeps the generic path's
                    // order, so answers stay bit-identical. `exp` is
                    // skipped where the argument is exactly 0.0 or -inf
                    // (`exp(0) = 1`, `exp(-inf) = 0` exactly in IEEE
                    // 754), which halves the transcendental count: the
                    // argmax child always contributes exactly 1.
                    let s = start as usize;
                    let (c0, c1) = (self.edges[s] as usize * l, self.edges[s + 1] as usize * l);
                    let (lw0, lw1) = (self.edge_log_weights[s], self.edge_log_weights[s + 1]);
                    let (ca, cb) = (&lo[c0..c0 + l], &lo[c1..c1 + l]);
                    for ((o, &x), &y) in out.iter_mut().zip(ca).zip(cb) {
                        let a = lw0 + x;
                        let b = lw1 + y;
                        let m = f64::max(f64::max(f64::NEG_INFINITY, a), b);
                        if m == f64::NEG_INFINITY {
                            *o = f64::NEG_INFINITY;
                        } else {
                            let fexp = |x: f64| {
                                if x == 0.0 {
                                    1.0
                                } else if x == f64::NEG_INFINITY {
                                    0.0
                                } else {
                                    x.exp()
                                }
                            };
                            let total = (0.0 + fexp(a - m)) + fexp(b - m);
                            // `ln(1.0)` is exactly +0.0: skip the call
                            // without changing the sum. A total of
                            // exactly 1 is common on deterministic
                            // nodes with a single live child.
                            *o = m + if total == 1.0 { 0.0 } else { total.ln() };
                        }
                    }
                }
                Node::Or { start, len } => {
                    let (s, e) = (start as usize, (start + len) as usize);
                    // Pass 1: the running max lands in the node chunk.
                    out.fill(f64::NEG_INFINITY);
                    for (&c, &lw) in self.edges[s..e].iter().zip(&self.edge_log_weights[s..e]) {
                        let child = &lo[c as usize * l..c as usize * l + l];
                        for (o, &v) in out.iter_mut().zip(child) {
                            *o = f64::max(*o, lw + v);
                        }
                    }
                    // Pass 2: exp-sum against the max. Lanes whose max is
                    // -inf produce NaN partials here; they are discarded
                    // below, matching the single-query early-out. The
                    // same exact-identity `exp` skips as the fused
                    // binary path apply.
                    buf.acc.fill(0.0);
                    for (&c, &lw) in self.edges[s..e].iter().zip(&self.edge_log_weights[s..e]) {
                        let child = &lo[c as usize * l..c as usize * l + l];
                        for ((a, &v), &m) in buf.acc.iter_mut().zip(child).zip(out.iter()) {
                            let x = lw + v - m;
                            *a += if x == 0.0 {
                                1.0
                            } else if x == f64::NEG_INFINITY {
                                0.0
                            } else {
                                x.exp()
                            };
                        }
                    }
                    for (o, &t) in out.iter_mut().zip(&buf.acc) {
                        if *o != f64::NEG_INFINITY {
                            *o += if t == 1.0 { 0.0 } else { t.ln() };
                        }
                    }
                }
            }
        }
        let root = self.root as usize * l;
        batch.fan_out(&buf.vals[root..root + l])
    }

    /// Batched weighted model counts / evidence probabilities (linear
    /// space): `Pr[φ ∧ e_k]` per lane, bit-identical per lane to
    /// [`probability`](Self::probability).
    pub fn wmc_batch(&self, batch: &DnnfBatch, buf: &mut BatchBuffer) -> Vec<f64> {
        self.log_probability_batch(batch, buf).into_iter().map(f64::exp).collect()
    }

    /// Batched marginal distributions of `var`: three traversals (the
    /// cleared normalizer, then `var = 0`, `var = 1`) answer every lane,
    /// mirroring [`marginal`](Self::marginal) lane-for-lane (including
    /// the uniform fallback for zero-probability evidence).
    pub fn marginal_batch(
        &self,
        batch: &DnnfBatch,
        var: usize,
        buf: &mut BatchBuffer,
    ) -> Vec<Vec<f64>> {
        let mut ev = batch.clone();
        ev.set_all(var, MARGINALIZED);
        let log_z = self.log_probability_batch(&ev, buf);
        ev.set_all(var, 0);
        let p0 = self.log_probability_batch(&ev, buf);
        ev.set_all(var, 1);
        let p1 = self.log_probability_batch(&ev, buf);
        log_z
            .iter()
            .zip(p0.iter().zip(&p1))
            .map(|(&z, (&a, &b))| {
                if z == f64::NEG_INFINITY {
                    vec![0.5; 2]
                } else {
                    vec![(a - z).exp(), (b - z).exp()]
                }
            })
            .collect()
    }

    /// Batched most-probable explanations: one max-product up-pass over
    /// all lanes plus a per-lane downward trace, mirroring
    /// [`mpe`](Self::mpe) lane-for-lane.
    ///
    /// # Panics
    ///
    /// Panics if `batch.num_vars() != self.num_vars()`.
    pub fn mpe_batch(&self, batch: &DnnfBatch, buf: &mut BatchBuffer) -> Vec<MpeResult> {
        assert_eq!(batch.num_vars, self.num_vars, "batch arity mismatch");
        let l = batch.lanes;
        let n = self.nodes.len();
        buf.vals.resize(n * l, 0.0);
        buf.arg.resize(n * l, 0);
        for (i, node) in self.nodes.iter().enumerate() {
            let base = i * l;
            let (lo, hi) = buf.vals.split_at_mut(base);
            let out = &mut hi[..l];
            match *node {
                Node::Indicator { var, value } => {
                    for (o, &c) in out.iter_mut().zip(batch.var_codes(var as usize)) {
                        *o = if c == MARGINALIZED || (c == 1) == value {
                            0.0
                        } else {
                            f64::NEG_INFINITY
                        };
                    }
                }
                Node::Leaf { var, log_p } => {
                    for (o, &c) in out.iter_mut().zip(batch.var_codes(var as usize)) {
                        *o = if c == MARGINALIZED {
                            log_p[0].max(log_p[1])
                        } else {
                            log_p[c as usize]
                        };
                    }
                }
                Node::And { start, len } => {
                    let (s, e) = (start as usize, (start + len) as usize);
                    out.fill(0.0);
                    for &c in &self.edges[s..e] {
                        let child = &lo[c as usize * l..c as usize * l + l];
                        for (o, &v) in out.iter_mut().zip(child) {
                            *o += v;
                        }
                    }
                }
                Node::Or { start, len } => {
                    let (s, e) = (start as usize, (start + len) as usize);
                    let args = &mut buf.arg[base..base + l];
                    out.fill(f64::NEG_INFINITY);
                    args.fill(0);
                    // Same strict-`>` argmax fold as the single-query
                    // path: ties keep the earliest child.
                    for (k, (&c, &lw)) in
                        self.edges[s..e].iter().zip(&self.edge_log_weights[s..e]).enumerate()
                    {
                        let child = &lo[c as usize * l..c as usize * l + l];
                        for ((o, a), &v) in out.iter_mut().zip(args.iter_mut()).zip(child) {
                            let x = lw + v;
                            if x > *o {
                                *o = x;
                                *a = k as u32;
                            }
                        }
                    }
                }
            }
        }
        // Per-storage-lane downward trace selecting one child per
        // disjunction; duplicate query lanes share the traced result.
        let (vals, arg, stack) = (&buf.vals, &buf.arg, &mut buf.stack);
        let per_storage: Vec<MpeResult> = (0..l)
            .map(|lane| {
                let mut assignment: Vec<usize> =
                    (0..self.num_vars).map(|v| batch.storage_value(v, lane).unwrap_or(0)).collect();
                stack.clear();
                stack.push(self.root);
                while let Some(id) = stack.pop() {
                    match self.nodes[id as usize] {
                        Node::Indicator { var, value } => {
                            if batch.storage_value(var as usize, lane).is_none() {
                                assignment[var as usize] = usize::from(value);
                            }
                        }
                        Node::Leaf { var, log_p } => {
                            if batch.storage_value(var as usize, lane).is_none() {
                                assignment[var as usize] = usize::from(log_p[1] > log_p[0]);
                            }
                        }
                        Node::And { start, len } => {
                            let (s, e) = (start as usize, (start + len) as usize);
                            stack.extend(self.edges[s..e].iter().copied());
                        }
                        Node::Or { start, .. } => {
                            let k = arg[id as usize * l + lane];
                            stack.push(self.edges[(start + k) as usize]);
                        }
                    }
                }
                MpeResult { assignment, log_prob: vals[self.root as usize * l + lane] }
            })
            .collect();
        batch.fan_out(&per_storage)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::CircuitBuilder;
    use crate::compile::{compile_cnf, WmcWeights};
    use crate::infer::EvalBuffer;
    use reason_sat::gen::random_ksat;

    fn compiled(seed: u64, n: usize, m: usize) -> Option<(Circuit, Dnnf)> {
        let cnf = random_ksat(n, m, 3, seed);
        let weights = WmcWeights::new((0..n).map(|v| 0.3 + 0.05 * (v % 7) as f64).collect());
        let circuit = compile_cnf(&cnf, &weights)?;
        let arena = Dnnf::from_circuit(&circuit).unwrap();
        Some((circuit, arena))
    }

    #[test]
    fn arena_matches_circuit_bit_for_bit() {
        let mut checked = 0;
        for seed in 0..12 {
            let Some((circuit, arena)) = compiled(seed, 10, 26) else { continue };
            let mut cbuf = EvalBuffer::new();
            let mut abuf = DnnfBuffer::new();
            // Full marginalization, full assignments, partial evidence.
            let mut evidences = vec![Evidence::empty(10)];
            for bits in [0u32, 7, 99, 1023] {
                let values: Vec<usize> = (0..10).map(|v| (bits >> v & 1) as usize).collect();
                evidences.push(Evidence::from_assignment(&values));
            }
            let mut partial = Evidence::empty(10);
            partial.set(0, 1).set(3, 0).set(7, 1);
            evidences.push(partial);
            for ev in &evidences {
                let c = circuit.log_probability_with(ev, &mut cbuf);
                let a = arena.log_probability(ev, &mut abuf);
                assert!(
                    c == a || (c.is_nan() && a.is_nan()),
                    "seed {seed}: circuit {c} vs arena {a}"
                );
            }
            checked += 1;
        }
        assert!(checked > 0, "at least one satisfiable instance must be checked");
    }

    #[test]
    fn marginal_and_mpe_match_circuit() {
        let (circuit, arena) = compiled(3, 9, 22).expect("seed 3 is satisfiable");
        let mut cbuf = EvalBuffer::new();
        let mut abuf = DnnfBuffer::new();
        let mut ev = Evidence::empty(9);
        ev.set(2, 1);
        for var in [0, 4, 8] {
            assert_eq!(
                circuit.marginal_with(&ev, var, &mut cbuf),
                arena.marginal(&ev, var, &mut abuf)
            );
        }
        let cm = circuit.mpe_with(&ev, &mut cbuf);
        let am = arena.mpe(&ev, &mut abuf);
        assert_eq!(cm.assignment, am.assignment);
        assert_eq!(cm.log_prob, am.log_prob);
    }

    #[test]
    fn sizes_and_bytes_track_the_source_circuit() {
        let (circuit, arena) = compiled(1, 8, 20).expect("seed 1 is satisfiable");
        assert_eq!(arena.num_nodes(), circuit.num_nodes());
        assert_eq!(arena.num_edges(), circuit.num_edges());
        assert_eq!(arena.num_vars(), 8);
        assert!(arena.bytes() > 0);
    }

    #[test]
    fn rejects_non_binary_universes() {
        let mut b = CircuitBuilder::new(vec![3]);
        let leaf = b.categorical(0, &[0.2, 0.3, 0.5]);
        let c = b.build(leaf).unwrap();
        assert_eq!(Dnnf::from_circuit(&c), Err(DnnfError::NonBinaryVariable { var: 0, arity: 3 }));
    }

    /// A mixed evidence workload over `n` binary variables: the empty
    /// evidence, full assignments, partial patterns, and a duplicate of
    /// lane 0 (batches must tolerate repeated queries).
    fn lanes(n: usize) -> Vec<Evidence> {
        let mut lanes = vec![Evidence::empty(n)];
        for bits in [0u32, 5, 42, 999] {
            let values: Vec<usize> = (0..n).map(|v| (bits >> (v % 10) & 1) as usize).collect();
            lanes.push(Evidence::from_assignment(&values));
        }
        let mut partial = Evidence::empty(n);
        partial.set(0, 1).set(n - 1, 0);
        lanes.push(partial);
        lanes.push(lanes[0].clone());
        lanes
    }

    #[test]
    fn batched_log_probability_is_bit_identical_per_lane() {
        let mut checked = 0;
        for seed in 0..12 {
            let Some((_, arena)) = compiled(seed, 10, 26) else { continue };
            let lanes = lanes(10);
            let batch = DnnfBatch::pack(&lanes);
            let mut sbuf = DnnfBuffer::new();
            let mut bbuf = BatchBuffer::new();
            let got = arena.log_probability_batch(&batch, &mut bbuf);
            assert_eq!(got.len(), lanes.len());
            for (lane, ev) in lanes.iter().enumerate() {
                let single = arena.log_probability(ev, &mut sbuf);
                assert!(
                    single.to_bits() == got[lane].to_bits(),
                    "seed {seed} lane {lane}: single {single} vs batched {}",
                    got[lane]
                );
            }
            // Linear space goes through the same exp.
            let probs = arena.wmc_batch(&batch, &mut bbuf);
            for (lane, ev) in lanes.iter().enumerate() {
                assert_eq!(probs[lane].to_bits(), arena.probability(ev, &mut sbuf).to_bits());
            }
            checked += 1;
        }
        assert!(checked > 0, "at least one satisfiable instance must be checked");
    }

    #[test]
    fn batched_marginal_and_mpe_match_single_query_lane_for_lane() {
        let (_, arena) = compiled(3, 9, 22).expect("seed 3 is satisfiable");
        let lanes = lanes(9);
        let batch = DnnfBatch::pack(&lanes);
        let mut sbuf = DnnfBuffer::new();
        let mut bbuf = BatchBuffer::new();
        for var in [0, 4, 8] {
            let dists = arena.marginal_batch(&batch, var, &mut bbuf);
            for (lane, ev) in lanes.iter().enumerate() {
                assert_eq!(
                    dists[lane],
                    arena.marginal(ev, var, &mut sbuf),
                    "var {var} lane {lane}"
                );
            }
        }
        let results = arena.mpe_batch(&batch, &mut bbuf);
        for (lane, ev) in lanes.iter().enumerate() {
            let single = arena.mpe(ev, &mut sbuf);
            assert_eq!(results[lane].assignment, single.assignment, "lane {lane}");
            assert_eq!(results[lane].log_prob.to_bits(), single.log_prob.to_bits(), "lane {lane}");
        }
    }

    #[test]
    fn batch_packing_round_trips_evidence() {
        let lanes = lanes(8);
        let batch = DnnfBatch::pack(&lanes);
        assert_eq!(batch.lanes(), lanes.len());
        assert_eq!(batch.num_vars(), 8);
        for (lane, ev) in lanes.iter().enumerate() {
            for var in 0..8 {
                assert_eq!(batch.value(var, lane), ev.value(var));
            }
        }
    }

    #[test]
    fn batch_buffer_reuse_is_stable_across_batches_of_different_widths() {
        let (_, arena) = compiled(5, 8, 20).expect("seed 5 is satisfiable");
        let mut buf = BatchBuffer::new();
        let wide = DnnfBatch::pack(&lanes(8));
        let first = arena.wmc_batch(&wide, &mut buf);
        // A narrower batch in between must not leak state into a rerun.
        let narrow = DnnfBatch::pack(&[Evidence::empty(8)]);
        let _ = arena.mpe_batch(&narrow, &mut buf);
        let again = arena.wmc_batch(&wide, &mut buf);
        assert_eq!(first, again, "a reused buffer must not leak state between batches");
    }

    #[test]
    fn buffer_reuse_is_stable_across_queries() {
        let (_, arena) = compiled(5, 8, 20).expect("seed 5 is satisfiable");
        let mut buf = DnnfBuffer::new();
        let empty = Evidence::empty(8);
        let first = arena.probability(&empty, &mut buf);
        let mut ev = Evidence::empty(8);
        ev.set(1, 0);
        let _ = arena.probability(&ev, &mut buf);
        let again = arena.probability(&empty, &mut buf);
        assert_eq!(first, again, "a reused buffer must not leak state between queries");
    }
}
