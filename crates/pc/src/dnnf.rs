//! Flat, evaluation-ready d-DNNF arenas extracted from compiled circuits.
//!
//! [`crate::compile::compile_cnf`] emits a [`Circuit`]: enum nodes with
//! per-node child vectors, ideal for construction and structural
//! validation but pointer-chasing for the serving hot path. A [`Dnnf`]
//! is the same circuit flattened into arrays — one node table, one
//! contiguous edge array, one parallel edge-weight array — so a
//! repeated-query engine (the `reason-serve` circuit store) evaluates
//! it with nothing but linear index arithmetic.
//!
//! Extraction is **1:1 and order-preserving**: node `i` of the arena is
//! node `i` of the source circuit, children keep their order, and the
//! evaluator reproduces [`Circuit::log_values_into`]'s arithmetic
//! operation-for-operation. Arena answers are therefore bit-identical
//! to circuit answers — the store's round-trip guarantee rests on this.
//!
//! Only *binary* universes are accepted (every compiled formula circuit
//! is one); [`Dnnf::from_circuit`] reports [`DnnfError`] otherwise.
//!
//! ```
//! use reason_sat::Cnf;
//! use reason_pc::{compile_cnf, Dnnf, DnnfBuffer, Evidence, WmcWeights};
//!
//! let cnf = Cnf::from_clauses(2, vec![vec![1, 2]]);
//! let circuit = compile_cnf(&cnf, &WmcWeights::uniform(2)).unwrap();
//! let arena = Dnnf::from_circuit(&circuit).unwrap();
//! let mut buf = DnnfBuffer::new();
//! let z = arena.probability(&Evidence::empty(2), &mut buf);
//! assert_eq!(z, circuit.probability(&Evidence::empty(2)));
//! ```

use std::fmt;

use crate::circuit::{Circuit, PcNode};
use crate::infer::{Evidence, MpeResult};

/// Why a circuit could not be flattened into a [`Dnnf`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DnnfError {
    /// A variable with arity other than 2 — the arena stores Bernoulli
    /// leaves as fixed `[log p0, log p1]` pairs.
    NonBinaryVariable {
        /// The offending variable.
        var: usize,
        /// Its declared arity.
        arity: usize,
    },
}

impl fmt::Display for DnnfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DnnfError::NonBinaryVariable { var, arity } => {
                write!(f, "variable {var} has arity {arity}, arena supports binary only")
            }
        }
    }
}

impl std::error::Error for DnnfError {}

/// One flattened node. Interior nodes address a contiguous slice of the
/// arena's edge array instead of owning a child vector.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Node {
    /// Indicator leaf `[x_var = value]`.
    Indicator { var: u32, value: bool },
    /// Bernoulli leaf with `log_p[b] = log p(x_var = b)`.
    Leaf { var: u32, log_p: [f64; 2] },
    /// Decomposable conjunction over `edges[start..start+len]`.
    And { start: u32, len: u32 },
    /// Deterministic disjunction over `edges[start..start+len]`, with
    /// log-weights in the parallel weight array.
    Or { start: u32, len: u32 },
}

/// A compiled formula circuit flattened into an evaluation-ready arena
/// (see the [module docs](self)).
#[derive(Debug, Clone, PartialEq)]
pub struct Dnnf {
    num_vars: usize,
    nodes: Vec<Node>,
    /// Child node ids of every interior node, concatenated.
    edges: Vec<u32>,
    /// Log-weights parallel to `edges`; meaningful for `Or` slices,
    /// zero for `And` slices.
    edge_log_weights: Vec<f64>,
    root: u32,
}

/// Reusable scratch space for arena evaluation — the serving analogue
/// of [`crate::infer::EvalBuffer`]. One buffer per worker thread makes
/// every query after the first allocation-free.
#[derive(Debug, Clone, Default)]
pub struct DnnfBuffer {
    vals: Vec<f64>,
    arg: Vec<u32>,
    stack: Vec<u32>,
}

impl DnnfBuffer {
    /// An empty buffer; the first query sizes it.
    pub fn new() -> Self {
        DnnfBuffer::default()
    }
}

impl Dnnf {
    /// Flattens `circuit` into an arena, preserving node order and
    /// child order exactly.
    ///
    /// # Errors
    ///
    /// Returns [`DnnfError::NonBinaryVariable`] if any variable's arity
    /// is not 2.
    pub fn from_circuit(circuit: &Circuit) -> Result<Self, DnnfError> {
        if let Some((var, &arity)) = circuit.arities().iter().enumerate().find(|(_, &a)| a != 2) {
            return Err(DnnfError::NonBinaryVariable { var, arity });
        }
        let mut nodes = Vec::with_capacity(circuit.num_nodes());
        let mut edges: Vec<u32> = Vec::with_capacity(circuit.num_edges());
        let mut edge_log_weights: Vec<f64> = Vec::with_capacity(circuit.num_edges());
        for node in circuit.nodes() {
            let flat = match node {
                PcNode::Indicator { var, value } => {
                    Node::Indicator { var: *var as u32, value: *value == 1 }
                }
                PcNode::Categorical { var, log_probs } => {
                    Node::Leaf { var: *var as u32, log_p: [log_probs[0], log_probs[1]] }
                }
                PcNode::Product { children } => {
                    let start = edges.len() as u32;
                    for c in children {
                        edges.push(c.index() as u32);
                        edge_log_weights.push(0.0);
                    }
                    Node::And { start, len: children.len() as u32 }
                }
                PcNode::Sum { children, log_weights } => {
                    let start = edges.len() as u32;
                    for (c, lw) in children.iter().zip(log_weights) {
                        edges.push(c.index() as u32);
                        edge_log_weights.push(*lw);
                    }
                    Node::Or { start, len: children.len() as u32 }
                }
            };
            nodes.push(flat);
        }
        Ok(Dnnf {
            num_vars: circuit.num_vars(),
            nodes,
            edges,
            edge_log_weights,
            root: circuit.root().index() as u32,
        })
    }

    /// Number of variables in the universe.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of arena nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The arena's memory footprint in bytes: the node table plus the
    /// edge and edge-weight arrays. This is what the serving store's
    /// byte bound meters.
    pub fn bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<Node>()
            + self.edges.len() * std::mem::size_of::<u32>()
            + self.edge_log_weights.len() * std::mem::size_of::<f64>()
    }

    /// Log-probability of the evidence: one linear sweep over the node
    /// table, arithmetic identical to [`Circuit::log_values_into`].
    ///
    /// # Panics
    ///
    /// Panics if `evidence.len() != self.num_vars()`.
    pub fn log_probability(&self, evidence: &Evidence, buf: &mut DnnfBuffer) -> f64 {
        assert_eq!(evidence.len(), self.num_vars, "evidence arity mismatch");
        buf.vals.clear();
        buf.vals.resize(self.nodes.len(), 0.0);
        let vals = &mut buf.vals;
        for (i, node) in self.nodes.iter().enumerate() {
            vals[i] = match *node {
                Node::Indicator { var, value } => match evidence.value(var as usize) {
                    Some(v) if (v == 1) == value => 0.0,
                    Some(_) => f64::NEG_INFINITY,
                    None => 0.0, // marginalized: Σ_v [v = value] = 1
                },
                Node::Leaf { var, log_p } => match evidence.value(var as usize) {
                    Some(v) => log_p[v],
                    None => 0.0, // distributions sum to 1
                },
                Node::And { start, len } => {
                    let (s, e) = (start as usize, (start + len) as usize);
                    self.edges[s..e].iter().map(|&c| vals[c as usize]).sum()
                }
                Node::Or { start, len } => {
                    let (s, e) = (start as usize, (start + len) as usize);
                    // Inline log-sum-exp, same two-pass numerics as the
                    // circuit evaluator (bit-identical answers).
                    let m = self.edges[s..e]
                        .iter()
                        .zip(&self.edge_log_weights[s..e])
                        .map(|(&c, lw)| lw + vals[c as usize])
                        .fold(f64::NEG_INFINITY, f64::max);
                    if m == f64::NEG_INFINITY {
                        f64::NEG_INFINITY
                    } else {
                        let total: f64 = self.edges[s..e]
                            .iter()
                            .zip(&self.edge_log_weights[s..e])
                            .map(|(&c, lw)| (lw + vals[c as usize] - m).exp())
                            .sum();
                        m + total.ln()
                    }
                }
            };
        }
        vals[self.root as usize]
    }

    /// Probability of the evidence (linear space).
    pub fn probability(&self, evidence: &Evidence, buf: &mut DnnfBuffer) -> f64 {
        self.log_probability(evidence, buf).exp()
    }

    /// The marginal distribution of `var` given `evidence` (any setting
    /// of `var` inside `evidence` is ignored), normalized; uniform when
    /// the evidence itself has zero probability. Mirrors
    /// [`Circuit::marginal_with`].
    pub fn marginal(&self, evidence: &Evidence, var: usize, buf: &mut DnnfBuffer) -> Vec<f64> {
        let mut ev = evidence.clone();
        ev.clear(var);
        let log_z = self.log_probability(&ev, buf);
        if log_z == f64::NEG_INFINITY {
            return vec![0.5; 2];
        }
        (0..2)
            .map(|v| {
                ev.set(var, v);
                (self.log_probability(&ev, buf) - log_z).exp()
            })
            .collect()
    }

    /// Most probable explanation: completes `evidence` with the
    /// max-product maximizing assignment. Exact for the deterministic
    /// circuits the compiler emits; mirrors [`Circuit::mpe_with`].
    pub fn mpe(&self, evidence: &Evidence, buf: &mut DnnfBuffer) -> MpeResult {
        assert_eq!(evidence.len(), self.num_vars, "evidence arity mismatch");
        let n = self.nodes.len();
        buf.vals.clear();
        buf.vals.resize(n, 0.0);
        buf.arg.clear();
        buf.arg.resize(n, 0);
        let (vals, arg) = (&mut buf.vals, &mut buf.arg);
        for (i, node) in self.nodes.iter().enumerate() {
            match *node {
                Node::Indicator { var, value } => {
                    vals[i] = match evidence.value(var as usize) {
                        Some(v) if (v == 1) == value => 0.0,
                        Some(_) => f64::NEG_INFINITY,
                        None => 0.0,
                    };
                }
                Node::Leaf { var, log_p } => {
                    vals[i] = match evidence.value(var as usize) {
                        Some(v) => log_p[v],
                        None => log_p[0].max(log_p[1]),
                    };
                }
                Node::And { start, len } => {
                    let (s, e) = (start as usize, (start + len) as usize);
                    vals[i] = self.edges[s..e].iter().map(|&c| vals[c as usize]).sum();
                }
                Node::Or { start, len } => {
                    let (s, e) = (start as usize, (start + len) as usize);
                    let (best, best_val) = self.edges[s..e]
                        .iter()
                        .zip(&self.edge_log_weights[s..e])
                        .enumerate()
                        .map(|(k, (&c, lw))| (k, lw + vals[c as usize]))
                        .fold((0, f64::NEG_INFINITY), |acc, x| if x.1 > acc.1 { x } else { acc });
                    vals[i] = best_val;
                    arg[i] = best as u32;
                }
            }
        }
        // Downward trace selecting one child per disjunction.
        let mut assignment: Vec<usize> =
            (0..self.num_vars).map(|v| evidence.value(v).unwrap_or(0)).collect();
        let stack = &mut buf.stack;
        stack.clear();
        stack.push(self.root);
        while let Some(id) = stack.pop() {
            match self.nodes[id as usize] {
                Node::Indicator { var, value } => {
                    if evidence.value(var as usize).is_none() {
                        assignment[var as usize] = usize::from(value);
                    }
                }
                Node::Leaf { var, log_p } => {
                    if evidence.value(var as usize).is_none() {
                        assignment[var as usize] = usize::from(log_p[1] > log_p[0]);
                    }
                }
                Node::And { start, len } => {
                    let (s, e) = (start as usize, (start + len) as usize);
                    stack.extend(self.edges[s..e].iter().copied());
                }
                Node::Or { start, .. } => {
                    stack.push(self.edges[(start + arg[id as usize]) as usize]);
                }
            }
        }
        MpeResult { assignment, log_prob: vals[self.root as usize] }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::CircuitBuilder;
    use crate::compile::{compile_cnf, WmcWeights};
    use crate::infer::EvalBuffer;
    use reason_sat::gen::random_ksat;

    fn compiled(seed: u64, n: usize, m: usize) -> Option<(Circuit, Dnnf)> {
        let cnf = random_ksat(n, m, 3, seed);
        let weights = WmcWeights::new((0..n).map(|v| 0.3 + 0.05 * (v % 7) as f64).collect());
        let circuit = compile_cnf(&cnf, &weights)?;
        let arena = Dnnf::from_circuit(&circuit).unwrap();
        Some((circuit, arena))
    }

    #[test]
    fn arena_matches_circuit_bit_for_bit() {
        let mut checked = 0;
        for seed in 0..12 {
            let Some((circuit, arena)) = compiled(seed, 10, 26) else { continue };
            let mut cbuf = EvalBuffer::new();
            let mut abuf = DnnfBuffer::new();
            // Full marginalization, full assignments, partial evidence.
            let mut evidences = vec![Evidence::empty(10)];
            for bits in [0u32, 7, 99, 1023] {
                let values: Vec<usize> = (0..10).map(|v| (bits >> v & 1) as usize).collect();
                evidences.push(Evidence::from_assignment(&values));
            }
            let mut partial = Evidence::empty(10);
            partial.set(0, 1).set(3, 0).set(7, 1);
            evidences.push(partial);
            for ev in &evidences {
                let c = circuit.log_probability_with(ev, &mut cbuf);
                let a = arena.log_probability(ev, &mut abuf);
                assert!(
                    c == a || (c.is_nan() && a.is_nan()),
                    "seed {seed}: circuit {c} vs arena {a}"
                );
            }
            checked += 1;
        }
        assert!(checked > 0, "at least one satisfiable instance must be checked");
    }

    #[test]
    fn marginal_and_mpe_match_circuit() {
        let (circuit, arena) = compiled(3, 9, 22).expect("seed 3 is satisfiable");
        let mut cbuf = EvalBuffer::new();
        let mut abuf = DnnfBuffer::new();
        let mut ev = Evidence::empty(9);
        ev.set(2, 1);
        for var in [0, 4, 8] {
            assert_eq!(
                circuit.marginal_with(&ev, var, &mut cbuf),
                arena.marginal(&ev, var, &mut abuf)
            );
        }
        let cm = circuit.mpe_with(&ev, &mut cbuf);
        let am = arena.mpe(&ev, &mut abuf);
        assert_eq!(cm.assignment, am.assignment);
        assert_eq!(cm.log_prob, am.log_prob);
    }

    #[test]
    fn sizes_and_bytes_track_the_source_circuit() {
        let (circuit, arena) = compiled(1, 8, 20).expect("seed 1 is satisfiable");
        assert_eq!(arena.num_nodes(), circuit.num_nodes());
        assert_eq!(arena.num_edges(), circuit.num_edges());
        assert_eq!(arena.num_vars(), 8);
        assert!(arena.bytes() > 0);
    }

    #[test]
    fn rejects_non_binary_universes() {
        let mut b = CircuitBuilder::new(vec![3]);
        let leaf = b.categorical(0, &[0.2, 0.3, 0.5]);
        let c = b.build(leaf).unwrap();
        assert_eq!(Dnnf::from_circuit(&c), Err(DnnfError::NonBinaryVariable { var: 0, arity: 3 }));
    }

    #[test]
    fn buffer_reuse_is_stable_across_queries() {
        let (_, arena) = compiled(5, 8, 20).expect("seed 5 is satisfiable");
        let mut buf = DnnfBuffer::new();
        let empty = Evidence::empty(8);
        let first = arena.probability(&empty, &mut buf);
        let mut ev = Evidence::empty(8);
        ev.set(1, 0);
        let _ = arena.probability(&ev, &mut buf);
        let again = arena.probability(&empty, &mut buf);
        assert_eq!(first, again, "a reused buffer must not leak state between queries");
    }
}
