//! Knowledge compilation: CNF formulas → deterministic circuits.
//!
//! This is how R²-Guard-style systems (paper Table I) turn logical safety
//! rules into probabilistic circuits: a propositional formula over binary
//! variables is compiled into a smooth, decomposable, *deterministic*
//! circuit whose weighted model count equals the probability that the
//! formula holds under independent variable marginals.
//!
//! [`compile_cnf`] is a sharpSAT/c2d-style **top-down component-caching
//! compiler** built on `reason_sat`'s shared clause pool
//! ([`reason_sat::ClausePool`]) and trail propagator
//! ([`reason_sat::Propagator`]). Each search node runs four steps:
//!
//! 1. **propagate** — unit propagation fixes every implied literal, so
//!    implications become cheap weighted factors instead of trivial
//!    decision sums;
//! 2. **decompose** — the residual clause set splits into connected
//!    components (clauses sharing no variable), compiled independently
//!    and joined by a decomposable product;
//! 3. **decide** — a branching variable is chosen *dynamically* per
//!    component (most residual occurrences by default; see [`VarOrder`]
//!    for the external-score hook used by learned proxies);
//! 4. **cache** — components are memoized under hashed fingerprints of
//!    `(clause id, surviving-literal mask)` pairs over the shared pool,
//!    so a cache probe is linear in the component and never sorts or
//!    clones the residual clauses.
//!
//! The PR-3-era static-order Shannon expansion survives as
//! [`compile_cnf_shannon`]: it is the baseline the `reason-eval compile`
//! sweep measures speedups against, and the regression guard that pins
//! the new compiler's circuit sizes from above.

use std::collections::HashMap;

use reason_sat::{Clause, ClausePool, Cnf, Lit, Propagator, Var};
use reason_telemetry::Telemetry;

use crate::circuit::{Circuit, CircuitBuilder, NodeId, PcNode};
use crate::infer::{EvalBuffer, Evidence};

/// Per-variable Bernoulli marginals used as weights for weighted model
/// counting.
#[derive(Debug, Clone, PartialEq)]
pub struct WmcWeights {
    probs: Vec<f64>,
}

impl WmcWeights {
    /// Weights with `probs[v] = p(X_v = 1)`.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]`.
    pub fn new(probs: Vec<f64>) -> Self {
        assert!(probs.iter().all(|p| (0.0..=1.0).contains(p)), "probabilities must be in [0,1]");
        WmcWeights { probs }
    }

    /// Uniform weights (`p = 0.5` everywhere): the weighted model count
    /// equals `#models / 2^n`.
    pub fn uniform(num_vars: usize) -> Self {
        WmcWeights { probs: vec![0.5; num_vars] }
    }

    /// `p(X_v = 1)`.
    pub fn prob(&self, var: usize) -> f64 {
        self.probs[var]
    }

    /// The probability that `lit` is true.
    pub fn lit_prob(&self, lit: Lit) -> f64 {
        let p = self.probs[lit.var().index()];
        if lit.is_neg() {
            1.0 - p
        } else {
            p
        }
    }

    /// Number of variables covered.
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// `true` when there are no variables.
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }
}

/// How the top-down compiler picks the branching variable inside a
/// component.
#[derive(Debug, Clone, PartialEq)]
pub enum VarOrder {
    /// Branch on the variable with the most occurrences in the
    /// component's residual clauses (ties broken by lowest index) —
    /// the default dynamic order, which maximizes how much each
    /// decision satisfies/shrinks.
    MostOccurrences,
    /// Branch on the lowest-indexed variable of the component — the
    /// legacy static order, useful for apples-to-apples comparisons
    /// against [`compile_cnf_shannon`].
    Static,
    /// Branch on the component variable with the highest external
    /// score (ties broken by lowest index). This is the hook for
    /// learned branching proxies: any per-variable score vector works —
    /// e.g. the polarization scores a `reason-approx` proposal or
    /// prediction network exposes for guided CDCL branching.
    ///
    /// # Panics
    ///
    /// Compilation panics if the score vector's length differs from
    /// the formula's variable count.
    Scored(Vec<f64>),
}

/// Configuration of the top-down compiler.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileConfig {
    /// Branching-variable order (see [`VarOrder`]).
    pub order: VarOrder,
}

impl Default for CompileConfig {
    fn default() -> Self {
        CompileConfig { order: VarOrder::MostOccurrences }
    }
}

/// Counters reported by [`compile_cnf_with_stats`]: what the
/// propagate → decompose → decide → cache pipeline actually did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompileStats {
    /// Decision (branching) nodes explored.
    pub decisions: u64,
    /// Literals fixed by unit propagation (never became decisions).
    pub propagations: u64,
    /// Connected components created by decomposition.
    pub components: u64,
    /// Component-cache hits.
    pub cache_hits: u64,
    /// Component-cache misses (compiled components).
    pub cache_misses: u64,
    /// Components answered by a cross-query [`PersistentComponentCache`]
    /// (always 0 for the uncached entry points).
    pub persistent_hits: u64,
    /// Component fragments stored into the cross-query cache.
    pub persistent_stores: u64,
    /// Nodes in the final (compacted) circuit; 0 for UNSAT inputs.
    pub nodes: usize,
    /// Edges in the final (compacted) circuit; 0 for UNSAT inputs.
    pub edges: usize,
}

impl CompileStats {
    /// Cache hits as a fraction of all component probes.
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// Compiles `cnf` into a deterministic circuit over all `cnf.num_vars()`
/// binary variables, weighted by `weights`, using the top-down
/// component-caching compiler (see the [module docs](self)).
///
/// The root's fully-marginalized probability equals the weighted model
/// count `Pr[φ]`; conditioning works as in any PC. The circuit is smooth,
/// decomposable, and deterministic, so MPE queries are exact.
///
/// Returns `None` if the formula is unsatisfiable (the zero circuit is not
/// representable as a normalized PC).
///
/// # Panics
///
/// Panics if `weights.len() != cnf.num_vars()`.
///
/// ```
/// use reason_sat::Cnf;
/// use reason_pc::{compile_cnf, WmcWeights, Evidence};
///
/// // x0 | x1 under uniform weights: 3 of 4 assignments satisfy.
/// let cnf = Cnf::from_clauses(2, vec![vec![1, 2]]);
/// let circuit = compile_cnf(&cnf, &WmcWeights::uniform(2)).unwrap();
/// let pr = circuit.probability(&Evidence::empty(2));
/// assert!((pr - 0.75).abs() < 1e-12);
/// ```
pub fn compile_cnf(cnf: &Cnf, weights: &WmcWeights) -> Option<Circuit> {
    compile_cnf_with(cnf, weights, &CompileConfig::default())
}

/// [`compile_cnf`] with an explicit [`CompileConfig`].
pub fn compile_cnf_with(
    cnf: &Cnf,
    weights: &WmcWeights,
    config: &CompileConfig,
) -> Option<Circuit> {
    compile_cnf_with_stats(cnf, weights, config).0
}

/// [`compile_cnf_with`], also reporting [`CompileStats`].
pub fn compile_cnf_with_stats(
    cnf: &Cnf,
    weights: &WmcWeights,
    config: &CompileConfig,
) -> (Option<Circuit>, CompileStats) {
    compile_cnf_inner(cnf, weights, config, None, None)
}

/// [`compile_cnf_with_stats`] through a caller-held cross-query
/// [`PersistentComponentCache`]: components whose fingerprints survive
/// from earlier compilations of *related* formulas (same clause-pool
/// ids, same weights) are spliced from cached fragments instead of
/// recompiled. This is how a serving knowledge base recompiles only the
/// components an added clause actually touches.
///
/// The cache binds to the first weight vector it compiles under.
///
/// # Panics
///
/// Panics on weight/score arity mismatches (as [`compile_cnf_with`])
/// and if `cache` was previously used with different weights.
pub fn compile_cnf_cached(
    cnf: &Cnf,
    weights: &WmcWeights,
    config: &CompileConfig,
    cache: &mut PersistentComponentCache,
) -> (Option<Circuit>, CompileStats) {
    compile_cnf_observed(cnf, weights, config, Some(cache), None)
}

/// The fully-instrumented entry point every other `compile_cnf*`
/// variant funnels into: an optional cross-query cache plus an optional
/// [`Telemetry`] sink. With telemetry attached, the
/// propagate / component-split / cache-probe phases emit child spans
/// under a `pc.compile` root, and the [`CompileStats`] counters land in
/// the registry (`pc_propagations_total`, `pc_components_total`,
/// `pc_cache_probes_total{result}`, ...). Instrumentation never changes
/// the compiled circuit: phase timing only *reads* the injected clock.
pub fn compile_cnf_observed(
    cnf: &Cnf,
    weights: &WmcWeights,
    config: &CompileConfig,
    mut cache: Option<&mut PersistentComponentCache>,
    telemetry: Option<&Telemetry>,
) -> (Option<Circuit>, CompileStats) {
    if let Some(cache) = cache.as_deref_mut() {
        cache.bind_weights(weights);
    }
    compile_cnf_inner(cnf, weights, config, cache, telemetry)
}

fn compile_cnf_inner(
    cnf: &Cnf,
    weights: &WmcWeights,
    config: &CompileConfig,
    persistent: Option<&mut PersistentComponentCache>,
    telemetry: Option<&Telemetry>,
) -> (Option<Circuit>, CompileStats) {
    assert_eq!(weights.len(), cnf.num_vars(), "weights arity mismatch");
    if let VarOrder::Scored(scores) = &config.order {
        assert_eq!(scores.len(), cnf.num_vars(), "score vector arity mismatch");
    }
    let num_vars = cnf.num_vars();
    let pool = ClausePool::new(cnf);
    let num_clauses = pool.num_clauses();
    let persist_depth = persistent.as_ref().map_or(0, |p| p.persist_depth);
    let mut compiler = TopDown {
        pool,
        prop: Propagator::new(num_vars),
        builder: CircuitBuilder::new(vec![2; num_vars]),
        weights,
        order: &config.order,
        cache: HashMap::new(),
        persistent,
        persist_depth,
        depth: 0,
        indicator_memo: vec![[None; 2]; num_vars],
        free_memo: vec![None; num_vars],
        implied_memo: vec![[None; 2]; num_vars],
        clause_active: vec![0; num_clauses],
        clause_taken: vec![0; num_clauses],
        var_stamp: vec![0; num_vars],
        occ_scratch: vec![0; num_vars],
        stamp: 0,
        stats: CompileStats::default(),
        telemetry,
        phase_prop_s: 0.0,
        phase_split_s: 0.0,
        phase_probe_s: 0.0,
    };
    let t_begin = telemetry.map(|t| t.now_s());
    let root = compiler.compile_top();
    let phases = (compiler.phase_prop_s, compiler.phase_split_s, compiler.phase_probe_s);
    let mut stats = compiler.stats;
    let result = match root {
        None => (None, stats),
        Some(root) => {
            let (arities, nodes) = compiler.builder.into_parts();
            // Branches killed by a sibling conflict leave unreachable
            // nodes behind; compact to the live circuit.
            let (circuit, _dropped) = Circuit::from_parts(arities, nodes, root).compact();
            debug_assert!(circuit.validate().is_ok(), "compiler emits valid circuits");
            stats.nodes = circuit.num_nodes();
            stats.edges = circuit.num_edges();
            (Some(circuit), stats)
        }
    };
    if let (Some(tel), Some(t0)) = (telemetry, t_begin) {
        record_compile_telemetry(tel, t0, &result.1, result.0.is_some(), phases);
    }
    result
}

/// Pushes one compilation into an attached [`Telemetry`]: a
/// `pc.compile` root span with sequential `pc.propagate` /
/// `pc.component_split` / `pc.cache_probe` children (phase time laid
/// out cumulatively from the compile's start), per-phase time
/// histograms (seconds), and the [`CompileStats`] event counters.
fn record_compile_telemetry(
    tel: &Telemetry,
    t0: f64,
    stats: &CompileStats,
    sat: bool,
    (prop_s, split_s, probe_s): (f64, f64, f64),
) {
    let t1 = tel.now_s().max(t0);
    let result = if sat { "sat" } else { "unsat" };
    let reg = &tel.registry;
    reg.counter("pc_compile_total", &[("result", result)]).inc();
    reg.counter("pc_propagations_total", &[]).add(stats.propagations);
    reg.counter("pc_decisions_total", &[]).add(stats.decisions);
    reg.counter("pc_components_total", &[]).add(stats.components);
    reg.counter("pc_cache_probes_total", &[("result", "hit")]).add(stats.cache_hits);
    reg.counter("pc_cache_probes_total", &[("result", "miss")]).add(stats.cache_misses);
    reg.counter("pc_persistent_probes_total", &[("result", "hit")]).add(stats.persistent_hits);
    reg.counter("pc_persistent_probes_total", &[("result", "store")]).add(stats.persistent_stores);
    reg.histogram("pc_compile_phase_seconds", &[("phase", "propagate")]).record(prop_s);
    reg.histogram("pc_compile_phase_seconds", &[("phase", "component_split")]).record(split_s);
    reg.histogram("pc_compile_phase_seconds", &[("phase", "cache_probe")]).record(probe_s);
    let root = tel.tracer.record_span(0, "pc.compile", &[("result", result)], t0, t1);
    let mut cursor = t0;
    for (name, d) in
        [("pc.propagate", prop_s), ("pc.component_split", split_s), ("pc.cache_probe", probe_s)]
    {
        let end = (cursor + d).min(t1);
        tel.tracer.record_span_under(0, name, &[], cursor, end, root);
        cursor = end;
    }
}

/// A satisfiable connected component: `clauses` are pool ids of
/// currently-unsatisfied clauses, `vars` exactly the unassigned
/// variables they mention (both sorted). The compiled node's scope is
/// exactly `vars`.
struct Component {
    clauses: Vec<u32>,
    vars: Vec<Var>,
}

/// Marker bit distinguishing wide-clause fingerprint entries from the
/// packed `(clause id << 32) | literal mask` form.
const WIDE_ENTRY: u64 = 1 << 63;

/// Secondary marker inside wide entries: set on literal codes,
/// clear on the leading clause-id entry.
const WIDE_LIT: u64 = 1 << 62;

/// A self-contained compiled component: nodes with fragment-local ids
/// (children-first), plus the fragment's root. Spliced into a later
/// compilation's builder by [`TopDown::splice_fragment`].
#[derive(Debug, Clone, PartialEq)]
struct Fragment {
    nodes: Vec<PcNode>,
    root: NodeId,
}

impl Fragment {
    /// Extracts the subgraph reachable from `root` out of a builder's
    /// node array, preserving relative (topological) order and internal
    /// sharing.
    fn extract(nodes: &[PcNode], root: NodeId) -> Fragment {
        let mut reachable: Vec<u32> = vec![root.0];
        let mut seen: std::collections::HashSet<u32> = std::collections::HashSet::new();
        seen.insert(root.0);
        let mut cursor = 0;
        while cursor < reachable.len() {
            let id = reachable[cursor];
            cursor += 1;
            for c in nodes[id as usize].children() {
                if seen.insert(c.0) {
                    reachable.push(c.0);
                }
            }
        }
        reachable.sort_unstable();
        let remap: HashMap<u32, u32> =
            reachable.iter().enumerate().map(|(local, &id)| (id, local as u32)).collect();
        let local_nodes = reachable
            .iter()
            .map(|&id| {
                let mut node = nodes[id as usize].clone();
                match &mut node {
                    PcNode::Sum { children, .. } | PcNode::Product { children } => {
                        for c in children.iter_mut() {
                            *c = NodeId(remap[&c.0]);
                        }
                    }
                    _ => {}
                }
                node
            })
            .collect();
        Fragment { nodes: local_nodes, root: NodeId(remap[&root.0]) }
    }

    /// Estimated heap footprint in bytes.
    fn bytes(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| {
                std::mem::size_of::<PcNode>()
                    + n.children().len() * (std::mem::size_of::<NodeId>() + 8)
            })
            .sum()
    }
}

/// Counters of a [`PersistentComponentCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PersistentCacheStats {
    /// Probes answered from the cache.
    pub hits: u64,
    /// Probes that missed (the component was then compiled and stored).
    pub misses: u64,
    /// Fragments stored.
    pub stores: u64,
    /// Entries dropped by clause invalidation.
    pub invalidated: u64,
}

impl PersistentCacheStats {
    /// Hits as a fraction of all probes.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A component cache that survives *across* compilations — the PR-4
/// in-compile cache lifted to the serving layer.
///
/// Keys are the same `(clause id, surviving-literal mask)` fingerprints
/// the in-compile cache uses, so they are only meaningful while clause
/// ids stay stable: the owning knowledge base appends new clauses at
/// fresh ids (old fingerprints stay valid) and calls
/// [`invalidate_clauses_from`](Self::invalidate_clauses_from) when a
/// retraction shifts ids. Values are self-contained circuit
/// fragments (or a cached UNSAT verdict), spliced into the next
/// compilation's builder with their log-weights preserved bit-for-bit.
///
/// Only components discovered within `persist_depth` decisions of the
/// root are persisted — deep, tiny components churn the map without
/// paying for their extraction cost.
///
/// The cache binds to the weight vector of its first compilation;
/// reusing it under different weights would splice stale leaf
/// probabilities, so [`compile_cnf_cached`] panics on a mismatch.
#[derive(Debug, Clone)]
pub struct PersistentComponentCache {
    entries: HashMap<Vec<u64>, Option<Fragment>>,
    persist_depth: u32,
    weights_sig: Option<Vec<u64>>,
    stats: PersistentCacheStats,
}

impl Default for PersistentComponentCache {
    fn default() -> Self {
        Self::new()
    }
}

impl PersistentComponentCache {
    /// Default persistence depth: components within 12 decisions of
    /// the root. Measured on random 3-SAT (n = 12–20, m/n = 3), hits
    /// after a one-clause edit saturate by depth ~8–12 while cache
    /// bytes stay within ~2× of depth 4; deeper settings buy nothing.
    pub const DEFAULT_DEPTH: u32 = 12;

    /// An empty cache with the default persistence depth.
    pub fn new() -> Self {
        Self::with_depth(Self::DEFAULT_DEPTH)
    }

    /// An empty cache persisting components discovered within
    /// `persist_depth` decisions of the root.
    pub fn with_depth(persist_depth: u32) -> Self {
        PersistentComponentCache {
            entries: HashMap::new(),
            persist_depth,
            weights_sig: None,
            stats: PersistentCacheStats::default(),
        }
    }

    /// Number of cached components.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Probe/store/invalidation counters.
    pub fn stats(&self) -> PersistentCacheStats {
        self.stats
    }

    /// Estimated heap footprint of keys plus fragments, in bytes.
    pub fn bytes(&self) -> usize {
        self.entries.iter().map(|(k, v)| k.len() * 8 + v.as_ref().map_or(0, Fragment::bytes)).sum()
    }

    /// Drops everything, including the weight binding — with no
    /// fragments left there is nothing to go stale, so the cache may be
    /// rebound to new weights (counters survive).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.weights_sig = None;
    }

    /// Drops every entry whose fingerprint mentions a clause id `>=
    /// first_id`, returning how many were removed. A knowledge base
    /// calls this when retracting clause `first_id`: that id and every
    /// later one shift, so their fingerprints no longer describe the
    /// same clauses. Appending clauses needs no invalidation.
    pub fn invalidate_clauses_from(&mut self, first_id: u32) -> usize {
        let before = self.entries.len();
        self.entries.retain(|key, _| !key_mentions_clause_from(key, first_id));
        let removed = before - self.entries.len();
        self.stats.invalidated += removed as u64;
        removed
    }

    /// Binds the cache to a weight vector (first use) or asserts the
    /// weights match (every later use).
    fn bind_weights(&mut self, weights: &WmcWeights) {
        let sig: Vec<u64> = (0..weights.len()).map(|v| weights.prob(v).to_bits()).collect();
        match &self.weights_sig {
            None => self.weights_sig = Some(sig),
            Some(bound) => {
                assert_eq!(*bound, sig, "PersistentComponentCache reused under different weights")
            }
        }
    }

    fn probe(&mut self, key: &[u64]) -> Option<Option<Fragment>> {
        match self.entries.get(key) {
            Some(frag) => {
                self.stats.hits += 1;
                Some(frag.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    fn store(&mut self, key: Vec<u64>, fragment: Option<Fragment>) {
        self.stats.stores += 1;
        self.entries.insert(key, fragment);
    }
}

/// `true` when a fingerprint references any clause id `>= first`.
fn key_mentions_clause_from(key: &[u64], first: u32) -> bool {
    key.iter().any(|&e| {
        if e & WIDE_ENTRY != 0 {
            e & WIDE_LIT == 0 && (e & !WIDE_ENTRY) >= u64::from(first)
        } else {
            (e >> 32) >= u64::from(first)
        }
    })
}

struct TopDown<'a> {
    pool: ClausePool,
    prop: Propagator,
    builder: CircuitBuilder,
    weights: &'a WmcWeights,
    order: &'a VarOrder,
    /// Component cache: fingerprint of the residual clause set → the
    /// compiled node (`None` caches UNSAT components too).
    cache: HashMap<Vec<u64>, Option<NodeId>>,
    /// Cross-query component cache (see [`PersistentComponentCache`]),
    /// probed on in-compile misses and fed on compiled components up to
    /// `persist_depth` decisions from the root.
    persistent: Option<&'a mut PersistentComponentCache>,
    persist_depth: u32,
    /// Decisions on the current search path.
    depth: u32,
    /// Hash-consed leaves: indicator `[x_v = b]`, free Bernoulli leaf,
    /// and the weighted implied-literal factor `w · [x_v = b]`.
    indicator_memo: Vec<[Option<NodeId>; 2]>,
    free_memo: Vec<Option<NodeId>>,
    implied_memo: Vec<[Option<NodeId>; 2]>,
    /// Stamped scratch marks for component decomposition (no clearing
    /// between calls; a fresh stamp invalidates old marks).
    clause_active: Vec<u64>,
    clause_taken: Vec<u64>,
    var_stamp: Vec<u64>,
    occ_scratch: Vec<u32>,
    stamp: u64,
    stats: CompileStats,
    /// Optional observability sink; when attached the three compile
    /// phases accumulate clock time below.
    telemetry: Option<&'a Telemetry>,
    phase_prop_s: f64,
    phase_split_s: f64,
    phase_probe_s: f64,
}

impl TopDown<'_> {
    /// Clock read at a phase boundary; `None` when no telemetry is
    /// attached (the phase accumulators then stay untouched — zero
    /// overhead on unobserved compiles).
    fn phase_start(&self) -> Option<f64> {
        self.telemetry.map(|t| t.now_s())
    }

    /// Seconds since `t0`, or 0 when unobserved.
    fn phase_elapsed(&self, t0: Option<f64>) -> f64 {
        match (t0, self.telemetry) {
            (Some(t0), Some(tel)) => (tel.now_s() - t0).max(0.0),
            _ => 0.0,
        }
    }

    /// Top-level: propagate the full formula, then compile the residual
    /// as free leaves + independent components. Returns the root node,
    /// or `None` when the formula is unsatisfiable.
    fn compile_top(&mut self) -> Option<NodeId> {
        let all_clauses: Vec<u32> = (0..self.pool.num_clauses() as u32).collect();
        let all_vars: Vec<Var> = (0..self.pool.num_vars()).map(Var::new).collect();
        let t0 = self.phase_start();
        let ok = self.prop.propagate(&self.pool, &all_clauses);
        self.phase_prop_s += self.phase_elapsed(t0);
        if !ok {
            return None;
        }
        self.stats.propagations += self.prop.trail().len() as u64;
        let implied: Vec<Lit> = self.prop.trail().to_vec();
        if implied.iter().any(|&l| self.weights.lit_prob(l) <= 0.0) {
            return None; // an implied literal with zero mass: Pr[φ] = 0
        }
        let mut parts: Vec<NodeId> = Vec::new();
        for &l in &implied {
            let factor = self.implied_factor(l);
            parts.push(factor);
        }
        let rest = self.compile_residual(&all_clauses, &all_vars)?;
        parts.extend(rest);
        Some(match parts.len() {
            1 => parts[0],
            _ => self.builder.product(parts),
        })
    }

    /// Compiles the unsatisfied part of `clause_ids` over the
    /// still-unassigned subset of `vars`: one free Bernoulli leaf per
    /// unconstrained variable plus one cached node per connected
    /// component. The returned factors have pairwise-disjoint scopes
    /// whose union is exactly the unassigned subset of `vars`; `None`
    /// means some component is unsatisfiable.
    fn compile_residual(&mut self, clause_ids: &[u32], vars: &[Var]) -> Option<Vec<NodeId>> {
        let (free, comps) = self.split_components(clause_ids, vars);
        let mut parts: Vec<NodeId> = Vec::with_capacity(free.len() + comps.len());
        for v in free {
            let leaf = self.free_leaf(v);
            parts.push(leaf);
        }
        for comp in &comps {
            parts.push(self.compile_component(comp)?);
        }
        Some(parts)
    }

    /// Decomposition step: partitions the unsatisfied clauses of
    /// `clause_ids` into variable-connected components, and the
    /// unassigned `vars` into component members vs. free variables.
    fn split_components(&mut self, clause_ids: &[u32], vars: &[Var]) -> (Vec<Var>, Vec<Component>) {
        let t0 = self.phase_start();
        self.stamp += 1;
        let stamp = self.stamp;
        for &c in clause_ids {
            if !self.prop.clause_satisfied(&self.pool, c) {
                self.clause_active[c as usize] = stamp;
            }
        }
        let mut free: Vec<Var> = Vec::new();
        let mut comps: Vec<Component> = Vec::new();
        let mut queue: Vec<Var> = Vec::new();
        for &v in vars {
            if self.prop.is_assigned(v) || self.var_stamp[v.index()] == stamp {
                continue;
            }
            let touches =
                self.pool.occurrences(v).iter().any(|&c| self.clause_active[c as usize] == stamp);
            self.var_stamp[v.index()] = stamp;
            if !touches {
                free.push(v);
                continue;
            }
            // Flood-fill the component containing `v`.
            let mut comp = Component { clauses: Vec::new(), vars: vec![v] };
            queue.clear();
            queue.push(v);
            while let Some(u) = queue.pop() {
                for &c in self.pool.occurrences(u) {
                    if self.clause_active[c as usize] != stamp
                        || self.clause_taken[c as usize] == stamp
                    {
                        continue;
                    }
                    self.clause_taken[c as usize] = stamp;
                    comp.clauses.push(c);
                    for &l in self.pool.clause(c) {
                        let w = l.var();
                        if !self.prop.is_assigned(w) && self.var_stamp[w.index()] != stamp {
                            self.var_stamp[w.index()] = stamp;
                            comp.vars.push(w);
                            queue.push(w);
                        }
                    }
                }
            }
            comp.clauses.sort_unstable();
            comp.vars.sort_unstable();
            self.stats.components += 1;
            comps.push(comp);
        }
        self.phase_split_s += self.phase_elapsed(t0);
        (free, comps)
    }

    /// Decide + cache: compiles one component through its branching
    /// variable, memoized by residual-clause fingerprint — first in the
    /// in-compile cache, then (within the persistence depth) in the
    /// cross-query cache.
    fn compile_component(&mut self, comp: &Component) -> Option<NodeId> {
        let t0 = self.phase_start();
        let key = self.component_key(comp);
        if let Some(&hit) = self.cache.get(&key) {
            self.stats.cache_hits += 1;
            self.phase_probe_s += self.phase_elapsed(t0);
            return hit;
        }
        let persist = self.persistent.is_some() && self.depth <= self.persist_depth;
        let cached =
            if persist { self.persistent.as_mut().and_then(|p| p.probe(&key)) } else { None };
        self.phase_probe_s += self.phase_elapsed(t0);
        if let Some(fragment) = cached {
            self.stats.persistent_hits += 1;
            let node = fragment.map(|f| self.splice_fragment(&f));
            self.cache.insert(key, node);
            return node;
        }
        self.stats.cache_misses += 1;
        self.stats.decisions += 1;
        let v = self.pick_var(comp);
        let p = self.weights.prob(v.index());
        let mut children: Vec<NodeId> = Vec::with_capacity(2);
        let mut ws: Vec<f64> = Vec::with_capacity(2);
        self.depth += 1;
        for (value, w) in [(true, p), (false, 1.0 - p)] {
            if w <= 0.0 {
                continue; // zero-mass polarity: mirror of an UNSAT branch
            }
            if let Some(node) = self.compile_branch(comp, v, value) {
                children.push(node);
                ws.push(w);
            }
        }
        self.depth -= 1;
        let result = if children.is_empty() {
            None
        } else {
            // WMC semantics keeps the *sub*-normalized weights: mass of
            // an unsatisfiable branch is simply lost, so the root value
            // is exactly Pr[φ]. `Circuit::validate` admits sums whose
            // weights total at most 1.
            Some(self.builder.sum(children, ws))
        };
        if persist {
            let fragment = result.map(|root| Fragment::extract(self.builder.nodes(), root));
            self.stats.persistent_stores += 1;
            if let Some(p) = self.persistent.as_mut() {
                p.store(key.clone(), fragment);
            }
        }
        self.cache.insert(key, result);
        result
    }

    /// Splices a cached fragment into the builder: leaves are
    /// hash-consed through the usual memos, interior nodes are appended
    /// raw so their log-weights survive bit-for-bit. Returns the
    /// builder id of the fragment's root.
    fn splice_fragment(&mut self, fragment: &Fragment) -> NodeId {
        let mut map: Vec<NodeId> = Vec::with_capacity(fragment.nodes.len());
        for node in &fragment.nodes {
            let id = match node {
                PcNode::Indicator { var, value } => {
                    self.indicator_leaf(Var::new(*var), *value == 1)
                }
                // Free Bernoulli leaves are the only categoricals the
                // compiler emits; the cache's weight binding guarantees
                // the memoized leaf carries the same probabilities.
                PcNode::Categorical { var, .. } => self.free_leaf(Var::new(*var)),
                PcNode::Sum { children, log_weights } => {
                    let children = children.iter().map(|c| map[c.index()]).collect();
                    self.builder
                        .push_raw(PcNode::Sum { children, log_weights: log_weights.clone() })
                }
                PcNode::Product { children } => {
                    let children = children.iter().map(|c| map[c.index()]).collect();
                    self.builder.push_raw(PcNode::Product { children })
                }
            };
            map.push(id);
        }
        map[fragment.root.index()]
    }

    /// One decision branch: assume `v = value`, propagate within the
    /// component, and join the decision indicator, the implied-literal
    /// factors, and the recursively-compiled residual into a product
    /// with scope exactly `comp.vars`.
    fn compile_branch(&mut self, comp: &Component, v: Var, value: bool) -> Option<NodeId> {
        let mark = self.prop.mark();
        self.prop.assume(if value { v.pos() } else { v.neg() });
        let result = 'branch: {
            let t0 = self.phase_start();
            let ok = self.prop.propagate(&self.pool, &comp.clauses);
            self.phase_prop_s += self.phase_elapsed(t0);
            if !ok {
                break 'branch None;
            }
            let implied: Vec<Lit> = self.prop.trail()[mark + 1..].to_vec();
            self.stats.propagations += implied.len() as u64;
            if implied.iter().any(|&l| self.weights.lit_prob(l) <= 0.0) {
                break 'branch None; // implied literal with zero mass
            }
            let mut parts: Vec<NodeId> = Vec::with_capacity(2 + implied.len());
            let decision = self.indicator_leaf(v, value);
            parts.push(decision);
            for &l in &implied {
                let factor = self.implied_factor(l);
                parts.push(factor);
            }
            let Some(rest) = self.compile_residual(&comp.clauses, &comp.vars) else {
                break 'branch None;
            };
            parts.extend(rest);
            Some(if parts.len() == 1 { parts[0] } else { self.builder.product(parts) })
        };
        self.prop.undo_to(mark);
        result
    }

    /// Fingerprint of a component's residual clause set over the shared
    /// pool: per clause, the pool id packed with the bitmask of its
    /// surviving (unassigned) literal positions — O(component) to
    /// build, no sorting, no cloning of literal vectors. Clauses wider
    /// than 32 literals fall back to explicit tagged literal codes.
    fn component_key(&self, comp: &Component) -> Vec<u64> {
        let mut key: Vec<u64> = Vec::with_capacity(comp.clauses.len());
        for &c in &comp.clauses {
            let lits = self.pool.clause(c);
            if lits.len() <= 32 {
                let mut mask = 0u64;
                for (i, &l) in lits.iter().enumerate() {
                    if !self.prop.is_assigned(l.var()) {
                        mask |= 1 << i;
                    }
                }
                key.push((u64::from(c) << 32) | mask);
            } else {
                key.push(WIDE_ENTRY | u64::from(c));
                for &l in lits {
                    if !self.prop.is_assigned(l.var()) {
                        key.push(WIDE_ENTRY | WIDE_LIT | l.code() as u64);
                    }
                }
            }
        }
        key
    }

    /// The decide step's variable choice (see [`VarOrder`]).
    fn pick_var(&mut self, comp: &Component) -> Var {
        match self.order {
            VarOrder::Static => comp.vars[0],
            VarOrder::MostOccurrences => {
                for &c in &comp.clauses {
                    for &l in self.pool.clause(c) {
                        if !self.prop.is_assigned(l.var()) {
                            self.occ_scratch[l.var().index()] += 1;
                        }
                    }
                }
                let mut best = comp.vars[0];
                let mut best_count = 0u32;
                for &v in &comp.vars {
                    let count = self.occ_scratch[v.index()];
                    if count > best_count {
                        best = v;
                        best_count = count;
                    }
                }
                for &v in &comp.vars {
                    self.occ_scratch[v.index()] = 0;
                }
                best
            }
            VarOrder::Scored(scores) => {
                let mut best = comp.vars[0];
                let mut best_score = f64::NEG_INFINITY;
                for &v in &comp.vars {
                    let s = scores[v.index()];
                    if s > best_score {
                        best = v;
                        best_score = s;
                    }
                }
                best
            }
        }
    }

    /// Hash-consed indicator leaf `[x_v = value]`.
    fn indicator_leaf(&mut self, v: Var, value: bool) -> NodeId {
        let slot = &mut self.indicator_memo[v.index()][usize::from(value)];
        match *slot {
            Some(id) => id,
            None => {
                let id = self.builder.indicator(v.index(), usize::from(value));
                *slot = Some(id);
                id
            }
        }
    }

    /// Hash-consed free Bernoulli leaf for an unconstrained variable.
    fn free_leaf(&mut self, v: Var) -> NodeId {
        match self.free_memo[v.index()] {
            Some(id) => id,
            None => {
                let p = self.weights.prob(v.index());
                let id = self.builder.categorical(v.index(), &[1.0 - p, p]);
                self.free_memo[v.index()] = Some(id);
                id
            }
        }
    }

    /// Hash-consed factor for a unit-implied literal: a single-child
    /// sum carrying the literal's weight over its indicator, so the
    /// implication contributes `w · [x_v = b]` without a decision node.
    fn implied_factor(&mut self, lit: Lit) -> NodeId {
        let (v, value) = (lit.var(), !lit.is_neg());
        if let Some(id) = self.implied_memo[v.index()][usize::from(value)] {
            return id;
        }
        let ind = self.indicator_leaf(v, value);
        let id = self.builder.sum(vec![ind], vec![self.weights.lit_prob(lit)]);
        self.implied_memo[v.index()][usize::from(value)] = Some(id);
        id
    }
}

/// Computes the weighted model count of `cnf` by compiling and evaluating.
///
/// Returns `0` for unsatisfiable formulas. One-shot convenience: a
/// caller issuing *repeated* WMC/conditional queries against the same
/// formula should hold a [`CompiledWmc`] instead of paying a fresh
/// compilation per call.
pub fn weighted_model_count(cnf: &Cnf, weights: &WmcWeights) -> f64 {
    CompiledWmc::new(cnf, weights).wmc()
}

/// A compiled-once, query-many exact WMC oracle.
///
/// Compiles the formula a single time and answers every subsequent
/// query from the cached circuit through a reused [`EvalBuffer`] — the
/// executor's exact-WMC lane and the approximate engine's
/// training-label generation both route through this instead of
/// recompiling per query.
///
/// ```
/// use reason_sat::Cnf;
/// use reason_pc::{CompiledWmc, Evidence, WmcWeights};
///
/// let cnf = Cnf::from_clauses(2, vec![vec![1, 2]]);
/// let mut oracle = CompiledWmc::new(&cnf, &WmcWeights::uniform(2));
/// assert!((oracle.wmc() - 0.75).abs() < 1e-12);
/// // Pr[φ ∧ x0=1] = 0.5 — answered from the cached circuit.
/// let mut ev = Evidence::empty(2);
/// ev.set(0, 1);
/// assert!((oracle.probability(&ev) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct CompiledWmc {
    circuit: Option<Circuit>,
    num_vars: usize,
    z: f64,
    buf: EvalBuffer,
}

impl CompiledWmc {
    /// Compiles `cnf` once (top-down compiler) and caches the weighted
    /// model count.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != cnf.num_vars()`.
    pub fn new(cnf: &Cnf, weights: &WmcWeights) -> Self {
        Self::from_circuit(compile_cnf(cnf, weights), cnf.num_vars())
    }

    /// Wraps an already-compiled circuit (`None` for a massless
    /// formula) without recompiling — the serving layer's path: compile
    /// once through the persistent cache, then share the oracle.
    ///
    /// # Panics
    ///
    /// Panics if the circuit's variable count differs from `num_vars`.
    pub fn from_circuit(circuit: Option<Circuit>, num_vars: usize) -> Self {
        if let Some(c) = &circuit {
            assert_eq!(c.num_vars(), num_vars, "circuit arity mismatch");
        }
        let mut buf = EvalBuffer::new();
        let z = circuit
            .as_ref()
            .map_or(0.0, |c| c.probability_with(&Evidence::empty(num_vars), &mut buf));
        CompiledWmc { circuit, num_vars, z, buf }
    }

    /// The weighted model count `Pr[φ]` (0 for unsatisfiable formulas).
    /// Cached — repeated calls are free.
    pub fn wmc(&self) -> f64 {
        self.z
    }

    /// `true` when the formula carries positive mass under the weights
    /// (equivalently, a circuit was compiled). Note this is *weighted*
    /// satisfiability: a satisfiable formula whose every model is
    /// killed by a zero-probability weight reports `false`, matching
    /// [`compile_cnf`]'s `None`.
    pub fn has_mass(&self) -> bool {
        self.circuit.is_some()
    }

    /// Number of variables in the formula's universe.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The compiled circuit, when the formula is satisfiable.
    pub fn circuit(&self) -> Option<&Circuit> {
        self.circuit.as_ref()
    }

    /// `Pr[φ ∧ e]`: the probability mass of models consistent with the
    /// (partial) evidence. Evaluated on the cached circuit through the
    /// reused buffer; 0 for unsatisfiable formulas.
    pub fn probability(&mut self, evidence: &Evidence) -> f64 {
        match &self.circuit {
            Some(c) => c.probability_with(evidence, &mut self.buf),
            None => 0.0,
        }
    }

    /// `Pr[e | φ]`: the conditional probability of the evidence given
    /// the formula. Returns `None` for unsatisfiable formulas.
    pub fn posterior(&mut self, evidence: &Evidence) -> Option<f64> {
        if self.z == 0.0 {
            return None;
        }
        let joint = self.probability(evidence);
        Some(joint / self.z)
    }

    /// [`probability`](Self::probability) through a caller-held
    /// [`EvalBuffer`] — the `&self` path that lets one compiled
    /// knowledge base be shared (e.g. behind an `Arc`) across serving
    /// worker threads, each holding its own buffer.
    pub fn probability_with(&self, evidence: &Evidence, buf: &mut EvalBuffer) -> f64 {
        match &self.circuit {
            Some(c) => c.probability_with(evidence, buf),
            None => 0.0,
        }
    }

    /// [`posterior`](Self::posterior) through a caller-held
    /// [`EvalBuffer`] (`&self`, shareable across threads).
    pub fn posterior_with(&self, evidence: &Evidence, buf: &mut EvalBuffer) -> Option<f64> {
        if self.z == 0.0 {
            return None;
        }
        Some(self.probability_with(evidence, buf) / self.z)
    }
}

/// Compiles a single clause (disjunction) to a circuit — convenience for
/// rule-based workloads.
pub fn compile_clause(clause: &Clause, num_vars: usize, weights: &WmcWeights) -> Option<Circuit> {
    let mut cnf = Cnf::new(num_vars);
    cnf.add_clause(clause.clone());
    compile_cnf(&cnf, weights)
}

// ---------------------------------------------------------------------------
// Legacy baseline: static-order Shannon expansion.
// ---------------------------------------------------------------------------

/// Compiles `cnf` with the legacy static-order Shannon-expansion
/// compiler (the pre-component-caching implementation).
///
/// Kept as the measured baseline: `reason-eval compile` reports the
/// top-down compiler's speedup against it, and the circuit-size
/// regression tests assert the top-down compiler never emits more
/// nodes. Its cache keys sort and clone the entire residual clause set
/// at every node, which is exactly the cost the top-down compiler's
/// pooled fingerprints remove — expect seconds instead of milliseconds
/// above ~24 variables on random 3-SAT.
///
/// Semantics match [`compile_cnf`]: same WMC, same `None`-on-UNSAT.
pub fn compile_cnf_shannon(cnf: &Cnf, weights: &WmcWeights) -> Option<Circuit> {
    assert_eq!(weights.len(), cnf.num_vars(), "weights arity mismatch");
    let mut compiler = Shannon {
        builder: CircuitBuilder::new(vec![2; cnf.num_vars()]),
        cache: HashMap::new(),
        weights,
        num_vars: cnf.num_vars(),
    };
    let clauses: Vec<Vec<Lit>> = cnf.clauses().iter().map(|c| c.lits().to_vec()).collect();
    let root = compiler.compile(clauses, 0)?;
    Some(compiler.builder.build(root).expect("compiler emits valid circuits"))
}

struct Shannon<'w> {
    builder: CircuitBuilder,
    /// Cache keyed by (next variable, canonical clause set).
    cache: HashMap<(usize, Vec<Vec<i32>>), Option<NodeId>>,
    weights: &'w WmcWeights,
    num_vars: usize,
}

impl Shannon<'_> {
    /// Compiles the residual clause set starting at variable `var`,
    /// returning a node whose scope is exactly `var..num_vars`.
    fn compile(&mut self, clauses: Vec<Vec<Lit>>, var: usize) -> Option<NodeId> {
        if clauses.iter().any(Vec::is_empty) {
            return None; // unsatisfiable branch
        }
        if var == self.num_vars {
            debug_assert!(clauses.is_empty(), "all variables decided but clauses remain");
            return Some(self.true_tail(var)); // empty product ≡ constant 1
        }
        let key = (var, canonical(&clauses));
        if let Some(&cached) = self.cache.get(&key) {
            return cached;
        }

        // If the remaining clauses never mention `var`, emit a free leaf and
        // recurse — this keeps compiled circuits compact for sparse rules.
        let mentions = clauses.iter().any(|c| c.iter().any(|l| l.var().index() == var));
        let result = if !mentions {
            let tail = self.compile(clauses, var + 1);
            tail.map(|t| {
                let leaf = self.free_leaf(var);
                self.builder.product(vec![leaf, t])
            })
        } else {
            let pos = cofactor(&clauses, Var::new(var).pos());
            let neg = cofactor(&clauses, Var::new(var).neg());
            let p = self.weights.prob(var);
            let pos_node = if p > 0.0 { self.compile(pos, var + 1) } else { None };
            let neg_node = if p < 1.0 { self.compile(neg, var + 1) } else { None };
            let mut children: Vec<NodeId> = Vec::with_capacity(2);
            let mut ws: Vec<f64> = Vec::with_capacity(2);
            if let Some(n) = pos_node {
                let ind = self.builder.indicator(var, 1);
                children.push(self.builder.product(vec![ind, n]));
                ws.push(p);
            }
            if let Some(n) = neg_node {
                let ind = self.builder.indicator(var, 0);
                children.push(self.builder.product(vec![ind, n]));
                ws.push(1.0 - p);
            }
            if children.is_empty() {
                None
            } else {
                // Sub-normalized like the top-down compiler: mass of an
                // unsatisfiable branch is lost, root value is Pr[φ].
                Some(self.builder.sum(children, ws))
            }
        };
        self.cache.insert(key, result);
        result
    }

    /// Product of free leaves for variables `var..num_vars` (constant 1 over
    /// the remaining scope).
    fn true_tail(&mut self, var: usize) -> NodeId {
        let leaves: Vec<NodeId> = (var..self.num_vars).map(|v| self.free_leaf(v)).collect();
        if leaves.len() == 1 {
            leaves[0]
        } else {
            self.builder.product(leaves)
        }
    }

    /// A Bernoulli leaf carrying the variable's marginal weight.
    fn free_leaf(&mut self, var: usize) -> NodeId {
        let p = self.weights.prob(var);
        self.builder.categorical(var, &[1.0 - p, p])
    }
}

/// Canonical form of a clause set for caching (legacy compiler only —
/// this sort-and-clone per node is what pooled fingerprints replace).
fn canonical(clauses: &[Vec<Lit>]) -> Vec<Vec<i32>> {
    let mut out: Vec<Vec<i32>> = clauses
        .iter()
        .map(|c| {
            let mut v: Vec<i32> = c.iter().map(|l| l.to_dimacs()).collect();
            v.sort_unstable();
            v
        })
        .collect();
    out.sort();
    out.dedup();
    out
}

/// Conditions the clause set on `lit` being true: satisfied clauses drop,
/// falsified literals are removed.
fn cofactor(clauses: &[Vec<Lit>], lit: Lit) -> Vec<Vec<Lit>> {
    let mut out = Vec::with_capacity(clauses.len());
    for c in clauses {
        if c.contains(&lit) {
            continue;
        }
        let reduced: Vec<Lit> = c.iter().copied().filter(|&l| l != !lit).collect();
        out.push(reduced);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::Evidence;
    use reason_sat::gen::random_ksat;
    use reason_sat::{brute_force, count_models};

    fn brute_wmc(cnf: &Cnf, weights: &WmcWeights) -> f64 {
        let n = cnf.num_vars();
        let mut total = 0.0;
        let mut model = vec![false; n];
        for bits in 0u64..(1 << n) {
            for (v, slot) in model.iter_mut().enumerate() {
                *slot = bits >> v & 1 == 1;
            }
            if cnf.eval(&model) {
                let mut w = 1.0;
                for (v, &b) in model.iter().enumerate() {
                    w *= if b { weights.prob(v) } else { 1.0 - weights.prob(v) };
                }
                total += w;
            }
        }
        total
    }

    #[test]
    fn observed_compile_reports_counters_and_spans() {
        use reason_telemetry::{is_well_formed_forest, MetricValue, Telemetry, VirtualClock};
        let clock = VirtualClock::shared();
        let tel = Telemetry::with_clock(clock);
        let cnf = random_ksat(8, 20, 3, 7);
        let weights = WmcWeights::uniform(8);
        let (observed, stats) =
            compile_cnf_observed(&cnf, &weights, &CompileConfig::default(), None, Some(&tel));
        let (plain, plain_stats) =
            compile_cnf_with_stats(&cnf, &weights, &CompileConfig::default());
        // Instrumentation must not perturb the compilation itself.
        assert_eq!(observed.is_some(), plain.is_some());
        assert_eq!(stats, plain_stats);
        let snap = tel.registry.snapshot();
        let counter = |name: &str| {
            snap.iter()
                .filter(|m| m.name == name)
                .map(|m| match m.value {
                    MetricValue::Counter(v) => v,
                    _ => panic!("{name} is not a counter"),
                })
                .sum::<u64>()
        };
        assert_eq!(counter("pc_propagations_total"), stats.propagations);
        assert_eq!(counter("pc_decisions_total"), stats.decisions);
        assert_eq!(counter("pc_cache_probes_total"), stats.cache_hits + stats.cache_misses);
        let spans = tel.tracer.finished();
        assert!(spans.iter().any(|s| s.name == "pc.compile"));
        assert!(spans.iter().any(|s| s.name == "pc.propagate"));
        assert!(is_well_formed_forest(&spans));
    }

    #[test]
    fn uniform_wmc_equals_model_count() {
        for seed in 0..10 {
            let cnf = random_ksat(8, 20, 3, seed);
            let wmc = weighted_model_count(&cnf, &WmcWeights::uniform(8));
            let expect = count_models(&cnf) as f64 / 256.0;
            assert!((wmc - expect).abs() < 1e-9, "seed {seed}: {wmc} vs {expect}");
        }
    }

    #[test]
    fn weighted_wmc_matches_enumeration() {
        let weights = WmcWeights::new(vec![0.9, 0.2, 0.5, 0.7, 0.3, 0.6]);
        for seed in 0..10 {
            let cnf = random_ksat(6, 14, 3, 100 + seed);
            let wmc = weighted_model_count(&cnf, &weights);
            let expect = brute_wmc(&cnf, &weights);
            assert!((wmc - expect).abs() < 1e-9, "seed {seed}");
        }
    }

    #[test]
    fn unsat_compiles_to_none() {
        let cnf = Cnf::from_clauses(2, vec![vec![1], vec![-1]]);
        assert!(compile_cnf(&cnf, &WmcWeights::uniform(2)).is_none());
        assert!(compile_cnf_shannon(&cnf, &WmcWeights::uniform(2)).is_none());
        assert_eq!(weighted_model_count(&cnf, &WmcWeights::uniform(2)), 0.0);
    }

    #[test]
    fn compiled_circuit_is_valid_and_deterministic() {
        let cnf = random_ksat(7, 16, 3, 3);
        if !brute_force(&cnf).is_sat() {
            return;
        }
        let c = compile_cnf(&cnf, &WmcWeights::uniform(7)).unwrap();
        c.validate().unwrap();
        assert!(c.is_syntactically_deterministic());
    }

    #[test]
    fn conditioning_matches_conditional_wmc() {
        let weights = WmcWeights::new(vec![0.5, 0.8, 0.3, 0.6]);
        let cnf = Cnf::from_clauses(4, vec![vec![1, 2], vec![-2, 3], vec![3, 4]]);
        let c = compile_cnf(&cnf, &weights).unwrap();
        // p(x0=1 | φ) via circuit conditional against enumeration.
        let total = brute_wmc(&cnf, &weights);
        let mut cnf_x0 = cnf.clone();
        cnf_x0.add_dimacs_clause(&[1]);
        let with_x0 = brute_wmc(&cnf_x0, &weights);
        let marg = c.marginal(&Evidence::empty(4), 0);
        assert!((marg[1] - with_x0 / total).abs() < 1e-9);
    }

    #[test]
    fn mpe_on_compiled_circuit_is_a_model() {
        let cnf = Cnf::from_clauses(4, vec![vec![1, 2], vec![-1, 3], vec![-3, -2, 4]]);
        let c = compile_cnf(&cnf, &WmcWeights::uniform(4)).unwrap();
        let res = c.mpe(&Evidence::empty(4));
        let model: Vec<bool> = res.assignment.iter().map(|&v| v == 1).collect();
        assert!(cnf.eval(&model), "MPE of a formula circuit must satisfy the formula");
    }

    #[test]
    fn cache_shares_subcircuits() {
        // Chain formula has massive cofactor sharing: circuit stays small.
        let mut clauses = Vec::new();
        for i in 1..12 {
            clauses.push(vec![-i, i + 1]);
        }
        let cnf = Cnf::from_clauses(12, clauses);
        let c = compile_cnf(&cnf, &WmcWeights::uniform(12)).unwrap();
        assert!(
            c.num_nodes() < 400,
            "expected compact compiled circuit, got {} nodes",
            c.num_nodes()
        );
    }

    #[test]
    fn empty_formula_compiles_to_constant_one() {
        let cnf = Cnf::new(3);
        let c = compile_cnf(&cnf, &WmcWeights::uniform(3)).unwrap();
        let p = c.probability(&Evidence::empty(3));
        assert!((p - 1.0).abs() < 1e-12);
    }

    #[test]
    fn topdown_and_shannon_agree_on_random_instances() {
        for seed in 0..20 {
            let cnf = random_ksat(9, 24, 3, 300 + seed);
            let weights = WmcWeights::new((0..9).map(|v| 0.3 + 0.05 * v as f64).collect());
            let new = compile_cnf(&cnf, &weights);
            let old = compile_cnf_shannon(&cnf, &weights);
            match (new, old) {
                (Some(n), Some(o)) => {
                    let zn = n.probability(&Evidence::empty(9));
                    let zo = o.probability(&Evidence::empty(9));
                    assert!((zn - zo).abs() < 1e-9, "seed {seed}: {zn} vs {zo}");
                    n.validate().unwrap();
                    assert!(n.is_syntactically_deterministic());
                }
                (None, None) => {}
                (n, o) => {
                    panic!("seed {seed}: SAT disagreement (topdown {n:?} vs shannon {o:?})")
                }
            }
        }
    }

    #[test]
    fn topdown_is_never_larger_than_shannon_on_fixed_instances() {
        let fixed: Vec<Cnf> = vec![
            Cnf::from_clauses(12, (1..12).map(|i| vec![-i, i + 1]).collect()),
            Cnf::from_clauses(6, vec![vec![1, 2], vec![-2, 3], vec![-1, 4, 5], vec![3, -5, 6]]),
            random_ksat(10, 26, 3, 5),
            random_ksat(12, 30, 3, 8),
        ];
        for (i, cnf) in fixed.iter().enumerate() {
            let w = WmcWeights::uniform(cnf.num_vars());
            let new = compile_cnf(cnf, &w).unwrap();
            let old = compile_cnf_shannon(cnf, &w).unwrap();
            assert!(
                new.num_nodes() <= old.num_nodes(),
                "instance {i}: topdown {} nodes vs shannon {}",
                new.num_nodes(),
                old.num_nodes()
            );
        }
    }

    #[test]
    fn unit_clauses_become_propagations_not_decisions() {
        // x0 & (!x0 | x1) & (x2 | x3): the first two clauses are fully
        // implied, only the third needs one decision.
        let cnf = Cnf::from_clauses(4, vec![vec![1], vec![-1, 2], vec![3, 4]]);
        let (c, stats) =
            compile_cnf_with_stats(&cnf, &WmcWeights::uniform(4), &CompileConfig::default());
        let c = c.unwrap();
        // x0 and x1 are implied at the top level; deciding x2 = false
        // unit-implies x3 inside the branch.
        assert_eq!(stats.propagations, 3);
        assert_eq!(stats.decisions, 1, "only the (x2 | x3) component branches");
        let z = c.probability(&Evidence::empty(4));
        assert!((z - brute_wmc(&cnf, &WmcWeights::uniform(4))).abs() < 1e-12);
    }

    #[test]
    fn independent_clauses_decompose_into_components() {
        // Three variable-disjoint clauses: component decomposition must
        // compile them independently (3 components, ≤ 1 decision each).
        let cnf = Cnf::from_clauses(6, vec![vec![1, 2], vec![3, 4], vec![5, 6]]);
        let (c, stats) =
            compile_cnf_with_stats(&cnf, &WmcWeights::uniform(6), &CompileConfig::default());
        assert!(stats.components >= 3, "expected ≥ 3 components, got {}", stats.components);
        let z = c.unwrap().probability(&Evidence::empty(6));
        assert!((z - 0.75f64.powi(3)).abs() < 1e-12);
    }

    #[test]
    fn component_cache_is_probed_and_hit() {
        // Identical disjoint sub-formulas share structure via the pool
        // fingerprints only when the clause ids coincide — but repeated
        // sub-problems inside one component's search do hit.
        let cnf = random_ksat(12, 36, 3, 2);
        let (_, stats) =
            compile_cnf_with_stats(&cnf, &WmcWeights::uniform(12), &CompileConfig::default());
        assert!(stats.cache_misses > 0);
        assert!(stats.hit_rate() >= 0.0);
    }

    #[test]
    fn every_var_order_agrees_with_brute_force() {
        let cnf = random_ksat(8, 20, 3, 77);
        let weights = WmcWeights::new((0..8).map(|v| 0.35 + 0.04 * v as f64).collect());
        let expect = brute_wmc(&cnf, &weights);
        let scored = VarOrder::Scored((0..8).map(|v| ((v * 7) % 5) as f64).collect());
        for order in [VarOrder::MostOccurrences, VarOrder::Static, scored] {
            let config = CompileConfig { order };
            let c = compile_cnf_with(&cnf, &weights, &config);
            let z = c.map_or(0.0, |c| c.probability(&Evidence::empty(8)));
            assert!((z - expect).abs() < 1e-9, "{config:?}: {z} vs {expect}");
        }
    }

    #[test]
    fn compilation_is_deterministic_across_runs() {
        let cnf = random_ksat(11, 30, 3, 13);
        let w = WmcWeights::uniform(11);
        let a = compile_cnf(&cnf, &w);
        let b = compile_cnf(&cnf, &w);
        assert_eq!(a, b, "same input must compile to the identical circuit");
    }

    #[test]
    fn compiled_wmc_reuses_one_compilation() {
        let cnf = Cnf::from_clauses(3, vec![vec![1, 2], vec![-2, 3]]);
        let w = WmcWeights::new(vec![0.4, 0.6, 0.5]);
        let mut oracle = CompiledWmc::new(&cnf, &w);
        assert!(oracle.has_mass());
        assert_eq!(oracle.num_vars(), 3);
        let expect = brute_wmc(&cnf, &w);
        assert!((oracle.wmc() - expect).abs() < 1e-12);
        // Conditional mass queries answer from the cached circuit.
        let mut ev = Evidence::empty(3);
        ev.set(1, 1);
        let mut with_x1 = cnf.clone();
        with_x1.add_dimacs_clause(&[2]);
        assert!((oracle.probability(&ev) - brute_wmc(&with_x1, &w)).abs() < 1e-12);
        let post = oracle.posterior(&ev).unwrap();
        assert!((post - brute_wmc(&with_x1, &w) / expect).abs() < 1e-12);
        // And the same agreement as weighted_model_count.
        assert_eq!(oracle.wmc(), weighted_model_count(&cnf, &w));
    }

    #[test]
    fn compiled_wmc_on_unsat_is_zero() {
        let cnf = Cnf::from_clauses(2, vec![vec![1], vec![-1]]);
        let mut oracle = CompiledWmc::new(&cnf, &WmcWeights::uniform(2));
        assert!(!oracle.has_mass());
        assert_eq!(oracle.wmc(), 0.0);
        assert_eq!(oracle.probability(&Evidence::empty(2)), 0.0);
        assert_eq!(oracle.posterior(&Evidence::empty(2)), None);
        assert!(oracle.circuit().is_none());
    }

    #[test]
    fn extreme_weights_prune_zero_mass_branches() {
        // p(x0) = 1 forces the x0-false branch away entirely.
        let cnf = Cnf::from_clauses(2, vec![vec![1, 2]]);
        let w = WmcWeights::new(vec![1.0, 0.25]);
        let c = compile_cnf(&cnf, &w).unwrap();
        let z = c.probability(&Evidence::empty(2));
        assert!((z - 1.0).abs() < 1e-12, "x0 always true satisfies the clause: {z}");
        // An implied literal with zero mass is an UNSAT-equivalent.
        let unit = Cnf::from_clauses(1, vec![vec![1]]);
        assert!(compile_cnf(&unit, &WmcWeights::new(vec![0.0])).is_none());
        assert_eq!(weighted_model_count(&unit, &WmcWeights::new(vec![0.0])), 0.0);
    }

    #[test]
    fn lit_prob_reflects_polarity() {
        let w = WmcWeights::new(vec![0.3]);
        assert!((w.lit_prob(Var::new(0).pos()) - 0.3).abs() < 1e-12);
        assert!((w.lit_prob(Var::new(0).neg()) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn stats_hit_rate_is_well_defined() {
        assert_eq!(CompileStats::default().hit_rate(), 0.0);
        let stats = CompileStats { cache_hits: 3, cache_misses: 1, ..CompileStats::default() };
        assert!((stats.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn cached_cold_compile_matches_uncached_exactly() {
        let cnf = random_ksat(10, 26, 3, 21);
        let w = WmcWeights::uniform(10);
        let mut cache = PersistentComponentCache::new();
        let (cached, stats) = compile_cnf_cached(&cnf, &w, &CompileConfig::default(), &mut cache);
        let plain = compile_cnf(&cnf, &w);
        // Probes never alter the search, so a cold cached compile emits
        // the identical circuit (and reports its probes as misses).
        assert_eq!(cached, plain);
        assert_eq!(stats.persistent_hits, 0);
        assert!(stats.persistent_stores > 0);
        assert!(!cache.is_empty());
    }

    #[test]
    fn warm_recompile_hits_and_preserves_answers_bit_for_bit() {
        let cnf = random_ksat(12, 32, 3, 5);
        let w = WmcWeights::new((0..12).map(|v| 0.35 + 0.02 * v as f64).collect());
        let mut cache = PersistentComponentCache::new();
        let config = CompileConfig::default();
        let (cold, _) = compile_cnf_cached(&cnf, &w, &config, &mut cache);
        let (warm, warm_stats) = compile_cnf_cached(&cnf, &w, &config, &mut cache);
        assert!(warm_stats.persistent_hits > 0, "second compile must reuse components");
        let z_cold = cold.unwrap().probability(&Evidence::empty(12));
        let z_warm = warm.unwrap().probability(&Evidence::empty(12));
        assert_eq!(z_cold.to_bits(), z_warm.to_bits(), "spliced circuits answer bit-for-bit");
    }

    #[test]
    fn adding_a_clause_recompiles_only_touched_components() {
        // Two variable-disjoint blocks; the added clause touches only
        // the second, so the first block's components hit the cache.
        let mut clauses =
            vec![vec![1, 2], vec![-2, 3], vec![-1, 3, 4], vec![5, 6], vec![-6, 7], vec![-5, 7, 8]];
        let cnf = Cnf::from_clauses(8, clauses.clone());
        let w = WmcWeights::uniform(8);
        let config = CompileConfig::default();
        let mut cache = PersistentComponentCache::new();
        let _ = compile_cnf_cached(&cnf, &w, &config, &mut cache);
        clauses.push(vec![-7, -8]);
        let extended = Cnf::from_clauses(8, clauses);
        let (warm, stats) = compile_cnf_cached(&extended, &w, &config, &mut cache);
        assert!(stats.persistent_hits > 0, "untouched block must be reused: {stats:?}");
        let expect = weighted_model_count(&extended, &w);
        let z = warm.unwrap().probability(&Evidence::empty(8));
        assert!((z - expect).abs() < 1e-12, "{z} vs {expect}");
    }

    #[test]
    fn retraction_invalidation_keeps_recompiles_correct() {
        let mut clauses = vec![vec![1, 2], vec![-2, 3], vec![3, 4], vec![-1, -4], vec![2, -3]];
        let cnf = Cnf::from_clauses(4, clauses.clone());
        let w = WmcWeights::uniform(4);
        let config = CompileConfig::default();
        let mut cache = PersistentComponentCache::new();
        let _ = compile_cnf_cached(&cnf, &w, &config, &mut cache);
        // Retract clause 1: ids 1.. shift, so their fingerprints die.
        clauses.remove(1);
        let removed = cache.invalidate_clauses_from(1);
        assert!(removed > 0);
        assert!(cache.stats().invalidated >= removed as u64);
        let retracted = Cnf::from_clauses(4, clauses);
        let (warm, _) = compile_cnf_cached(&retracted, &w, &config, &mut cache);
        let expect = weighted_model_count(&retracted, &w);
        let z = warm.unwrap().probability(&Evidence::empty(4));
        assert!((z - expect).abs() < 1e-12, "{z} vs {expect}");
    }

    #[test]
    fn cache_reports_sizes_and_clears() {
        let cnf = random_ksat(9, 24, 3, 11);
        let w = WmcWeights::uniform(9);
        let mut cache = PersistentComponentCache::with_depth(2);
        let _ = compile_cnf_cached(&cnf, &w, &CompileConfig::default(), &mut cache);
        assert!(!cache.is_empty());
        assert!(cache.bytes() > 0);
        assert!(cache.stats().stores > 0);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    #[should_panic(expected = "different weights")]
    fn cache_rejects_weight_changes() {
        let cnf = random_ksat(6, 14, 3, 2);
        let mut cache = PersistentComponentCache::new();
        let _ = compile_cnf_cached(
            &cnf,
            &WmcWeights::uniform(6),
            &CompileConfig::default(),
            &mut cache,
        );
        let other = WmcWeights::new(vec![0.3; 6]);
        let _ = compile_cnf_cached(&cnf, &other, &CompileConfig::default(), &mut cache);
    }
}
