//! Knowledge compilation: CNF formulas → deterministic circuits.
//!
//! This is how R²-Guard-style systems (paper Table I) turn logical safety
//! rules into probabilistic circuits: a propositional formula over binary
//! variables is compiled by Shannon expansion into a smooth, decomposable,
//! *deterministic* circuit whose weighted model count equals the
//! probability that the formula holds under independent variable marginals.
//!
//! The compiler caches cofactors of the clause set, producing a
//! decision-DNNF-shaped circuit; sub-formula sharing keeps compiled sizes
//! far below the full 2^n expansion for structured rule sets.

use std::collections::HashMap;

use reason_sat::{Clause, Cnf, Lit, Var};

use crate::circuit::{Circuit, CircuitBuilder, NodeId};

/// Per-variable Bernoulli marginals used as weights for weighted model
/// counting.
#[derive(Debug, Clone, PartialEq)]
pub struct WmcWeights {
    probs: Vec<f64>,
}

impl WmcWeights {
    /// Weights with `probs[v] = p(X_v = 1)`.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]`.
    pub fn new(probs: Vec<f64>) -> Self {
        assert!(probs.iter().all(|p| (0.0..=1.0).contains(p)), "probabilities must be in [0,1]");
        WmcWeights { probs }
    }

    /// Uniform weights (`p = 0.5` everywhere): the weighted model count
    /// equals `#models / 2^n`.
    pub fn uniform(num_vars: usize) -> Self {
        WmcWeights { probs: vec![0.5; num_vars] }
    }

    /// `p(X_v = 1)`.
    pub fn prob(&self, var: usize) -> f64 {
        self.probs[var]
    }

    /// Number of variables covered.
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// `true` when there are no variables.
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }
}

/// Compiles `cnf` into a deterministic circuit over all `cnf.num_vars()`
/// binary variables, weighted by `weights`.
///
/// The root's fully-marginalized probability equals the weighted model
/// count `Pr[φ]`; conditioning works as in any PC. The circuit is smooth,
/// decomposable, and deterministic, so MPE queries are exact.
///
/// Returns `None` if the formula is unsatisfiable (the zero circuit is not
/// representable as a normalized PC).
///
/// # Panics
///
/// Panics if `weights.len() != cnf.num_vars()`.
///
/// ```
/// use reason_sat::Cnf;
/// use reason_pc::{compile_cnf, WmcWeights, Evidence};
///
/// // x0 | x1 under uniform weights: 3 of 4 assignments satisfy.
/// let cnf = Cnf::from_clauses(2, vec![vec![1, 2]]);
/// let circuit = compile_cnf(&cnf, &WmcWeights::uniform(2)).unwrap();
/// let pr = circuit.probability(&Evidence::empty(2));
/// assert!((pr - 0.75).abs() < 1e-12);
/// ```
pub fn compile_cnf(cnf: &Cnf, weights: &WmcWeights) -> Option<Circuit> {
    assert_eq!(weights.len(), cnf.num_vars(), "weights arity mismatch");
    let mut compiler = Compiler {
        builder: CircuitBuilder::new(vec![2; cnf.num_vars()]),
        cache: HashMap::new(),
        weights,
        num_vars: cnf.num_vars(),
    };
    let clauses: Vec<Vec<Lit>> = cnf.clauses().iter().map(|c| c.lits().to_vec()).collect();
    let root = compiler.compile(clauses, 0)?;
    Some(compiler.builder.build(root).expect("compiler emits valid circuits"))
}

/// Computes the weighted model count of `cnf` by compiling and evaluating.
///
/// Returns `0` for unsatisfiable formulas.
pub fn weighted_model_count(cnf: &Cnf, weights: &WmcWeights) -> f64 {
    match compile_cnf(cnf, weights) {
        Some(c) => c.probability(&crate::infer::Evidence::empty(cnf.num_vars())),
        None => 0.0,
    }
}

struct Compiler<'w> {
    builder: CircuitBuilder,
    /// Cache keyed by (next variable, canonical clause set).
    cache: HashMap<(usize, Vec<Vec<i32>>), Option<NodeId>>,
    weights: &'w WmcWeights,
    num_vars: usize,
}

impl Compiler<'_> {
    /// Compiles the residual clause set starting at variable `var`,
    /// returning a node whose scope is exactly `var..num_vars`.
    fn compile(&mut self, clauses: Vec<Vec<Lit>>, var: usize) -> Option<NodeId> {
        if clauses.iter().any(Vec::is_empty) {
            return None; // unsatisfiable branch
        }
        if var == self.num_vars {
            debug_assert!(clauses.is_empty(), "all variables decided but clauses remain");
            return Some(self.true_tail(var)); // empty product ≡ constant 1
        }
        let key = (var, canonical(&clauses));
        if let Some(&cached) = self.cache.get(&key) {
            return cached;
        }

        // If the remaining clauses never mention `var`, emit a free leaf and
        // recurse — this keeps compiled circuits compact for sparse rules.
        let mentions = clauses.iter().any(|c| c.iter().any(|l| l.var().index() == var));
        let result = if !mentions {
            let tail = self.compile(clauses, var + 1);
            tail.map(|t| {
                let leaf = self.free_leaf(var);
                self.builder.product(vec![leaf, t])
            })
        } else {
            let pos = cofactor(&clauses, Var::new(var).pos());
            let neg = cofactor(&clauses, Var::new(var).neg());
            let p = self.weights.prob(var);
            let pos_node = if p > 0.0 { self.compile(pos, var + 1) } else { None };
            let neg_node = if p < 1.0 { self.compile(neg, var + 1) } else { None };
            let mut children: Vec<NodeId> = Vec::with_capacity(2);
            let mut ws: Vec<f64> = Vec::with_capacity(2);
            if let Some(n) = pos_node {
                let ind = self.builder.indicator(var, 1);
                children.push(self.builder.product(vec![ind, n]));
                ws.push(p);
            }
            if let Some(n) = neg_node {
                let ind = self.builder.indicator(var, 0);
                children.push(self.builder.product(vec![ind, n]));
                ws.push(1.0 - p);
            }
            if children.is_empty() {
                None
            } else {
                // WMC semantics keeps the *sub*-normalized weights: mass of
                // an unsatisfiable branch is simply lost, so the root value
                // is exactly Pr[φ]. `Circuit::validate` admits sums whose
                // weights total at most 1.
                Some(self.builder.sum(children, ws))
            }
        };
        self.cache.insert(key, result);
        result
    }

    /// Product of free leaves for variables `var..num_vars` (constant 1 over
    /// the remaining scope).
    fn true_tail(&mut self, var: usize) -> NodeId {
        let leaves: Vec<NodeId> = (var..self.num_vars).map(|v| self.free_leaf(v)).collect();
        if leaves.len() == 1 {
            leaves[0]
        } else {
            self.builder.product(leaves)
        }
    }

    /// A Bernoulli leaf carrying the variable's marginal weight.
    fn free_leaf(&mut self, var: usize) -> NodeId {
        let p = self.weights.prob(var);
        self.builder.categorical(var, &[1.0 - p, p])
    }
}

/// Canonical form of a clause set for caching.
fn canonical(clauses: &[Vec<Lit>]) -> Vec<Vec<i32>> {
    let mut out: Vec<Vec<i32>> = clauses
        .iter()
        .map(|c| {
            let mut v: Vec<i32> = c.iter().map(|l| l.to_dimacs()).collect();
            v.sort_unstable();
            v
        })
        .collect();
    out.sort();
    out.dedup();
    out
}

/// Conditions the clause set on `lit` being true: satisfied clauses drop,
/// falsified literals are removed.
fn cofactor(clauses: &[Vec<Lit>], lit: Lit) -> Vec<Vec<Lit>> {
    let mut out = Vec::with_capacity(clauses.len());
    for c in clauses {
        if c.contains(&lit) {
            continue;
        }
        let reduced: Vec<Lit> = c.iter().copied().filter(|&l| l != !lit).collect();
        out.push(reduced);
    }
    out
}

/// Compiles a single clause (disjunction) to a circuit — convenience for
/// rule-based workloads.
pub fn compile_clause(clause: &Clause, num_vars: usize, weights: &WmcWeights) -> Option<Circuit> {
    let mut cnf = Cnf::new(num_vars);
    cnf.add_clause(clause.clone());
    compile_cnf(&cnf, weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::Evidence;
    use reason_sat::gen::random_ksat;
    use reason_sat::{brute_force, count_models};

    fn brute_wmc(cnf: &Cnf, weights: &WmcWeights) -> f64 {
        let n = cnf.num_vars();
        let mut total = 0.0;
        let mut model = vec![false; n];
        for bits in 0u64..(1 << n) {
            for (v, slot) in model.iter_mut().enumerate() {
                *slot = bits >> v & 1 == 1;
            }
            if cnf.eval(&model) {
                let mut w = 1.0;
                for (v, &b) in model.iter().enumerate() {
                    w *= if b { weights.prob(v) } else { 1.0 - weights.prob(v) };
                }
                total += w;
            }
        }
        total
    }

    #[test]
    fn uniform_wmc_equals_model_count() {
        for seed in 0..10 {
            let cnf = random_ksat(8, 20, 3, seed);
            let wmc = weighted_model_count(&cnf, &WmcWeights::uniform(8));
            let expect = count_models(&cnf) as f64 / 256.0;
            assert!((wmc - expect).abs() < 1e-9, "seed {seed}: {wmc} vs {expect}");
        }
    }

    #[test]
    fn weighted_wmc_matches_enumeration() {
        let weights = WmcWeights::new(vec![0.9, 0.2, 0.5, 0.7, 0.3, 0.6]);
        for seed in 0..10 {
            let cnf = random_ksat(6, 14, 3, 100 + seed);
            let wmc = weighted_model_count(&cnf, &weights);
            let expect = brute_wmc(&cnf, &weights);
            assert!((wmc - expect).abs() < 1e-9, "seed {seed}");
        }
    }

    #[test]
    fn unsat_compiles_to_none() {
        let cnf = Cnf::from_clauses(2, vec![vec![1], vec![-1]]);
        assert!(compile_cnf(&cnf, &WmcWeights::uniform(2)).is_none());
        assert_eq!(weighted_model_count(&cnf, &WmcWeights::uniform(2)), 0.0);
    }

    #[test]
    fn compiled_circuit_is_valid_and_deterministic() {
        let cnf = random_ksat(7, 16, 3, 3);
        if !brute_force(&cnf).is_sat() {
            return;
        }
        let c = compile_cnf(&cnf, &WmcWeights::uniform(7)).unwrap();
        c.validate().unwrap();
        assert!(c.is_syntactically_deterministic());
    }

    #[test]
    fn conditioning_matches_conditional_wmc() {
        let weights = WmcWeights::new(vec![0.5, 0.8, 0.3, 0.6]);
        let cnf = Cnf::from_clauses(4, vec![vec![1, 2], vec![-2, 3], vec![3, 4]]);
        let c = compile_cnf(&cnf, &weights).unwrap();
        // p(x0=1 | φ) via circuit conditional against enumeration.
        let total = brute_wmc(&cnf, &weights);
        let mut cnf_x0 = cnf.clone();
        cnf_x0.add_dimacs_clause(&[1]);
        let with_x0 = brute_wmc(&cnf_x0, &weights);
        let marg = c.marginal(&Evidence::empty(4), 0);
        assert!((marg[1] - with_x0 / total).abs() < 1e-9);
    }

    #[test]
    fn mpe_on_compiled_circuit_is_a_model() {
        let cnf = Cnf::from_clauses(4, vec![vec![1, 2], vec![-1, 3], vec![-3, -2, 4]]);
        let c = compile_cnf(&cnf, &WmcWeights::uniform(4)).unwrap();
        let res = c.mpe(&Evidence::empty(4));
        let model: Vec<bool> = res.assignment.iter().map(|&v| v == 1).collect();
        assert!(cnf.eval(&model), "MPE of a formula circuit must satisfy the formula");
    }

    #[test]
    fn cache_shares_subcircuits() {
        // Chain formula has massive cofactor sharing: circuit stays small.
        let mut clauses = Vec::new();
        for i in 1..12 {
            clauses.push(vec![-i, i + 1]);
        }
        let cnf = Cnf::from_clauses(12, clauses);
        let c = compile_cnf(&cnf, &WmcWeights::uniform(12)).unwrap();
        assert!(
            c.num_nodes() < 400,
            "expected compact compiled circuit, got {} nodes",
            c.num_nodes()
        );
    }

    #[test]
    fn empty_formula_compiles_to_constant_one() {
        let cnf = Cnf::new(3);
        let c = compile_cnf(&cnf, &WmcWeights::uniform(3)).unwrap();
        let p = c.probability(&Evidence::empty(3));
        assert!((p - 1.0).abs() < 1e-12);
    }
}
