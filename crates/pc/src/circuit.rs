//! Circuit data structure, construction, and structural validation.

use std::collections::BTreeSet;
use std::fmt;

/// Index of a node within a [`Circuit`] (or [`CircuitBuilder`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A node of a probabilistic circuit (paper Eq. 1).
#[derive(Debug, Clone, PartialEq)]
pub enum PcNode {
    /// Weighted mixture: `p(x) = Σ_c w_c · p_c(x)`. Weights are stored in
    /// log-space, parallel to `children`.
    Sum {
        /// Child node ids.
        children: Vec<NodeId>,
        /// Log-weights, same length as `children`.
        log_weights: Vec<f64>,
    },
    /// Factorization: `p(x) = Π_c p_c(x)`.
    Product {
        /// Child node ids.
        children: Vec<NodeId>,
    },
    /// Indicator leaf `[X_var = value]`.
    Indicator {
        /// Variable index.
        var: usize,
        /// Indicated value.
        value: usize,
    },
    /// Categorical leaf: a full distribution over one discrete variable.
    Categorical {
        /// Variable index.
        var: usize,
        /// Log-probabilities, one per value of the variable.
        log_probs: Vec<f64>,
    },
}

impl PcNode {
    /// Children of this node (empty for leaves).
    pub fn children(&self) -> &[NodeId] {
        match self {
            PcNode::Sum { children, .. } | PcNode::Product { children } => children,
            _ => &[],
        }
    }

    /// `true` for sum nodes.
    pub fn is_sum(&self) -> bool {
        matches!(self, PcNode::Sum { .. })
    }

    /// `true` for product nodes.
    pub fn is_product(&self) -> bool {
        matches!(self, PcNode::Product { .. })
    }

    /// `true` for leaves.
    pub fn is_leaf(&self) -> bool {
        matches!(self, PcNode::Indicator { .. } | PcNode::Categorical { .. })
    }
}

/// Structural defects detected by [`CircuitBuilder::build`] /
/// [`Circuit::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum CircuitError {
    /// A node references a child defined after it (not topologically ordered)
    /// or out of range.
    BadChild {
        /// The parent node.
        node: usize,
        /// The offending child reference.
        child: usize,
    },
    /// A sum node whose weight vector length differs from its child count,
    /// or with no children.
    MalformedSum {
        /// The offending node.
        node: usize,
    },
    /// Sum-node weights exceed total mass 1 (within tolerance). Weights
    /// totalling *less* than 1 are allowed: compiled formula circuits are
    /// sub-normalized, with the missing mass belonging to unsatisfiable
    /// branches (see [`crate::compile`]).
    UnnormalizedSum {
        /// The offending node.
        node: usize,
        /// The actual total mass.
        total: f64,
    },
    /// A leaf references a variable outside the declared universe, or an
    /// out-of-range value for its variable.
    BadLeaf {
        /// The offending node.
        node: usize,
    },
    /// A sum node mixing children with different scopes (violates
    /// smoothness).
    NotSmooth {
        /// The offending node.
        node: usize,
    },
    /// A product node whose children share variables (violates
    /// decomposability).
    NotDecomposable {
        /// The offending node.
        node: usize,
    },
    /// The root id is out of range.
    BadRoot,
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::BadChild { node, child } => {
                write!(f, "node {node} references invalid child {child}")
            }
            CircuitError::MalformedSum { node } => {
                write!(f, "sum node {node} has mismatched weights or no children")
            }
            CircuitError::UnnormalizedSum { node, total } => {
                write!(f, "sum node {node} has total weight {total}, expected 1")
            }
            CircuitError::BadLeaf { node } => write!(f, "leaf node {node} is out of range"),
            CircuitError::NotSmooth { node } => {
                write!(f, "sum node {node} mixes children with different scopes")
            }
            CircuitError::NotDecomposable { node } => {
                write!(f, "product node {node} has children with overlapping scopes")
            }
            CircuitError::BadRoot => write!(f, "root id out of range"),
        }
    }
}

impl std::error::Error for CircuitError {}

/// Incremental builder for a [`Circuit`].
///
/// Nodes must be added children-first; [`build`](Self::build) validates the
/// full structure. See the [crate docs](crate) for an example.
#[derive(Debug, Clone)]
pub struct CircuitBuilder {
    arities: Vec<usize>,
    nodes: Vec<PcNode>,
}

impl CircuitBuilder {
    /// Starts a circuit over discrete variables with the given arities
    /// (`arities[v]` = number of values of variable `v`).
    pub fn new(arities: Vec<usize>) -> Self {
        CircuitBuilder { arities, nodes: Vec::new() }
    }

    /// Adds an indicator leaf `[X_var = value]`.
    pub fn indicator(&mut self, var: usize, value: usize) -> NodeId {
        self.push(PcNode::Indicator { var, value })
    }

    /// Adds a categorical leaf over `var` with the given probabilities
    /// (linear space; converted to logs).
    pub fn categorical(&mut self, var: usize, probs: &[f64]) -> NodeId {
        self.push(PcNode::Categorical { var, log_probs: probs.iter().map(|p| p.ln()).collect() })
    }

    /// Adds a product node.
    pub fn product(&mut self, children: Vec<NodeId>) -> NodeId {
        self.push(PcNode::Product { children })
    }

    /// Adds a sum node with linear-space weights (converted to logs).
    pub fn sum(&mut self, children: Vec<NodeId>, weights: Vec<f64>) -> NodeId {
        let log_weights = weights.iter().map(|w| w.ln()).collect();
        self.push(PcNode::Sum { children, log_weights })
    }

    /// Number of nodes added so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when no nodes were added yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, node: PcNode) -> NodeId {
        self.nodes.push(node);
        NodeId(self.nodes.len() as u32 - 1)
    }

    /// Finalizes the circuit with `root` as the output node.
    ///
    /// # Errors
    ///
    /// Returns a [`CircuitError`] describing the first structural defect
    /// found (ordering, malformed sums, smoothness, decomposability).
    pub fn build(self, root: NodeId) -> Result<Circuit, CircuitError> {
        let circuit = Circuit { arities: self.arities, nodes: self.nodes, root };
        circuit.validate()?;
        Ok(circuit)
    }

    /// Consumes the builder, returning `(arities, nodes)` without
    /// validation — for in-crate compilers whose construction
    /// discipline guarantees the invariants (they still
    /// `debug_assert!` a full [`Circuit::validate`] in debug builds,
    /// where the O(nodes · vars) scope computation is affordable).
    pub(crate) fn into_parts(self) -> (Vec<usize>, Vec<PcNode>) {
        (self.arities, self.nodes)
    }

    /// The nodes added so far — read access for in-crate compilers
    /// that extract subgraphs (persistent component-cache fragments).
    pub(crate) fn nodes(&self) -> &[PcNode] {
        &self.nodes
    }

    /// Appends a pre-built node without linear↔log weight conversion —
    /// for in-crate compilers splicing cached fragments whose
    /// log-weights must survive bit-for-bit (an `exp`/`ln` round trip
    /// can move the last ulp). The caller guarantees children precede
    /// the node.
    pub(crate) fn push_raw(&mut self, node: PcNode) -> NodeId {
        self.push(node)
    }
}

/// A validated probabilistic circuit.
///
/// Nodes are stored in topological order (children before parents), so a
/// single forward sweep evaluates the circuit and a single backward sweep
/// computes flows.
#[derive(Debug, Clone, PartialEq)]
pub struct Circuit {
    arities: Vec<usize>,
    nodes: Vec<PcNode>,
    root: NodeId,
}

impl Circuit {
    /// Constructs a circuit from parts without validation; intended for
    /// internal transformations that preserve the invariants.
    pub(crate) fn from_parts(arities: Vec<usize>, nodes: Vec<PcNode>, root: NodeId) -> Self {
        Circuit { arities, nodes, root }
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// All nodes, children-first.
    pub fn nodes(&self) -> &[PcNode] {
        &self.nodes
    }

    /// A node by id.
    pub fn node(&self, id: NodeId) -> &PcNode {
        &self.nodes[id.index()]
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.nodes.iter().map(|n| n.children().len()).sum()
    }

    /// Number of variables in the universe.
    pub fn num_vars(&self) -> usize {
        self.arities.len()
    }

    /// Arity (value count) of each variable.
    pub fn arities(&self) -> &[usize] {
        &self.arities
    }

    /// An estimate of the memory footprint in bytes: 8 bytes per edge
    /// (child pointer + weight share) plus 16 per node. This is the metric
    /// reported as "memory" for probabilistic workloads in paper Table IV.
    pub fn footprint_bytes(&self) -> usize {
        16 * self.num_nodes() + 8 * self.num_edges()
    }

    /// Computes the scope (set of referenced variables) of every node.
    pub fn scopes(&self) -> Vec<BTreeSet<usize>> {
        let mut scopes: Vec<BTreeSet<usize>> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let scope = match node {
                PcNode::Indicator { var, .. } | PcNode::Categorical { var, .. } => {
                    BTreeSet::from([*var])
                }
                PcNode::Sum { children, .. } | PcNode::Product { children } => {
                    let mut s = BTreeSet::new();
                    for c in children {
                        s.extend(scopes[c.index()].iter().copied());
                    }
                    s
                }
            };
            scopes.push(scope);
        }
        scopes
    }

    /// Validates ordering, sums, smoothness, and decomposability.
    ///
    /// # Errors
    ///
    /// Returns the first [`CircuitError`] encountered.
    pub fn validate(&self) -> Result<(), CircuitError> {
        if self.root.index() >= self.nodes.len() {
            return Err(CircuitError::BadRoot);
        }
        for (i, node) in self.nodes.iter().enumerate() {
            for c in node.children() {
                if c.index() >= i {
                    return Err(CircuitError::BadChild { node: i, child: c.index() });
                }
            }
            match node {
                PcNode::Sum { children, log_weights } => {
                    if children.is_empty() || children.len() != log_weights.len() {
                        return Err(CircuitError::MalformedSum { node: i });
                    }
                    let total: f64 = log_weights.iter().map(|lw| lw.exp()).sum();
                    if total > 1.0 + 1e-6 {
                        return Err(CircuitError::UnnormalizedSum { node: i, total });
                    }
                }
                PcNode::Indicator { var, value } => {
                    if *var >= self.arities.len() || *value >= self.arities[*var] {
                        return Err(CircuitError::BadLeaf { node: i });
                    }
                }
                PcNode::Categorical { var, log_probs } => {
                    if *var >= self.arities.len() || log_probs.len() != self.arities[*var] {
                        return Err(CircuitError::BadLeaf { node: i });
                    }
                    // Categorical leaves must be normalized: marginalization
                    // evaluates them as constant 1.
                    let total: f64 = log_probs.iter().map(|lp| lp.exp()).sum();
                    if (total - 1.0).abs() > 1e-6 {
                        return Err(CircuitError::BadLeaf { node: i });
                    }
                }
                PcNode::Product { .. } => {}
            }
        }
        // Smoothness and decomposability via scopes.
        let scopes = self.scopes();
        for (i, node) in self.nodes.iter().enumerate() {
            match node {
                PcNode::Sum { children, .. } => {
                    let first = &scopes[children[0].index()];
                    if children.iter().any(|c| &scopes[c.index()] != first) {
                        return Err(CircuitError::NotSmooth { node: i });
                    }
                }
                PcNode::Product { children } => {
                    let mut seen: BTreeSet<usize> = BTreeSet::new();
                    for c in children {
                        for v in &scopes[c.index()] {
                            if !seen.insert(*v) {
                                return Err(CircuitError::NotDecomposable { node: i });
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// `true` when every sum node has at most one child with non-zero value
    /// for every complete assignment — checked *syntactically* for circuits
    /// produced by [`crate::compile::compile_cnf`] (decision-style sums over
    /// complementary indicators). Returns `false` when determinism cannot be
    /// established syntactically.
    pub fn is_syntactically_deterministic(&self) -> bool {
        // A sum is decision-style if each child is a product containing an
        // indicator over the same variable with pairwise distinct values.
        'outer: for node in &self.nodes {
            if let PcNode::Sum { children, .. } = node {
                if children.len() == 1 {
                    continue;
                }
                let mut decided: Vec<(usize, usize)> = Vec::new();
                for c in children {
                    match self.decision_indicator(*c) {
                        Some(pair) => decided.push(pair),
                        None => return false,
                    }
                }
                let var = decided[0].0;
                if decided.iter().any(|(v, _)| *v != var) {
                    return false;
                }
                let mut values: Vec<usize> = decided.iter().map(|(_, val)| *val).collect();
                values.sort_unstable();
                values.dedup();
                if values.len() != decided.len() {
                    return false;
                }
                continue 'outer;
            }
        }
        true
    }

    fn decision_indicator(&self, id: NodeId) -> Option<(usize, usize)> {
        match self.node(id) {
            PcNode::Indicator { var, value } => Some((*var, *value)),
            PcNode::Product { children } => children.iter().find_map(|c| {
                if let PcNode::Indicator { var, value } = self.node(*c) {
                    Some((*var, *value))
                } else {
                    None
                }
            }),
            _ => None,
        }
    }

    /// Rebuilds the circuit keeping only nodes reachable from the root,
    /// preserving relative order. Returns the compacted circuit and the
    /// number of nodes dropped.
    pub fn compact(&self) -> (Circuit, usize) {
        let mut reachable = vec![false; self.nodes.len()];
        reachable[self.root.index()] = true;
        for i in (0..self.nodes.len()).rev() {
            if reachable[i] {
                for c in self.nodes[i].children() {
                    reachable[c.index()] = true;
                }
            }
        }
        let mut remap: Vec<Option<NodeId>> = vec![None; self.nodes.len()];
        let mut nodes: Vec<PcNode> = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            if !reachable[i] {
                continue;
            }
            let mut node = node.clone();
            match &mut node {
                PcNode::Sum { children, .. } | PcNode::Product { children } => {
                    for c in children.iter_mut() {
                        *c = remap[c.index()].expect("child must be reachable before parent");
                    }
                }
                _ => {}
            }
            remap[i] = Some(NodeId(nodes.len() as u32));
            nodes.push(node);
        }
        let dropped = self.nodes.len() - nodes.len();
        let root = remap[self.root.index()].expect("root is reachable");
        (Circuit { arities: self.arities.clone(), nodes, root }, dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_var_mixture() -> Circuit {
        let mut b = CircuitBuilder::new(vec![2, 2]);
        let x0t = b.indicator(0, 1);
        let x0f = b.indicator(0, 0);
        let x1t = b.indicator(1, 1);
        let x1f = b.indicator(1, 0);
        let p0 = b.product(vec![x0t, x1t]);
        let p1 = b.product(vec![x0f, x1f]);
        let root = b.sum(vec![p0, p1], vec![0.3, 0.7]);
        b.build(root).unwrap()
    }

    #[test]
    fn builds_and_counts() {
        let c = two_var_mixture();
        assert_eq!(c.num_nodes(), 7);
        assert_eq!(c.num_edges(), 6);
        assert_eq!(c.num_vars(), 2);
        assert!(c.footprint_bytes() > 0);
    }

    #[test]
    fn scopes_computed_bottom_up() {
        let c = two_var_mixture();
        let scopes = c.scopes();
        assert_eq!(scopes[c.root().index()], BTreeSet::from([0, 1]));
        assert_eq!(scopes[0], BTreeSet::from([0]));
    }

    #[test]
    fn rejects_non_smooth_sum() {
        let mut b = CircuitBuilder::new(vec![2, 2]);
        let x0 = b.indicator(0, 1);
        let x1 = b.indicator(1, 1);
        let root = b.sum(vec![x0, x1], vec![0.5, 0.5]);
        assert!(matches!(b.build(root), Err(CircuitError::NotSmooth { .. })));
    }

    #[test]
    fn rejects_non_decomposable_product() {
        let mut b = CircuitBuilder::new(vec![2]);
        let a = b.indicator(0, 1);
        let bb = b.indicator(0, 0);
        let root = b.product(vec![a, bb]);
        assert!(matches!(b.build(root), Err(CircuitError::NotDecomposable { .. })));
    }

    #[test]
    fn rejects_supernormalized_weights() {
        let mut b = CircuitBuilder::new(vec![2]);
        let a = b.indicator(0, 1);
        let c = b.indicator(0, 0);
        let root = b.sum(vec![a, c], vec![0.5, 0.9]);
        assert!(matches!(b.build(root), Err(CircuitError::UnnormalizedSum { .. })));
    }

    #[test]
    fn accepts_subnormalized_weights() {
        let mut b = CircuitBuilder::new(vec![2]);
        let a = b.indicator(0, 1);
        let root = b.sum(vec![a], vec![0.25]);
        assert!(b.build(root).is_ok());
    }

    #[test]
    fn rejects_bad_leaf() {
        let mut b = CircuitBuilder::new(vec![2]);
        let a = b.indicator(0, 5);
        assert!(matches!(b.build(a), Err(CircuitError::BadLeaf { .. })));
    }

    #[test]
    fn determinism_detected_for_decision_sums() {
        let c = two_var_mixture();
        assert!(c.is_syntactically_deterministic());

        // A sum over two categorical children is not syntactically
        // deterministic.
        let mut b = CircuitBuilder::new(vec![2]);
        let c0 = b.categorical(0, &[0.5, 0.5]);
        let c1 = b.categorical(0, &[0.1, 0.9]);
        let root = b.sum(vec![c0, c1], vec![0.5, 0.5]);
        let c = b.build(root).unwrap();
        assert!(!c.is_syntactically_deterministic());
    }

    #[test]
    fn compact_drops_unreachable() {
        let mut b = CircuitBuilder::new(vec![2]);
        let _orphan = b.indicator(0, 0);
        let a = b.indicator(0, 1);
        let circuit = b.build(a).unwrap();
        let (compacted, dropped) = circuit.compact();
        assert_eq!(dropped, 1);
        assert_eq!(compacted.num_nodes(), 1);
        compacted.validate().unwrap();
    }
}
