//! Flow-based circuit pruning (paper Sec. IV-B).
//!
//! Sum edges carrying the least cumulative flow over a dataset contribute
//! least to the model likelihood; removing them shrinks the circuit while
//! bounding the average log-likelihood loss:
//! `Δ log L ≤ (1/|D|) Σ_{(n,c) pruned} F(n,c)(D)` — the pruned edges'
//! total mass share. After edge removal the remaining weights are
//! renormalized and unreachable nodes are compacted away.

use crate::circuit::{Circuit, NodeId, PcNode};
use crate::flows::{dataset_flows, EdgeFlows};
use crate::log_sum_exp;

/// Report of a pruning pass.
#[derive(Debug, Clone, PartialEq)]
pub struct PruneReport {
    /// The pruned, compacted circuit.
    pub circuit: Circuit,
    /// Sum edges removed.
    pub edges_removed: usize,
    /// Nodes removed by compaction.
    pub nodes_removed: usize,
    /// The paper's upper bound on the average log-likelihood decrease:
    /// `(1/|D|) Σ F(n,c)(D)` over removed edges.
    pub log_likelihood_bound: f64,
    /// Footprint in bytes before pruning.
    pub bytes_before: usize,
    /// Footprint in bytes after pruning.
    pub bytes_after: usize,
}

impl PruneReport {
    /// Fraction of the memory footprint removed, in `[0, 1]`.
    pub fn memory_reduction(&self) -> f64 {
        if self.bytes_before == 0 {
            0.0
        } else {
            1.0 - self.bytes_after as f64 / self.bytes_before as f64
        }
    }
}

/// Prunes up to a `fraction` of sum edges, lowest cumulative flow first.
///
/// Every sum node keeps at least one child, so the circuit stays
/// well-formed. Weights of surviving edges are renormalized.
///
/// # Panics
///
/// Panics if `fraction` is not within `[0, 1]` or `data` is empty.
pub fn prune_by_flow(circuit: &Circuit, data: &[Vec<usize>], fraction: f64) -> PruneReport {
    assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0, 1]");
    assert!(!data.is_empty(), "pruning requires a non-empty dataset");
    let flows = dataset_flows(circuit, data);
    prune_with_flows(circuit, &flows, data.len(), fraction)
}

/// Prunes using precomputed dataset flows (`data_len` = |D| for the bound).
pub fn prune_with_flows(
    circuit: &Circuit,
    flows: &EdgeFlows,
    data_len: usize,
    fraction: f64,
) -> PruneReport {
    let bytes_before = circuit.footprint_bytes();

    // Rank sum edges by cumulative flow, lowest first.
    let mut edges: Vec<(NodeId, usize, f64)> = flows.iter_sum_edges(circuit).collect();
    edges.sort_by(|a, b| a.2.partial_cmp(&b.2).expect("flows are finite"));
    let budget = (edges.len() as f64 * fraction).floor() as usize;

    // Select edges to remove, keeping >= 1 child per sum node.
    let mut removed_per_node = vec![0usize; circuit.num_nodes()];
    let mut remove: Vec<Vec<bool>> =
        circuit.nodes().iter().map(|n| vec![false; n.children().len()]).collect();
    let mut removed = 0usize;
    let mut flow_removed = 0.0f64;
    for (n, k, f) in edges {
        if removed >= budget {
            break;
        }
        let child_count = circuit.node(n).children().len();
        if child_count - removed_per_node[n.index()] <= 1 {
            continue;
        }
        remove[n.index()][k] = true;
        removed_per_node[n.index()] += 1;
        removed += 1;
        flow_removed += f;
    }

    // Rebuild nodes with surviving edges, renormalizing sum weights.
    let mut nodes = circuit.nodes().to_vec();
    for (i, node) in nodes.iter_mut().enumerate() {
        if let PcNode::Sum { children, log_weights } = node {
            if removed_per_node[i] == 0 {
                continue;
            }
            let survivors: Vec<(NodeId, f64)> = children
                .iter()
                .zip(log_weights.iter())
                .enumerate()
                .filter_map(|(k, (c, lw))| if remove[i][k] { None } else { Some((*c, *lw)) })
                .collect();
            let log_z = log_sum_exp(&survivors.iter().map(|(_, lw)| *lw).collect::<Vec<_>>());
            *children = survivors.iter().map(|(c, _)| *c).collect();
            *log_weights = survivors.iter().map(|(_, lw)| lw - log_z).collect();
        }
    }
    let rebuilt = Circuit::from_parts(circuit.arities().to_vec(), nodes, circuit.root());
    let (compacted, nodes_removed) = rebuilt.compact();
    let bytes_after = compacted.footprint_bytes();

    PruneReport {
        circuit: compacted,
        edges_removed: removed,
        nodes_removed,
        log_likelihood_bound: flow_removed / data_len as f64,
        bytes_before,
        bytes_after,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flows::mean_log_likelihood;
    use crate::structure::{random_mixture_circuit, StructureConfig};
    use crate::Evidence;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_data(num_vars: usize, n: usize, seed: u64) -> Vec<Vec<usize>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| (0..num_vars).map(|_| rng.gen_range(0..2)).collect()).collect()
    }

    fn skewed_data(num_vars: usize, n: usize, seed: u64) -> Vec<Vec<usize>> {
        // Mostly-ones data concentrates flow on few paths.
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| (0..num_vars).map(|_| usize::from(rng.gen_bool(0.9))).collect()).collect()
    }

    #[test]
    fn pruning_shrinks_circuit_and_stays_valid() {
        let cfg = StructureConfig { num_vars: 8, depth: 3, num_components: 4, seed: 9 };
        let c = random_mixture_circuit(&cfg);
        let data = skewed_data(8, 50, 3);
        let report = prune_by_flow(&c, &data, 0.3);
        assert!(report.edges_removed > 0);
        assert!(report.circuit.num_edges() < c.num_edges());
        report.circuit.validate().unwrap();
        assert!(report.memory_reduction() > 0.0);
    }

    #[test]
    fn pruned_circuit_remains_normalized() {
        let cfg = StructureConfig { num_vars: 6, depth: 2, num_components: 3, seed: 2 };
        let c = random_mixture_circuit(&cfg);
        let data = skewed_data(6, 40, 4);
        let report = prune_by_flow(&c, &data, 0.4);
        let p = report.circuit.probability(&Evidence::empty(6));
        assert!((p - 1.0).abs() < 1e-9, "pruned circuit unnormalized: {p}");
    }

    #[test]
    fn log_likelihood_loss_respects_bound() {
        let cfg = StructureConfig { num_vars: 6, depth: 3, num_components: 3, seed: 7 };
        let c = random_mixture_circuit(&cfg);
        let data = skewed_data(6, 80, 11);
        let before = mean_log_likelihood(&c, &data);
        let report = prune_by_flow(&c, &data, 0.25);
        let after = mean_log_likelihood(&report.circuit, &data);
        // The paper's criterion is first-order: ΔlogL ≈ removed flow share.
        // Since -log(1-s) >= s, the realized drop can exceed the linear bound
        // when an input routes heavily through a pruned edge; pruning
        // low-flow edges keeps shares small, so a 2x + slack envelope holds.
        let drop = before - after;
        assert!(
            drop <= report.log_likelihood_bound * 2.0 + 0.05,
            "LL drop {drop} far exceeds first-order bound {}",
            report.log_likelihood_bound
        );
    }

    #[test]
    fn zero_fraction_is_identity() {
        let cfg = StructureConfig { num_vars: 4, depth: 2, num_components: 2, seed: 1 };
        let c = random_mixture_circuit(&cfg);
        let data = random_data(4, 10, 0);
        let report = prune_by_flow(&c, &data, 0.0);
        assert_eq!(report.edges_removed, 0);
        assert_eq!(report.circuit.num_edges(), c.num_edges());
    }

    #[test]
    fn sums_keep_at_least_one_child() {
        let cfg = StructureConfig { num_vars: 4, depth: 2, num_components: 2, seed: 8 };
        let c = random_mixture_circuit(&cfg);
        let data = random_data(4, 20, 5);
        let report = prune_by_flow(&c, &data, 1.0);
        for node in report.circuit.nodes() {
            if node.is_sum() {
                assert!(!node.children().is_empty());
            }
        }
        report.circuit.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "non-empty dataset")]
    fn empty_dataset_panics() {
        let cfg = StructureConfig { num_vars: 4, depth: 2, num_components: 2, seed: 8 };
        let c = random_mixture_circuit(&cfg);
        let _ = prune_by_flow(&c, &[], 0.5);
    }
}
