//! Canonical formula fingerprints — keys for compiled artifacts.
//!
//! A [`FormulaFingerprint`] identifies *exactly* the input the compiler
//! saw: the variable universe, the clause list (literals sorted within
//! each clause — the canonical presentation a serving knowledge base
//! maintains), and the bit patterns of the per-variable weights.
//! Fingerprints are compared structurally (no hash-collision risk for
//! store lookups); the 64-bit digest is a display/telemetry handle.
//! `reason-serve`'s circuit store keys its entries by fingerprint, and
//! the batch executor groups same-formula exact-WMC tasks by it so one
//! compilation and one batched arena traversal serve the whole group.

use std::fmt;

use crate::compile::WmcWeights;
use reason_sat::{Clause, Cnf};

/// An exact, order-preserving fingerprint of `(formula, weights)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FormulaFingerprint {
    tokens: Vec<u64>,
    digest: u64,
}

/// Separator between clauses in the token stream. A DIMACS literal is
/// never 0 and weight bits follow a fixed-length prefix, so the
/// sentinel cannot be confused with payload.
const CLAUSE_SEP: u64 = 0;

impl FormulaFingerprint {
    /// Fingerprints a formula under its weights. Literals are sorted
    /// within each clause (logically identical presentations that only
    /// permute literals share a key); clause *order* is preserved,
    /// matching the stability contract of the persistent component
    /// cache's clause ids.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != cnf.num_vars()`.
    pub fn new(cnf: &Cnf, weights: &WmcWeights) -> Self {
        Self::from_parts(cnf.num_vars(), cnf.clauses(), weights)
    }

    /// [`new`](Self::new) over an explicit clause slice.
    pub fn from_parts(num_vars: usize, clauses: &[Clause], weights: &WmcWeights) -> Self {
        assert_eq!(weights.len(), num_vars, "weights arity mismatch");
        let mut tokens: Vec<u64> = Vec::with_capacity(2 + num_vars + 2 * clauses.len());
        tokens.push(num_vars as u64);
        for v in 0..num_vars {
            tokens.push(weights.prob(v).to_bits());
        }
        for clause in clauses {
            let mut lits: Vec<i64> = clause.iter().map(|l| i64::from(l.to_dimacs())).collect();
            lits.sort_unstable();
            tokens.push(CLAUSE_SEP);
            tokens.extend(lits.iter().map(|&l| l as u64));
        }
        let digest = fnv1a(&tokens);
        FormulaFingerprint { tokens, digest }
    }

    /// The 64-bit digest — a compact handle for logs and reports.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Salted re-hash of the digest, for placing this key on a
    /// consistent-hash ring. The raw FNV digest is a fine identity
    /// handle but its low bits are correlated across similar token
    /// streams; [`ring_mix`] runs a full avalanche so ring positions
    /// scatter uniformly. Deterministic: same fingerprint and salt
    /// always hash to the same point.
    pub fn ring_hash(&self, salt: u64) -> u64 {
        ring_mix(self.digest ^ ring_mix(salt))
    }
}

impl fmt::Display for FormulaFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.digest)
    }
}

/// SplitMix64 finalizer: a bijective avalanche mix on `u64`. Shared by
/// [`FormulaFingerprint::ring_hash`] and `reason-serve`'s cluster ring,
/// which uses it to place shard replica points so that key and shard
/// positions are drawn from the same (deterministic) distribution.
pub fn ring_mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over the token stream.
fn fnv1a(tokens: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &t in tokens {
        for byte in t.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cnf(clauses: Vec<Vec<i32>>) -> Cnf {
        Cnf::from_clauses(4, clauses)
    }

    #[test]
    fn identical_inputs_share_a_key() {
        let w = WmcWeights::uniform(4);
        let a = FormulaFingerprint::new(&cnf(vec![vec![1, 2], vec![-2, 3]]), &w);
        let b = FormulaFingerprint::new(&cnf(vec![vec![1, 2], vec![-2, 3]]), &w);
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn literal_order_is_canonicalized_but_clause_order_is_not() {
        let w = WmcWeights::uniform(4);
        let base = FormulaFingerprint::new(&cnf(vec![vec![1, 2], vec![-2, 3]]), &w);
        let permuted_lits = FormulaFingerprint::new(&cnf(vec![vec![2, 1], vec![3, -2]]), &w);
        assert_eq!(base, permuted_lits);
        let permuted_clauses = FormulaFingerprint::new(&cnf(vec![vec![-2, 3], vec![1, 2]]), &w);
        assert_ne!(base, permuted_clauses, "clause ids must stay positional");
    }

    #[test]
    fn weights_and_universe_are_part_of_the_key() {
        let formula = cnf(vec![vec![1, 2]]);
        let a = FormulaFingerprint::new(&formula, &WmcWeights::uniform(4));
        let b = FormulaFingerprint::new(&formula, &WmcWeights::new(vec![0.5, 0.5, 0.5, 0.25]));
        assert_ne!(a, b);
        let wider = Cnf::from_clauses(5, vec![vec![1, 2]]);
        let c = FormulaFingerprint::new(&wider, &WmcWeights::uniform(5));
        assert_ne!(a, c);
    }

    #[test]
    fn display_prints_the_hex_digest() {
        let fp = FormulaFingerprint::new(&cnf(vec![vec![1]]), &WmcWeights::uniform(4));
        assert_eq!(format!("{fp}"), format!("{:016x}", fp.digest()));
    }

    #[test]
    fn ring_hash_is_deterministic_and_salt_sensitive() {
        let fp = FormulaFingerprint::new(&cnf(vec![vec![1, 2]]), &WmcWeights::uniform(4));
        assert_eq!(fp.ring_hash(7), fp.ring_hash(7));
        assert_ne!(fp.ring_hash(7), fp.ring_hash(8));
        assert_ne!(fp.ring_hash(7), fp.digest(), "salted hash must remix the digest");
    }

    #[test]
    fn ring_mix_scatters_sequential_inputs() {
        // Sequential salts must not produce clustered ring points: check
        // every pair of mixed values differs in at least 16 bits.
        let points: Vec<u64> = (0u64..32).map(ring_mix).collect();
        for (i, &a) in points.iter().enumerate() {
            for &b in &points[i + 1..] {
                assert!((a ^ b).count_ones() >= 16, "weak avalanche: {a:016x} vs {b:016x}");
            }
        }
    }
}
