//! Seeded circuit structure generators.
//!
//! Workload synthesis needs probabilistic circuits of controllable size and
//! shape. [`random_mixture_circuit`] builds smooth, decomposable
//! mixture-of-factorization circuits in the style of region-graph SPNs:
//! variables are recursively partitioned (product nodes) and each region
//! carries a mixture (sum nodes) over alternative sub-factorizations.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::circuit::{Circuit, CircuitBuilder, NodeId};

/// Parameters for [`random_mixture_circuit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StructureConfig {
    /// Number of binary variables.
    pub num_vars: usize,
    /// Maximum recursive partition depth.
    pub depth: usize,
    /// Mixture components per region.
    pub num_components: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for StructureConfig {
    fn default() -> Self {
        StructureConfig { num_vars: 8, depth: 3, num_components: 2, seed: 0 }
    }
}

/// Builds a random smooth & decomposable circuit over binary variables.
///
/// ```
/// use reason_pc::{random_mixture_circuit, StructureConfig, Evidence};
/// let c = random_mixture_circuit(&StructureConfig::default());
/// c.validate().unwrap();
/// let p = c.probability(&Evidence::empty(8));
/// assert!((p - 1.0).abs() < 1e-9);
/// ```
pub fn random_mixture_circuit(config: &StructureConfig) -> Circuit {
    assert!(config.num_vars >= 1, "need at least one variable");
    assert!(config.num_components >= 1, "need at least one component");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut builder = CircuitBuilder::new(vec![2; config.num_vars]);
    let vars: Vec<usize> = (0..config.num_vars).collect();
    let root = build_region(&mut builder, &mut rng, &vars, config.depth, config.num_components);
    builder.build(root).expect("generator produces valid circuits")
}

fn build_region(
    builder: &mut CircuitBuilder,
    rng: &mut StdRng,
    vars: &[usize],
    depth: usize,
    num_components: usize,
) -> NodeId {
    if vars.len() == 1 {
        // Leaf region: a Bernoulli (categorical over {0,1}).
        let p: f64 = rng.gen_range(0.05..0.95);
        return builder.categorical(vars[0], &[1.0 - p, p]);
    }
    if depth == 0 {
        // Fully factorize the remaining variables.
        let children: Vec<NodeId> = vars
            .iter()
            .map(|&v| {
                let p: f64 = rng.gen_range(0.05..0.95);
                builder.categorical(v, &[1.0 - p, p])
            })
            .collect();
        return builder.product(children);
    }
    // Mixture over alternative balanced partitions of this region.
    let mut components: Vec<NodeId> = Vec::with_capacity(num_components);
    for _ in 0..num_components {
        let mut shuffled = vars.to_vec();
        shuffled.shuffle(rng);
        let mid = shuffled.len() / 2;
        let (left, right) = shuffled.split_at(mid);
        let l = build_region(builder, rng, left, depth - 1, num_components);
        let r = build_region(builder, rng, right, depth - 1, num_components);
        components.push(builder.product(vec![l, r]));
    }
    let weights = random_simplex(rng, components.len());
    builder.sum(components, weights)
}

fn random_simplex(rng: &mut StdRng, n: usize) -> Vec<f64> {
    let raw: Vec<f64> = (0..n).map(|_| rng.gen_range(0.1..1.0)).collect();
    let total: f64 = raw.iter().sum();
    raw.into_iter().map(|w| w / total).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Evidence;

    #[test]
    fn generated_circuits_validate_and_normalize() {
        for seed in 0..5 {
            let cfg = StructureConfig { num_vars: 10, depth: 3, num_components: 3, seed };
            let c = random_mixture_circuit(&cfg);
            c.validate().unwrap();
            let p = c.probability(&Evidence::empty(10));
            assert!((p - 1.0).abs() < 1e-9, "seed {seed}: total mass {p}");
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = StructureConfig::default();
        let a = random_mixture_circuit(&cfg);
        let b = random_mixture_circuit(&cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn size_grows_with_components() {
        let small = random_mixture_circuit(&StructureConfig {
            num_vars: 8,
            depth: 3,
            num_components: 1,
            seed: 0,
        });
        let large = random_mixture_circuit(&StructureConfig {
            num_vars: 8,
            depth: 3,
            num_components: 4,
            seed: 0,
        });
        assert!(large.num_nodes() > small.num_nodes());
    }

    #[test]
    fn single_variable_circuit() {
        let cfg = StructureConfig { num_vars: 1, depth: 2, num_components: 2, seed: 0 };
        let c = random_mixture_circuit(&cfg);
        c.validate().unwrap();
        let p0 = c.probability(&Evidence::from_assignment(&[0]));
        let p1 = c.probability(&Evidence::from_assignment(&[1]));
        assert!((p0 + p1 - 1.0).abs() < 1e-9);
    }
}
