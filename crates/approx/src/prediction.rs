//! A-NeSI-style prediction networks: amortized approximate inference.
//!
//! A-NeSI (van Krieken et al., PAPERS.md) replaces repeated exact
//! probabilistic inference with a neural *prediction network* trained
//! on samples labeled by the exact engine. [`PredictionNet`] is that
//! idea on this workspace's substrates: a small
//! [`reason_neural::TrainableMlp`] fit to `(partial evidence →
//! conditional probability of the formula)` pairs, where the labels
//! come from the exact engine — a compiled circuit
//! ([`reason_pc::compile_cnf`]) evaluated per training query.
//!
//! Once trained, a query costs one tiny MLP forward pass regardless of
//! circuit size — the amortization A-NeSI trades training time for.
//! The net also backs the guided branching of [`crate::guided`]:
//! querying it at `x_v = 1` vs `x_v = 0` scores how strongly each
//! variable's polarity matters to the formula.

use rand::prelude::*;
use reason_neural::{Matrix, Mlp, TrainableMlp};
use reason_pc::{Circuit, CompiledWmc, EvalBuffer, Evidence, WmcWeights};
use reason_sat::Cnf;

/// Training schedule for [`PredictionNet::train_from_circuit`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictConfig {
    /// Exact-engine queries generated as the training set.
    pub queries: usize,
    /// Full-batch SGD epochs.
    pub epochs: usize,
    /// Hidden-layer width.
    pub hidden: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// Seed for query generation and parameter initialization.
    pub seed: u64,
}

impl Default for PredictConfig {
    fn default() -> Self {
        PredictConfig { queries: 512, epochs: 600, hidden: 32, lr: 0.35, seed: 0 }
    }
}

/// A trained predictor of conditional formula probabilities
/// `Pr[φ | e]` for partial evidence `e`.
#[derive(Debug, Clone)]
pub struct PredictionNet {
    net: TrainableMlp,
    num_vars: usize,
}

/// Encodes partial evidence as a two-hot feature row: feature `2v` is 1
/// iff `x_v` is set to 1, feature `2v + 1` is 1 iff set to 0; free
/// variables contribute zeros.
fn encode(evidence: &[Option<bool>]) -> Vec<f32> {
    let mut row = vec![0.0f32; 2 * evidence.len()];
    for (v, e) in evidence.iter().enumerate() {
        match e {
            Some(true) => row[2 * v] = 1.0,
            Some(false) => row[2 * v + 1] = 1.0,
            None => {}
        }
    }
    row
}

/// Exact conditional `Pr[φ | e]` from a compiled circuit plus the prior
/// weights: `Pr[φ ∧ e] / Pr[e]`, where `Pr[e]` factorizes over the
/// independent per-variable marginals. The evidence object and
/// evaluation buffer are caller-held so training sweeps (thousands of
/// labels against one circuit) never allocate per query.
fn exact_conditional(
    circuit: &Circuit,
    weights: &WmcWeights,
    evidence: &[Option<bool>],
    ev: &mut Evidence,
    buf: &mut EvalBuffer,
) -> f64 {
    let mut prior = 1.0f64;
    for (v, e) in evidence.iter().enumerate() {
        match e {
            Some(b) => {
                ev.set(v, usize::from(*b));
                prior *= if *b { weights.prob(v) } else { 1.0 - weights.prob(v) };
            }
            None => {
                ev.clear(v);
            }
        }
    }
    if prior == 0.0 {
        return 0.0;
    }
    (circuit.probability_with(ev, buf) / prior).clamp(0.0, 1.0)
}

impl PredictionNet {
    /// Trains a predictor against the exact engine: generates `queries`
    /// random partial-evidence patterns (each variable independently
    /// free / set-1 / set-0), labels each with the exact conditional
    /// from the compiled `circuit`, and fits the MLP. Returns the net
    /// and the final training loss (mean BCE).
    pub fn train_from_circuit(
        circuit: &Circuit,
        weights: &WmcWeights,
        cfg: &PredictConfig,
    ) -> (Self, f32) {
        assert_eq!(weights.len(), circuit.num_vars(), "weights arity mismatch");
        assert!(cfg.queries > 0 && cfg.epochs > 0, "training schedule must be positive");
        let n = circuit.num_vars();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut xs = Vec::with_capacity(cfg.queries * 2 * n);
        let mut ys = Vec::with_capacity(cfg.queries);
        let mut evidence = vec![None; n];
        // One evidence object and one evaluation buffer serve every
        // training label — the exact oracle is queried thousands of
        // times here, so per-query allocation would dominate.
        let mut ev = Evidence::empty(n);
        let mut buf = EvalBuffer::new();
        for _ in 0..cfg.queries {
            for e in evidence.iter_mut() {
                *e = match rng.gen_range(0..3u32) {
                    0 => None,
                    1 => Some(true),
                    _ => Some(false),
                };
            }
            xs.extend(encode(&evidence));
            ys.push(exact_conditional(circuit, weights, &evidence, &mut ev, &mut buf) as f32);
        }
        let x = Matrix::from_vec(cfg.queries, 2 * n, xs);
        let y = Matrix::from_vec(cfg.queries, 1, ys);
        let mut net = TrainableMlp::new(&[2 * n, cfg.hidden, 1], cfg.seed.wrapping_add(17));
        let mut loss = f32::INFINITY;
        for _ in 0..cfg.epochs {
            loss = net.train_batch(&x, &y, cfg.lr);
        }
        (PredictionNet { net, num_vars: n }, loss)
    }

    /// Trains a predictor straight from a CNF formula: compiles it once
    /// through the exact engine's compiled-reuse oracle
    /// ([`reason_pc::CompiledWmc`], backed by the top-down
    /// component-caching compiler) and labels the training set from the
    /// cached circuit. Returns `None` when the formula carries no
    /// satisfying mass under `weights` — unsatisfiable outright, or
    /// every model killed by a zero-probability weight — since there
    /// is then no conditional distribution to learn.
    pub fn train_from_cnf(
        cnf: &Cnf,
        weights: &WmcWeights,
        cfg: &PredictConfig,
    ) -> Option<(Self, f32)> {
        let oracle = CompiledWmc::new(cnf, weights);
        oracle.circuit().map(|c| Self::train_from_circuit(c, weights, cfg))
    }

    /// Number of variables the predictor covers.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Predicted `Pr[φ | e]` for partial evidence `e`.
    ///
    /// # Panics
    ///
    /// Panics if `evidence.len() != self.num_vars()`.
    pub fn predict(&self, evidence: &[Option<bool>]) -> f64 {
        let x = Self::encode_query(evidence, self.num_vars);
        f64::from(self.net.forward(&x).at(0, 0))
    }

    /// Encodes partial evidence as the net's `1 × 2n` input matrix —
    /// the two-hot feature layout [`predict`](Self::predict) uses,
    /// exposed so a serving router can run the frozen net
    /// ([`to_mlp`](Self::to_mlp)) as a `reason_system` neural stage and
    /// read the prediction off the stage's output buffer.
    ///
    /// # Panics
    ///
    /// Panics if `evidence.len() != num_vars`.
    pub fn encode_query(evidence: &[Option<bool>], num_vars: usize) -> Matrix {
        assert_eq!(evidence.len(), num_vars, "evidence arity mismatch");
        Matrix::from_vec(1, 2 * num_vars, encode(evidence))
    }

    /// Predicted posterior marginal `q_v ≈ p(X_v = 1 | φ)` for every
    /// variable, by Bayes over the net's two single-variable queries:
    /// `q_v ∝ p_v · Pr[φ | x_v = 1]`.
    ///
    /// Degenerate predictions (both conditionals 0) fall back to the
    /// prior marginal.
    pub fn posterior_marginals(&self, weights: &WmcWeights) -> Vec<f64> {
        assert_eq!(weights.len(), self.num_vars, "weights arity mismatch");
        let mut evidence: Vec<Option<bool>> = vec![None; self.num_vars];
        (0..self.num_vars)
            .map(|v| {
                evidence[v] = Some(true);
                let pos = self.predict(&evidence) * weights.prob(v);
                evidence[v] = Some(false);
                let neg = self.predict(&evidence) * (1.0 - weights.prob(v));
                evidence[v] = None;
                if pos + neg > 0.0 {
                    pos / (pos + neg)
                } else {
                    weights.prob(v)
                }
            })
            .collect()
    }

    /// Freezes the predictor into an inference [`Mlp`] (sigmoid head),
    /// runnable as a `reason_system` neural stage.
    pub fn to_mlp(&self) -> Mlp {
        self.net.to_mlp()
    }

    /// Parameter count of the underlying network.
    pub fn num_params(&self) -> usize {
        self.net.num_params()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reason_pc::compile_cnf;
    use reason_sat::{weighted_count, Cnf};

    fn tractable_instance() -> (Cnf, WmcWeights) {
        let cnf = Cnf::from_clauses(
            6,
            vec![vec![1, 2], vec![-2, 3], vec![-1, 4, 5], vec![3, -5, 6], vec![-4, -6]],
        );
        let w = WmcWeights::new(vec![0.4, 0.55, 0.5, 0.35, 0.6, 0.45]);
        (cnf, w)
    }

    #[test]
    fn encoding_is_two_hot() {
        let row = encode(&[Some(true), None, Some(false)]);
        assert_eq!(row, vec![1.0, 0.0, 0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn exact_conditional_matches_enumeration() {
        let (cnf, w) = tractable_instance();
        let circuit = compile_cnf(&cnf, &w).unwrap();
        // Condition on x1 = 1: Pr[φ | x1] by brute force over a modified
        // formula, using Pr[φ ∧ x1] = weighted_count(φ ∧ x1).
        let mut with_unit = cnf.clone();
        with_unit.add_dimacs_clause(&[2]);
        let probs: Vec<f64> = (0..6).map(|v| w.prob(v)).collect();
        let expect = weighted_count(&with_unit, &probs) / w.prob(1);
        let mut evidence = vec![None; 6];
        evidence[1] = Some(true);
        let mut ev = Evidence::empty(6);
        let mut buf = EvalBuffer::new();
        let got = exact_conditional(&circuit, &w, &evidence, &mut ev, &mut buf);
        assert!((got - expect).abs() < 1e-9);
        // The shared evidence object is fully reset between queries:
        // an unrelated follow-up query sees no stale assignments.
        let free = vec![None; 6];
        let got_free = exact_conditional(&circuit, &w, &free, &mut ev, &mut buf);
        assert!((got_free - weighted_count(&cnf, &probs)).abs() < 1e-9);
    }

    #[test]
    fn trained_net_tracks_exact_conditionals() {
        let (cnf, w) = tractable_instance();
        let circuit = compile_cnf(&cnf, &w).unwrap();
        let (net, loss) =
            PredictionNet::train_from_circuit(&circuit, &w, &PredictConfig::default());
        assert!(loss.is_finite());

        // Held-out evaluation: fresh random evidence patterns not tied to
        // the training stream's seed.
        let mut rng = StdRng::seed_from_u64(999);
        let mut evidence: Vec<Option<bool>> = vec![None; 6];
        let mut ev = Evidence::empty(6);
        let mut buf = EvalBuffer::new();
        let mut total_err = 0.0f64;
        let trials = 60;
        for _ in 0..trials {
            for e in evidence.iter_mut() {
                *e = match rng.gen_range(0..3u32) {
                    0 => None,
                    1 => Some(true),
                    _ => Some(false),
                };
            }
            let exact = exact_conditional(&circuit, &w, &evidence, &mut ev, &mut buf);
            total_err += (net.predict(&evidence) - exact).abs();
        }
        let mae = total_err / trials as f64;
        assert!(mae < 0.1, "held-out MAE too high: {mae}");
    }

    #[test]
    fn posterior_marginals_approach_circuit_marginals() {
        let (cnf, w) = tractable_instance();
        let circuit = compile_cnf(&cnf, &w).unwrap();
        let (net, _) = PredictionNet::train_from_circuit(&circuit, &w, &PredictConfig::default());
        let empty = Evidence::empty(6);
        let q = net.posterior_marginals(&w);
        for (v, qv) in q.iter().enumerate() {
            let exact = circuit.marginal(&empty, v)[1];
            assert!(
                (qv - exact).abs() < 0.15,
                "var {v}: predicted {qv} vs exact posterior {exact}"
            );
        }
    }

    #[test]
    fn frozen_mlp_agrees_with_predictor() {
        let (cnf, w) = tractable_instance();
        let circuit = compile_cnf(&cnf, &w).unwrap();
        let cfg = PredictConfig { queries: 128, epochs: 100, ..PredictConfig::default() };
        let (net, _) = PredictionNet::train_from_circuit(&circuit, &w, &cfg);
        let mlp = net.to_mlp();
        let evidence = vec![Some(true), None, None, Some(false), None, None];
        let x = Matrix::from_vec(1, 12, encode(&evidence));
        assert!((f64::from(mlp.forward(&x).at(0, 0)) - net.predict(&evidence)).abs() < 1e-6);
    }

    #[test]
    fn train_from_cnf_matches_circuit_training() {
        let (cnf, w) = tractable_instance();
        let cfg = PredictConfig { queries: 64, epochs: 50, ..PredictConfig::default() };
        let (via_cnf, loss_cnf) = PredictionNet::train_from_cnf(&cnf, &w, &cfg).unwrap();
        let circuit = compile_cnf(&cnf, &w).unwrap();
        let (via_circuit, loss_circuit) = PredictionNet::train_from_circuit(&circuit, &w, &cfg);
        assert_eq!(loss_cnf, loss_circuit);
        let e = vec![Some(true), None, None, None, Some(false), None];
        assert_eq!(via_cnf.predict(&e), via_circuit.predict(&e));
        // An unsatisfiable formula has no conditional distribution to learn.
        let unsat = Cnf::from_clauses(2, vec![vec![1], vec![-1]]);
        assert!(PredictionNet::train_from_cnf(&unsat, &WmcWeights::uniform(2), &cfg).is_none());
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let (cnf, w) = tractable_instance();
        let circuit = compile_cnf(&cnf, &w).unwrap();
        let cfg = PredictConfig { queries: 64, epochs: 50, ..PredictConfig::default() };
        let (a, la) = PredictionNet::train_from_circuit(&circuit, &w, &cfg);
        let (b, lb) = PredictionNet::train_from_circuit(&circuit, &w, &cfg);
        assert_eq!(la, lb);
        let e = vec![None, Some(true), None, None, None, Some(false)];
        assert_eq!(a.predict(&e), b.predict(&e));
    }
}
