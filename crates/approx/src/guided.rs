//! Neural-guided CDCL branching (Valentin et al.-style guided logical
//! inference).
//!
//! "On Scaling Neurosymbolic Programming through Guided Logical
//! Inference" (PAPERS.md) accelerates probabilistic-logical queries by
//! letting a learned model steer the logical search while the symbolic
//! solver retains soundness. This module is that split on the
//! `reason-sat` substrate: [`ProxyBranching`] implements the solver's
//! pluggable [`BranchingHeuristic`] trait, proposing the decision
//! variable whose learned score is most *polarized* (farthest from
//! 0.5), phased toward its likelier value. Low-confidence variables are
//! deferred to VSIDS, so guidance degrades gracefully to the classical
//! heuristic as scores approach uniform.
//!
//! Scores can come from any proxy in this crate: an adapted importance
//! proposal ([`crate::adapt_proposal`]), exact-engine marginals
//! ([`crate::Proposal::from_circuit`]), or a trained prediction network
//! ([`crate::PredictionNet::posterior_marginals`]).

use reason_pc::WmcWeights;
use reason_sat::{
    BranchView, BranchingHeuristic, CdclSolver, Cnf, Lit, Solution, SolverStats, Var,
};

use crate::importance::{MixtureProposal, Proposal};
use crate::prediction::PredictionNet;

/// A branching heuristic scored by per-variable probabilities
/// `scores[v] ≈ p(X_v = 1 | φ)`.
#[derive(Debug, Clone)]
pub struct ProxyBranching {
    scores: Vec<f64>,
    /// Minimum polarization `|score - 0.5|` required to propose a
    /// branch; below it, the decision defers to VSIDS.
    pub min_confidence: f64,
}

impl ProxyBranching {
    /// A heuristic from raw scores with the default confidence floor.
    pub fn new(scores: Vec<f64>) -> Self {
        assert!(
            scores.iter().all(|s| (0.0..=1.0).contains(s)),
            "scores must be probabilities in [0,1]"
        );
        ProxyBranching { scores, min_confidence: 0.05 }
    }

    /// Scores from a learned importance proposal.
    pub fn from_proposal(proposal: &Proposal) -> Self {
        ProxyBranching::new((0..proposal.len()).map(|v| proposal.prob(v)).collect())
    }

    /// Scores from a learned mixture proposal's marginals.
    pub fn from_mixture(mixture: &MixtureProposal) -> Self {
        ProxyBranching::new(mixture.marginals())
    }

    /// Oracle scores from a known model (1.0 / 0.0 per variable) — the
    /// upper bound on what guidance can achieve; used for testing and
    /// calibration.
    pub fn from_model(model: &[bool]) -> Self {
        ProxyBranching::new(model.iter().map(|&b| f64::from(u8::from(b))).collect())
    }

    /// Scores from a trained prediction network's posterior marginals.
    pub fn from_prediction(net: &PredictionNet, weights: &WmcWeights) -> Self {
        ProxyBranching::new(net.posterior_marginals(weights))
    }

    /// The score table.
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }
}

impl BranchingHeuristic for ProxyBranching {
    fn pick(&mut self, view: &BranchView<'_>) -> Option<Lit> {
        let mut best: Option<(usize, f64)> = None;
        for (v, &s) in self.scores.iter().enumerate() {
            if v >= view.num_vars() || view.is_assigned(v) {
                continue;
            }
            let confidence = (s - 0.5).abs();
            if confidence < self.min_confidence {
                continue;
            }
            if best.is_none_or(|(_, b)| confidence > b) {
                best = Some((v, confidence));
            }
        }
        best.map(|(v, _)| Lit::new(Var::new(v), self.scores[v] < 0.5))
    }
}

/// Solves `cnf` with proxy-guided branching and returns the solution
/// together with the search statistics (including how many decisions
/// the guide proposed, [`SolverStats::guided_decisions`]).
pub fn solve_guided(cnf: &Cnf, guide: &mut ProxyBranching) -> (Solution, SolverStats) {
    let mut solver = CdclSolver::new(cnf);
    let solution = solver.solve_guided(guide);
    (solution, *solver.stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::importance::{adapt_proposal, AdaptConfig};
    use rand::prelude::*;
    use reason_sat::brute_force;
    use reason_sat::gen::random_ksat;

    #[test]
    fn guided_search_is_sound_on_seeded_instances() {
        for seed in 0..12 {
            let cnf = random_ksat(10, 38, 3, 500 + seed);
            let expect = brute_force(&cnf).is_sat();
            // Arbitrary (even misleading) scores must never change the
            // verdict, only the search path.
            let scores: Vec<f64> = (0..10).map(|v| 0.1 + 0.08 * v as f64).collect();
            let (sol, _) = solve_guided(&cnf, &mut ProxyBranching::new(scores));
            assert_eq!(sol.is_sat(), expect, "seed {seed}");
            if let Solution::Sat(m) = sol {
                assert!(cnf.eval(&m), "seed {seed}: non-model returned");
            }
        }
    }

    #[test]
    fn oracle_scores_solve_sat_instances_conflict_free() {
        let mut tested = 0;
        for seed in 0..10 {
            let cnf = random_ksat(12, 44, 3, 700 + seed);
            let model = match brute_force(&cnf) {
                Solution::Sat(m) => m,
                Solution::Unsat => continue,
            };
            let (sol, stats) = solve_guided(&cnf, &mut ProxyBranching::from_model(&model));
            assert!(sol.is_sat());
            assert_eq!(stats.conflicts, 0, "seed {seed}");
            assert!(stats.guided_decisions > 0);
            tested += 1;
        }
        assert!(tested >= 3, "need satisfiable instances to exercise the oracle");
    }

    #[test]
    fn adapted_proposal_guidance_reduces_search_effort_in_aggregate() {
        // Valentin-style payoff: on satisfiable under-constrained
        // instances, branching along an adapted proposal should need no
        // more conflicts than VSIDS overall (it typically needs far
        // fewer — the proposal concentrates near satisfying regions).
        let mut guided_conflicts = 0u64;
        let mut vsids_conflicts = 0u64;
        for seed in 0..8 {
            let cnf = random_ksat(14, 42, 3, 900 + seed);
            let w = WmcWeights::uniform(14);
            let mut rng = StdRng::seed_from_u64(seed);
            let proposal = adapt_proposal(&cnf, &w, &AdaptConfig::default(), &mut rng);
            let (gsol, gstats) = solve_guided(&cnf, &mut ProxyBranching::from_proposal(&proposal));
            let mut plain = CdclSolver::new(&cnf);
            let psol = plain.solve();
            assert_eq!(gsol.is_sat(), psol.is_sat(), "seed {seed}");
            guided_conflicts += gstats.conflicts;
            vsids_conflicts += plain.stats().conflicts;
        }
        assert!(
            guided_conflicts <= vsids_conflicts,
            "guided search should not conflict more in aggregate: {guided_conflicts} vs {vsids_conflicts}"
        );
    }

    #[test]
    fn uniform_scores_defer_everything_to_vsids() {
        let cnf = random_ksat(8, 24, 3, 42);
        let (_, stats) = solve_guided(&cnf, &mut ProxyBranching::new(vec![0.5; 8]));
        assert_eq!(stats.guided_decisions, 0);
    }
}
